/root/repo/target/release/examples/self_testing-3834ed564b5d6396.d: crates/pool/../../examples/self_testing.rs

/root/repo/target/release/examples/self_testing-3834ed564b5d6396: crates/pool/../../examples/self_testing.rs

crates/pool/../../examples/self_testing.rs:
