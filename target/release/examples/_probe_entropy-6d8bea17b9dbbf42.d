/root/repo/target/release/examples/_probe_entropy-6d8bea17b9dbbf42.d: crates/core/../../examples/_probe_entropy.rs

/root/repo/target/release/examples/_probe_entropy-6d8bea17b9dbbf42: crates/core/../../examples/_probe_entropy.rs

crates/core/../../examples/_probe_entropy.rs:
