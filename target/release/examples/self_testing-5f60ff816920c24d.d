/root/repo/target/release/examples/self_testing-5f60ff816920c24d.d: crates/core/../../examples/self_testing.rs

/root/repo/target/release/examples/self_testing-5f60ff816920c24d: crates/core/../../examples/self_testing.rs

crates/core/../../examples/self_testing.rs:
