/root/repo/target/release/examples/quickstart-1762331cc2397d66.d: crates/core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-1762331cc2397d66: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
