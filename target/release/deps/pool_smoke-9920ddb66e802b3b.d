/root/repo/target/release/deps/pool_smoke-9920ddb66e802b3b.d: crates/pool/src/bin/pool_smoke.rs

/root/repo/target/release/deps/pool_smoke-9920ddb66e802b3b: crates/pool/src/bin/pool_smoke.rs

crates/pool/src/bin/pool_smoke.rs:
