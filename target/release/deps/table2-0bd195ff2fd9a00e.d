/root/repo/target/release/deps/table2-0bd195ff2fd9a00e.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-0bd195ff2fd9a00e: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
