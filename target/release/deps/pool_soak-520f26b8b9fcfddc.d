/root/repo/target/release/deps/pool_soak-520f26b8b9fcfddc.d: crates/pool/../../tests/pool_soak.rs

/root/repo/target/release/deps/pool_soak-520f26b8b9fcfddc: crates/pool/../../tests/pool_soak.rs

crates/pool/../../tests/pool_soak.rs:
