/root/repo/target/release/deps/pool_throughput-4ef899c154be7e99.d: crates/bench/benches/pool_throughput.rs

/root/repo/target/release/deps/pool_throughput-4ef899c154be7e99: crates/bench/benches/pool_throughput.rs

crates/bench/benches/pool_throughput.rs:
