/root/repo/target/release/deps/figure4-d905a0088e1a5528.d: crates/bench/src/bin/figure4.rs

/root/repo/target/release/deps/figure4-d905a0088e1a5528: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
