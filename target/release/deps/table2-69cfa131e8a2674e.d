/root/repo/target/release/deps/table2-69cfa131e8a2674e.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-69cfa131e8a2674e: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
