/root/repo/target/release/deps/trng_bench-3e273adae5c420b8.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libtrng_bench-3e273adae5c420b8.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libtrng_bench-3e273adae5c420b8.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
