/root/repo/target/release/deps/_speed_probe-ea56abe4e648fb83.d: crates/bench/src/bin/_speed_probe.rs

/root/repo/target/release/deps/_speed_probe-ea56abe4e648fb83: crates/bench/src/bin/_speed_probe.rs

crates/bench/src/bin/_speed_probe.rs:
