/root/repo/target/release/deps/figure7-c01e6e26be41db96.d: crates/bench/src/bin/figure7.rs

/root/repo/target/release/deps/figure7-c01e6e26be41db96: crates/bench/src/bin/figure7.rs

crates/bench/src/bin/figure7.rs:
