/root/repo/target/release/deps/table1-cb8346c4f9b45ecd.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-cb8346c4f9b45ecd: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
