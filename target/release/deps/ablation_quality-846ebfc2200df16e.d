/root/repo/target/release/deps/ablation_quality-846ebfc2200df16e.d: crates/bench/src/bin/ablation_quality.rs

/root/repo/target/release/deps/ablation_quality-846ebfc2200df16e: crates/bench/src/bin/ablation_quality.rs

crates/bench/src/bin/ablation_quality.rs:
