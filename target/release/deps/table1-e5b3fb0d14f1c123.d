/root/repo/target/release/deps/table1-e5b3fb0d14f1c123.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-e5b3fb0d14f1c123: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
