/root/repo/target/release/deps/extractor-486376b843ba3ab6.d: crates/bench/benches/extractor.rs

/root/repo/target/release/deps/extractor-486376b843ba3ab6: crates/bench/benches/extractor.rs

crates/bench/benches/extractor.rs:
