/root/repo/target/release/deps/trng_pool-40bf1e4f571cbfef.d: crates/pool/src/lib.rs crates/pool/src/pool.rs crates/pool/src/ring.rs crates/pool/src/shard.rs crates/pool/src/stats.rs

/root/repo/target/release/deps/trng_pool-40bf1e4f571cbfef: crates/pool/src/lib.rs crates/pool/src/pool.rs crates/pool/src/ring.rs crates/pool/src/shard.rs crates/pool/src/stats.rs

crates/pool/src/lib.rs:
crates/pool/src/pool.rs:
crates/pool/src/ring.rs:
crates/pool/src/shard.rs:
crates/pool/src/stats.rs:
