/root/repo/target/release/deps/design_steps-6e69532d654594de.d: crates/bench/src/bin/design_steps.rs

/root/repo/target/release/deps/design_steps-6e69532d654594de: crates/bench/src/bin/design_steps.rs

crates/bench/src/bin/design_steps.rs:
