/root/repo/target/release/deps/eq8-b9a881618468fd06.d: crates/bench/src/bin/eq8.rs

/root/repo/target/release/deps/eq8-b9a881618468fd06: crates/bench/src/bin/eq8.rs

crates/bench/src/bin/eq8.rs:
