/root/repo/target/release/deps/trng_fpga_sim-7e44708c85bbeb37.d: crates/fpga-sim/src/lib.rs crates/fpga-sim/src/delay_line.rs crates/fpga-sim/src/edge_train.rs crates/fpga-sim/src/fabric.rs crates/fpga-sim/src/noise/mod.rs crates/fpga-sim/src/noise/attack.rs crates/fpga-sim/src/noise/flicker.rs crates/fpga-sim/src/noise/global.rs crates/fpga-sim/src/noise/white.rs crates/fpga-sim/src/placement.rs crates/fpga-sim/src/primitives/mod.rs crates/fpga-sim/src/primitives/carry4.rs crates/fpga-sim/src/primitives/flipflop.rs crates/fpga-sim/src/primitives/lut.rs crates/fpga-sim/src/process.rs crates/fpga-sim/src/ring_oscillator.rs crates/fpga-sim/src/rng.rs crates/fpga-sim/src/time.rs crates/fpga-sim/src/trace.rs

/root/repo/target/release/deps/libtrng_fpga_sim-7e44708c85bbeb37.rlib: crates/fpga-sim/src/lib.rs crates/fpga-sim/src/delay_line.rs crates/fpga-sim/src/edge_train.rs crates/fpga-sim/src/fabric.rs crates/fpga-sim/src/noise/mod.rs crates/fpga-sim/src/noise/attack.rs crates/fpga-sim/src/noise/flicker.rs crates/fpga-sim/src/noise/global.rs crates/fpga-sim/src/noise/white.rs crates/fpga-sim/src/placement.rs crates/fpga-sim/src/primitives/mod.rs crates/fpga-sim/src/primitives/carry4.rs crates/fpga-sim/src/primitives/flipflop.rs crates/fpga-sim/src/primitives/lut.rs crates/fpga-sim/src/process.rs crates/fpga-sim/src/ring_oscillator.rs crates/fpga-sim/src/rng.rs crates/fpga-sim/src/time.rs crates/fpga-sim/src/trace.rs

/root/repo/target/release/deps/libtrng_fpga_sim-7e44708c85bbeb37.rmeta: crates/fpga-sim/src/lib.rs crates/fpga-sim/src/delay_line.rs crates/fpga-sim/src/edge_train.rs crates/fpga-sim/src/fabric.rs crates/fpga-sim/src/noise/mod.rs crates/fpga-sim/src/noise/attack.rs crates/fpga-sim/src/noise/flicker.rs crates/fpga-sim/src/noise/global.rs crates/fpga-sim/src/noise/white.rs crates/fpga-sim/src/placement.rs crates/fpga-sim/src/primitives/mod.rs crates/fpga-sim/src/primitives/carry4.rs crates/fpga-sim/src/primitives/flipflop.rs crates/fpga-sim/src/primitives/lut.rs crates/fpga-sim/src/process.rs crates/fpga-sim/src/ring_oscillator.rs crates/fpga-sim/src/rng.rs crates/fpga-sim/src/time.rs crates/fpga-sim/src/trace.rs

crates/fpga-sim/src/lib.rs:
crates/fpga-sim/src/delay_line.rs:
crates/fpga-sim/src/edge_train.rs:
crates/fpga-sim/src/fabric.rs:
crates/fpga-sim/src/noise/mod.rs:
crates/fpga-sim/src/noise/attack.rs:
crates/fpga-sim/src/noise/flicker.rs:
crates/fpga-sim/src/noise/global.rs:
crates/fpga-sim/src/noise/white.rs:
crates/fpga-sim/src/placement.rs:
crates/fpga-sim/src/primitives/mod.rs:
crates/fpga-sim/src/primitives/carry4.rs:
crates/fpga-sim/src/primitives/flipflop.rs:
crates/fpga-sim/src/primitives/lut.rs:
crates/fpga-sim/src/process.rs:
crates/fpga-sim/src/ring_oscillator.rs:
crates/fpga-sim/src/rng.rs:
crates/fpga-sim/src/time.rs:
crates/fpga-sim/src/trace.rs:
