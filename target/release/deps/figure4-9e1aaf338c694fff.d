/root/repo/target/release/deps/figure4-9e1aaf338c694fff.d: crates/bench/src/bin/figure4.rs

/root/repo/target/release/deps/figure4-9e1aaf338c694fff: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
