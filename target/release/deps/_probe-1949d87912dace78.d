/root/repo/target/release/deps/_probe-1949d87912dace78.d: crates/core/tests/_probe.rs

/root/repo/target/release/deps/_probe-1949d87912dace78: crates/core/tests/_probe.rs

crates/core/tests/_probe.rs:
