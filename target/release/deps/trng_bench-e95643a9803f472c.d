/root/repo/target/release/deps/trng_bench-e95643a9803f472c.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libtrng_bench-e95643a9803f472c.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libtrng_bench-e95643a9803f472c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
