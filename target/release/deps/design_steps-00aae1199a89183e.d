/root/repo/target/release/deps/design_steps-00aae1199a89183e.d: crates/bench/src/bin/design_steps.rs

/root/repo/target/release/deps/design_steps-00aae1199a89183e: crates/bench/src/bin/design_steps.rs

crates/bench/src/bin/design_steps.rs:
