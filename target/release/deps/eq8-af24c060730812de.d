/root/repo/target/release/deps/eq8-af24c060730812de.d: crates/bench/src/bin/eq8.rs

/root/repo/target/release/deps/eq8-af24c060730812de: crates/bench/src/bin/eq8.rs

crates/bench/src/bin/eq8.rs:
