/root/repo/target/release/deps/trng_testkit-51183350f425aed2.d: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/json.rs crates/testkit/src/prng.rs crates/testkit/src/prop.rs

/root/repo/target/release/deps/libtrng_testkit-51183350f425aed2.rlib: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/json.rs crates/testkit/src/prng.rs crates/testkit/src/prop.rs

/root/repo/target/release/deps/libtrng_testkit-51183350f425aed2.rmeta: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/json.rs crates/testkit/src/prng.rs crates/testkit/src/prop.rs

crates/testkit/src/lib.rs:
crates/testkit/src/bench.rs:
crates/testkit/src/json.rs:
crates/testkit/src/prng.rs:
crates/testkit/src/prop.rs:
