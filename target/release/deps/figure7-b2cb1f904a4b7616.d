/root/repo/target/release/deps/figure7-b2cb1f904a4b7616.d: crates/bench/src/bin/figure7.rs

/root/repo/target/release/deps/figure7-b2cb1f904a4b7616: crates/bench/src/bin/figure7.rs

crates/bench/src/bin/figure7.rs:
