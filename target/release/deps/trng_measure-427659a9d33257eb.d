/root/repo/target/release/deps/trng_measure-427659a9d33257eb.d: crates/measure/src/lib.rs crates/measure/src/calibration.rs crates/measure/src/jitter.rs crates/measure/src/lut_delay.rs crates/measure/src/tstep.rs

/root/repo/target/release/deps/libtrng_measure-427659a9d33257eb.rlib: crates/measure/src/lib.rs crates/measure/src/calibration.rs crates/measure/src/jitter.rs crates/measure/src/lut_delay.rs crates/measure/src/tstep.rs

/root/repo/target/release/deps/libtrng_measure-427659a9d33257eb.rmeta: crates/measure/src/lib.rs crates/measure/src/calibration.rs crates/measure/src/jitter.rs crates/measure/src/lut_delay.rs crates/measure/src/tstep.rs

crates/measure/src/lib.rs:
crates/measure/src/calibration.rs:
crates/measure/src/jitter.rs:
crates/measure/src/lut_delay.rs:
crates/measure/src/tstep.rs:
