/root/repo/target/release/deps/ablation_quality-b03dc8a50122a39c.d: crates/bench/src/bin/ablation_quality.rs

/root/repo/target/release/deps/ablation_quality-b03dc8a50122a39c: crates/bench/src/bin/ablation_quality.rs

crates/bench/src/bin/ablation_quality.rs:
