/root/repo/target/release/deps/trng_pool-8bf2892636656546.d: crates/pool/src/lib.rs crates/pool/src/pool.rs crates/pool/src/ring.rs crates/pool/src/shard.rs crates/pool/src/stats.rs

/root/repo/target/release/deps/libtrng_pool-8bf2892636656546.rlib: crates/pool/src/lib.rs crates/pool/src/pool.rs crates/pool/src/ring.rs crates/pool/src/shard.rs crates/pool/src/stats.rs

/root/repo/target/release/deps/libtrng_pool-8bf2892636656546.rmeta: crates/pool/src/lib.rs crates/pool/src/pool.rs crates/pool/src/ring.rs crates/pool/src/shard.rs crates/pool/src/stats.rs

crates/pool/src/lib.rs:
crates/pool/src/pool.rs:
crates/pool/src/ring.rs:
crates/pool/src/shard.rs:
crates/pool/src/stats.rs:
