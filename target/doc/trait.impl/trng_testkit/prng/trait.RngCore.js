(function() {
    const implementors = Object.fromEntries([["trng_core",[["impl RngCore for <a class=\"struct\" href=\"trng_core/rng_adapter/struct.TrngRng.html\" title=\"struct trng_core::rng_adapter::TrngRng\">TrngRng</a>",0]]],["trng_fpga_sim",[["impl RngCore for <a class=\"struct\" href=\"trng_fpga_sim/rng/struct.SimRng.html\" title=\"struct trng_fpga_sim::rng::SimRng\">SimRng</a>",0]]],["trng_testkit",[]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[170,164,20]}