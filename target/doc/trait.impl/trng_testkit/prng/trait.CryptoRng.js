(function() {
    const implementors = Object.fromEntries([["trng_core",[["impl CryptoRng for <a class=\"struct\" href=\"trng_core/rng_adapter/struct.TrngRng.html\" title=\"struct trng_core::rng_adapter::TrngRng\">TrngRng</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[172]}