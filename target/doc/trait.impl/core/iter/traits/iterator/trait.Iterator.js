(function() {
    const implementors = Object.fromEntries([["trng_core",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/iterator/trait.Iterator.html\" title=\"trait core::iter::traits::iterator::Iterator\">Iterator</a> for <a class=\"struct\" href=\"trng_core/trng/struct.RawBits.html\" title=\"struct trng_core::trng::RawBits\">RawBits</a>&lt;'_&gt;",0]]],["trng_stattests",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/iterator/trait.Iterator.html\" title=\"trait core::iter::traits::iterator::Iterator\">Iterator</a> for <a class=\"struct\" href=\"trng_stattests/bits/struct.Iter.html\" title=\"struct trng_stattests::bits::Iter\">Iter</a>&lt;'_&gt;",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[333,340]}