(function() {
    const implementors = Object.fromEntries([["trng_stattests",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/exact_size/trait.ExactSizeIterator.html\" title=\"trait core::iter::traits::exact_size::ExactSizeIterator\">ExactSizeIterator</a> for <a class=\"struct\" href=\"trng_stattests/bits/struct.Iter.html\" title=\"struct trng_stattests::bits::Iter\">Iter</a>&lt;'_&gt;",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[370]}