(function() {
    const implementors = Object.fromEntries([["trng_pool",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/drop/trait.Drop.html\" title=\"trait core::ops::drop::Drop\">Drop</a> for <a class=\"struct\" href=\"trng_pool/pool/struct.EntropyPool.html\" title=\"struct trng_pool::pool::EntropyPool\">EntropyPool</a>",0]]],["trng_testkit",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/drop/trait.Drop.html\" title=\"trait core::ops::drop::Drop\">Drop</a> for <a class=\"struct\" href=\"trng_testkit/bench/struct.BenchmarkGroup.html\" title=\"struct trng_testkit::bench::BenchmarkGroup\">BenchmarkGroup</a>&lt;'_&gt;",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[298,329]}