/root/repo/target/debug/examples/self_testing-2f2b75e7ecfaa902.d: crates/core/../../examples/self_testing.rs

/root/repo/target/debug/examples/self_testing-2f2b75e7ecfaa902: crates/core/../../examples/self_testing.rs

crates/core/../../examples/self_testing.rs:
