/root/repo/target/debug/examples/attack_scenario-c0f897e13da04212.d: crates/core/../../examples/attack_scenario.rs

/root/repo/target/debug/examples/attack_scenario-c0f897e13da04212: crates/core/../../examples/attack_scenario.rs

crates/core/../../examples/attack_scenario.rs:
