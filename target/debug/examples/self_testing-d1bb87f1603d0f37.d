/root/repo/target/debug/examples/self_testing-d1bb87f1603d0f37.d: crates/pool/../../examples/self_testing.rs

/root/repo/target/debug/examples/self_testing-d1bb87f1603d0f37: crates/pool/../../examples/self_testing.rs

crates/pool/../../examples/self_testing.rs:
