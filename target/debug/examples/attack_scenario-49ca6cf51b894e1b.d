/root/repo/target/debug/examples/attack_scenario-49ca6cf51b894e1b.d: crates/core/../../examples/attack_scenario.rs Cargo.toml

/root/repo/target/debug/examples/libattack_scenario-49ca6cf51b894e1b.rmeta: crates/core/../../examples/attack_scenario.rs Cargo.toml

crates/core/../../examples/attack_scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
