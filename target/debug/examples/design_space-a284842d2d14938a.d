/root/repo/target/debug/examples/design_space-a284842d2d14938a.d: crates/core/../../examples/design_space.rs Cargo.toml

/root/repo/target/debug/examples/libdesign_space-a284842d2d14938a.rmeta: crates/core/../../examples/design_space.rs Cargo.toml

crates/core/../../examples/design_space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
