/root/repo/target/debug/examples/quickstart-21268c6d55928238.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-21268c6d55928238: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
