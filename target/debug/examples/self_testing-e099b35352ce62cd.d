/root/repo/target/debug/examples/self_testing-e099b35352ce62cd.d: crates/pool/../../examples/self_testing.rs Cargo.toml

/root/repo/target/debug/examples/libself_testing-e099b35352ce62cd.rmeta: crates/pool/../../examples/self_testing.rs Cargo.toml

crates/pool/../../examples/self_testing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
