/root/repo/target/debug/examples/platform_measurement-4da08c30f08a579b.d: crates/core/../../examples/platform_measurement.rs

/root/repo/target/debug/examples/platform_measurement-4da08c30f08a579b: crates/core/../../examples/platform_measurement.rs

crates/core/../../examples/platform_measurement.rs:
