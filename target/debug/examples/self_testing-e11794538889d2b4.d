/root/repo/target/debug/examples/self_testing-e11794538889d2b4.d: crates/core/../../examples/self_testing.rs Cargo.toml

/root/repo/target/debug/examples/libself_testing-e11794538889d2b4.rmeta: crates/core/../../examples/self_testing.rs Cargo.toml

crates/core/../../examples/self_testing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
