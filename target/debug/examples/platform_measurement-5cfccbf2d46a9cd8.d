/root/repo/target/debug/examples/platform_measurement-5cfccbf2d46a9cd8.d: crates/core/../../examples/platform_measurement.rs Cargo.toml

/root/repo/target/debug/examples/libplatform_measurement-5cfccbf2d46a9cd8.rmeta: crates/core/../../examples/platform_measurement.rs Cargo.toml

crates/core/../../examples/platform_measurement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
