/root/repo/target/debug/examples/design_space-67e256d1f4185dd7.d: crates/core/../../examples/design_space.rs

/root/repo/target/debug/examples/design_space-67e256d1f4185dd7: crates/core/../../examples/design_space.rs

crates/core/../../examples/design_space.rs:
