/root/repo/target/debug/deps/properties-e5bb86b4008151d5.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-e5bb86b4008151d5: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
