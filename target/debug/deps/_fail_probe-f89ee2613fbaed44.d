/root/repo/target/debug/deps/_fail_probe-f89ee2613fbaed44.d: crates/testkit/tests/_fail_probe.rs

/root/repo/target/debug/deps/_fail_probe-f89ee2613fbaed44: crates/testkit/tests/_fail_probe.rs

crates/testkit/tests/_fail_probe.rs:
