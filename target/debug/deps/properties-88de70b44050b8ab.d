/root/repo/target/debug/deps/properties-88de70b44050b8ab.d: crates/measure/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-88de70b44050b8ab.rmeta: crates/measure/tests/properties.rs Cargo.toml

crates/measure/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
