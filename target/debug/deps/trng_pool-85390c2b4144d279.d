/root/repo/target/debug/deps/trng_pool-85390c2b4144d279.d: crates/pool/src/lib.rs crates/pool/src/pool.rs crates/pool/src/ring.rs crates/pool/src/shard.rs crates/pool/src/stats.rs

/root/repo/target/debug/deps/libtrng_pool-85390c2b4144d279.rlib: crates/pool/src/lib.rs crates/pool/src/pool.rs crates/pool/src/ring.rs crates/pool/src/shard.rs crates/pool/src/stats.rs

/root/repo/target/debug/deps/libtrng_pool-85390c2b4144d279.rmeta: crates/pool/src/lib.rs crates/pool/src/pool.rs crates/pool/src/ring.rs crates/pool/src/shard.rs crates/pool/src/stats.rs

crates/pool/src/lib.rs:
crates/pool/src/pool.rs:
crates/pool/src/ring.rs:
crates/pool/src/shard.rs:
crates/pool/src/stats.rs:
