/root/repo/target/debug/deps/throughput-cb64938ee648d309.d: crates/bench/benches/throughput.rs

/root/repo/target/debug/deps/throughput-cb64938ee648d309: crates/bench/benches/throughput.rs

crates/bench/benches/throughput.rs:
