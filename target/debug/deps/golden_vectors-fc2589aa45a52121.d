/root/repo/target/debug/deps/golden_vectors-fc2589aa45a52121.d: crates/core/../../tests/golden_vectors.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_vectors-fc2589aa45a52121.rmeta: crates/core/../../tests/golden_vectors.rs Cargo.toml

crates/core/../../tests/golden_vectors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
