/root/repo/target/debug/deps/ablation_quality-58a351f0a1ddf7f1.d: crates/bench/src/bin/ablation_quality.rs

/root/repo/target/debug/deps/ablation_quality-58a351f0a1ddf7f1: crates/bench/src/bin/ablation_quality.rs

crates/bench/src/bin/ablation_quality.rs:
