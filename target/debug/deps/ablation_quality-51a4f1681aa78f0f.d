/root/repo/target/debug/deps/ablation_quality-51a4f1681aa78f0f.d: crates/bench/src/bin/ablation_quality.rs Cargo.toml

/root/repo/target/debug/deps/libablation_quality-51a4f1681aa78f0f.rmeta: crates/bench/src/bin/ablation_quality.rs Cargo.toml

crates/bench/src/bin/ablation_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
