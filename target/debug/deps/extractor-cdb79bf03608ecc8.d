/root/repo/target/debug/deps/extractor-cdb79bf03608ecc8.d: crates/bench/benches/extractor.rs Cargo.toml

/root/repo/target/debug/deps/libextractor-cdb79bf03608ecc8.rmeta: crates/bench/benches/extractor.rs Cargo.toml

crates/bench/benches/extractor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
