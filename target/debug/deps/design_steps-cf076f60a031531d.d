/root/repo/target/debug/deps/design_steps-cf076f60a031531d.d: crates/bench/src/bin/design_steps.rs Cargo.toml

/root/repo/target/debug/deps/libdesign_steps-cf076f60a031531d.rmeta: crates/bench/src/bin/design_steps.rs Cargo.toml

crates/bench/src/bin/design_steps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
