/root/repo/target/debug/deps/throughput-2e207464e715cc2b.d: crates/bench/benches/throughput.rs Cargo.toml

/root/repo/target/debug/deps/libthroughput-2e207464e715cc2b.rmeta: crates/bench/benches/throughput.rs Cargo.toml

crates/bench/benches/throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
