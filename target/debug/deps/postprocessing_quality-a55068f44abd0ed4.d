/root/repo/target/debug/deps/postprocessing_quality-a55068f44abd0ed4.d: crates/core/../../tests/postprocessing_quality.rs

/root/repo/target/debug/deps/postprocessing_quality-a55068f44abd0ed4: crates/core/../../tests/postprocessing_quality.rs

crates/core/../../tests/postprocessing_quality.rs:
