/root/repo/target/debug/deps/robustness-8a14b6c069e86988.d: crates/core/../../tests/robustness.rs

/root/repo/target/debug/deps/robustness-8a14b6c069e86988: crates/core/../../tests/robustness.rs

crates/core/../../tests/robustness.rs:
