/root/repo/target/debug/deps/figure7-60b2f1d73973d720.d: crates/bench/src/bin/figure7.rs

/root/repo/target/debug/deps/figure7-60b2f1d73973d720: crates/bench/src/bin/figure7.rs

crates/bench/src/bin/figure7.rs:
