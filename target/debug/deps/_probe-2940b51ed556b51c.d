/root/repo/target/debug/deps/_probe-2940b51ed556b51c.d: crates/stattests/tests/_probe.rs

/root/repo/target/debug/deps/_probe-2940b51ed556b51c: crates/stattests/tests/_probe.rs

crates/stattests/tests/_probe.rs:
