/root/repo/target/debug/deps/eq8-165ab2824bf655ac.d: crates/bench/src/bin/eq8.rs

/root/repo/target/debug/deps/eq8-165ab2824bf655ac: crates/bench/src/bin/eq8.rs

crates/bench/src/bin/eq8.rs:
