/root/repo/target/debug/deps/table2-5c395ba82ec9ffb2.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-5c395ba82ec9ffb2.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
