/root/repo/target/debug/deps/soak-b710aaa16f5bc419.d: crates/core/../../tests/soak.rs Cargo.toml

/root/repo/target/debug/deps/libsoak-b710aaa16f5bc419.rmeta: crates/core/../../tests/soak.rs Cargo.toml

crates/core/../../tests/soak.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
