/root/repo/target/debug/deps/table2-684e6e38a3918efc.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-684e6e38a3918efc: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
