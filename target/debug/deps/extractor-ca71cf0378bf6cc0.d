/root/repo/target/debug/deps/extractor-ca71cf0378bf6cc0.d: crates/bench/benches/extractor.rs

/root/repo/target/debug/deps/extractor-ca71cf0378bf6cc0: crates/bench/benches/extractor.rs

crates/bench/benches/extractor.rs:
