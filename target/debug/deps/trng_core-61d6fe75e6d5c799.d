/root/repo/target/debug/deps/trng_core-61d6fe75e6d5c799.d: crates/core/src/lib.rs crates/core/src/bubble.rs crates/core/src/downsample.rs crates/core/src/elementary.rs crates/core/src/extractor.rs crates/core/src/health.rs crates/core/src/postprocess.rs crates/core/src/resources.rs crates/core/src/restart.rs crates/core/src/rng_adapter.rs crates/core/src/rtl.rs crates/core/src/self_timed.rs crates/core/src/selftest.rs crates/core/src/snippet.rs crates/core/src/trng.rs crates/core/src/von_neumann.rs Cargo.toml

/root/repo/target/debug/deps/libtrng_core-61d6fe75e6d5c799.rmeta: crates/core/src/lib.rs crates/core/src/bubble.rs crates/core/src/downsample.rs crates/core/src/elementary.rs crates/core/src/extractor.rs crates/core/src/health.rs crates/core/src/postprocess.rs crates/core/src/resources.rs crates/core/src/restart.rs crates/core/src/rng_adapter.rs crates/core/src/rtl.rs crates/core/src/self_timed.rs crates/core/src/selftest.rs crates/core/src/snippet.rs crates/core/src/trng.rs crates/core/src/von_neumann.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/bubble.rs:
crates/core/src/downsample.rs:
crates/core/src/elementary.rs:
crates/core/src/extractor.rs:
crates/core/src/health.rs:
crates/core/src/postprocess.rs:
crates/core/src/resources.rs:
crates/core/src/restart.rs:
crates/core/src/rng_adapter.rs:
crates/core/src/rtl.rs:
crates/core/src/self_timed.rs:
crates/core/src/selftest.rs:
crates/core/src/snippet.rs:
crates/core/src/trng.rs:
crates/core/src/von_neumann.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
