/root/repo/target/debug/deps/trng_pool-77231f7808f1ae81.d: crates/pool/src/lib.rs crates/pool/src/pool.rs crates/pool/src/ring.rs crates/pool/src/shard.rs crates/pool/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libtrng_pool-77231f7808f1ae81.rmeta: crates/pool/src/lib.rs crates/pool/src/pool.rs crates/pool/src/ring.rs crates/pool/src/shard.rs crates/pool/src/stats.rs Cargo.toml

crates/pool/src/lib.rs:
crates/pool/src/pool.rs:
crates/pool/src/ring.rs:
crates/pool/src/shard.rs:
crates/pool/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
