/root/repo/target/debug/deps/trng_measure-703b87d1b15c263f.d: crates/measure/src/lib.rs crates/measure/src/calibration.rs crates/measure/src/jitter.rs crates/measure/src/lut_delay.rs crates/measure/src/tstep.rs

/root/repo/target/debug/deps/libtrng_measure-703b87d1b15c263f.rmeta: crates/measure/src/lib.rs crates/measure/src/calibration.rs crates/measure/src/jitter.rs crates/measure/src/lut_delay.rs crates/measure/src/tstep.rs

crates/measure/src/lib.rs:
crates/measure/src/calibration.rs:
crates/measure/src/jitter.rs:
crates/measure/src/lut_delay.rs:
crates/measure/src/tstep.rs:
