/root/repo/target/debug/deps/table2-376ba04c1aaf311d.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-376ba04c1aaf311d: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
