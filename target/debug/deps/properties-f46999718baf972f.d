/root/repo/target/debug/deps/properties-f46999718baf972f.d: crates/measure/tests/properties.rs

/root/repo/target/debug/deps/properties-f46999718baf972f: crates/measure/tests/properties.rs

crates/measure/tests/properties.rs:
