/root/repo/target/debug/deps/missed_edge-c52553ffec5ba539.d: crates/core/../../tests/missed_edge.rs

/root/repo/target/debug/deps/missed_edge-c52553ffec5ba539: crates/core/../../tests/missed_edge.rs

crates/core/../../tests/missed_edge.rs:
