/root/repo/target/debug/deps/trng_bench-4aa77ef2efac92e9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtrng_bench-4aa77ef2efac92e9.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtrng_bench-4aa77ef2efac92e9.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
