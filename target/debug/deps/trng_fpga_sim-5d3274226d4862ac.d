/root/repo/target/debug/deps/trng_fpga_sim-5d3274226d4862ac.d: crates/fpga-sim/src/lib.rs crates/fpga-sim/src/delay_line.rs crates/fpga-sim/src/edge_train.rs crates/fpga-sim/src/fabric.rs crates/fpga-sim/src/noise/mod.rs crates/fpga-sim/src/noise/attack.rs crates/fpga-sim/src/noise/flicker.rs crates/fpga-sim/src/noise/global.rs crates/fpga-sim/src/noise/white.rs crates/fpga-sim/src/placement.rs crates/fpga-sim/src/primitives/mod.rs crates/fpga-sim/src/primitives/carry4.rs crates/fpga-sim/src/primitives/flipflop.rs crates/fpga-sim/src/primitives/lut.rs crates/fpga-sim/src/process.rs crates/fpga-sim/src/ring_oscillator.rs crates/fpga-sim/src/rng.rs crates/fpga-sim/src/time.rs crates/fpga-sim/src/trace.rs

/root/repo/target/debug/deps/libtrng_fpga_sim-5d3274226d4862ac.rmeta: crates/fpga-sim/src/lib.rs crates/fpga-sim/src/delay_line.rs crates/fpga-sim/src/edge_train.rs crates/fpga-sim/src/fabric.rs crates/fpga-sim/src/noise/mod.rs crates/fpga-sim/src/noise/attack.rs crates/fpga-sim/src/noise/flicker.rs crates/fpga-sim/src/noise/global.rs crates/fpga-sim/src/noise/white.rs crates/fpga-sim/src/placement.rs crates/fpga-sim/src/primitives/mod.rs crates/fpga-sim/src/primitives/carry4.rs crates/fpga-sim/src/primitives/flipflop.rs crates/fpga-sim/src/primitives/lut.rs crates/fpga-sim/src/process.rs crates/fpga-sim/src/ring_oscillator.rs crates/fpga-sim/src/rng.rs crates/fpga-sim/src/time.rs crates/fpga-sim/src/trace.rs

crates/fpga-sim/src/lib.rs:
crates/fpga-sim/src/delay_line.rs:
crates/fpga-sim/src/edge_train.rs:
crates/fpga-sim/src/fabric.rs:
crates/fpga-sim/src/noise/mod.rs:
crates/fpga-sim/src/noise/attack.rs:
crates/fpga-sim/src/noise/flicker.rs:
crates/fpga-sim/src/noise/global.rs:
crates/fpga-sim/src/noise/white.rs:
crates/fpga-sim/src/placement.rs:
crates/fpga-sim/src/primitives/mod.rs:
crates/fpga-sim/src/primitives/carry4.rs:
crates/fpga-sim/src/primitives/flipflop.rs:
crates/fpga-sim/src/primitives/lut.rs:
crates/fpga-sim/src/process.rs:
crates/fpga-sim/src/ring_oscillator.rs:
crates/fpga-sim/src/rng.rs:
crates/fpga-sim/src/time.rs:
crates/fpga-sim/src/trace.rs:
