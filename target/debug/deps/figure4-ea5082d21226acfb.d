/root/repo/target/debug/deps/figure4-ea5082d21226acfb.d: crates/bench/src/bin/figure4.rs

/root/repo/target/debug/deps/figure4-ea5082d21226acfb: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
