/root/repo/target/debug/deps/design_steps-f76a3d94d9342b26.d: crates/bench/src/bin/design_steps.rs Cargo.toml

/root/repo/target/debug/deps/libdesign_steps-f76a3d94d9342b26.rmeta: crates/bench/src/bin/design_steps.rs Cargo.toml

crates/bench/src/bin/design_steps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
