/root/repo/target/debug/deps/pool_throughput-3ad70622b4349b69.d: crates/bench/benches/pool_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libpool_throughput-3ad70622b4349b69.rmeta: crates/bench/benches/pool_throughput.rs Cargo.toml

crates/bench/benches/pool_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
