/root/repo/target/debug/deps/throughput-f2e6760c37c86630.d: crates/bench/benches/throughput.rs Cargo.toml

/root/repo/target/debug/deps/libthroughput-f2e6760c37c86630.rmeta: crates/bench/benches/throughput.rs Cargo.toml

crates/bench/benches/throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
