/root/repo/target/debug/deps/golden_vectors-ea37f22fefa78179.d: crates/core/../../tests/golden_vectors.rs

/root/repo/target/debug/deps/golden_vectors-ea37f22fefa78179: crates/core/../../tests/golden_vectors.rs

crates/core/../../tests/golden_vectors.rs:
