/root/repo/target/debug/deps/trng_testkit-9a5d2bfd04e56c14.d: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/json.rs crates/testkit/src/prng.rs crates/testkit/src/prop.rs

/root/repo/target/debug/deps/trng_testkit-9a5d2bfd04e56c14: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/json.rs crates/testkit/src/prng.rs crates/testkit/src/prop.rs

crates/testkit/src/lib.rs:
crates/testkit/src/bench.rs:
crates/testkit/src/json.rs:
crates/testkit/src/prng.rs:
crates/testkit/src/prop.rs:
