/root/repo/target/debug/deps/table2-ad9a99650f49ec01.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-ad9a99650f49ec01.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
