/root/repo/target/debug/deps/soak-26244208cd5edb32.d: crates/core/../../tests/soak.rs

/root/repo/target/debug/deps/soak-26244208cd5edb32: crates/core/../../tests/soak.rs

crates/core/../../tests/soak.rs:
