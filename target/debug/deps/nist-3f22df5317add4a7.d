/root/repo/target/debug/deps/nist-3f22df5317add4a7.d: crates/bench/benches/nist.rs

/root/repo/target/debug/deps/nist-3f22df5317add4a7: crates/bench/benches/nist.rs

crates/bench/benches/nist.rs:
