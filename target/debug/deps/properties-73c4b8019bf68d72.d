/root/repo/target/debug/deps/properties-73c4b8019bf68d72.d: crates/stattests/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-73c4b8019bf68d72.rmeta: crates/stattests/tests/properties.rs Cargo.toml

crates/stattests/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
