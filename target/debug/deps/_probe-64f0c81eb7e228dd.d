/root/repo/target/debug/deps/_probe-64f0c81eb7e228dd.d: crates/core/tests/_probe.rs

/root/repo/target/debug/deps/_probe-64f0c81eb7e228dd: crates/core/tests/_probe.rs

crates/core/tests/_probe.rs:
