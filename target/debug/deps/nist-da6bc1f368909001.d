/root/repo/target/debug/deps/nist-da6bc1f368909001.d: crates/bench/benches/nist.rs Cargo.toml

/root/repo/target/debug/deps/libnist-da6bc1f368909001.rmeta: crates/bench/benches/nist.rs Cargo.toml

crates/bench/benches/nist.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
