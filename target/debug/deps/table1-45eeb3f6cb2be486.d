/root/repo/target/debug/deps/table1-45eeb3f6cb2be486.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-45eeb3f6cb2be486: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
