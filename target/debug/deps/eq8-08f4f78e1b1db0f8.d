/root/repo/target/debug/deps/eq8-08f4f78e1b1db0f8.d: crates/bench/src/bin/eq8.rs Cargo.toml

/root/repo/target/debug/deps/libeq8-08f4f78e1b1db0f8.rmeta: crates/bench/src/bin/eq8.rs Cargo.toml

crates/bench/src/bin/eq8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
