/root/repo/target/debug/deps/figure7-17f01f4625362b0d.d: crates/bench/src/bin/figure7.rs

/root/repo/target/debug/deps/figure7-17f01f4625362b0d: crates/bench/src/bin/figure7.rs

crates/bench/src/bin/figure7.rs:
