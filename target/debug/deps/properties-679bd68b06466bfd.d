/root/repo/target/debug/deps/properties-679bd68b06466bfd.d: crates/fpga-sim/tests/properties.rs

/root/repo/target/debug/deps/properties-679bd68b06466bfd: crates/fpga-sim/tests/properties.rs

crates/fpga-sim/tests/properties.rs:
