/root/repo/target/debug/deps/pool_soak-a37d36deb3b79f75.d: crates/pool/../../tests/pool_soak.rs

/root/repo/target/debug/deps/pool_soak-a37d36deb3b79f75: crates/pool/../../tests/pool_soak.rs

crates/pool/../../tests/pool_soak.rs:
