/root/repo/target/debug/deps/properties-cd52a7d540c0641d.d: crates/stattests/tests/properties.rs

/root/repo/target/debug/deps/properties-cd52a7d540c0641d: crates/stattests/tests/properties.rs

crates/stattests/tests/properties.rs:
