/root/repo/target/debug/deps/trng_measure-dade0836f5d12530.d: crates/measure/src/lib.rs crates/measure/src/calibration.rs crates/measure/src/jitter.rs crates/measure/src/lut_delay.rs crates/measure/src/tstep.rs Cargo.toml

/root/repo/target/debug/deps/libtrng_measure-dade0836f5d12530.rmeta: crates/measure/src/lib.rs crates/measure/src/calibration.rs crates/measure/src/jitter.rs crates/measure/src/lut_delay.rs crates/measure/src/tstep.rs Cargo.toml

crates/measure/src/lib.rs:
crates/measure/src/calibration.rs:
crates/measure/src/jitter.rs:
crates/measure/src/lut_delay.rs:
crates/measure/src/tstep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
