/root/repo/target/debug/deps/properties-020953bdc8ffa5f1.d: crates/model/tests/properties.rs

/root/repo/target/debug/deps/properties-020953bdc8ffa5f1: crates/model/tests/properties.rs

crates/model/tests/properties.rs:
