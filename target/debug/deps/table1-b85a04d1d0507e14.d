/root/repo/target/debug/deps/table1-b85a04d1d0507e14.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-b85a04d1d0507e14: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
