/root/repo/target/debug/deps/figure4-938557908b3cf222.d: crates/bench/src/bin/figure4.rs Cargo.toml

/root/repo/target/debug/deps/libfigure4-938557908b3cf222.rmeta: crates/bench/src/bin/figure4.rs Cargo.toml

crates/bench/src/bin/figure4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
