/root/repo/target/debug/deps/robustness-66fce63b3ad96260.d: crates/core/../../tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-66fce63b3ad96260.rmeta: crates/core/../../tests/robustness.rs Cargo.toml

crates/core/../../tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
