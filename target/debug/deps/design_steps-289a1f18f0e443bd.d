/root/repo/target/debug/deps/design_steps-289a1f18f0e443bd.d: crates/bench/src/bin/design_steps.rs

/root/repo/target/debug/deps/design_steps-289a1f18f0e443bd: crates/bench/src/bin/design_steps.rs

crates/bench/src/bin/design_steps.rs:
