/root/repo/target/debug/deps/trng_testkit-063cd2e8ef0c9735.d: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/json.rs crates/testkit/src/prng.rs crates/testkit/src/prop.rs Cargo.toml

/root/repo/target/debug/deps/libtrng_testkit-063cd2e8ef0c9735.rmeta: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/json.rs crates/testkit/src/prng.rs crates/testkit/src/prop.rs Cargo.toml

crates/testkit/src/lib.rs:
crates/testkit/src/bench.rs:
crates/testkit/src/json.rs:
crates/testkit/src/prng.rs:
crates/testkit/src/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
