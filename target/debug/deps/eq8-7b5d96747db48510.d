/root/repo/target/debug/deps/eq8-7b5d96747db48510.d: crates/bench/src/bin/eq8.rs

/root/repo/target/debug/deps/eq8-7b5d96747db48510: crates/bench/src/bin/eq8.rs

crates/bench/src/bin/eq8.rs:
