/root/repo/target/debug/deps/trng_testkit-fe0e1c8ed3cc6318.d: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/json.rs crates/testkit/src/prng.rs crates/testkit/src/prop.rs

/root/repo/target/debug/deps/libtrng_testkit-fe0e1c8ed3cc6318.rmeta: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/json.rs crates/testkit/src/prng.rs crates/testkit/src/prop.rs

crates/testkit/src/lib.rs:
crates/testkit/src/bench.rs:
crates/testkit/src/json.rs:
crates/testkit/src/prng.rs:
crates/testkit/src/prop.rs:
