/root/repo/target/debug/deps/pool_smoke-2676ef89593ccf00.d: crates/pool/src/bin/pool_smoke.rs

/root/repo/target/debug/deps/pool_smoke-2676ef89593ccf00: crates/pool/src/bin/pool_smoke.rs

crates/pool/src/bin/pool_smoke.rs:
