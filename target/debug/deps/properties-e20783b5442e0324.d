/root/repo/target/debug/deps/properties-e20783b5442e0324.d: crates/fpga-sim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-e20783b5442e0324.rmeta: crates/fpga-sim/tests/properties.rs Cargo.toml

crates/fpga-sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
