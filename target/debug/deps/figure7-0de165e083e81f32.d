/root/repo/target/debug/deps/figure7-0de165e083e81f32.d: crates/bench/src/bin/figure7.rs

/root/repo/target/debug/deps/figure7-0de165e083e81f32: crates/bench/src/bin/figure7.rs

crates/bench/src/bin/figure7.rs:
