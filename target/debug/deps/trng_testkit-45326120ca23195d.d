/root/repo/target/debug/deps/trng_testkit-45326120ca23195d.d: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/json.rs crates/testkit/src/prng.rs crates/testkit/src/prop.rs

/root/repo/target/debug/deps/libtrng_testkit-45326120ca23195d.rlib: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/json.rs crates/testkit/src/prng.rs crates/testkit/src/prop.rs

/root/repo/target/debug/deps/libtrng_testkit-45326120ca23195d.rmeta: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/json.rs crates/testkit/src/prng.rs crates/testkit/src/prop.rs

crates/testkit/src/lib.rs:
crates/testkit/src/bench.rs:
crates/testkit/src/json.rs:
crates/testkit/src/prng.rs:
crates/testkit/src/prop.rs:
