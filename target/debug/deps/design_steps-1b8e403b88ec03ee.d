/root/repo/target/debug/deps/design_steps-1b8e403b88ec03ee.d: crates/bench/src/bin/design_steps.rs Cargo.toml

/root/repo/target/debug/deps/libdesign_steps-1b8e403b88ec03ee.rmeta: crates/bench/src/bin/design_steps.rs Cargo.toml

crates/bench/src/bin/design_steps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
