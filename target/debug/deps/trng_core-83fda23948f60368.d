/root/repo/target/debug/deps/trng_core-83fda23948f60368.d: crates/core/src/lib.rs crates/core/src/bubble.rs crates/core/src/downsample.rs crates/core/src/elementary.rs crates/core/src/extractor.rs crates/core/src/health.rs crates/core/src/postprocess.rs crates/core/src/resources.rs crates/core/src/restart.rs crates/core/src/rng_adapter.rs crates/core/src/rtl.rs crates/core/src/self_timed.rs crates/core/src/selftest.rs crates/core/src/snippet.rs crates/core/src/trng.rs crates/core/src/von_neumann.rs

/root/repo/target/debug/deps/libtrng_core-83fda23948f60368.rmeta: crates/core/src/lib.rs crates/core/src/bubble.rs crates/core/src/downsample.rs crates/core/src/elementary.rs crates/core/src/extractor.rs crates/core/src/health.rs crates/core/src/postprocess.rs crates/core/src/resources.rs crates/core/src/restart.rs crates/core/src/rng_adapter.rs crates/core/src/rtl.rs crates/core/src/self_timed.rs crates/core/src/selftest.rs crates/core/src/snippet.rs crates/core/src/trng.rs crates/core/src/von_neumann.rs

crates/core/src/lib.rs:
crates/core/src/bubble.rs:
crates/core/src/downsample.rs:
crates/core/src/elementary.rs:
crates/core/src/extractor.rs:
crates/core/src/health.rs:
crates/core/src/postprocess.rs:
crates/core/src/resources.rs:
crates/core/src/restart.rs:
crates/core/src/rng_adapter.rs:
crates/core/src/rtl.rs:
crates/core/src/self_timed.rs:
crates/core/src/selftest.rs:
crates/core/src/snippet.rs:
crates/core/src/trng.rs:
crates/core/src/von_neumann.rs:
