/root/repo/target/debug/deps/ablation_quality-ab932afc928f6afc.d: crates/bench/src/bin/ablation_quality.rs

/root/repo/target/debug/deps/ablation_quality-ab932afc928f6afc: crates/bench/src/bin/ablation_quality.rs

crates/bench/src/bin/ablation_quality.rs:
