/root/repo/target/debug/deps/trng_bench-d8c6368b3afe56b3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtrng_bench-d8c6368b3afe56b3.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtrng_bench-d8c6368b3afe56b3.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
