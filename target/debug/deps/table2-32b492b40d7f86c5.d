/root/repo/target/debug/deps/table2-32b492b40d7f86c5.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-32b492b40d7f86c5: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
