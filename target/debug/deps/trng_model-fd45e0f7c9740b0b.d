/root/repo/target/debug/deps/trng_model-fd45e0f7c9740b0b.d: crates/model/src/lib.rs crates/model/src/binary_prob.rs crates/model/src/design_space.rs crates/model/src/entropy.rs crates/model/src/gauss.rs crates/model/src/jitter.rs crates/model/src/params.rs crates/model/src/postprocess.rs crates/model/src/report.rs crates/model/src/sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libtrng_model-fd45e0f7c9740b0b.rmeta: crates/model/src/lib.rs crates/model/src/binary_prob.rs crates/model/src/design_space.rs crates/model/src/entropy.rs crates/model/src/gauss.rs crates/model/src/jitter.rs crates/model/src/params.rs crates/model/src/postprocess.rs crates/model/src/report.rs crates/model/src/sensitivity.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/binary_prob.rs:
crates/model/src/design_space.rs:
crates/model/src/entropy.rs:
crates/model/src/gauss.rs:
crates/model/src/jitter.rs:
crates/model/src/params.rs:
crates/model/src/postprocess.rs:
crates/model/src/report.rs:
crates/model/src/sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
