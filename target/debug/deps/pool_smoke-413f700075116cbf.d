/root/repo/target/debug/deps/pool_smoke-413f700075116cbf.d: crates/pool/src/bin/pool_smoke.rs

/root/repo/target/debug/deps/pool_smoke-413f700075116cbf: crates/pool/src/bin/pool_smoke.rs

crates/pool/src/bin/pool_smoke.rs:
