/root/repo/target/debug/deps/eq8-cd70e743968b771b.d: crates/bench/src/bin/eq8.rs

/root/repo/target/debug/deps/eq8-cd70e743968b771b: crates/bench/src/bin/eq8.rs

crates/bench/src/bin/eq8.rs:
