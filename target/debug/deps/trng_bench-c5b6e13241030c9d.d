/root/repo/target/debug/deps/trng_bench-c5b6e13241030c9d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtrng_bench-c5b6e13241030c9d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
