/root/repo/target/debug/deps/trng_stattests-91c7d5d28c41db2a.d: crates/stattests/src/lib.rs crates/stattests/src/ais31.rs crates/stattests/src/assessment.rs crates/stattests/src/bits.rs crates/stattests/src/diehard.rs crates/stattests/src/estimators.rs crates/stattests/src/fft.rs crates/stattests/src/fips140.rs crates/stattests/src/nist/mod.rs crates/stattests/src/nist/approx_entropy.rs crates/stattests/src/nist/battery.rs crates/stattests/src/nist/block_frequency.rs crates/stattests/src/nist/cusum.rs crates/stattests/src/nist/dft.rs crates/stattests/src/nist/excursions.rs crates/stattests/src/nist/frequency.rs crates/stattests/src/nist/linear_complexity.rs crates/stattests/src/nist/longest_run.rs crates/stattests/src/nist/rank.rs crates/stattests/src/nist/runs.rs crates/stattests/src/nist/serial.rs crates/stattests/src/nist/templates.rs crates/stattests/src/nist/universal.rs crates/stattests/src/special.rs Cargo.toml

/root/repo/target/debug/deps/libtrng_stattests-91c7d5d28c41db2a.rmeta: crates/stattests/src/lib.rs crates/stattests/src/ais31.rs crates/stattests/src/assessment.rs crates/stattests/src/bits.rs crates/stattests/src/diehard.rs crates/stattests/src/estimators.rs crates/stattests/src/fft.rs crates/stattests/src/fips140.rs crates/stattests/src/nist/mod.rs crates/stattests/src/nist/approx_entropy.rs crates/stattests/src/nist/battery.rs crates/stattests/src/nist/block_frequency.rs crates/stattests/src/nist/cusum.rs crates/stattests/src/nist/dft.rs crates/stattests/src/nist/excursions.rs crates/stattests/src/nist/frequency.rs crates/stattests/src/nist/linear_complexity.rs crates/stattests/src/nist/longest_run.rs crates/stattests/src/nist/rank.rs crates/stattests/src/nist/runs.rs crates/stattests/src/nist/serial.rs crates/stattests/src/nist/templates.rs crates/stattests/src/nist/universal.rs crates/stattests/src/special.rs Cargo.toml

crates/stattests/src/lib.rs:
crates/stattests/src/ais31.rs:
crates/stattests/src/assessment.rs:
crates/stattests/src/bits.rs:
crates/stattests/src/diehard.rs:
crates/stattests/src/estimators.rs:
crates/stattests/src/fft.rs:
crates/stattests/src/fips140.rs:
crates/stattests/src/nist/mod.rs:
crates/stattests/src/nist/approx_entropy.rs:
crates/stattests/src/nist/battery.rs:
crates/stattests/src/nist/block_frequency.rs:
crates/stattests/src/nist/cusum.rs:
crates/stattests/src/nist/dft.rs:
crates/stattests/src/nist/excursions.rs:
crates/stattests/src/nist/frequency.rs:
crates/stattests/src/nist/linear_complexity.rs:
crates/stattests/src/nist/longest_run.rs:
crates/stattests/src/nist/rank.rs:
crates/stattests/src/nist/runs.rs:
crates/stattests/src/nist/serial.rs:
crates/stattests/src/nist/templates.rs:
crates/stattests/src/nist/universal.rs:
crates/stattests/src/special.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
