/root/repo/target/debug/deps/ablation_quality-9bdf92e5dbc48019.d: crates/bench/src/bin/ablation_quality.rs Cargo.toml

/root/repo/target/debug/deps/libablation_quality-9bdf92e5dbc48019.rmeta: crates/bench/src/bin/ablation_quality.rs Cargo.toml

crates/bench/src/bin/ablation_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
