/root/repo/target/debug/deps/pool_soak-e398027a07ddbe05.d: crates/pool/../../tests/pool_soak.rs Cargo.toml

/root/repo/target/debug/deps/libpool_soak-e398027a07ddbe05.rmeta: crates/pool/../../tests/pool_soak.rs Cargo.toml

crates/pool/../../tests/pool_soak.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
