/root/repo/target/debug/deps/design_steps-c27f9886730358b2.d: crates/bench/src/bin/design_steps.rs

/root/repo/target/debug/deps/design_steps-c27f9886730358b2: crates/bench/src/bin/design_steps.rs

crates/bench/src/bin/design_steps.rs:
