/root/repo/target/debug/deps/ablation_quality-9e6481f431b85a4c.d: crates/bench/src/bin/ablation_quality.rs

/root/repo/target/debug/deps/ablation_quality-9e6481f431b85a4c: crates/bench/src/bin/ablation_quality.rs

crates/bench/src/bin/ablation_quality.rs:
