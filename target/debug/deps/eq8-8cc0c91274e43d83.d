/root/repo/target/debug/deps/eq8-8cc0c91274e43d83.d: crates/bench/src/bin/eq8.rs Cargo.toml

/root/repo/target/debug/deps/libeq8-8cc0c91274e43d83.rmeta: crates/bench/src/bin/eq8.rs Cargo.toml

crates/bench/src/bin/eq8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
