/root/repo/target/debug/deps/missed_edge-c3848485d4c3d28b.d: crates/core/../../tests/missed_edge.rs Cargo.toml

/root/repo/target/debug/deps/libmissed_edge-c3848485d4c3d28b.rmeta: crates/core/../../tests/missed_edge.rs Cargo.toml

crates/core/../../tests/missed_edge.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
