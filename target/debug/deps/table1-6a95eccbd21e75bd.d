/root/repo/target/debug/deps/table1-6a95eccbd21e75bd.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-6a95eccbd21e75bd: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
