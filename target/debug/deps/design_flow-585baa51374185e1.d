/root/repo/target/debug/deps/design_flow-585baa51374185e1.d: crates/core/../../tests/design_flow.rs Cargo.toml

/root/repo/target/debug/deps/libdesign_flow-585baa51374185e1.rmeta: crates/core/../../tests/design_flow.rs Cargo.toml

crates/core/../../tests/design_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
