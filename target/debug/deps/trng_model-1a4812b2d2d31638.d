/root/repo/target/debug/deps/trng_model-1a4812b2d2d31638.d: crates/model/src/lib.rs crates/model/src/binary_prob.rs crates/model/src/design_space.rs crates/model/src/entropy.rs crates/model/src/gauss.rs crates/model/src/jitter.rs crates/model/src/params.rs crates/model/src/postprocess.rs crates/model/src/report.rs crates/model/src/sensitivity.rs

/root/repo/target/debug/deps/libtrng_model-1a4812b2d2d31638.rmeta: crates/model/src/lib.rs crates/model/src/binary_prob.rs crates/model/src/design_space.rs crates/model/src/entropy.rs crates/model/src/gauss.rs crates/model/src/jitter.rs crates/model/src/params.rs crates/model/src/postprocess.rs crates/model/src/report.rs crates/model/src/sensitivity.rs

crates/model/src/lib.rs:
crates/model/src/binary_prob.rs:
crates/model/src/design_space.rs:
crates/model/src/entropy.rs:
crates/model/src/gauss.rs:
crates/model/src/jitter.rs:
crates/model/src/params.rs:
crates/model/src/postprocess.rs:
crates/model/src/report.rs:
crates/model/src/sensitivity.rs:
