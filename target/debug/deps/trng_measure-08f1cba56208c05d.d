/root/repo/target/debug/deps/trng_measure-08f1cba56208c05d.d: crates/measure/src/lib.rs crates/measure/src/calibration.rs crates/measure/src/jitter.rs crates/measure/src/lut_delay.rs crates/measure/src/tstep.rs

/root/repo/target/debug/deps/libtrng_measure-08f1cba56208c05d.rlib: crates/measure/src/lib.rs crates/measure/src/calibration.rs crates/measure/src/jitter.rs crates/measure/src/lut_delay.rs crates/measure/src/tstep.rs

/root/repo/target/debug/deps/libtrng_measure-08f1cba56208c05d.rmeta: crates/measure/src/lib.rs crates/measure/src/calibration.rs crates/measure/src/jitter.rs crates/measure/src/lut_delay.rs crates/measure/src/tstep.rs

crates/measure/src/lib.rs:
crates/measure/src/calibration.rs:
crates/measure/src/jitter.rs:
crates/measure/src/lut_delay.rs:
crates/measure/src/tstep.rs:
