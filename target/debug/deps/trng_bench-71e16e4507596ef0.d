/root/repo/target/debug/deps/trng_bench-71e16e4507596ef0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/trng_bench-71e16e4507596ef0: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
