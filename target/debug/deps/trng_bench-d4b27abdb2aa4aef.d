/root/repo/target/debug/deps/trng_bench-d4b27abdb2aa4aef.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtrng_bench-d4b27abdb2aa4aef.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
