/root/repo/target/debug/deps/trng_measure-7005caf6a0f0106f.d: crates/measure/src/lib.rs crates/measure/src/calibration.rs crates/measure/src/jitter.rs crates/measure/src/lut_delay.rs crates/measure/src/tstep.rs

/root/repo/target/debug/deps/trng_measure-7005caf6a0f0106f: crates/measure/src/lib.rs crates/measure/src/calibration.rs crates/measure/src/jitter.rs crates/measure/src/lut_delay.rs crates/measure/src/tstep.rs

crates/measure/src/lib.rs:
crates/measure/src/calibration.rs:
crates/measure/src/jitter.rs:
crates/measure/src/lut_delay.rs:
crates/measure/src/tstep.rs:
