/root/repo/target/debug/deps/eq8-308f5d26e3488070.d: crates/bench/src/bin/eq8.rs Cargo.toml

/root/repo/target/debug/deps/libeq8-308f5d26e3488070.rmeta: crates/bench/src/bin/eq8.rs Cargo.toml

crates/bench/src/bin/eq8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
