/root/repo/target/debug/deps/model_vs_sim-50648e95e8b1e8cf.d: crates/core/../../tests/model_vs_sim.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_vs_sim-50648e95e8b1e8cf.rmeta: crates/core/../../tests/model_vs_sim.rs Cargo.toml

crates/core/../../tests/model_vs_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
