/root/repo/target/debug/deps/design_steps-0472140ea8ae1486.d: crates/bench/src/bin/design_steps.rs

/root/repo/target/debug/deps/design_steps-0472140ea8ae1486: crates/bench/src/bin/design_steps.rs

crates/bench/src/bin/design_steps.rs:
