/root/repo/target/debug/deps/trng_stattests-a1a46e7c8ebcddb7.d: crates/stattests/src/lib.rs crates/stattests/src/ais31.rs crates/stattests/src/assessment.rs crates/stattests/src/bits.rs crates/stattests/src/diehard.rs crates/stattests/src/estimators.rs crates/stattests/src/fft.rs crates/stattests/src/fips140.rs crates/stattests/src/nist/mod.rs crates/stattests/src/nist/approx_entropy.rs crates/stattests/src/nist/battery.rs crates/stattests/src/nist/block_frequency.rs crates/stattests/src/nist/cusum.rs crates/stattests/src/nist/dft.rs crates/stattests/src/nist/excursions.rs crates/stattests/src/nist/frequency.rs crates/stattests/src/nist/linear_complexity.rs crates/stattests/src/nist/longest_run.rs crates/stattests/src/nist/rank.rs crates/stattests/src/nist/runs.rs crates/stattests/src/nist/serial.rs crates/stattests/src/nist/templates.rs crates/stattests/src/nist/universal.rs crates/stattests/src/special.rs

/root/repo/target/debug/deps/libtrng_stattests-a1a46e7c8ebcddb7.rmeta: crates/stattests/src/lib.rs crates/stattests/src/ais31.rs crates/stattests/src/assessment.rs crates/stattests/src/bits.rs crates/stattests/src/diehard.rs crates/stattests/src/estimators.rs crates/stattests/src/fft.rs crates/stattests/src/fips140.rs crates/stattests/src/nist/mod.rs crates/stattests/src/nist/approx_entropy.rs crates/stattests/src/nist/battery.rs crates/stattests/src/nist/block_frequency.rs crates/stattests/src/nist/cusum.rs crates/stattests/src/nist/dft.rs crates/stattests/src/nist/excursions.rs crates/stattests/src/nist/frequency.rs crates/stattests/src/nist/linear_complexity.rs crates/stattests/src/nist/longest_run.rs crates/stattests/src/nist/rank.rs crates/stattests/src/nist/runs.rs crates/stattests/src/nist/serial.rs crates/stattests/src/nist/templates.rs crates/stattests/src/nist/universal.rs crates/stattests/src/special.rs

crates/stattests/src/lib.rs:
crates/stattests/src/ais31.rs:
crates/stattests/src/assessment.rs:
crates/stattests/src/bits.rs:
crates/stattests/src/diehard.rs:
crates/stattests/src/estimators.rs:
crates/stattests/src/fft.rs:
crates/stattests/src/fips140.rs:
crates/stattests/src/nist/mod.rs:
crates/stattests/src/nist/approx_entropy.rs:
crates/stattests/src/nist/battery.rs:
crates/stattests/src/nist/block_frequency.rs:
crates/stattests/src/nist/cusum.rs:
crates/stattests/src/nist/dft.rs:
crates/stattests/src/nist/excursions.rs:
crates/stattests/src/nist/frequency.rs:
crates/stattests/src/nist/linear_complexity.rs:
crates/stattests/src/nist/longest_run.rs:
crates/stattests/src/nist/rank.rs:
crates/stattests/src/nist/runs.rs:
crates/stattests/src/nist/serial.rs:
crates/stattests/src/nist/templates.rs:
crates/stattests/src/nist/universal.rs:
crates/stattests/src/special.rs:
