/root/repo/target/debug/deps/figure4-ea1b1304475a724e.d: crates/bench/src/bin/figure4.rs

/root/repo/target/debug/deps/figure4-ea1b1304475a724e: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
