/root/repo/target/debug/deps/design_flow-74660820b5c5e4fd.d: crates/core/../../tests/design_flow.rs

/root/repo/target/debug/deps/design_flow-74660820b5c5e4fd: crates/core/../../tests/design_flow.rs

crates/core/../../tests/design_flow.rs:
