/root/repo/target/debug/deps/extractor-f07ac4f2c656af45.d: crates/bench/benches/extractor.rs Cargo.toml

/root/repo/target/debug/deps/libextractor-f07ac4f2c656af45.rmeta: crates/bench/benches/extractor.rs Cargo.toml

crates/bench/benches/extractor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
