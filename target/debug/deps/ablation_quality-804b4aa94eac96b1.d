/root/repo/target/debug/deps/ablation_quality-804b4aa94eac96b1.d: crates/bench/src/bin/ablation_quality.rs Cargo.toml

/root/repo/target/debug/deps/libablation_quality-804b4aa94eac96b1.rmeta: crates/bench/src/bin/ablation_quality.rs Cargo.toml

crates/bench/src/bin/ablation_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
