/root/repo/target/debug/deps/ablation-064b0cd5e965f954.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-064b0cd5e965f954.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
