/root/repo/target/debug/deps/trng_bench-bb20658d816643c7.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/trng_bench-bb20658d816643c7: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
