/root/repo/target/debug/deps/determinism-28ebd9ff5408274d.d: crates/core/../../tests/determinism.rs

/root/repo/target/debug/deps/determinism-28ebd9ff5408274d: crates/core/../../tests/determinism.rs

crates/core/../../tests/determinism.rs:
