/root/repo/target/debug/deps/model_vs_sim-18a85d490f9f5c9c.d: crates/core/../../tests/model_vs_sim.rs

/root/repo/target/debug/deps/model_vs_sim-18a85d490f9f5c9c: crates/core/../../tests/model_vs_sim.rs

crates/core/../../tests/model_vs_sim.rs:
