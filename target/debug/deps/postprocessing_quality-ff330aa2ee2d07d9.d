/root/repo/target/debug/deps/postprocessing_quality-ff330aa2ee2d07d9.d: crates/core/../../tests/postprocessing_quality.rs Cargo.toml

/root/repo/target/debug/deps/libpostprocessing_quality-ff330aa2ee2d07d9.rmeta: crates/core/../../tests/postprocessing_quality.rs Cargo.toml

crates/core/../../tests/postprocessing_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
