/root/repo/target/debug/deps/nist-b0ca0c3661e0ae83.d: crates/bench/benches/nist.rs Cargo.toml

/root/repo/target/debug/deps/libnist-b0ca0c3661e0ae83.rmeta: crates/bench/benches/nist.rs Cargo.toml

crates/bench/benches/nist.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
