/root/repo/target/debug/deps/properties-b25b73cd3a61246b.d: crates/core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-b25b73cd3a61246b.rmeta: crates/core/tests/properties.rs Cargo.toml

crates/core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
