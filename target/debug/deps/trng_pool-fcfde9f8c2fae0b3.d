/root/repo/target/debug/deps/trng_pool-fcfde9f8c2fae0b3.d: crates/pool/src/lib.rs crates/pool/src/pool.rs crates/pool/src/ring.rs crates/pool/src/shard.rs crates/pool/src/stats.rs

/root/repo/target/debug/deps/trng_pool-fcfde9f8c2fae0b3: crates/pool/src/lib.rs crates/pool/src/pool.rs crates/pool/src/ring.rs crates/pool/src/shard.rs crates/pool/src/stats.rs

crates/pool/src/lib.rs:
crates/pool/src/pool.rs:
crates/pool/src/ring.rs:
crates/pool/src/shard.rs:
crates/pool/src/stats.rs:
