/root/repo/target/debug/deps/ablation-1eba60c07d4e93fe.d: crates/bench/benches/ablation.rs

/root/repo/target/debug/deps/ablation-1eba60c07d4e93fe: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
