/root/repo/target/debug/deps/figure4-74dc02a9e3957177.d: crates/bench/src/bin/figure4.rs

/root/repo/target/debug/deps/figure4-74dc02a9e3957177: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
