/root/repo/target/debug/deps/ablation_quality-c84ebcf88418d801.d: crates/bench/src/bin/ablation_quality.rs Cargo.toml

/root/repo/target/debug/deps/libablation_quality-c84ebcf88418d801.rmeta: crates/bench/src/bin/ablation_quality.rs Cargo.toml

crates/bench/src/bin/ablation_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
