/root/repo/target/debug/deps/pool_smoke-7311cd694bf1375b.d: crates/pool/src/bin/pool_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libpool_smoke-7311cd694bf1375b.rmeta: crates/pool/src/bin/pool_smoke.rs Cargo.toml

crates/pool/src/bin/pool_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
