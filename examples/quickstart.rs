//! Quickstart: build the paper's 14.3 Mb/s TRNG, generate random
//! bytes, and keep the embedded health tests running — the minimal
//! "downstream user" flow.
//!
//! ```text
//! cargo run --release -p trng-core --example quickstart
//! ```

use trng_core::health::{HealthStatus, OnlineHealth};
use trng_core::trng::{CarryChainTrng, TrngConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's fastest configuration: n = 3 ring stages, m = 36
    // TDC taps, k = 1, tA = 10 ns, XOR post-processing with np = 7.
    let config = TrngConfig::paper_k1();
    println!(
        "carry-chain TRNG: n = {}, m = {}, k = {}, tA = {} ns, np = {}",
        config.design.n,
        config.design.m,
        config.design.k,
        config.design.t_a_ps() / 1e3,
        config.design.np
    );
    println!(
        "nominal output rate: {:.2} Mb/s",
        config.design.output_throughput_bps() / 1e6
    );

    let mut trng = CarryChainTrng::new(config, 0xDAC_2015)?;

    // Continuous health monitoring on the *raw* bits (SP 800-90B
    // style), claiming the model's min-entropy lower bound.
    let point = trng_model::design_space::evaluate(&trng.config().platform, &trng.config().design)?;
    let mut health = OnlineHealth::new(point.h_min_raw.max(0.1));

    // Generate 32 random bytes through post-processing while feeding
    // the raw stream to the health tests.
    let mut bytes = [0u8; 32];
    for byte in &mut bytes {
        for bit in 0..8 {
            // One post-processed bit = np raw bits.
            let mut acc = false;
            for _ in 0..trng.config().design.np {
                let raw = trng.next_raw_bit();
                if health.push(raw) == HealthStatus::Alarm {
                    return Err("health test alarm — source failed".into());
                }
                acc ^= raw;
            }
            *byte |= u8::from(acc) << bit;
        }
    }

    print!("32 random bytes: ");
    for b in bytes {
        print!("{b:02x}");
    }
    println!();

    let stats = trng.stats();
    println!(
        "raw samples: {}, regular: {}, double edge: {}, bubbled: {}, missed: {}",
        stats.samples, stats.regular, stats.double_edge, stats.bubbled, stats.missed_edges
    );
    health.report_missed_edges(stats.missed_edges, stats.samples);
    println!("health status: {}", health.status());
    Ok(())
}
