//! Attack scenario: the Section-2 warning made concrete.
//!
//! "A designer may believe that the randomness is caused by the
//! thermal jitter when in fact it is coming from the unstable power
//! supply. In that case, if the TRNG is used with a voltage stabilizer
//! it may produce very weak keys." The paper's answer is the
//! worst-case stochastic model plus (future work) embedded tests.
//!
//! This example runs the TRNG in four environments —
//!
//! 1. nominal (thermal noise is the entropy source),
//! 2. an EM injection-locking attack that collapses the accumulated
//!    jitter,
//! 3. a mistuned design whose apparent randomness comes from supply
//!    ripple (3a), exposed the moment the supply is stabilized (3b),
//!
//! and reports what empirical estimators, FIPS 140-2 (on the
//! post-processed output) and the embedded health tests see.
//!
//! ```text
//! cargo run --release -p trng-core --example attack_scenario
//! ```

use trng_core::health::{HealthStatus, OnlineHealth};
use trng_core::postprocess::XorCompressor;
use trng_core::trng::{CarryChainTrng, TrngConfig};
use trng_fpga_sim::noise::{AttackInjection, GlobalModulation, SupplyTone};
use trng_model::params::{DesignParams, PlatformParams};
use trng_stattests::ais31::{t8_entropy, Ais31Verdict};
use trng_stattests::bits::BitVec;
use trng_stattests::estimators::{markov_min_entropy, shannon_bias_entropy};
use trng_stattests::fips140::{run_fips140, SAMPLE_BITS};

fn evaluate(label: &str, config: TrngConfig) {
    let np = config.design.np;
    // Enough post-processed bits for both FIPS (20 000) and the T8
    // estimator (> 41 000).
    let pp_count = SAMPLE_BITS.max(48_000);
    let raw_count = pp_count * np as usize;
    let mut trng = CarryChainTrng::new(config, 99).expect("valid config");
    let raw: Vec<bool> = trng.generate_raw(raw_count);
    let raw_bv: BitVec = raw.iter().copied().collect();
    let pp: BitVec = XorCompressor::compress(np, &raw).into_iter().collect();

    // Embedded tests run on the raw stream with the claimed min-entropy
    // of the nominal design point (H_min ~ 0.79 for k = 1, tA = 10 ns).
    let mut health = OnlineHealth::new(0.75);
    let mut alarm_at = None;
    for (i, &b) in raw.iter().enumerate() {
        if health.push(b) == HealthStatus::Alarm {
            alarm_at = Some(i);
            break;
        }
    }
    let fips = run_fips140(&pp);
    // Coron's T8 entropy estimate (AIS-31 procedure B) works on 8-bit
    // words of the *internal* (post-processed) numbers and catches
    // short-period determinism that marginal and first-order
    // statistics miss.
    let t8 = match t8_entropy(&pp) {
        Ais31Verdict::Pass => "pass (> 7.976 bit/byte)",
        Ais31Verdict::Fail => "FAIL",
        Ais31Verdict::TooShort => "too short",
    };
    println!("{label}");
    println!(
        "  raw:  H(bias) = {:.4}   H(markov) = {:.4}",
        shannon_bias_entropy(&raw_bv),
        markov_min_entropy(&raw_bv),
    );
    println!(
        "  post: FIPS 140-2 {}   | T8 entropy: {t8}   | embedded health: {}",
        if fips.all_passed() { "PASS" } else { "FAIL" },
        alarm_at.map_or("ok".to_string(), |i| format!("ALARM after {i} raw bits")),
    );
}

fn main() {
    // 1. Nominal operation.
    evaluate("1. nominal (thermal jitter only):", TrngConfig::paper_k1());

    // 2. EM injection locking at the ring's transition frequency: the
    //    restoring force turns the jitter random-walk into a bounded
    //    process — accumulated jitter collapses to the ~2.6 ps of one
    //    fresh transition. The k = 1 extractor's 17 ps bins still
    //    harvest that residual (the paper's fine-resolution thesis
    //    doubling as attack resilience); the k = 4 variant's 68 ps
    //    bins do not, and its output degenerates.
    let mut attacked = TrngConfig::paper_k1();
    attacked.attack = Some(AttackInjection::locking(1e12 / 480.0, 0.6));
    evaluate(
        "\n2a. EM injection locking, k = 1 (fine bins resist):",
        attacked,
    );
    let mut attacked4 = TrngConfig::paper_k4();
    attacked4.attack = Some(AttackInjection::locking(1e12 / 480.0, 0.6));
    evaluate(
        "\n2b. EM injection locking, k = 4 (coarse bins collapse):",
        attacked4,
    );

    // 3. The "supply-ripple harvester" mistake: weak thermal noise and
    //    a too-coarse design, but a strong supply ripple sweeps the
    //    sampling offset across bins so the output *looks* statistical.
    let mut ripple = TrngConfig::paper_k1();
    ripple.platform = PlatformParams::new(480.0, 17.0, 0.4).expect("valid");
    ripple.design = DesignParams {
        k: 4,
        n_a: 1,
        ..DesignParams::paper_k1()
    };
    ripple.flicker = None;
    let mut with_ripple = ripple.clone();
    with_ripple.global = Some(
        GlobalModulation::new()
            .with_tone(SupplyTone::new(2.13e6, 0.012))
            .with_tone(SupplyTone::new(0.31e6, 0.008)),
    );
    evaluate(
        "\n3a. mistuned design + noisy supply (ripple masquerades as entropy):",
        with_ripple,
    );
    evaluate(
        "\n3b. same design, supply stabilized (true entropy exposed):",
        ripple,
    );

    println!(
        "\nTakeaways: (i) injection locking collapses accumulated jitter, but\n\
         the k = 1 extractor's 17 ps bins still harvest the residual per-edge\n\
         thermal noise (2a) while the 68 ps k = 4 bins degenerate (2b) — the\n\
         paper's resolution thesis doubling as attack resilience; (ii) the\n\
         ripple-fed design (3a) sails through black-box statistics although\n\
         its randomness is deterministic, and collapses once the supply is\n\
         stabilized (3b). Only the worst-case stochastic model (thermal noise\n\
         only) makes these failures visible at design time — the paper's\n\
         argument for model-based evaluation (Section 2)."
    );
}
