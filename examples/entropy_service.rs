//! End-to-end tour of the entropy daemon: bring a deterministic pool
//! online behind `trng_serve::Server`, fetch bytes through the typed
//! client, peek at the metrics endpoint, and drain.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example entropy_service
//! ```

use std::time::Duration;

use trng_core::trng::TrngConfig;
use trng_pool::{Conditioning, EntropyPool, PoolConfig};
use trng_serve::{client, QuotaConfig, ServeConfig, Server};

fn main() {
    // A two-shard pool over the paper's k=1 carry-chain design. The
    // deterministic backend replays byte-identically for a given
    // (config, seed), which keeps this example's output stable.
    let pool = EntropyPool::new(
        PoolConfig::new(TrngConfig::paper_k1(), 2)
            .with_conditioning(Conditioning::Raw)
            .with_seed(2015)
            .deterministic(true),
    )
    .expect("pool construction");
    let handle = pool.into_shared();
    handle
        .wait_online(Duration::from_secs(60))
        .expect("shard admission");

    // Ephemeral loopback ports; a modest per-connection quota.
    let server = Server::start(
        handle,
        ServeConfig::default().with_quota(QuotaConfig::new(64.0 * 1024.0, 16 * 1024)),
    )
    .expect("server start");
    println!("serving entropy on {}", server.local_addr());

    // Within the 16 KiB burst: served immediately.
    let first = client::fetch(server.local_addr(), 8 * 1024).expect("first fetch");
    println!(
        "fetched {} bytes, first four: {:?}",
        first.len(),
        &first[..4]
    );

    // A second fetch on a fresh connection gets its own burst.
    let second = client::fetch(server.local_addr(), 8 * 1024).expect("second fetch");
    assert_ne!(first, second, "the stream must advance between fetches");

    let metrics =
        client::scrape_metrics(server.metrics_addr().expect("metrics on")).expect("metrics scrape");
    println!(
        "metrics status: {}",
        metrics.lines().next().unwrap_or("<empty>")
    );

    println!("{}", server.shutdown());
}
