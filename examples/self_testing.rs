//! Self-testing TRNG + generic-RNG integration: the "product" face
//! of the reproduction — a gated generator with embedded start-up
//! and online tests (the paper's future work), consumed through the
//! standard [`trng_testkit::prng::RngCore`] interface.
//!
//! ```text
//! cargo run --release -p trng-core --example self_testing
//! ```

use trng_core::rng_adapter::TrngRng;
use trng_core::selftest::SelfTestingTrng;
use trng_core::trng::{CarryChainTrng, TrngConfig};
use trng_model::report::evaluation_report;
use trng_testkit::prng::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = TrngConfig::paper_k1();

    // The model-based evaluation report (what an AIS-31 evaluator
    // would read) for the configuration we're about to run.
    let report = evaluation_report(&config.platform, &config.design)?;
    println!("{}", report.text);

    // Gated generation: the start-up test ran inside `new`; output
    // only flows while the online tests hold.
    let mut gated = SelfTestingTrng::new(config.clone(), 0xABCD)?;
    gated.status()?;
    let session_key: Vec<bool> = gated.generate(256)?;
    print!("256-bit session key: ");
    for chunk in session_key.chunks(8) {
        let byte = chunk.iter().fold(0u8, |acc, &b| acc << 1 | u8::from(b));
        print!("{byte:02x}");
    }
    println!(
        "\nembedded tests: ok ({} raw samples drawn)\n",
        gated.stats().samples
    );

    // Generic-RNG usage: dice rolls, shuffles, ranges — anything
    // that takes an RngCore.
    let trng = CarryChainTrng::new(config, 0xDEAD)?;
    let mut rng = TrngRng::new(trng);
    let roll: u8 = rng.gen_range(1..=6);
    println!("true-random die roll: {roll}");
    let mut deck: Vec<u8> = (1..=10).collect();
    // Fisher-Yates with true random indices.
    for i in (1..deck.len()).rev() {
        let j = rng.gen_range(0..=i);
        deck.swap(i, j);
    }
    println!("true-random shuffle of 1..=10: {deck:?}");
    println!(
        "(consumed {} raw TRNG samples through the RngCore adapter)",
        rng.get_ref().stats().samples
    );
    Ok(())
}
