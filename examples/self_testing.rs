//! Self-testing entropy service: the "product" face of the
//! reproduction. A sharded [`EntropyPool`] runs several carry-chain
//! TRNG instances, each gated by the embedded start-up and online
//! tests; this demo sabotages one shard mid-stream and watches the
//! pool walk it through alarm → quarantine → re-admission while the
//! delivered byte stream stays health-clean throughout.
//!
//! ```text
//! cargo run --release -p trng-pool --example self_testing
//! ```

use std::time::Duration;

use trng_core::trng::TrngConfig;
use trng_model::params::{DesignParams, PlatformParams};
use trng_model::report::evaluation_report;
use trng_pool::{Conditioning, EntropyPool, FaultInjection, PoolConfig, ShardFault, ShardState};

/// A drift-frozen, injection-locked configuration: swapping a running
/// shard onto it guarantees the continuous tests alarm.
fn sabotaged_config() -> TrngConfig {
    let mut config = TrngConfig::ideal();
    config.platform = PlatformParams::new(480.0, 17.0, 0.05).expect("valid params");
    config.design = DesignParams {
        k: 4,
        n_a: 1,
        np: 1,
        f_clk_hz: (1e12f64 / (21.0 * 480.0)).round() as u64,
        ..DesignParams::paper_k4()
    };
    config
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = TrngConfig::paper_k1();

    // The model-based evaluation report (what an AIS-31 evaluator
    // would read) for the design every shard runs.
    let report = evaluation_report(&base.platform, &base.design)?;
    println!("{}", report.text);

    // Three shards on disjoint fabric regions; shard 1 is scripted to
    // fail transiently after contributing 1 KiB. Deterministic replay
    // mode makes the whole incident reproducible.
    let fault = FaultInjection {
        shard: 1,
        after_bytes: 1024,
        fault: ShardFault::Config(Box::new(sabotaged_config())),
        transient: true,
    };
    let config = PoolConfig::new(base, 3)
        .with_conditioning(Conditioning::DesignXor)
        .with_seed(0xDAC_2015)
        .with_fault(fault)
        .deterministic(true);
    let mut pool = EntropyPool::new(config)?;
    let online = pool.wait_online(Duration::from_secs(60))?;
    println!("admission: {online}/3 shards passed the start-up self-test\n");

    // Stream 8 KiB in chunks, reporting shard 1's lifecycle as the
    // scripted fault fires and the pool heals itself.
    let mut chunk = [0u8; 512];
    let mut last = (ShardState::Online, 0u64, 0u64);
    let mut first_bytes = None;
    for drawn in (1..=16).map(|i| i * 512) {
        pool.fill_bytes(&mut chunk)?;
        if first_bytes.is_none() {
            first_bytes = Some(chunk[..8].to_vec());
        }
        let stats = pool.stats();
        let s1 = &stats.shards[1];
        let now = (s1.state, s1.alarms, s1.readmissions);
        if now != last {
            println!(
                "after {drawn:>5} B: shard 1 is {} (alarms {}, re-admissions {}, \
                 start-up runs {})",
                s1.state, s1.alarms, s1.readmissions, s1.startup_runs
            );
            last = now;
        }
    }

    let stats = pool.stats();
    println!("\n{stats}");
    print!("first delivered bytes: ");
    for b in first_bytes.expect("filled") {
        print!("{b:02x}");
    }
    println!(
        "\nsimulated aggregate throughput: {:.2} Mb/s (one instance: ~{:.2} Mb/s)",
        stats.sim_throughput_bps() / 1e6,
        stats.sim_throughput_bps() / 1e6 / stats.online_shards() as f64,
    );

    let s1 = &stats.shards[1];
    assert_eq!(s1.alarms, 1, "the scripted fault must alarm exactly once");
    assert_eq!(s1.readmissions, 1, "the transient fault must heal");
    assert_eq!(s1.state, ShardState::Online);
    println!(
        "\nshard 1 was quarantined and re-admitted; every byte served was \
         drawn from shards whose continuous tests were passing."
    );
    Ok(())
}
