//! Design-space exploration with the stochastic model (Section 4.4):
//! given the measured platform parameters, sweep the design knobs and
//! print the entropy/throughput frontier, then derive a concrete
//! recommendation for a target entropy — the paper's "Step 2".
//!
//! ```text
//! cargo run --release -p trng-core --example design_space
//! ```

use trng_model::design_space::{evaluate, improvement_factor, np_for_bias, sweep_accumulation};
use trng_model::params::{DesignParams, PlatformParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = PlatformParams::spartan6();
    println!("platform: {platform}\n");

    // Sweep accumulation time for each down-sampling factor.
    println!("model sweep (worst-case Shannon entropy per raw bit):");
    println!(
        "{:>4} {:>8} {:>12} {:>8} {:>8} {:>14}",
        "k", "tA[ns]", "sigma_acc[ps]", "H_RAW", "bias", "raw rate[Mb/s]"
    );
    for k in [1u32, 2, 4] {
        let base = DesignParams {
            k,
            np: 1,
            ..DesignParams::paper_k1()
        };
        let points = sweep_accumulation(&platform, &base, &[1, 2, 5, 10, 20, 50])?;
        for p in &points {
            println!(
                "{:>4} {:>8.0} {:>12.2} {:>8.4} {:>8.4} {:>14.1}",
                k,
                p.design.t_a_ps() / 1e3,
                p.sigma_acc_ps,
                p.h_raw,
                p.bias_raw,
                p.raw_throughput_bps / 1e6
            );
        }
        println!();
    }

    // Recommendation: smallest tA with H_RAW >= 0.98 per k, plus the
    // XOR rate for a 1e-4 residual bias.
    println!("recommendations for H_RAW >= 0.98 and post-processed bias <= 1e-4:");
    for k in [1u32, 4] {
        let mut chosen = None;
        for n_a in 1..=100u32 {
            let d = DesignParams {
                k,
                n_a,
                np: 1,
                ..DesignParams::paper_k1()
            };
            let p = evaluate(&platform, &d)?;
            if p.h_raw >= 0.98 {
                chosen = Some((d, p));
                break;
            }
        }
        let (d, p) = chosen.expect("reachable within 1 us");
        let np = np_for_bias(&platform, &d, 1e-4, 32)?.expect("reachable");
        println!(
            "  k = {k}: tA = {:>4.0} ns (H_RAW = {:.3}), np = {np}, output = {:.2} Mb/s",
            d.t_a_ps() / 1e3,
            p.h_raw,
            d.raw_throughput_bps() / f64::from(np) / 1e6
        );
    }

    println!(
        "\nequation (8) improvement over the elementary TRNG: {:.0}x (k=1), {:.1}x (k=4)",
        improvement_factor(&platform, 1),
        improvement_factor(&platform, 4)
    );
    Ok(())
}
