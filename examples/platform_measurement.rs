//! Platform-parameter measurement (Section 5.1): the paper's "Step 1"
//! run against the simulated device, including the code-density DNL
//! characterization that motivates `k = 4` down-sampling.
//!
//! ```text
//! cargo run --release -p trng-core --example platform_measurement
//! ```

use trng_fpga_sim::delay_line::TappedDelayLine;
use trng_fpga_sim::fabric::Fabric;
use trng_fpga_sim::primitives::CaptureFf;
use trng_fpga_sim::process::{DeviceSeed, ProcessVariation};
use trng_fpga_sim::ring_oscillator::RingOscillatorConfig;
use trng_fpga_sim::rng::SimRng;
use trng_fpga_sim::time::Ps;
use trng_measure::{code_density, measure_jitter, measure_lut_delay, measure_tstep};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = DeviceSeed::new(7);
    let ro = RingOscillatorConfig {
        device,
        history_window: Ps::from_ns(4.0),
        ..RingOscillatorConfig::paper_default()
    };

    println!("== LUT delay (transition counting) ==");
    let lut = measure_lut_delay(ro.clone(), Ps::from_us(2.0), SimRng::seed_from(1))?;
    println!(
        "  {} transitions in {} -> d0 = {:.1} ps (paper: 480 ps)",
        lut.transitions,
        lut.duration,
        lut.d0.as_ps()
    );

    println!("\n== tstep (stage counting over a known period) ==");
    let long_line = TappedDelayLine::ideal(128, Ps::from_ps(17.0));
    let half_period = lut.d0 * ro.stages as f64;
    let ts = measure_tstep(
        ro.clone(),
        &long_line,
        half_period,
        400,
        SimRng::seed_from(2),
    )?;
    println!(
        "  mean edge spacing {:.1} taps over {} samples -> tstep = {:.2} ps (paper: ~17 ps)",
        ts.mean_edge_distance_taps,
        ts.samples_used,
        ts.tstep.as_ps()
    );

    println!("\n== thermal jitter (differential, 20 ns, 1000 runs) ==");
    let j = measure_jitter(
        ro.clone(),
        &long_line,
        Ps::from_ns(20.0),
        1000,
        SimRng::seed_from(3),
    )?;
    println!(
        "  sigma(diff) = {:.2} ps over {} runs -> sigma_LUT = {:.2} ps (paper: ~2 ps)",
        j.sigma_diff.as_ps(),
        j.runs,
        j.sigma_lut.as_ps()
    );

    println!("\n== code-density DNL of a placed 36-tap line ==");
    let fabric = Fabric::spartan6();
    let placed = TappedDelayLine::placed(
        Ps::from_ps(17.0),
        device,
        &ProcessVariation::default(),
        &fabric,
        4,
        1,
        9,
        CaptureFf::default(),
    );
    let cd = code_density(ro, &placed, 60_000, SimRng::seed_from(4))?;
    println!("  boundary : relative width (1.00 = ideal)");
    for (i, w) in cd.relative_widths.iter().enumerate().take(16) {
        let bar = "#".repeat((w * 20.0).round() as usize);
        println!("  {i:>8} : {w:>5.2} {bar}");
    }
    println!(
        "  max |DNL| = {:.2} LSB over {} decoded edges",
        cd.max_abs_dnl(),
        cd.total
    );
    println!(
        "  -> the CARRY4-periodic pattern motivates the paper's k = 4\n\
         down-sampling variant (combining 4 bins flattens the widths)."
    );
    Ok(())
}
