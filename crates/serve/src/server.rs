//! The entropy daemon: a TCP acceptor, a bounded worker set serving
//! the request protocol over a shared [`PoolHandle`], a plaintext
//! metrics/health listener, and graceful drain.
//!
//! # Life of a request
//!
//! 1. The acceptor thread accepts a connection and hands it to the
//!    bounded worker set (a fixed number of worker threads behind a
//!    bounded queue; when the queue is full the connection is shed
//!    and counted, never silently stalled).
//! 2. The owning worker polls for the next frame's tag byte under a
//!    short read-timeout so it can notice shutdown while idle, then
//!    commits to reading the whole frame.
//! 3. A `REQ n` above the configured cap is answered with a typed
//!    `ErrTooLarge` frame (the connection stays usable). Otherwise
//!    the connection's token bucket is charged: an over-quota request
//!    is *throttled* — the worker sleeps out the bucket's deficit —
//!    not rejected.
//! 4. The worker fills the response buffer through the shared pool
//!    handle (one atomic, health-gated fill) and answers `OK`, or
//!    maps `PoolError::Timeout` / `PoolError::SourcesExhausted` to
//!    the equivalent typed error frame carrying the delivered healthy
//!    prefix.
//!
//! # Drain semantics
//!
//! [`Server::shutdown`] stops the acceptor, then lets every worker
//! finish the request it is serving — bounded by the drain deadline,
//! which caps both quota sleeps and pool fill deadlines once draining
//! begins — while refusing to *start* new requests. Workers are
//! joined (never detached or killed), so a completed shutdown proves
//! there are no leaked threads; the [`DrainReport`] carries the
//! drained-request and byte totals.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use trng_pool::{PoolError, PoolHandle};
use trng_testkit::json::Json;

use crate::protocol::{parse_req, read_frame_after_tag, write_frame, FrameType, MAX_FRAME_PAYLOAD};
use crate::quota::{QuotaConfig, TokenBucket};

/// How often blocked accept/read loops re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// Fill deadline used for a request still in flight when the drain
/// deadline has already passed: long enough to flush whatever the
/// rings hold, short enough not to stall the join.
const LAST_GASP: Duration = Duration::from_millis(20);

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address for the entropy endpoint. Port 0 picks an ephemeral
    /// port; read the outcome from [`Server::local_addr`].
    pub addr: SocketAddr,
    /// Address for the metrics/health endpoint, `None` to disable.
    pub metrics_addr: Option<SocketAddr>,
    /// Worker threads serving connections (the bound on concurrent
    /// connections being served).
    pub workers: usize,
    /// Largest acceptable single request, in bytes; bigger requests
    /// get a typed `ErrTooLarge` frame.
    pub max_request: u32,
    /// Per-connection token-bucket quota; `None` serves unthrottled.
    pub quota: Option<QuotaConfig>,
    /// Deadline for one pool fill; a request that cannot be filled in
    /// time gets a typed `ErrTimeout` frame with the healthy prefix.
    pub request_timeout: Duration,
    /// Socket read/write timeout for committed frame I/O.
    pub io_timeout: Duration,
    /// How long [`Server::shutdown`] lets in-flight requests finish.
    pub drain_deadline: Duration,
    /// Accepted connections that may queue for a free worker before
    /// further connections are shed.
    pub pending_connections: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: ([127, 0, 0, 1], 0).into(),
            metrics_addr: Some(([127, 0, 0, 1], 0).into()),
            workers: 4,
            max_request: 1 << 20,
            quota: None,
            request_timeout: Duration::from_secs(120),
            io_timeout: Duration::from_secs(10),
            drain_deadline: Duration::from_secs(5),
            pending_connections: 64,
        }
    }
}

impl ServeConfig {
    /// Sets the entropy endpoint address, builder-style.
    pub fn with_addr(mut self, addr: SocketAddr) -> Self {
        self.addr = addr;
        self
    }

    /// Sets (or disables) the metrics endpoint address, builder-style.
    pub fn with_metrics_addr(mut self, addr: Option<SocketAddr>) -> Self {
        self.metrics_addr = addr;
        self
    }

    /// Sets the worker count, builder-style (floored at 1).
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Sets the request-size cap, builder-style.
    pub fn with_max_request(mut self, bytes: u32) -> Self {
        self.max_request = bytes;
        self
    }

    /// Sets the per-connection quota, builder-style.
    pub fn with_quota(mut self, quota: QuotaConfig) -> Self {
        self.quota = Some(quota);
        self
    }

    /// Sets the per-fill deadline, builder-style.
    pub fn with_request_timeout(mut self, timeout: Duration) -> Self {
        self.request_timeout = timeout;
        self
    }

    /// Sets the drain deadline, builder-style.
    pub fn with_drain_deadline(mut self, deadline: Duration) -> Self {
        self.drain_deadline = deadline;
        self
    }
}

/// Server-side counters, published lock-free by the serving threads.
#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    shed: AtomicU64,
    active: AtomicUsize,
    requests_ok: AtomicU64,
    requests_timeout: AtomicU64,
    requests_exhausted: AtomicU64,
    requests_rejected: AtomicU64,
    throttle_events: AtomicU64,
    throttled_ns: AtomicU64,
    bytes_served: AtomicU64,
    drained_requests: AtomicU64,
}

/// Point-in-time view of the server's own counters (the pool's view
/// is [`trng_pool::PoolStats`], exposed separately).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Connections shed because the pending queue was full.
    pub shed: u64,
    /// Connections currently being served.
    pub active: u64,
    /// Requests answered with a full `OK` frame.
    pub requests_ok: u64,
    /// Requests answered with a typed timeout frame.
    pub requests_timeout: u64,
    /// Requests answered with a typed exhaustion frame.
    pub requests_exhausted: u64,
    /// Requests rejected (over the size cap, or malformed).
    pub requests_rejected: u64,
    /// Requests that were throttled by the token bucket.
    pub throttle_events: u64,
    /// Total time requests spent sleeping in the token bucket.
    pub throttled: Duration,
    /// Healthy entropy bytes delivered (full and partial frames).
    pub bytes_served: u64,
    /// Requests completed after drain began.
    pub drained_requests: u64,
}

impl ServeStats {
    /// Renders the counters as a JSON object (field names match).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("accepted", Json::u64(self.accepted)),
            ("shed", Json::u64(self.shed)),
            ("active", Json::u64(self.active)),
            ("requests_ok", Json::u64(self.requests_ok)),
            ("requests_timeout", Json::u64(self.requests_timeout)),
            ("requests_exhausted", Json::u64(self.requests_exhausted)),
            ("requests_rejected", Json::u64(self.requests_rejected)),
            ("throttle_events", Json::u64(self.throttle_events)),
            ("throttled_ns", Json::u64(self.throttled.as_nanos() as u64)),
            ("bytes_served", Json::u64(self.bytes_served)),
            ("drained_requests", Json::u64(self.drained_requests)),
        ])
    }
}

/// What [`Server::shutdown`] accomplished.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Requests completed after drain began (the in-flight set).
    pub drained_requests: u64,
    /// Healthy bytes delivered over the server's lifetime.
    pub bytes_served: u64,
    /// `OK`-answered requests over the server's lifetime.
    pub requests_ok: u64,
    /// Connections shed over the server's lifetime.
    pub shed: u64,
    /// Wall time the drain took.
    pub elapsed: Duration,
    /// `true` when the drain outran its configured deadline (an
    /// in-flight request was cut to its last-gasp fill deadline).
    pub hit_deadline: bool,
    /// Worker threads joined — always the configured worker count on
    /// a clean shutdown; a smaller number would mean a leak.
    pub workers_joined: usize,
}

impl std::fmt::Display for DrainReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "drained {} in-flight requests in {:.3} s ({}; {} workers joined, \
             {} bytes served lifetime)",
            self.drained_requests,
            self.elapsed.as_secs_f64(),
            if self.hit_deadline {
                "deadline hit"
            } else {
                "within deadline"
            },
            self.workers_joined,
            self.bytes_served,
        )
    }
}

struct Shared {
    pool: PoolHandle,
    max_request: u32,
    quota: Option<QuotaConfig>,
    request_timeout: Duration,
    io_timeout: Duration,
    stop: AtomicBool,
    metrics_stop: AtomicBool,
    drain_deadline: Mutex<Option<Instant>>,
    counters: Counters,
}

impl Shared {
    fn draining(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    fn drain_deadline(&self) -> Option<Instant> {
        *self
            .drain_deadline
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn snapshot(&self) -> ServeStats {
        let c = &self.counters;
        ServeStats {
            accepted: c.accepted.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            active: c.active.load(Ordering::Relaxed) as u64,
            requests_ok: c.requests_ok.load(Ordering::Relaxed),
            requests_timeout: c.requests_timeout.load(Ordering::Relaxed),
            requests_exhausted: c.requests_exhausted.load(Ordering::Relaxed),
            requests_rejected: c.requests_rejected.load(Ordering::Relaxed),
            throttle_events: c.throttle_events.load(Ordering::Relaxed),
            throttled: Duration::from_nanos(c.throttled_ns.load(Ordering::Relaxed)),
            bytes_served: c.bytes_served.load(Ordering::Relaxed),
            drained_requests: c.drained_requests.load(Ordering::Relaxed),
        }
    }
}

/// The running daemon: owns the acceptor, worker, and metrics
/// threads. Dropping the server performs a best-effort shutdown;
/// call [`Server::shutdown`] to obtain the [`DrainReport`].
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    drain_deadline: Duration,
    acceptor: Option<JoinHandle<()>>,
    metrics: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("metrics_addr", &self.metrics_addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Server {
    /// Binds the listeners and spawns the acceptor, workers, and (when
    /// configured) the metrics thread.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configuration failures.
    pub fn start(pool: PoolHandle, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let metrics_listener = match config.metrics_addr {
            Some(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let metrics_addr = match &metrics_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };

        let shared = Arc::new(Shared {
            pool,
            max_request: config.max_request,
            quota: config.quota,
            request_timeout: config.request_timeout,
            io_timeout: config.io_timeout,
            stop: AtomicBool::new(false),
            metrics_stop: AtomicBool::new(false),
            drain_deadline: Mutex::new(None),
            counters: Counters::default(),
        });

        let workers_n = config.workers.max(1);
        let (tx, rx) = sync_channel::<TcpStream>(config.pending_connections.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(workers_n);
        for i in 0..workers_n {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            let handle = std::thread::Builder::new()
                .name(format!("trng-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared, &rx))
                .expect("spawn serve worker");
            workers.push(handle);
        }

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("trng-serve-acceptor".into())
                .spawn(move || acceptor_loop(&shared, &listener, &tx))
                .expect("spawn serve acceptor")
        };

        let metrics = metrics_listener.map(|listener| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("trng-serve-metrics".into())
                .spawn(move || metrics_loop(&shared, &listener))
                .expect("spawn metrics thread")
        });

        Ok(Server {
            shared,
            local_addr,
            metrics_addr,
            drain_deadline: config.drain_deadline,
            acceptor: Some(acceptor),
            metrics,
            workers,
        })
    }

    /// The bound entropy endpoint (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound metrics endpoint, when enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Snapshots the server-side counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.snapshot()
    }

    /// Snapshots the underlying pool.
    pub fn pool_stats(&self) -> trng_pool::PoolStats {
        self.shared.pool.stats()
    }

    /// Gracefully drains and stops the server: stop accepting, let
    /// in-flight requests finish up to the drain deadline, join every
    /// thread, and report the totals.
    pub fn shutdown(mut self) -> DrainReport {
        self.shutdown_impl()
    }

    fn shutdown_impl(&mut self) -> DrainReport {
        let t0 = Instant::now();
        {
            let mut deadline = self
                .shared
                .drain_deadline
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            *deadline = Some(t0 + self.drain_deadline);
        }
        self.shared.stop.store(true, Ordering::Release);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        let mut joined = 0usize;
        for handle in self.workers.drain(..) {
            if handle.join().is_ok() {
                joined += 1;
            }
        }
        self.shared.metrics_stop.store(true, Ordering::Release);
        if let Some(handle) = self.metrics.take() {
            let _ = handle.join();
        }
        let elapsed = t0.elapsed();
        let stats = self.shared.snapshot();
        DrainReport {
            drained_requests: stats.drained_requests,
            bytes_served: stats.bytes_served,
            requests_ok: stats.requests_ok,
            shed: stats.shed,
            elapsed,
            hit_deadline: elapsed > self.drain_deadline,
            workers_joined: joined,
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.workers.is_empty() {
            let _ = self.shutdown_impl();
        }
    }
}

fn acceptor_loop(
    shared: &Shared,
    listener: &TcpListener,
    tx: &std::sync::mpsc::SyncSender<TcpStream>,
) {
    loop {
        if shared.draining() {
            return; // drops tx: workers see the channel close
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => {
                        // Bounded worker set: shed rather than stall
                        // the acceptor. The client sees a closed
                        // connection and may retry.
                        shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                        drop(stream);
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        // Holding the lock while blocked in recv is fine: exactly one
        // idle worker waits on the channel, the rest wait on the
        // mutex, and whichever wakes first takes the connection.
        let conn = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv()
        };
        match conn {
            Ok(stream) => serve_connection(shared, stream),
            // Channel closed (acceptor gone) and empty: drain done.
            Err(_) => return,
        }
    }
}

/// Decrements the active-connection gauge on every exit path.
struct ActiveGuard<'a>(&'a Counters);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::Relaxed);
    }
}

fn serve_connection(shared: &Shared, stream: TcpStream) {
    shared.counters.active.fetch_add(1, Ordering::Relaxed);
    let _guard = ActiveGuard(&shared.counters);
    let _ = stream.set_nodelay(true);
    if stream.set_write_timeout(Some(shared.io_timeout)).is_err() {
        return;
    }
    let mut stream = stream;
    let mut bucket = shared
        .quota
        .as_ref()
        .map(|q| TokenBucket::new(q, Instant::now()));

    loop {
        let tag = match poll_tag_byte(shared, &mut stream) {
            Some(tag) => tag,
            None => return, // EOF, I/O failure, or draining
        };
        if stream.set_read_timeout(Some(shared.io_timeout)).is_err() {
            return;
        }
        let frame = match read_frame_after_tag(&mut stream, tag, MAX_FRAME_PAYLOAD) {
            Ok(frame) => frame,
            Err(_) => {
                shared
                    .counters
                    .requests_rejected
                    .fetch_add(1, Ordering::Relaxed);
                let _ = write_frame(&mut stream, FrameType::ErrProtocol, b"malformed frame");
                return;
            }
        };
        let n = match (frame.kind, parse_req(&frame.payload)) {
            (FrameType::Req, Some(n)) => n,
            _ => {
                shared
                    .counters
                    .requests_rejected
                    .fetch_add(1, Ordering::Relaxed);
                let _ = write_frame(
                    &mut stream,
                    FrameType::ErrProtocol,
                    b"expected a REQ frame with a 4-byte count",
                );
                return;
            }
        };
        if !serve_request(shared, &mut stream, bucket.as_mut(), n) {
            return;
        }
    }
}

/// Serves one admitted `REQ n`. Returns `false` when the connection
/// should close (write failure).
fn serve_request(
    shared: &Shared,
    stream: &mut TcpStream,
    bucket: Option<&mut TokenBucket>,
    n: u32,
) -> bool {
    let draining_at_start = shared.draining();
    if n > shared.max_request {
        shared
            .counters
            .requests_rejected
            .fetch_add(1, Ordering::Relaxed);
        return write_frame(
            stream,
            FrameType::ErrTooLarge,
            &shared.max_request.to_be_bytes(),
        )
        .is_ok();
    }

    // Quota: throttle, never reject. During drain the sleep is capped
    // by the deadline so a throttled in-flight request still resolves.
    if let Some(bucket) = bucket {
        let wait = bucket.request(u64::from(n), Instant::now());
        if !wait.is_zero() {
            shared
                .counters
                .throttle_events
                .fetch_add(1, Ordering::Relaxed);
            shared
                .counters
                .throttled_ns
                .fetch_add(wait.as_nanos() as u64, Ordering::Relaxed);
            std::thread::sleep(clamp_to_drain(shared, wait));
        }
    }

    let timeout = clamp_to_drain(shared, shared.request_timeout);
    let mut buf = vec![0u8; n as usize];
    let (kind, delivered) = match shared.pool.try_fill_bytes(&mut buf, timeout) {
        Ok(()) => {
            shared.counters.requests_ok.fetch_add(1, Ordering::Relaxed);
            (FrameType::Ok, n as usize)
        }
        Err(PoolError::Timeout { filled }) => {
            shared
                .counters
                .requests_timeout
                .fetch_add(1, Ordering::Relaxed);
            (FrameType::ErrTimeout, filled)
        }
        Err(PoolError::SourcesExhausted { filled }) => {
            shared
                .counters
                .requests_exhausted
                .fetch_add(1, Ordering::Relaxed);
            (FrameType::ErrExhausted, filled)
        }
        // Build/config errors cannot occur on a running pool; map them
        // to a protocol-level failure rather than fabricating bytes.
        Err(_) => {
            shared
                .counters
                .requests_rejected
                .fetch_add(1, Ordering::Relaxed);
            return write_frame(stream, FrameType::ErrProtocol, b"pool failure").is_ok();
        }
    };
    shared
        .counters
        .bytes_served
        .fetch_add(delivered as u64, Ordering::Relaxed);
    if draining_at_start || shared.draining() {
        shared
            .counters
            .drained_requests
            .fetch_add(1, Ordering::Relaxed);
    }
    write_frame(stream, kind, &buf[..delivered]).is_ok()
}

/// Once draining, bounds `want` by the time left until the drain
/// deadline (with a small floor so an in-flight fill can still flush
/// buffered bytes).
fn clamp_to_drain(shared: &Shared, want: Duration) -> Duration {
    match shared.drain_deadline() {
        Some(deadline) if shared.draining() => {
            let left = deadline.saturating_duration_since(Instant::now());
            want.min(left.max(LAST_GASP))
        }
        _ => want,
    }
}

/// Polls for the next frame's tag byte under a short read-timeout.
/// Returns `None` on clean EOF, an unrecoverable I/O error, or when
/// the server starts draining (no *new* request may begin).
fn poll_tag_byte(shared: &Shared, stream: &mut TcpStream) -> Option<u8> {
    let mut tag = [0u8; 1];
    loop {
        if shared.draining() {
            return None;
        }
        if stream.set_read_timeout(Some(POLL)).is_err() {
            return None;
        }
        match stream.read(&mut tag) {
            Ok(0) => return None,
            Ok(_) => return Some(tag[0]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(_) => return None,
        }
    }
}

fn metrics_loop(shared: &Shared, listener: &TcpListener) {
    loop {
        if shared.metrics_stop.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
                let body = render_metrics(shared);
                let _ = stream.write_all(body.as_bytes());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// The metrics body: a bare `healthy` / `degraded` / `recovering` /
/// `exhausted` status line, then the pool and server counters as
/// pretty JSON.
fn render_metrics(shared: &Shared) -> String {
    let pool_stats = shared.pool.stats();
    let report = Json::obj(vec![
        ("status", Json::str(pool_stats.health().to_string())),
        ("pool", pool_stats.to_json()),
        ("serve", shared.snapshot().to_json()),
    ]);
    format!("{}\n{}", pool_stats.health(), report.to_string_pretty())
}
