//! `trng-serve` — a network entropy daemon over [`trng_pool`].
//!
//! The pool crate turns simulated carry-chain TRNG shards into a
//! health-gated byte service *inside* one process; this crate puts
//! that service on a socket. It is std-only (no registry
//! dependencies, `std::net` TCP) to preserve the workspace's hermetic
//! offline build.
//!
//! * [`protocol`] — the length-prefixed binary frame protocol. A
//!   `REQ n` is answered with `OK` carrying exactly `n` bytes, or a
//!   *typed* error frame (`ErrTimeout` / `ErrExhausted`) carrying the
//!   delivered healthy prefix — a client never has to guess whether a
//!   short read is congestion or a retired source.
//! * [`quota`] — per-connection token-bucket quotas. Over-quota
//!   requests are throttled (paced at the refill rate), never
//!   rejected.
//! * [`server`] — the daemon: acceptor, bounded worker set over a
//!   shared [`trng_pool::PoolHandle`], plaintext metrics/health
//!   endpoint, and graceful drain with a [`server::DrainReport`].
//! * [`client`] — typed client helper ([`client::Client`],
//!   [`client::fetch`], [`client::scrape_metrics`]).
//!
//! # Example
//!
//! ```no_run
//! use std::time::Duration;
//! use trng_core::trng::TrngConfig;
//! use trng_pool::{Conditioning, EntropyPool, PoolConfig};
//! use trng_serve::{client, Server, ServeConfig};
//!
//! let pool = EntropyPool::new(
//!     PoolConfig::new(TrngConfig::paper_k1(), 2).with_conditioning(Conditioning::Raw),
//! )
//! .unwrap();
//! let handle = pool.into_shared();
//! handle.wait_online(Duration::from_secs(60)).unwrap();
//!
//! let server = Server::start(handle, ServeConfig::default()).unwrap();
//! let bytes = client::fetch(server.local_addr(), 4096).unwrap();
//! assert_eq!(bytes.len(), 4096);
//! println!("{}", server.shutdown());
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod quota;
pub mod server;

pub use client::{fetch, Client, FetchError};
pub use protocol::{Frame, FrameType};
pub use quota::{QuotaConfig, TokenBucket};
pub use server::{DrainReport, ServeConfig, ServeStats, Server};
