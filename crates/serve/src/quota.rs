//! Per-client token-bucket quotas.
//!
//! Every connection gets its own bucket: `burst_bytes` tokens up
//! front, refilled continuously at `bytes_per_sec`, capped at the
//! burst. A request is **admitted when enough tokens exist and
//! throttled — never rejected — when they don't**: the bucket reports
//! how long the server must wait before serving, which is exactly the
//! time the refill needs to cover the deficit. Requests larger than
//! the burst are therefore still served, paced at the refill rate,
//! rather than being unservable.
//!
//! The bucket is a pure function of the timestamps passed in, which
//! keeps its arithmetic deterministic under test.

use std::time::{Duration, Instant};

/// Quota parameters applied to each client connection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuotaConfig {
    /// Sustained allowance, in bytes per second.
    pub bytes_per_sec: f64,
    /// Bucket capacity: bytes a fresh or long-idle connection may
    /// draw instantly before pacing kicks in.
    pub burst_bytes: u64,
}

impl QuotaConfig {
    /// A quota of `bytes_per_sec` sustained with `burst_bytes` of
    /// instant headroom. Rates are floored at one byte per second and
    /// bursts at one byte, so a bucket can always make progress.
    pub fn new(bytes_per_sec: f64, burst_bytes: u64) -> Self {
        QuotaConfig {
            bytes_per_sec: bytes_per_sec.max(1.0),
            burst_bytes: burst_bytes.max(1),
        }
    }
}

/// One connection's bucket state.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A full bucket as of `now`.
    pub fn new(config: &QuotaConfig, now: Instant) -> Self {
        TokenBucket {
            rate: config.bytes_per_sec.max(1.0),
            burst: config.burst_bytes.max(1) as f64,
            tokens: config.burst_bytes.max(1) as f64,
            last: now,
        }
    }

    /// Charges `n` bytes against the bucket and returns how long the
    /// caller must wait before serving them. [`Duration::ZERO`] means
    /// the request is within quota. A non-zero wait pre-books the
    /// refill: after sleeping the returned duration the tokens have
    /// exactly covered the deficit, so the bucket is empty and `last`
    /// already points at the admission instant.
    pub fn request(&mut self, n: u64, now: Instant) -> Duration {
        let elapsed = now.saturating_duration_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
        self.last = now;
        let n = n as f64;
        if n <= self.tokens {
            self.tokens -= n;
            Duration::ZERO
        } else {
            let deficit = n - self.tokens;
            let wait = deficit / self.rate;
            self.tokens = 0.0;
            self.last = now + Duration::from_secs_f64(wait);
            Duration::from_secs_f64(wait)
        }
    }

    /// Tokens currently available (after an explicit refill to `now`).
    pub fn available(&mut self, now: Instant) -> f64 {
        let elapsed = now.saturating_duration_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
        self.last = self.last.max(now);
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(base: Instant, secs: f64) -> Instant {
        base + Duration::from_secs_f64(secs)
    }

    #[test]
    fn requests_within_burst_are_free() {
        let base = Instant::now();
        let mut bucket = TokenBucket::new(&QuotaConfig::new(1000.0, 4000), base);
        assert_eq!(bucket.request(1500, base), Duration::ZERO);
        assert_eq!(bucket.request(1500, base), Duration::ZERO);
        assert_eq!(bucket.request(1000, base), Duration::ZERO);
        // Bucket is now empty; the next byte must wait.
        let wait = bucket.request(500, base);
        assert!((wait.as_secs_f64() - 0.5).abs() < 1e-9, "{wait:?}");
    }

    #[test]
    fn deficit_wait_is_deficit_over_rate() {
        let base = Instant::now();
        // Burst 32 KiB, rate 64 KiB/s: a fresh 96 KiB request owes
        // 64 KiB of refill = exactly one second.
        let mut bucket = TokenBucket::new(&QuotaConfig::new(65536.0, 32768), base);
        let wait = bucket.request(98304, base);
        assert!((wait.as_secs_f64() - 1.0).abs() < 1e-9, "{wait:?}");
        // The wait pre-books the refill: immediately after it the
        // bucket is empty, not re-filled for the elapsed wait.
        let after = at(base, 1.0);
        let wait2 = bucket.request(65536, after);
        assert!((wait2.as_secs_f64() - 1.0).abs() < 1e-9, "{wait2:?}");
    }

    #[test]
    fn idle_time_refills_up_to_the_burst_cap() {
        let base = Instant::now();
        let mut bucket = TokenBucket::new(&QuotaConfig::new(1000.0, 2000), base);
        assert_eq!(bucket.request(2000, base), Duration::ZERO);
        // One second of idle refills 1000 tokens.
        assert!((bucket.available(at(base, 1.0)) - 1000.0).abs() < 1e-6);
        // A week of idle still caps at the burst.
        assert!((bucket.available(at(base, 604800.0)) - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn sustained_rate_converges_to_the_configured_allowance() {
        let base = Instant::now();
        let mut bucket = TokenBucket::new(&QuotaConfig::new(1000.0, 1000), base);
        // 10 KiB requested in 1 KiB chunks with no real time passing:
        // total wait must cover (10000 - burst) / rate = 9 seconds.
        let mut clock = base;
        let mut waited = Duration::ZERO;
        for _ in 0..10 {
            let wait = bucket.request(1000, clock);
            waited += wait;
            clock += wait; // the server sleeps the wait before serving
        }
        assert!((waited.as_secs_f64() - 9.0).abs() < 1e-6, "{waited:?}");
    }

    #[test]
    fn degenerate_configs_are_floored() {
        let config = QuotaConfig::new(0.0, 0);
        assert_eq!(config.bytes_per_sec, 1.0);
        assert_eq!(config.burst_bytes, 1);
        let base = Instant::now();
        let mut bucket = TokenBucket::new(&config, base);
        assert_eq!(bucket.request(1, base), Duration::ZERO);
    }
}
