//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message in either direction is one frame:
//!
//! ```text
//! +------+----------------+-------------------+
//! | type | payload length |      payload      |
//! | 1 B  |  4 B, BE u32   | `length` bytes    |
//! +------+----------------+-------------------+
//! ```
//!
//! A client sends [`FrameType::Req`] frames (payload: a big-endian
//! `u32` byte count) and receives exactly one response frame per
//! request:
//!
//! * [`FrameType::Ok`] — payload is exactly the requested entropy
//!   bytes.
//! * [`FrameType::ErrTimeout`] — the pool's deadline expired
//!   (`PoolError::Timeout`); payload is the *healthy prefix*
//!   delivered before it did (possibly empty). Bytes in an error
//!   frame passed the same health gate as bytes in an `Ok` frame —
//!   the error conveys shortfall, never quality loss.
//! * [`FrameType::ErrExhausted`] — every shard is retired
//!   (`PoolError::SourcesExhausted`); payload is the healthy prefix.
//! * [`FrameType::ErrTooLarge`] — the request exceeded the server's
//!   request-size cap; payload is the cap as a big-endian `u32`. The
//!   connection stays usable.
//! * [`FrameType::ErrProtocol`] — malformed traffic; payload is a
//!   UTF-8 diagnostic. The server closes the connection after
//!   sending it.
//!
//! Requests on one connection are served strictly in order; the
//! protocol has no framing ambiguity because every frame declares its
//! length up front, bounded by a receiver-chosen cap.

use std::io::{self, Read, Write};

/// Hard upper bound a receiver places on one frame's payload, over
/// and above any configured request cap (guards allocation against a
/// corrupt or hostile length field).
pub const MAX_FRAME_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Bytes of frame header: one type byte plus a four-byte length.
pub const HEADER_LEN: usize = 5;

/// The message kind carried by a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Client request for N entropy bytes.
    Req,
    /// Full delivery of the requested bytes.
    Ok,
    /// Deadline expired; payload is the delivered healthy prefix.
    ErrTimeout,
    /// All sources retired; payload is the delivered healthy prefix.
    ErrExhausted,
    /// Request exceeded the server cap; payload is the cap (BE u32).
    ErrTooLarge,
    /// Malformed traffic; payload is a UTF-8 diagnostic.
    ErrProtocol,
}

impl FrameType {
    /// The on-wire tag.
    pub fn as_u8(self) -> u8 {
        match self {
            FrameType::Req => 0x01,
            FrameType::Ok => 0x02,
            FrameType::ErrTimeout => 0x03,
            FrameType::ErrExhausted => 0x04,
            FrameType::ErrTooLarge => 0x05,
            FrameType::ErrProtocol => 0x06,
        }
    }

    /// Parses an on-wire tag.
    pub fn from_u8(tag: u8) -> Option<FrameType> {
        match tag {
            0x01 => Some(FrameType::Req),
            0x02 => Some(FrameType::Ok),
            0x03 => Some(FrameType::ErrTimeout),
            0x04 => Some(FrameType::ErrExhausted),
            0x05 => Some(FrameType::ErrTooLarge),
            0x06 => Some(FrameType::ErrProtocol),
            _ => None,
        }
    }
}

/// One parsed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message kind.
    pub kind: FrameType,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

/// Writes one frame.
///
/// # Errors
///
/// Propagates the underlying I/O error; `payload` longer than
/// [`MAX_FRAME_PAYLOAD`] is reported as [`io::ErrorKind::InvalidInput`].
pub fn write_frame(w: &mut impl Write, kind: FrameType, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_PAYLOAD as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload {} exceeds protocol bound", payload.len()),
        ));
    }
    let mut header = [0u8; HEADER_LEN];
    header[0] = kind.as_u8();
    header[1..].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Writes a request frame for `n` bytes of entropy.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_req(w: &mut impl Write, n: u32) -> io::Result<()> {
    write_frame(w, FrameType::Req, &n.to_be_bytes())
}

/// Parses a request payload into its byte count.
pub fn parse_req(payload: &[u8]) -> Option<u32> {
    let bytes: [u8; 4] = payload.try_into().ok()?;
    Some(u32::from_be_bytes(bytes))
}

/// Reads one frame, bounding the payload at `max_payload` bytes.
/// Returns `Ok(None)` on a clean end-of-stream *before* the first
/// header byte.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] for an unknown frame tag or an
/// oversize length field; [`io::ErrorKind::UnexpectedEof`] for a
/// stream truncated mid-frame; otherwise the underlying I/O error.
pub fn read_frame(r: &mut impl Read, max_payload: u32) -> io::Result<Option<Frame>> {
    let mut tag = [0u8; 1];
    loop {
        match r.read(&mut tag) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    read_frame_after_tag(r, tag[0], max_payload).map(Some)
}

/// Reads the remainder of a frame whose tag byte was already
/// consumed — the shape a polling server loop needs (it probes for
/// the tag byte under a short read-timeout, then commits to the
/// frame).
///
/// # Errors
///
/// As [`read_frame`].
pub fn read_frame_after_tag(r: &mut impl Read, tag: u8, max_payload: u32) -> io::Result<Frame> {
    let kind = FrameType::from_u8(tag).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown frame tag {tag:#04x}"),
        )
    })?;
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len);
    let bound = max_payload.min(MAX_FRAME_PAYLOAD);
    if len > bound {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame payload {len} exceeds bound {bound}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Frame { kind, payload })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_tags_round_trip() {
        for kind in [
            FrameType::Req,
            FrameType::Ok,
            FrameType::ErrTimeout,
            FrameType::ErrExhausted,
            FrameType::ErrTooLarge,
            FrameType::ErrProtocol,
        ] {
            assert_eq!(FrameType::from_u8(kind.as_u8()), Some(kind));
        }
        assert_eq!(FrameType::from_u8(0x00), None);
        assert_eq!(FrameType::from_u8(0x99), None);
    }

    #[test]
    fn frames_round_trip_through_a_byte_stream() {
        let mut wire = Vec::new();
        write_req(&mut wire, 4096).unwrap();
        write_frame(&mut wire, FrameType::Ok, b"entropy").unwrap();
        write_frame(&mut wire, FrameType::ErrTimeout, &[]).unwrap();

        let mut r = Cursor::new(wire);
        let req = read_frame(&mut r, MAX_FRAME_PAYLOAD).unwrap().unwrap();
        assert_eq!(req.kind, FrameType::Req);
        assert_eq!(parse_req(&req.payload), Some(4096));
        let ok = read_frame(&mut r, MAX_FRAME_PAYLOAD).unwrap().unwrap();
        assert_eq!(ok.kind, FrameType::Ok);
        assert_eq!(ok.payload, b"entropy");
        let err = read_frame(&mut r, MAX_FRAME_PAYLOAD).unwrap().unwrap();
        assert_eq!(err.kind, FrameType::ErrTimeout);
        assert!(err.payload.is_empty());
        // Clean EOF after the last frame.
        assert!(read_frame(&mut r, MAX_FRAME_PAYLOAD).unwrap().is_none());
    }

    #[test]
    fn oversize_length_field_is_rejected_not_allocated() {
        let mut wire = vec![FrameType::Ok.as_u8()];
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut Cursor::new(wire), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let wire = vec![0xEEu8, 0, 0, 0, 0];
        let err = read_frame(&mut Cursor::new(wire), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_unexpected_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameType::Ok, b"abcdef").unwrap();
        wire.truncate(wire.len() - 2);
        let err = read_frame(&mut Cursor::new(wire), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn malformed_req_payload_is_rejected() {
        assert_eq!(parse_req(b"abc"), None);
        assert_eq!(parse_req(b"abcde"), None);
        assert_eq!(parse_req(&7u32.to_be_bytes()), Some(7));
    }
}
