//! `trng-served` — the entropy daemon as a command-line process.
//!
//! Brings up an [`EntropyPool`] over the paper's simulated carry-chain
//! TRNG, serves it on a TCP socket with the `trng-serve` frame
//! protocol, and exits with a drain report on shutdown (stdin EOF,
//! or after `--serve-ms`).
//!
//! ```text
//! trng-served [--addr 127.0.0.1:7878] [--metrics-addr 127.0.0.1:7879 | --no-metrics]
//!             [--shards 2] [--workers 4]
//!             [--conditioning raw|design-xor|xor:N|von-neumann|toeplitz[:N]]
//!             [--composed-extract auto|N]
//!             [--sources carry_chain,dual_osc,trace_replay,os_entropy]
//!             [--coherence QUORUM] [--coherence-window N] [--coherence-snr X]
//!             [--coherence-response journal|alarm-all]
//!             [--noise-backend scalar|batched]
//!             [--quota-rate BYTES_PER_SEC --quota-burst BYTES]
//!             [--max-request BYTES] [--drain-deadline-ms MS]
//!             [--serve-ms MS] [--deterministic] [--seed N]
//! ```
//!
//! The flag parser is hand-rolled (the workspace is hermetic: no
//! registry crates), so unknown flags fail fast with usage help.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use std::sync::Arc;

use trng_core::trng::TrngConfig;
use trng_pool::{
    CoherenceConfig, CoherenceResponse, ComposedExtract, Conditioning, DualOscConfig, EntropyPool,
    MonitorConfig, NoiseBackend, PoolConfig, RecordedTrace, SourceSpec,
};
use trng_serve::{QuotaConfig, ServeConfig, Server};

/// Raw bytes self-captured at startup for a `trace_replay` source
/// (the replay wraps, so the capture only needs to be representative).
const TRACE_CAPTURE_BYTES: usize = 64 * 1024;

const USAGE: &str = "\
trng-served: network entropy daemon over the simulated carry-chain TRNG pool

USAGE:
  trng-served [OPTIONS]

OPTIONS:
  --addr ADDR             entropy endpoint (default 127.0.0.1:7878; port 0 = ephemeral)
  --metrics-addr ADDR     metrics/health endpoint (default 127.0.0.1:7879)
  --no-metrics            disable the metrics endpoint
  --shards N              TRNG shards in the pool (default 2)
  --workers N             connection worker threads (default 4)
  --conditioning MODE     raw | design-xor | xor:N | von-neumann | toeplitz[:N]
                          (default raw; bare toeplitz sizes N from the carry-chain
                          min-entropy claim via the leftover hash lemma at eps 2^-32)
  --composed-extract R    pool-level cross-shard Toeplitz stage on the interleaved
                          stream: auto (leftover-hash-sized ratio) or an explicit
                          ratio N (default: off)
  --sources LIST          comma-separated backend per shard, overriding --shards:
                          carry_chain | dual_osc | trace_replay | os_entropy
                          (trace_replay self-captures a carry-chain trace at startup)
  --noise-backend MODE    scalar (replay-exact, default) | batched (statistically
                          equivalent whole-window synthesis, ~an order of magnitude
                          faster per raw bit; applies to simulated-noise shards)
  --coherence QUORUM      enable the cross-shard coherence detector (and the
                          per-shard jitter monitor it feeds on): alarm when the
                          same spectral line is elevated on QUORUM shards at
                          once (default: off; QUORUM in 2..=shards)
  --coherence-window N    residuals per shard in the detector's Goertzel scan
                          (default 16, range 8..=64)
  --coherence-snr X       per-shard elevation threshold as a multiple of the
                          median line amplitude (default 4.0)
  --coherence-response R  journal (default) | alarm-all (quarantine the quorum
                          through the normal readmit state machine)
  --quota-rate BPS        per-connection sustained quota, bytes/second (default: none)
  --quota-burst BYTES     per-connection burst allowance (default: 4x rate)
  --max-request BYTES     largest single request (default 1048576)
  --drain-deadline-ms MS  graceful-drain deadline on shutdown (default 5000)
  --serve-ms MS           serve for MS milliseconds then drain (default: until stdin EOF)
  --deterministic         inline deterministic pool backend (replayable byte stream)
  --seed N                pool seed (default 2015)
  -h, --help              this help
";

struct Args {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shards: usize,
    workers: usize,
    conditioning: Conditioning,
    composed: Option<ComposedExtract>,
    sources: Option<Vec<String>>,
    /// Quorum for the cross-shard coherence detector; `None` = off.
    coherence: Option<usize>,
    coherence_window: usize,
    coherence_snr: f64,
    coherence_response: CoherenceResponse,
    noise_backend: NoiseBackend,
    quota_rate: Option<f64>,
    quota_burst: Option<u64>,
    max_request: u32,
    drain_deadline: Duration,
    serve_ms: Option<u64>,
    deterministic: bool,
    seed: u64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            addr: "127.0.0.1:7878".parse().expect("static addr"),
            metrics_addr: Some("127.0.0.1:7879".parse().expect("static addr")),
            shards: 2,
            workers: 4,
            conditioning: Conditioning::Raw,
            composed: None,
            sources: None,
            coherence: None,
            coherence_window: 16,
            coherence_snr: 4.0,
            coherence_response: CoherenceResponse::JournalOnly,
            noise_backend: NoiseBackend::Scalar,
            quota_rate: None,
            quota_burst: None,
            max_request: 1 << 20,
            drain_deadline: Duration::from_millis(5000),
            serve_ms: None,
            deterministic: false,
            seed: 2015,
        }
    }
}

/// Fixed matrix-seed lane for CLI-configured Toeplitz stages; the
/// per-shard conditioner folds this with the shard seed (itself
/// derived from `--seed`), so the byte stream stays a pure function
/// of the pool seed.
const TOEPLITZ_SEED: u64 = 0x70E9;

/// The extractor failure bound for CLI-sized Toeplitz stages
/// (`eps = 2^-32`, the workspace-wide default).
const TOEPLITZ_EPSILON_LOG2: u32 = 32;

fn parse_conditioning(s: &str) -> Result<Conditioning, String> {
    match s {
        "raw" => Ok(Conditioning::Raw),
        "design-xor" => Ok(Conditioning::DesignXor),
        "von-neumann" => Ok(Conditioning::VonNeumann),
        // Bare `toeplitz` sizes the compression ratio from the
        // carry-chain per-bit min-entropy claim (leftover hash lemma).
        "toeplitz" => {
            let claim = trng_core::selftest::claimed_min_entropy(&TrngConfig::paper_k1())
                .map_err(|e| format!("cannot size --conditioning toeplitz ratio: {e}"))?;
            Ok(Conditioning::toeplitz_sized(
                claim,
                TOEPLITZ_EPSILON_LOG2,
                TOEPLITZ_SEED,
            ))
        }
        _ => {
            if let Some(n) = s.strip_prefix("toeplitz:") {
                return n
                    .parse::<u32>()
                    .map(|ratio| Conditioning::Toeplitz {
                        ratio,
                        seed: TOEPLITZ_SEED,
                    })
                    .map_err(|_| format!("bad toeplitz ratio in --conditioning {s:?}"));
            }
            match s.strip_prefix("xor:") {
                Some(n) => n
                    .parse::<u32>()
                    .map(Conditioning::Xor)
                    .map_err(|_| format!("bad xor rate in --conditioning {s:?}")),
                None => Err(format!("unknown conditioning mode {s:?}")),
            }
        }
    }
}

/// Parses `--composed-extract`: `auto` (leftover-hash-sized ratio) or
/// an explicit ratio.
fn parse_composed(s: &str) -> Result<ComposedExtract, String> {
    let base = ComposedExtract::new(TOEPLITZ_EPSILON_LOG2, TOEPLITZ_SEED);
    if s == "auto" {
        return Ok(base);
    }
    s.parse::<u32>()
        .map(|ratio| base.with_ratio(ratio))
        .map_err(|_| format!("bad value {s:?} for --composed-extract (expected auto or a ratio)"))
}

fn parse_sources(list: &str) -> Result<Vec<String>, String> {
    let names: Vec<String> = list.split(',').map(|s| s.trim().to_string()).collect();
    if names.is_empty() || names.iter().any(String::is_empty) {
        return Err(format!("--sources got an empty entry in {list:?}"));
    }
    for name in &names {
        if !matches!(
            name.as_str(),
            "carry_chain" | "dual_osc" | "trace_replay" | "os_entropy"
        ) {
            return Err(format!(
                "unknown source {name:?} in --sources (expected carry_chain, dual_osc, \
                 trace_replay, or os_entropy)"
            ));
        }
    }
    Ok(names)
}

/// Materialises `--sources` names into pool specs; a `trace_replay`
/// entry self-captures a fresh carry-chain trace here, at startup.
fn build_specs(
    names: &[String],
    seed: u64,
    backend: NoiseBackend,
) -> Result<Vec<SourceSpec>, String> {
    let mut trace: Option<Arc<RecordedTrace>> = None;
    names
        .iter()
        .map(|name| {
            Ok(match name.as_str() {
                "carry_chain" => SourceSpec::CarryChain,
                "dual_osc" => SourceSpec::DualOscillator(Box::new(
                    DualOscConfig::betrusted_default().with_backend(backend),
                )),
                "trace_replay" => {
                    if trace.is_none() {
                        let captured = RecordedTrace::record(
                            &TrngConfig::paper_k1(),
                            seed,
                            TRACE_CAPTURE_BYTES,
                        )
                        .map_err(|e| format!("trace capture failed: {e}"))?;
                        trace = Some(Arc::new(captured));
                    }
                    SourceSpec::TraceReplay(Arc::clone(trace.as_ref().expect("just captured")))
                }
                "os_entropy" => SourceSpec::OsEntropy,
                other => unreachable!("parse_sources admitted {other:?}"),
            })
        })
        .collect()
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "--addr" => args.addr = parse(value("--addr")?, "--addr")?,
            "--metrics-addr" => {
                args.metrics_addr = Some(parse(value("--metrics-addr")?, "--metrics-addr")?);
            }
            "--no-metrics" => args.metrics_addr = None,
            "--shards" => args.shards = parse(value("--shards")?, "--shards")?,
            "--workers" => args.workers = parse(value("--workers")?, "--workers")?,
            "--conditioning" => args.conditioning = parse_conditioning(value("--conditioning")?)?,
            "--composed-extract" => {
                args.composed = Some(parse_composed(value("--composed-extract")?)?);
            }
            "--sources" => args.sources = Some(parse_sources(value("--sources")?)?),
            "--coherence" => args.coherence = Some(parse(value("--coherence")?, "--coherence")?),
            "--coherence-window" => {
                args.coherence_window = parse(value("--coherence-window")?, "--coherence-window")?;
            }
            "--coherence-snr" => {
                args.coherence_snr = parse(value("--coherence-snr")?, "--coherence-snr")?;
            }
            "--coherence-response" => {
                args.coherence_response = match value("--coherence-response")?.as_str() {
                    "journal" => CoherenceResponse::JournalOnly,
                    "alarm-all" => CoherenceResponse::AlarmAll,
                    other => {
                        return Err(format!(
                            "--coherence-response must be journal or alarm-all, got {other:?}"
                        ))
                    }
                };
            }
            "--noise-backend" => {
                args.noise_backend = value("--noise-backend")?
                    .parse()
                    .map_err(|e: String| format!("--noise-backend: {e}"))?;
            }
            "--quota-rate" => {
                args.quota_rate = Some(parse(value("--quota-rate")?, "--quota-rate")?)
            }
            "--quota-burst" => {
                args.quota_burst = Some(parse(value("--quota-burst")?, "--quota-burst")?);
            }
            "--max-request" => args.max_request = parse(value("--max-request")?, "--max-request")?,
            "--drain-deadline-ms" => {
                let ms: u64 = parse(value("--drain-deadline-ms")?, "--drain-deadline-ms")?;
                args.drain_deadline = Duration::from_millis(ms);
            }
            "--serve-ms" => args.serve_ms = Some(parse(value("--serve-ms")?, "--serve-ms")?),
            "--deterministic" => args.deterministic = true,
            "--seed" => args.seed = parse(value("--seed")?, "--seed")?,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad value {s:?} for {flag}"))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("trng-served: {msg}\n");
            }
            eprint!("{USAGE}");
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };

    // --sources overrides --shards: one shard per listed backend.
    let shards = args.sources.as_ref().map_or(args.shards, Vec::len);
    let mut pool_config = PoolConfig::new(TrngConfig::paper_k1(), shards)
        .with_conditioning(args.conditioning)
        .with_seed(args.seed)
        .with_noise_backend(args.noise_backend)
        .deterministic(args.deterministic);
    if let Some(composed) = args.composed {
        pool_config = pool_config.with_composed_extract(composed);
    }
    if let Some(quorum) = args.coherence {
        // The detector consumes the per-shard monitor's period-probe
        // residuals, so --coherence switches the monitor on too.
        pool_config = pool_config
            .with_monitor(MonitorConfig::default())
            .with_coherence(
                CoherenceConfig::new()
                    .with_quorum(quorum)
                    .with_window(args.coherence_window)
                    .with_line_snr(args.coherence_snr)
                    .with_response(args.coherence_response),
            );
        eprintln!(
            "trng-served: coherence detector on (quorum {quorum}, window {}, snr {}, {})",
            args.coherence_window,
            args.coherence_snr,
            match args.coherence_response {
                CoherenceResponse::JournalOnly => "journal",
                CoherenceResponse::AlarmAll => "alarm-all",
            }
        );
    }
    if let Some(names) = &args.sources {
        let specs = match build_specs(names, args.seed, args.noise_backend) {
            Ok(specs) => specs,
            Err(msg) => {
                eprintln!("trng-served: {msg}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!("trng-served: source mix [{}]", names.join(", "));
        pool_config = pool_config.with_sources(specs);
    }
    let mut pool = match EntropyPool::new(pool_config) {
        Ok(pool) => pool,
        Err(e) => {
            eprintln!("trng-served: failed to build pool: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "trng-served: bringing {} shard(s) online ({} backend, {} noise)...",
        shards,
        if args.deterministic {
            "deterministic"
        } else {
            "threaded"
        },
        args.noise_backend,
    );
    if let Err(e) = pool.wait_online(Duration::from_secs(120)) {
        eprintln!("trng-served: pool never came online: {e}");
        return ExitCode::FAILURE;
    }

    let mut serve_config = ServeConfig::default()
        .with_addr(args.addr)
        .with_metrics_addr(args.metrics_addr)
        .with_workers(args.workers)
        .with_max_request(args.max_request)
        .with_drain_deadline(args.drain_deadline);
    if let Some(rate) = args.quota_rate {
        let burst = args.quota_burst.unwrap_or((rate * 4.0) as u64);
        serve_config = serve_config.with_quota(QuotaConfig::new(rate, burst));
    }

    let server = match Server::start(pool.into_shared(), serve_config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("trng-served: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("trng-served: serving entropy on {}", server.local_addr());
    if let Some(addr) = server.metrics_addr() {
        eprintln!("trng-served: metrics on {addr}");
    }

    match args.serve_ms {
        Some(ms) => std::thread::sleep(Duration::from_millis(ms)),
        None => {
            eprintln!("trng-served: close stdin (ctrl-d) to drain and exit");
            // Block until the controlling process closes stdin.
            let mut sink = String::new();
            while let Ok(n) = std::io::stdin().read_line(&mut sink) {
                if n == 0 {
                    break;
                }
                sink.clear();
            }
        }
    }

    eprintln!("trng-served: draining...");
    let report = server.shutdown();
    eprintln!("trng-served: {report}");
    ExitCode::SUCCESS
}
