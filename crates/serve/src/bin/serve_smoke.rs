//! CI smoke check for the entropy daemon: bring up a threaded pool
//! behind a quota-enforcing server on an ephemeral loopback port,
//! fetch ~1 MiB across four concurrent clients — one of them
//! deliberately over quota — scrape the metrics endpoint, and drain.
//!
//! What must hold for an OK exit:
//! * every in-quota client receives exactly the bytes it asked for;
//! * the over-quota client is **throttled, not errored**: its single
//!   over-burst request still delivers every byte, and the server's
//!   throttle clock records at least the deterministic 1-second
//!   deficit its first request owes;
//! * the metrics endpoint reports `healthy` plus a JSON body naming
//!   both pool and server counters;
//! * shutdown drains within its deadline and joins every worker;
//! * the concatenated output is not degenerate (≥ 200 distinct byte
//!   values over ~1 MiB).
//!
//! Environment overrides:
//! * `TRNG_SERVE_SMOKE_BYTES`  — bytes per in-quota client (default 320 KiB)
//! * `TRNG_SERVE_SMOKE_SHARDS` — pool shard count (default 2)

use std::process::ExitCode;
use std::time::{Duration, Instant};

use trng_core::trng::TrngConfig;
use trng_pool::{Conditioning, EntropyPool, PoolConfig};
use trng_serve::{Client, QuotaConfig, ServeConfig, Server};

/// Per-connection quota: 64 KiB/s sustained, 32 KiB burst. The
/// over-quota client's first request (96 KiB) then owes exactly
/// (96 KiB - 32 KiB) / 64 KiB/s = 1.0 s of throttle — a deterministic
/// floor for the assertion below, independent of pool speed.
const QUOTA_RATE: f64 = 65536.0;
const QUOTA_BURST: u64 = 32768;
const OVER_QUOTA_REQUEST: u32 = 96 * 1024;
const CHUNK: u32 = 8 * 1024;

fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be an integer, got {v:?}")),
        Err(_) => default,
    }
}

fn main() -> ExitCode {
    let per_client = env_usize("TRNG_SERVE_SMOKE_BYTES", 320 * 1024);
    let shards = env_usize("TRNG_SERVE_SMOKE_SHARDS", 2);
    eprintln!(
        "serve_smoke: {shards} shards, 3 in-quota clients x {per_client} bytes \
         + 1 over-quota client x {OVER_QUOTA_REQUEST} bytes"
    );

    let config = PoolConfig::new(TrngConfig::paper_k1(), shards)
        .with_conditioning(Conditioning::Raw)
        .with_seed(0x5E7E);
    let mut pool = match EntropyPool::new(config) {
        Ok(pool) => pool,
        Err(e) => {
            eprintln!("serve_smoke: FAILED to build pool: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = pool.wait_online(Duration::from_secs(120)) {
        eprintln!("serve_smoke: FAILED waiting for admission: {e}");
        return ExitCode::FAILURE;
    }

    let server = match Server::start(
        pool.into_shared(),
        ServeConfig::default().with_quota(QuotaConfig::new(QUOTA_RATE, QUOTA_BURST)),
    ) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve_smoke: FAILED to start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    let metrics_addr = server.metrics_addr().expect("metrics enabled by default");
    eprintln!("serve_smoke: serving on {addr}, metrics on {metrics_addr}");

    let started = Instant::now();
    // Three in-quota clients stream their allotment in small chunks;
    // the fourth client front-loads one over-burst request.
    let mut fetchers = Vec::new();
    for id in 0..3 {
        fetchers.push(std::thread::spawn(move || -> Result<Vec<u8>, String> {
            let mut client =
                Client::connect(addr).map_err(|e| format!("client {id} connect: {e}"))?;
            let mut got = Vec::with_capacity(per_client);
            while got.len() < per_client {
                let want = CHUNK.min((per_client - got.len()) as u32);
                let bytes = client
                    .fetch(want)
                    .map_err(|e| format!("client {id} after {} bytes: {e}", got.len()))?;
                got.extend_from_slice(&bytes);
            }
            Ok(got)
        }));
    }
    let over_quota = std::thread::spawn(move || -> Result<(Vec<u8>, Duration), String> {
        let mut client = Client::connect(addr).map_err(|e| format!("over-quota connect: {e}"))?;
        let t0 = Instant::now();
        let bytes = client
            .fetch(OVER_QUOTA_REQUEST)
            .map_err(|e| format!("over-quota fetch must be throttled, not fail: {e}"))?;
        Ok((bytes, t0.elapsed()))
    });

    let mut ok = true;
    let mut histogram = [0u64; 256];
    let mut total = 0usize;
    for handle in fetchers {
        match handle.join().expect("client thread panicked") {
            Ok(bytes) => {
                if bytes.len() != per_client {
                    eprintln!(
                        "serve_smoke: FAILED: client got {} of {per_client} bytes",
                        bytes.len()
                    );
                    ok = false;
                }
                total += bytes.len();
                for &b in &bytes {
                    histogram[b as usize] += 1;
                }
            }
            Err(msg) => {
                eprintln!("serve_smoke: FAILED: {msg}");
                ok = false;
            }
        }
    }
    match over_quota.join().expect("over-quota thread panicked") {
        Ok((bytes, elapsed)) => {
            if bytes.len() != OVER_QUOTA_REQUEST as usize {
                eprintln!(
                    "serve_smoke: FAILED: over-quota client got {} of {OVER_QUOTA_REQUEST} bytes",
                    bytes.len()
                );
                ok = false;
            }
            if elapsed < Duration::from_millis(900) {
                eprintln!(
                    "serve_smoke: FAILED: over-quota fetch finished in {:.3} s — \
                     the 1.0 s token deficit was not enforced",
                    elapsed.as_secs_f64()
                );
                ok = false;
            }
            total += bytes.len();
            for &b in &bytes {
                histogram[b as usize] += 1;
            }
        }
        Err(msg) => {
            eprintln!("serve_smoke: FAILED: {msg}");
            ok = false;
        }
    }
    let wall = started.elapsed();
    eprintln!(
        "serve_smoke: {total} bytes over loopback in {:.2} s ({:.3} Mb/s)",
        wall.as_secs_f64(),
        total as f64 * 8.0 / wall.as_secs_f64() / 1e6
    );

    // The quota clock must have recorded at least the over-quota
    // client's deterministic 1-second deficit.
    let stats = server.stats();
    if stats.throttle_events < 1 || stats.throttled < Duration::from_secs(1) {
        eprintln!(
            "serve_smoke: FAILED: expected >= 1 s of recorded throttle, got {} events / {:.3} s",
            stats.throttle_events,
            stats.throttled.as_secs_f64()
        );
        ok = false;
    }
    if stats.requests_timeout != 0 || stats.requests_exhausted != 0 || stats.requests_rejected != 0
    {
        eprintln!(
            "serve_smoke: FAILED: unexpected error responses (timeout {}, exhausted {}, \
             rejected {})",
            stats.requests_timeout, stats.requests_exhausted, stats.requests_rejected
        );
        ok = false;
    }

    match trng_serve::client::scrape_metrics(metrics_addr) {
        Ok(body) => {
            let first = body.lines().next().unwrap_or("");
            if first != "healthy" {
                eprintln!("serve_smoke: FAILED: metrics status line {first:?}, want \"healthy\"");
                ok = false;
            }
            for needle in ["\"bytes_delivered\"", "\"bytes_served\"", "\"shards\""] {
                if !body.contains(needle) {
                    eprintln!("serve_smoke: FAILED: metrics body lacks {needle}");
                    ok = false;
                }
            }
        }
        Err(e) => {
            eprintln!("serve_smoke: FAILED to scrape metrics: {e}");
            ok = false;
        }
    }

    let distinct = histogram.iter().filter(|&&n| n > 0).count();
    if distinct < 200 {
        eprintln!("serve_smoke: FAILED: only {distinct}/256 distinct byte values");
        ok = false;
    }

    let report = server.shutdown();
    eprintln!("serve_smoke: {report}");
    if report.hit_deadline {
        eprintln!("serve_smoke: FAILED: drain outran its deadline");
        ok = false;
    }
    if report.workers_joined != 4 {
        eprintln!(
            "serve_smoke: FAILED: joined {} of 4 workers — thread leak",
            report.workers_joined
        );
        ok = false;
    }
    if report.bytes_served != total as u64 {
        eprintln!(
            "serve_smoke: FAILED: server accounted {} bytes, clients received {total}",
            report.bytes_served
        );
        ok = false;
    }

    if ok {
        eprintln!("serve_smoke: OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
