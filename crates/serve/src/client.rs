//! Client helper for the entropy daemon.
//!
//! [`Client`] wraps one TCP connection and speaks the frame protocol;
//! [`fetch`] is the one-shot convenience (connect, request, close).
//! Both map the server's typed error frames to [`FetchError`], so
//! callers — including this workspace's own tests — never hand-roll
//! socket code or frame parsing.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::protocol::{read_frame, write_req, FrameType, MAX_FRAME_PAYLOAD};

/// Default socket read/write timeout. Generous because a legitimate
/// fetch may sit behind a quota throttle plus a slow physical source;
/// the server, not the client, owns responsiveness.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(120);

/// Why a fetch failed.
#[derive(Debug)]
pub enum FetchError {
    /// Transport-level failure (connect, read, or write).
    Io(io::Error),
    /// The server answered with something outside the protocol, or
    /// with a malformed/short frame.
    Protocol(String),
    /// The request exceeded the server's size cap (carried back in
    /// the error frame).
    TooLarge {
        /// The server's request-size cap, in bytes.
        cap: u32,
    },
    /// The server's fill deadline expired; `partial` holds the healthy
    /// prefix that was delivered (possibly empty).
    Timeout {
        /// Healthy bytes delivered before the deadline.
        partial: Vec<u8>,
    },
    /// Every entropy source is retired; `partial` holds the healthy
    /// prefix delivered before the last source died.
    Exhausted {
        /// Healthy bytes delivered before exhaustion.
        partial: Vec<u8>,
    },
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::Io(e) => write!(f, "i/o failure: {e}"),
            FetchError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            FetchError::TooLarge { cap } => {
                write!(f, "request exceeds the server cap of {cap} bytes")
            }
            FetchError::Timeout { partial } => {
                write!(f, "server deadline expired after {} bytes", partial.len())
            }
            FetchError::Exhausted { partial } => write!(
                f,
                "all entropy sources retired after {} bytes",
                partial.len()
            ),
        }
    }
}

impl std::error::Error for FetchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FetchError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FetchError {
    fn from(e: io::Error) -> Self {
        FetchError::Io(e)
    }
}

/// One connection to the entropy endpoint. Requests on a connection
/// share its token bucket, so a client that spreads work across many
/// connections gets a fresh burst allowance per connection — the
/// server's quota is deliberately per-connection, not per-host.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects with the default I/O timeout.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        Client::connect_with_timeout(addr, DEFAULT_IO_TIMEOUT)
    }

    /// Connects with an explicit socket read/write timeout.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect_with_timeout(addr: SocketAddr, io_timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(io_timeout))?;
        stream.set_write_timeout(Some(io_timeout))?;
        Ok(Client { stream })
    }

    /// Requests exactly `n` bytes of conditioned, health-gated
    /// entropy.
    ///
    /// # Errors
    ///
    /// [`FetchError::Timeout`] / [`FetchError::Exhausted`] carry the
    /// delivered healthy prefix; [`FetchError::TooLarge`] carries the
    /// server's cap; a short or over-long `OK` payload is reported as
    /// [`FetchError::Protocol`] (the server must deliver exactly what
    /// it acknowledges).
    pub fn fetch(&mut self, n: u32) -> Result<Vec<u8>, FetchError> {
        write_req(&mut self.stream, n)?;
        let frame = read_frame(&mut self.stream, MAX_FRAME_PAYLOAD)?
            .ok_or_else(|| FetchError::Protocol("connection closed before response".into()))?;
        match frame.kind {
            FrameType::Ok => {
                if frame.payload.len() != n as usize {
                    return Err(FetchError::Protocol(format!(
                        "short delivery: OK frame carried {} of {n} bytes",
                        frame.payload.len()
                    )));
                }
                Ok(frame.payload)
            }
            FrameType::ErrTimeout => Err(FetchError::Timeout {
                partial: frame.payload,
            }),
            FrameType::ErrExhausted => Err(FetchError::Exhausted {
                partial: frame.payload,
            }),
            FrameType::ErrTooLarge => {
                let cap = frame
                    .payload
                    .as_slice()
                    .try_into()
                    .map(u32::from_be_bytes)
                    .map_err(|_| FetchError::Protocol("malformed cap in ErrTooLarge".into()))?;
                Err(FetchError::TooLarge { cap })
            }
            FrameType::ErrProtocol => Err(FetchError::Protocol(
                String::from_utf8_lossy(&frame.payload).into_owned(),
            )),
            FrameType::Req => Err(FetchError::Protocol(
                "server sent a REQ frame to a client".into(),
            )),
        }
    }
}

/// One-shot fetch: connect, request `n` bytes, close.
///
/// # Errors
///
/// As [`Client::fetch`], plus connect failures as [`FetchError::Io`].
pub fn fetch(addr: SocketAddr, n: u32) -> Result<Vec<u8>, FetchError> {
    Client::connect(addr)?.fetch(n)
}

/// Reads one metrics report from the metrics endpoint: the
/// `healthy` / `degraded` / `recovering` / `exhausted` status line
/// (`recovering` while a replacement shard is in its admission gate)
/// followed by the JSON body.
///
/// # Errors
///
/// Propagates connect/read failures; non-UTF-8 output is reported as
/// [`io::ErrorKind::InvalidData`].
pub fn scrape_metrics(addr: SocketAddr) -> io::Result<String> {
    use std::io::Read;
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut body = Vec::new();
    stream.read_to_end(&mut body)?;
    String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "metrics body is not UTF-8"))
}
