//! Bounded lock-free single-producer/single-consumer byte ring.
//!
//! Each pool shard owns the producer end of one ring; the pool handle
//! owns all consumer ends. The SPSC discipline keeps the fast path
//! wait-free on both sides without unsafe code: slots are `AtomicU8`
//! and the head/tail counters are monotonically increasing `usize`
//! positions (index = position masked by the power-of-two capacity),
//! so "full" and "empty" are unambiguous without a sacrificial slot.
//!
//! Memory ordering: the producer publishes slot writes with a
//! `Release` store of `head`; the consumer `Acquire`-loads `head`
//! before reading slots, and symmetrically publishes consumed space
//! with a `Release` store of `tail`.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// Smallest capacity a ring will be created with.
pub const MIN_RING_CAPACITY: usize = 64;

#[derive(Debug)]
struct Shared {
    slots: Box<[AtomicU8]>,
    mask: usize,
    /// Next write position (owned by the producer).
    head: AtomicUsize,
    /// Next read position (owned by the consumer).
    tail: AtomicUsize,
    /// Highest occupancy ever observed by the producer.
    high_water: AtomicUsize,
}

/// Producer end: exactly one per ring, held by the shard.
#[derive(Debug)]
pub struct Producer {
    shared: Arc<Shared>,
}

/// Consumer end: exactly one per ring, held by the pool handle.
#[derive(Debug)]
pub struct Consumer {
    shared: Arc<Shared>,
}

/// Creates a ring with at least `capacity` bytes of buffer (rounded up
/// to a power of two, floored at [`MIN_RING_CAPACITY`]).
pub fn ring(capacity: usize) -> (Producer, Consumer) {
    let cap = capacity.max(MIN_RING_CAPACITY).next_power_of_two();
    let shared = Arc::new(Shared {
        slots: (0..cap).map(|_| AtomicU8::new(0)).collect(),
        mask: cap - 1,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        high_water: AtomicUsize::new(0),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
        },
        Consumer { shared },
    )
}

impl Producer {
    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }

    /// Bytes of free space (may race stale low, never high).
    pub fn free(&self) -> usize {
        let head = self.shared.head.load(Ordering::Relaxed);
        let tail = self.shared.tail.load(Ordering::Acquire);
        self.capacity() - head.wrapping_sub(tail)
    }

    /// Appends as much of `bytes` as fits; returns the count written.
    pub fn push(&self, bytes: &[u8]) -> usize {
        let head = self.shared.head.load(Ordering::Relaxed);
        let tail = self.shared.tail.load(Ordering::Acquire);
        let used = head.wrapping_sub(tail);
        let n = bytes.len().min(self.capacity() - used);
        for (i, &b) in bytes[..n].iter().enumerate() {
            self.shared.slots[head.wrapping_add(i) & self.shared.mask].store(b, Ordering::Relaxed);
        }
        self.shared
            .head
            .store(head.wrapping_add(n), Ordering::Release);
        let occupancy = used + n;
        self.shared
            .high_water
            .fetch_max(occupancy, Ordering::Relaxed);
        n
    }
}

impl Consumer {
    /// Bytes currently readable (may race stale low, never high).
    pub fn len(&self) -> usize {
        let head = self.shared.head.load(Ordering::Acquire);
        let tail = self.shared.tail.load(Ordering::Relaxed);
        head.wrapping_sub(tail)
    }

    /// `true` when no bytes are readable.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pops up to `out.len()` bytes into `out`; returns the count read.
    pub fn pop(&self, out: &mut [u8]) -> usize {
        let head = self.shared.head.load(Ordering::Acquire);
        let tail = self.shared.tail.load(Ordering::Relaxed);
        let n = out.len().min(head.wrapping_sub(tail));
        for (i, slot) in out[..n].iter_mut().enumerate() {
            *slot =
                self.shared.slots[tail.wrapping_add(i) & self.shared.mask].load(Ordering::Relaxed);
        }
        self.shared
            .tail
            .store(tail.wrapping_add(n), Ordering::Release);
        n
    }

    /// Highest occupancy the producer ever observed.
    pub fn high_water(&self) -> usize {
        self.shared.high_water.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_across_wraparound() {
        let (p, c) = ring(64);
        assert_eq!(p.capacity(), 64);
        let mut out = [0u8; 48];
        // Push/pop more than capacity in total to exercise wraparound.
        for round in 0..10u32 {
            let data: Vec<u8> = (0..48).map(|i| (round * 48 + i) as u8).collect();
            assert_eq!(p.push(&data), 48);
            assert_eq!(c.pop(&mut out), 48);
            assert_eq!(out[..], data[..], "round {round}");
        }
    }

    #[test]
    fn rejects_overflow_and_underflow() {
        let (p, c) = ring(64);
        let data = [7u8; 100];
        assert_eq!(p.push(&data), 64); // only capacity fits
        assert_eq!(p.push(&data), 0); // full
        assert_eq!(p.free(), 0);
        let mut out = [0u8; 100];
        assert_eq!(c.pop(&mut out), 64);
        assert!(out[..64].iter().all(|&b| b == 7));
        assert_eq!(c.pop(&mut out), 0); // empty
        assert!(c.is_empty());
    }

    #[test]
    fn partial_push_preserves_order() {
        let (p, c) = ring(64);
        assert_eq!(p.push(&[1; 40]), 40);
        assert_eq!(p.push(&[2; 40]), 24); // only 24 fit
        let mut out = [0u8; 64];
        assert_eq!(c.pop(&mut out), 64);
        assert!(out[..40].iter().all(|&b| b == 1));
        assert!(out[40..].iter().all(|&b| b == 2));
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let (p, c) = ring(64);
        let _ = p.push(&[0; 10]);
        let mut out = [0u8; 8];
        let _ = c.pop(&mut out);
        let _ = p.push(&[0; 30]);
        assert_eq!(c.high_water(), 32); // 2 leftover + 30
    }

    #[test]
    fn capacity_is_rounded_up() {
        let (p, _c) = ring(100);
        assert_eq!(p.capacity(), 128);
        let (p, _c) = ring(0);
        assert_eq!(p.capacity(), MIN_RING_CAPACITY);
    }

    #[test]
    fn concurrent_stream_is_unchanged() {
        // One producer thread streaming a known sequence, the consumer
        // on the main thread: every byte must arrive exactly once and
        // in order.
        const TOTAL: usize = 1 << 18;
        let (p, c) = ring(256);
        let producer = std::thread::spawn(move || {
            let mut sent = 0usize;
            while sent < TOTAL {
                let chunk: Vec<u8> = (sent..(sent + 64).min(TOTAL))
                    .map(|i| (i % 251) as u8)
                    .collect();
                let mut off = 0;
                while off < chunk.len() {
                    let n = p.push(&chunk[off..]);
                    off += n;
                    if n == 0 {
                        std::thread::yield_now();
                    }
                }
                sent += chunk.len();
            }
        });
        let mut received = 0usize;
        let mut buf = [0u8; 97]; // deliberately co-prime with the chunking
        while received < TOTAL {
            let n = c.pop(&mut buf);
            for &b in &buf[..n] {
                assert_eq!(b, (received % 251) as u8, "at byte {received}");
                received += 1;
            }
            if n == 0 {
                std::thread::yield_now();
            }
        }
        producer.join().expect("producer");
        assert_eq!(c.len(), 0);
    }
}
