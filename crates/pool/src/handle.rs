//! A cheaply clonable, thread-safe client handle over one
//! [`EntropyPool`].
//!
//! `EntropyPool`'s byte interface takes `&mut self`, which is the
//! right shape for a single consumer but not for a server dispatching
//! many concurrent connections. [`PoolHandle`] wraps the pool in an
//! `Arc<Mutex<_>>` so any number of request threads can share it:
//! each `fill_bytes` call acquires the pool exclusively for exactly
//! one fill, which makes every fill *atomic* with respect to other
//! clients — a caller's bytes are always a contiguous run of the
//! pool's delivery stream, never interleaved with another caller's.
//! (In deterministic replay mode that contiguity is what makes a
//! multi-client serving session byte-auditable against a single-
//! consumer replay of the same configuration.)
//!
//! The mutex serializes only consumers; shard workers in the threaded
//! backend keep producing into their rings regardless of who holds
//! the handle.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use crate::pool::{EntropyPool, PoolError};
use crate::stats::PoolStats;

/// A clonable, `Send + Sync` handle sharing one [`EntropyPool`]
/// between threads.
///
/// ```
/// use trng_core::trng::TrngConfig;
/// use trng_pool::{EntropyPool, PoolConfig, PoolHandle};
///
/// let config = PoolConfig::new(TrngConfig::paper_k1(), 2).deterministic(true);
/// let handle = EntropyPool::new(config)?.into_shared();
/// let worker = handle.clone();
/// let join = std::thread::spawn(move || {
///     let mut buf = [0u8; 32];
///     worker.fill_bytes(&mut buf).map(|()| buf)
/// });
/// let mut buf = [0u8; 32];
/// handle.fill_bytes(&mut buf)?;
/// let other = join.join().unwrap()?;
/// assert_ne!(buf, other); // two distinct runs of the stream
/// # Ok::<(), trng_pool::PoolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PoolHandle {
    inner: Arc<Mutex<EntropyPool>>,
}

impl PoolHandle {
    /// Wraps a pool in a shared handle.
    pub fn new(pool: EntropyPool) -> Self {
        PoolHandle {
            inner: Arc::new(Mutex::new(pool)),
        }
    }

    /// Locks the pool. A poisoned lock is recovered rather than
    /// propagated: the pool's own state stays consistent across a
    /// panicking *consumer* (fills either completed or reported a
    /// typed error), so the next caller may keep serving.
    fn lock(&self) -> MutexGuard<'_, EntropyPool> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Number of shards (in any state).
    pub fn shard_count(&self) -> usize {
        self.lock().shard_count()
    }

    /// Blocks until no shard is still starting; see
    /// [`EntropyPool::wait_online`].
    ///
    /// # Errors
    ///
    /// [`PoolError::SourcesExhausted`] when every shard retired during
    /// admission, [`PoolError::Timeout`] on deadline.
    pub fn wait_online(&self, timeout: Duration) -> Result<usize, PoolError> {
        self.lock().wait_online(timeout)
    }

    /// Atomically fills `dest` with health-gated pool bytes; see
    /// [`EntropyPool::fill_bytes`]. Other handle clones block until
    /// this fill completes.
    ///
    /// # Errors
    ///
    /// [`PoolError::SourcesExhausted`] once every shard is retired.
    pub fn fill_bytes(&self, dest: &mut [u8]) -> Result<(), PoolError> {
        self.lock().fill_bytes(dest)
    }

    /// Atomically fills `dest`, giving up at `timeout`; see
    /// [`EntropyPool::try_fill_bytes`]. The timeout bounds only this
    /// caller's fill, not the wait for the lock.
    ///
    /// # Errors
    ///
    /// [`PoolError::Timeout`] on deadline,
    /// [`PoolError::SourcesExhausted`] once every shard is retired.
    pub fn try_fill_bytes(&self, dest: &mut [u8], timeout: Duration) -> Result<(), PoolError> {
        self.lock().try_fill_bytes(dest, timeout)
    }

    /// Snapshots per-shard lifecycle state and pool-level counters;
    /// see [`EntropyPool::stats`].
    pub fn stats(&self) -> PoolStats {
        self.lock().stats()
    }
}

impl EntropyPool {
    /// Consumes the pool into a clonable, thread-safe [`PoolHandle`].
    pub fn into_shared(self) -> PoolHandle {
        PoolHandle::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use trng_core::trng::TrngConfig;

    fn deterministic_pool(shards: usize) -> PoolHandle {
        let config = PoolConfig::new(TrngConfig::paper_k1(), shards)
            .deterministic(true)
            .with_block_bytes(64)
            .with_seed(2015);
        EntropyPool::new(config).expect("pool").into_shared()
    }

    #[test]
    fn handle_is_send_sync_clone() {
        fn assert_traits<T: Send + Sync + Clone>() {}
        assert_traits::<PoolHandle>();
    }

    #[test]
    fn concurrent_fills_partition_the_deterministic_stream() {
        // 4 threads × 256 bytes through one shared handle: every
        // fetched chunk must be a contiguous slice of the single-
        // consumer replay stream, and together they must tile it.
        const CHUNK: usize = 256;
        const THREADS: usize = 4;
        let handle = deterministic_pool(2);
        let joins: Vec<_> = (0..THREADS)
            .map(|_| {
                let h = handle.clone();
                std::thread::spawn(move || {
                    let mut buf = vec![0u8; CHUNK];
                    h.fill_bytes(&mut buf).expect("fill");
                    buf
                })
            })
            .collect();
        let chunks: Vec<Vec<u8>> = joins.into_iter().map(|j| j.join().unwrap()).collect();

        let mut replay = vec![0u8; CHUNK * THREADS];
        let solo = deterministic_pool(2);
        solo.fill_bytes(&mut replay).expect("replay fill");

        let mut offsets: Vec<usize> = chunks
            .iter()
            .map(|chunk| {
                replay
                    .windows(CHUNK)
                    .position(|w| w == &chunk[..])
                    .expect("chunk must be a contiguous slice of the replay stream")
            })
            .collect();
        offsets.sort_unstable();
        assert_eq!(offsets, (0..THREADS).map(|i| i * CHUNK).collect::<Vec<_>>());
        assert_eq!(handle.stats().bytes_delivered, (CHUNK * THREADS) as u64);
    }

    #[test]
    fn stats_and_admission_pass_through() {
        let handle = deterministic_pool(2);
        assert_eq!(handle.shard_count(), 2);
        let online = handle.wait_online(Duration::from_secs(30)).expect("online");
        assert_eq!(online, 2);
        let mut buf = [0u8; 32];
        handle
            .try_fill_bytes(&mut buf, Duration::from_secs(5))
            .expect("fill");
        assert_eq!(handle.stats().bytes_delivered, 32);
    }
}
