//! Online per-shard jitter monitor: the Lubicz–Skorski differential
//! two-RO measurement, promoted from an offline procedure
//! (`trng-measure`) to a continuous runtime gate.
//!
//! The SP 800-90B continuous tests watch the *bit stream* and, by
//! design, tolerate everything the paper's eq. (7) entropy bound
//! tolerates — including the worst-case edge offset. That makes them
//! blind to two realistic degradations:
//!
//! * **slow common-mode drift** (temperature/voltage ramps): the edge
//!   offset wanders but the white-jitter budget is intact, so the bits
//!   stay statistically plausible right up until capture fails;
//! * **noise-composition shifts** (flicker-dominated regimes,
//!   injection locking): the *amount* of per-sample entropy changes
//!   while short-range bit statistics barely move (Saarinen's AR(1)
//!   observation).
//!
//! The monitor closes both gaps by probing the *physics* instead of
//! the bits. Every `interval_bytes` healthy bytes it runs, on the
//! shard's own simulated fabric but with an rng lane separate from the
//! entropy stream:
//!
//! 1. a **differential sigma probe** — two fresh ring oscillators,
//!    sampled at `t_a`, TDC-decoded and differenced
//!    ([`trng_measure::measure_jitter`]): common-mode modulation
//!    cancels exactly, so the estimate isolates the per-LUT white
//!    sigma plus any correlated (flicker/locking) component —
//!    collapse *or* inflation against the baseline is drift;
//! 2. a **period probe** — transition counting over `period_horizon`
//!    ([`trng_measure::measure_lut_delay`]) at the shard's current
//!    global operating point, which moves when a thermal/supply ramp
//!    shifts all delays together (exactly the component the
//!    differential probe cancels).
//!
//! The first `baseline_samples` observations freeze the healthy
//! baseline; after that, leaving the `sigma_band`/`period_band` around
//! the baseline raises a [`IncidentKind::JitterDrift`] journal event
//! (on the transition into drift, not every interval) without touching
//! the shard's lifecycle state — an early warning, not a quarantine.
//!
//! [`IncidentKind::JitterDrift`]: crate::journal::IncidentKind::JitterDrift

use trng_core::trng::TrngConfig;
use trng_fpga_sim::delay_line::TappedDelayLine;
use trng_fpga_sim::noise::NoiseConfig;
use trng_fpga_sim::ring_oscillator::RingOscillatorConfig;
use trng_fpga_sim::rng::SimRng;
use trng_fpga_sim::time::Ps;
use trng_measure::{measure_jitter, measure_lut_delay};

use crate::journal::ProbeCode;

/// Sampling budget and detection bands of the online jitter monitor.
///
/// The defaults cost two 3-stage oscillators for `runs` accumulation
/// windows of `t_a` plus one `period_horizon` of transition counting
/// per observation — about 2.5 µs of extra simulated fabric time per
/// KiB of output, a ~0.2 % overhead on the shard's own simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorConfig {
    /// Healthy bytes between observations.
    pub interval_bytes: u64,
    /// Two-RO accumulation windows per observation (sigma estimate
    /// standard error ~ `1/sqrt(2 runs)`).
    pub runs: usize,
    /// Jitter accumulation time per window.
    pub t_a: Ps,
    /// Observations averaged into the frozen healthy baseline.
    pub baseline_samples: usize,
    /// Sigma ratio band: drift when the observed sigma leaves
    /// `[baseline / sigma_band, baseline * sigma_band]`.
    pub sigma_band: f64,
    /// Simulated duration of the period probe.
    pub period_horizon: Ps,
    /// Relative period band: drift when `|period/baseline - 1|`
    /// exceeds this.
    pub period_band: f64,
}

impl Default for MonitorConfig {
    /// 32 windows of 20 ns every 512 bytes, baseline over the first 3
    /// observations, sigma band 1.7x, period band 2 % over a 1 µs
    /// horizon.
    fn default() -> Self {
        MonitorConfig {
            interval_bytes: 512,
            runs: 32,
            t_a: Ps::from_ns(20.0),
            baseline_samples: 3,
            sigma_band: 1.7,
            period_horizon: Ps::from_us(1.0),
            period_band: 0.02,
        }
    }
}

impl MonitorConfig {
    /// Sets the observation interval, builder-style.
    pub fn with_interval_bytes(mut self, bytes: u64) -> Self {
        self.interval_bytes = bytes;
        self
    }

    /// Sets the per-observation run count, builder-style.
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }
}

/// Which probe tripped, encoded into the journal event's detail word
/// via the shared [`ProbeCode`] scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftProbe {
    /// The differential sigma probe left its band.
    Sigma,
    /// The period probe left its band.
    Period,
}

impl From<DriftProbe> for ProbeCode {
    fn from(probe: DriftProbe) -> ProbeCode {
        match probe {
            DriftProbe::Sigma => ProbeCode::Sigma,
            DriftProbe::Period => ProbeCode::Period,
        }
    }
}

/// One completed observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Observation {
    /// Latest per-LUT differential sigma estimate, femtoseconds.
    pub jitter_fs: u64,
    /// Frozen baseline sigma, femtoseconds (0 while accumulating).
    pub baseline_fs: u64,
    /// `Some` exactly when this observation *entered* the drift state
    /// (the rising edge that should be journaled).
    pub drift: Option<DriftDetail>,
    /// The period probe's relative residual against the frozen
    /// baseline, `(period / baseline − 1)` in parts per million;
    /// `None` while the baseline is still accumulating. This is the
    /// per-observation sample the pool-level coherence detector runs
    /// its Goertzel bank over: a common-mode supply tone cancels out of
    /// the differential sigma probe and sits below the period band on
    /// any *single* shard, but leaves the same spectral line in every
    /// shard's residual series.
    pub period_residual_ppm: Option<i64>,
}

/// Journal payload of a drift event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct DriftDetail {
    pub probe: DriftProbe,
    /// Observed/baseline ratio in permille.
    pub ratio_permille: u64,
}

impl DriftDetail {
    /// Packs the drift into the journal's `detail` word: the shared
    /// [`ProbeCode`] in the top byte, ratio permille in the low bits.
    pub fn encode(self) -> u64 {
        u64::from(ProbeCode::from(self.probe).as_u8()) << 56
            | self.ratio_permille & 0x00FF_FFFF_FFFF_FFFF
    }
}

/// Per-shard monitor state. Owns its own rng lane so observations
/// never consume bits from — or perturb — the shard's entropy stream.
#[derive(Debug)]
pub(crate) struct JitterMonitor {
    config: MonitorConfig,
    rng: SimRng,
    line: TappedDelayLine,
    next_due: u64,
    /// Sigma/period sums while the baseline accumulates.
    warmup: Vec<(f64, f64)>,
    baseline: Option<(f64, f64)>, // (sigma_ps, d0_ps)
    drifting: bool,
    measurements: u64,
}

impl JitterMonitor {
    pub fn new(config: MonitorConfig, rng: SimRng) -> Self {
        let line = TappedDelayLine::ideal(128, Ps::from_ps(17.0));
        let next_due = config.interval_bytes;
        JitterMonitor {
            config,
            rng,
            line,
            next_due,
            warmup: Vec::new(),
            baseline: None,
            drifting: false,
            measurements: 0,
        }
    }

    /// `true` once the shard's healthy-byte count owes an observation.
    pub fn due(&self, bytes_produced: u64) -> bool {
        bytes_produced >= self.next_due
    }

    /// The monitor's probe oscillator for the shard's *current*
    /// configuration: the shard's stage delay at its present global
    /// operating point (`delay_factor` at the instance's clock), its
    /// white sigma, flicker and attack environment. The global
    /// modulation itself is dropped — its slow component is baked into
    /// the nominal delay (where the period probe sees it) and its fast
    /// component cancels out of the differential sigma probe anyway.
    fn probe_config(&self, shard: &TrngConfig, now: Ps) -> RingOscillatorConfig {
        let factor = shard.global.as_ref().map_or(1.0, |g| g.delay_factor(now));
        let mut noise = NoiseConfig::white_only(Ps::from_ps(shard.platform.sigma_lut_ps));
        noise.flicker = shard.flicker;
        noise.attack = shard.attack;
        RingOscillatorConfig {
            noise,
            history_window: Ps::from_ns(4.0),
            ..RingOscillatorConfig::ideal(
                shard.design.n,
                Ps::from_ps(shard.platform.d0_lut_ps * factor),
                Ps::from_ps(shard.platform.sigma_lut_ps),
            )
        }
    }

    /// Runs one observation against the shard's current configuration
    /// and simulated clock. Returns `None` if either measurement
    /// procedure fails to decode (pathological configurations only —
    /// the shard's own health gates cover those).
    pub fn observe(&mut self, shard: &TrngConfig, now: Ps) -> Option<Observation> {
        self.next_due = self.next_due.saturating_add(self.config.interval_bytes);
        let probe = self.probe_config(shard, now);
        let jitter = measure_jitter(
            probe.clone(),
            &self.line,
            self.config.t_a,
            self.config.runs,
            self.rng.fork(),
        )
        .ok()?;
        let lut = measure_lut_delay(probe, self.config.period_horizon, self.rng.fork()).ok()?;
        self.measurements += 1;
        let sigma_ps = jitter.sigma_lut.as_ps();
        let d0_ps = lut.d0.as_ps();
        let jitter_fs = (sigma_ps * 1000.0).round() as u64;

        let Some((base_sigma, base_d0)) = self.baseline else {
            self.warmup.push((sigma_ps, d0_ps));
            if self.warmup.len() >= self.config.baseline_samples {
                let n = self.warmup.len() as f64;
                let sigma = self.warmup.iter().map(|(s, _)| s).sum::<f64>() / n;
                let d0 = self.warmup.iter().map(|(_, d)| d).sum::<f64>() / n;
                self.baseline = Some((sigma, d0));
                self.warmup.clear();
            }
            return Some(Observation {
                jitter_fs,
                baseline_fs: self
                    .baseline
                    .map_or(0, |(s, _)| (s * 1000.0).round() as u64),
                drift: None,
                period_residual_ppm: None,
            });
        };

        let sigma_ratio = sigma_ps / base_sigma;
        let period_ratio = d0_ps / base_d0;
        let detail =
            if sigma_ratio > self.config.sigma_band || sigma_ratio < 1.0 / self.config.sigma_band {
                Some(DriftDetail {
                    probe: DriftProbe::Sigma,
                    ratio_permille: (sigma_ratio * 1000.0).round() as u64,
                })
            } else if (period_ratio - 1.0).abs() > self.config.period_band {
                Some(DriftDetail {
                    probe: DriftProbe::Period,
                    ratio_permille: (period_ratio * 1000.0).round() as u64,
                })
            } else {
                None
            };
        let rising_edge = detail.filter(|_| !self.drifting);
        self.drifting = detail.is_some();
        Some(Observation {
            jitter_fs,
            baseline_fs: (base_sigma * 1000.0).round() as u64,
            drift: rising_edge,
            period_residual_ppm: Some(((period_ratio - 1.0) * 1e6).round() as i64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trng_fpga_sim::noise::{AttackInjection, FlickerParams, GlobalModulation};

    fn monitor(config: MonitorConfig) -> JitterMonitor {
        JitterMonitor::new(config, SimRng::seed_from(0x3A11))
    }

    fn settle_baseline(m: &mut JitterMonitor, shard: &TrngConfig) {
        for _ in 0..m.config.baseline_samples {
            m.observe(shard, Ps::ZERO).expect("observation");
        }
        assert!(m.baseline.is_some(), "baseline must freeze");
    }

    #[test]
    fn healthy_source_never_drifts() {
        let shard = TrngConfig::paper_k1();
        let mut m = monitor(MonitorConfig::default());
        settle_baseline(&mut m, &shard);
        for _ in 0..12 {
            let obs = m.observe(&shard, Ps::ZERO).expect("observation");
            assert!(obs.drift.is_none(), "false drift: {obs:?}");
            assert!(obs.jitter_fs > 0);
            assert!(obs.baseline_fs > 0);
        }
    }

    #[test]
    fn locking_collapses_the_sigma_probe() {
        let shard = TrngConfig::paper_k1();
        let mut m = monitor(MonitorConfig::default());
        settle_baseline(&mut m, &shard);
        let mut attacked = shard.clone();
        attacked.attack = Some(AttackInjection::locking(
            1e12 / attacked.platform.d0_lut_ps,
            0.8,
        ));
        let obs = m.observe(&attacked, Ps::ZERO).expect("observation");
        let drift = obs.drift.expect("locking must trip the monitor");
        assert_eq!(drift.probe, DriftProbe::Sigma);
        assert!(
            drift.ratio_permille < 1000 / 2,
            "expected collapse, ratio {} permille",
            drift.ratio_permille
        );
        // Second out-of-band observation: still drifting, no new edge.
        let obs = m.observe(&attacked, Ps::ZERO).expect("observation");
        assert!(
            obs.drift.is_none(),
            "drift must journal on rising edge only"
        );
    }

    #[test]
    fn flicker_regime_inflates_the_sigma_probe() {
        let shard = TrngConfig::paper_k1();
        let mut m = monitor(MonitorConfig::default());
        settle_baseline(&mut m, &shard);
        let mut flickery = shard.clone();
        flickery.flicker = Some(FlickerParams::new(Ps::from_ps(8.0), Ps::from_us(0.2)));
        let obs = m.observe(&flickery, Ps::ZERO).expect("observation");
        let drift = obs.drift.expect("flicker regime must trip the monitor");
        assert_eq!(drift.probe, DriftProbe::Sigma);
        assert!(drift.ratio_permille > 1700, "{}", drift.ratio_permille);
    }

    #[test]
    fn thermal_drift_moves_the_period_probe() {
        let shard = TrngConfig::paper_k1();
        let mut m = monitor(MonitorConfig::default());
        settle_baseline(&mut m, &shard);
        let mut ramped = shard.clone();
        ramped.global = Some(GlobalModulation::new().with_thermal_drift(30.0));
        // 2 ms into the ramp the factor is 1.06 — outside the 2 % band.
        let obs = m.observe(&ramped, Ps::from_ms(2.0)).expect("observation");
        let drift = obs.drift.expect("ramp must trip the monitor");
        assert_eq!(drift.probe, DriftProbe::Period);
        assert!(drift.ratio_permille > 1020, "{}", drift.ratio_permille);
        // Ramp released: back in band, drift state clears.
        let obs = m.observe(&shard, Ps::ZERO).expect("observation");
        assert!(obs.drift.is_none());
        assert!(!m.drifting);
    }

    #[test]
    fn detail_word_encodes_probe_and_ratio() {
        let d = DriftDetail {
            probe: DriftProbe::Period,
            ratio_permille: 1034,
        };
        let w = d.encode();
        assert_eq!(w >> 56, 2);
        assert_eq!(w & 0x00FF_FFFF_FFFF_FFFF, 1034);
    }

    #[test]
    fn observations_follow_the_byte_schedule() {
        let m = monitor(MonitorConfig::default().with_interval_bytes(256));
        assert!(!m.due(255));
        assert!(m.due(256));
        let mut m = monitor(MonitorConfig::default().with_interval_bytes(256));
        m.observe(&TrngConfig::paper_k1(), Ps::ZERO)
            .expect("observation");
        assert!(!m.due(256), "next observation owed a full interval later");
        assert!(m.due(512));
    }
}
