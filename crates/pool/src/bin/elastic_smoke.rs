//! CI smoke check for elastic shard management: a 3-shard
//! deterministic pool with a scripted persistent fault on shard 1 and
//! a respawn budget. Fails loudly unless exactly one respawn heals the
//! pool, the delivered stream re-passes the continuous tests (zero
//! unhealthy bytes), and the incident journal records exactly the
//! scripted story.
//!
//! Environment overrides:
//! * `TRNG_ELASTIC_SMOKE_BYTES` — bytes to draw (default 32 KiB)

use std::process::ExitCode;
use std::time::Duration;

use trng_core::health::{HealthStatus, OnlineHealth};
use trng_core::trng::TrngConfig;
use trng_model::params::{DesignParams, PlatformParams};
use trng_pool::{
    Conditioning, EntropyPool, FaultInjection, IncidentKind, PoolConfig, PoolHealth, RespawnPolicy,
    ShardFault, ShardState,
};

/// Drift-frozen, injection-locked configuration: a shard swapped onto
/// it reliably trips the continuous tests and fails re-admission.
fn dead_config() -> TrngConfig {
    let mut config = TrngConfig::ideal();
    config.platform = PlatformParams::new(480.0, 17.0, 0.05).expect("valid");
    config.design = DesignParams {
        k: 4,
        n_a: 1,
        np: 1,
        f_clk_hz: (1e12f64 / (21.0 * 480.0)).round() as u64,
        ..DesignParams::paper_k4()
    };
    config
}

fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be an integer, got {v:?}")),
        Err(_) => default,
    }
}

fn main() -> ExitCode {
    let total_bytes = env_usize("TRNG_ELASTIC_SMOKE_BYTES", 32 << 10);
    eprintln!("elastic_smoke: 3 shards, persistent fault on shard 1, {total_bytes} bytes");

    let config = PoolConfig::new(TrngConfig::paper_k1(), 3)
        .with_conditioning(Conditioning::DesignXor)
        .with_seed(0xE1A57)
        .with_block_bytes(64)
        .with_fault(FaultInjection {
            shard: 1,
            after_bytes: 2048,
            fault: ShardFault::Config(Box::new(dead_config())),
            transient: false,
        })
        .with_respawn(RespawnPolicy::new(3, 1))
        .deterministic(true);
    let mut pool = match EntropyPool::new(config) {
        Ok(pool) => pool,
        Err(e) => {
            eprintln!("elastic_smoke: FAILED to build pool: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = pool.wait_online(Duration::from_secs(60)) {
        eprintln!("elastic_smoke: FAILED waiting for admission: {e}");
        return ExitCode::FAILURE;
    }
    let mut delivered = vec![0u8; total_bytes];
    if let Err(e) = pool.fill_bytes(&mut delivered) {
        eprintln!("elastic_smoke: FAILED to fill: {e}");
        return ExitCode::FAILURE;
    }

    let stats = pool.stats();
    print!("{stats}");
    let mut ok = true;

    // Zero unhealthy bytes: the delivered stream re-passes the same
    // continuous tests that guard the shards.
    let mut gate = OnlineHealth::new(0.5);
    let clean = delivered
        .iter()
        .flat_map(|&byte| (0..8).rev().map(move |i| byte >> i & 1 == 1))
        .all(|bit| gate.push(bit) == HealthStatus::Ok);
    if !clean {
        eprintln!("elastic_smoke: FAILED: delivered stream alarmed a fresh health gate");
        ok = false;
    }

    // Exactly one respawn, healing shard 1's death.
    if stats.respawns != 1 {
        eprintln!(
            "elastic_smoke: FAILED: {} respawns, expected 1",
            stats.respawns
        );
        ok = false;
    }
    if stats.shards.len() != 4
        || stats.shards[1].state != ShardState::Retired
        || !stats.shards[1].superseded
        || stats.shards[3].state != ShardState::Online
    {
        eprintln!("elastic_smoke: FAILED: pool did not heal shard 1 via shard 3");
        ok = false;
    }
    if stats.health() != PoolHealth::Healthy {
        eprintln!("elastic_smoke: FAILED: final health {}", stats.health());
        ok = false;
    }

    // Journal length matches the script: 3 spawns + alarm + quarantine
    // + retire on shard 1 + one respawn = 7 events, none evicted.
    let expected = [
        (0usize, IncidentKind::Spawn),
        (1, IncidentKind::Spawn),
        (2, IncidentKind::Spawn),
        (1, IncidentKind::Alarm),
        (1, IncidentKind::Quarantine),
        (1, IncidentKind::Retire),
        (3, IncidentKind::Respawn),
    ];
    let got: Vec<(usize, IncidentKind)> = stats.journal.iter().map(|e| (e.shard, e.kind)).collect();
    if got != expected {
        eprintln!("elastic_smoke: FAILED: journal mismatch: {got:?}");
        ok = false;
    }
    if stats.journal_recorded != expected.len() as u64 {
        eprintln!(
            "elastic_smoke: FAILED: journal recorded {} events, expected {}",
            stats.journal_recorded,
            expected.len()
        );
        ok = false;
    }

    if ok {
        eprintln!("elastic_smoke: OK ({} journal events)", stats.journal.len());
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
