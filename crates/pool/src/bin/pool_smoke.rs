//! CI smoke check for the entropy pool: bring up a small threaded
//! pool, stream a configurable number of bytes through it, and fail
//! loudly on any health alarm, retired shard, or degenerate output.
//!
//! Environment overrides:
//! * `TRNG_POOL_SMOKE_BYTES`  — bytes to draw (default 1 MiB)
//! * `TRNG_POOL_SMOKE_SHARDS` — shard count (default 2)

use std::process::ExitCode;
use std::time::{Duration, Instant};

use trng_core::trng::TrngConfig;
use trng_pool::{Conditioning, EntropyPool, PoolConfig, ShardState};

fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be an integer, got {v:?}")),
        Err(_) => default,
    }
}

fn main() -> ExitCode {
    let total_bytes = env_usize("TRNG_POOL_SMOKE_BYTES", 1 << 20);
    let shards = env_usize("TRNG_POOL_SMOKE_SHARDS", 2);
    eprintln!("pool_smoke: {shards} shards, {total_bytes} bytes, raw conditioning");

    let config = PoolConfig::new(TrngConfig::paper_k1(), shards)
        .with_conditioning(Conditioning::Raw)
        .with_seed(0xC1C1);
    let mut pool = match EntropyPool::new(config) {
        Ok(pool) => pool,
        Err(e) => {
            eprintln!("pool_smoke: FAILED to build pool: {e}");
            return ExitCode::FAILURE;
        }
    };
    match pool.wait_online(Duration::from_secs(120)) {
        Ok(online) if online == shards => {}
        Ok(online) => {
            eprintln!("pool_smoke: FAILED: only {online}/{shards} shards came online");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("pool_smoke: FAILED waiting for admission: {e}");
            return ExitCode::FAILURE;
        }
    }

    let started = Instant::now();
    let mut histogram = [0u64; 256];
    let mut chunk = vec![0u8; 64 * 1024];
    let mut drawn = 0usize;
    while drawn < total_bytes {
        let want = chunk.len().min(total_bytes - drawn);
        if let Err(e) = pool.fill_bytes(&mut chunk[..want]) {
            eprintln!("pool_smoke: FAILED after {drawn} bytes: {e}");
            return ExitCode::FAILURE;
        }
        for &b in &chunk[..want] {
            histogram[b as usize] += 1;
        }
        drawn += want;
    }
    let wall = started.elapsed();

    let stats = pool.stats();
    print!("{stats}");
    let wall_mbps = drawn as f64 * 8.0 / wall.as_secs_f64() / 1e6;
    let sim_mbps = stats.sim_throughput_bps() / 1e6;
    eprintln!(
        "pool_smoke: {drawn} bytes in {:.2} s wall ({wall_mbps:.3} Mb/s wall, \
         {sim_mbps:.2} Mb/s simulated)",
        wall.as_secs_f64()
    );

    let mut ok = true;
    if stats.total_alarms() != 0 {
        eprintln!(
            "pool_smoke: FAILED: {} health alarms on a healthy source",
            stats.total_alarms()
        );
        ok = false;
    }
    for s in &stats.shards {
        if s.state != ShardState::Online {
            eprintln!("pool_smoke: FAILED: shard {} ended {}", s.id, s.state);
            ok = false;
        }
        if s.bytes_produced == 0 {
            eprintln!("pool_smoke: FAILED: shard {} produced nothing", s.id);
            ok = false;
        }
    }
    // A raw TRNG stream of this size must exercise (nearly) the whole
    // byte alphabet; a stuck or grossly biased source cannot.
    let distinct = histogram.iter().filter(|&&n| n > 0).count();
    if total_bytes >= 4096 && distinct < 200 {
        eprintln!("pool_smoke: FAILED: only {distinct}/256 distinct byte values");
        ok = false;
    }
    if ok {
        eprintln!("pool_smoke: OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
