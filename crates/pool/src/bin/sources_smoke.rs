//! CI smoke check for the pluggable entropy backends: each of the
//! four sources runs alone behind a deterministic one-shard pool,
//! must pass AIS-31 admission, serve bytes, then survive an injected
//! transient Stuck fault — alarm, quarantine, re-admission — and
//! keep serving. A final 4-shard pool mixes all four backends at
//! once.
//!
//! Environment overrides:
//! * `TRNG_SOURCES_SMOKE_BYTES` — bytes per backend (default 8 KiB)

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use trng_core::trng::TrngConfig;
use trng_pool::{
    Conditioning, DualOscConfig, EntropyPool, FaultInjection, PoolConfig, RecordedTrace,
    ShardFault, ShardState, SourceKind, SourceSpec,
};

const SEED: u64 = 0x50CE;

fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be an integer, got {v:?}")),
        Err(_) => default,
    }
}

fn record_trace(nbytes: usize) -> Arc<RecordedTrace> {
    Arc::new(
        RecordedTrace::record(&TrngConfig::paper_k1(), SEED, nbytes)
            .expect("trace capture must succeed"),
    )
}

/// Runs one pool to completion and verifies the quarantine story:
/// every shard alarmed exactly once, was re-admitted, ended online,
/// and the output is not degenerate.
fn run_pool(label: &str, specs: Vec<SourceSpec>, bytes: usize) -> bool {
    let shards = specs.len();
    let mut config = PoolConfig::new(TrngConfig::paper_k1(), shards)
        .with_conditioning(Conditioning::DesignXor)
        .with_seed(SEED)
        .deterministic(true)
        .with_sources(specs);
    // Each shard serves roughly bytes/shards of the total; trip it a
    // quarter of the way through its own share, staggered per shard.
    for shard in 0..shards {
        config = config.with_fault(FaultInjection {
            shard,
            after_bytes: (bytes / (4 * shards)).max(256) as u64 + 64 * shard as u64,
            fault: ShardFault::Stuck,
            transient: true,
        });
    }
    let mut pool = match EntropyPool::new(config) {
        Ok(pool) => pool,
        Err(e) => {
            eprintln!("sources_smoke: FAILED to build {label} pool: {e}");
            return false;
        }
    };
    match pool.wait_online(Duration::from_secs(120)) {
        Ok(online) if online == shards => {}
        Ok(online) => {
            eprintln!(
                "sources_smoke: FAILED: {label}: only {online}/{shards} shards passed admission"
            );
            return false;
        }
        Err(e) => {
            eprintln!("sources_smoke: FAILED: {label} admission: {e}");
            return false;
        }
    }

    let mut sink = vec![0u8; bytes];
    if let Err(e) = pool.fill_bytes(&mut sink) {
        eprintln!("sources_smoke: FAILED: {label} fill: {e}");
        return false;
    }

    let mut ok = true;
    let stats = pool.stats();
    for s in &stats.shards {
        if s.alarms != 1 || s.readmissions != 1 || s.startup_runs != 2 {
            eprintln!(
                "sources_smoke: FAILED: {label} shard {} ({}) expected 1 alarm / 1 readmission \
                 / 2 startups, got {} / {} / {}",
                s.id, s.source, s.alarms, s.readmissions, s.startup_runs
            );
            ok = false;
        }
        if s.state != ShardState::Online {
            eprintln!(
                "sources_smoke: FAILED: {label} shard {} ({}) ended {}",
                s.id, s.source, s.state
            );
            ok = false;
        }
    }
    let mut histogram = [0u64; 256];
    for &b in &sink {
        histogram[b as usize] += 1;
    }
    let distinct = histogram.iter().filter(|&&n| n > 0).count();
    if bytes >= 4096 && distinct < 200 {
        eprintln!("sources_smoke: FAILED: {label}: only {distinct}/256 distinct byte values");
        ok = false;
    }
    if ok {
        eprintln!(
            "sources_smoke: {label}: {bytes} bytes, quarantine/readmit on all {shards} shard(s)"
        );
    }
    ok
}

fn main() -> ExitCode {
    let bytes = env_usize("TRNG_SOURCES_SMOKE_BYTES", 8 * 1024);
    eprintln!(
        "sources_smoke: {bytes} bytes per backend, design-rate XOR, Stuck drill on every shard"
    );

    // Enough raw material for two startups plus the whole output even
    // if one shard serves the full volume.
    let trace_bytes = 2 * (2048 / 8 * 7) + bytes * 7 + 4096;
    let mut ok = true;
    for kind in SourceKind::all() {
        let spec = match kind {
            SourceKind::CarryChain => SourceSpec::CarryChain,
            SourceKind::DualOscillator => {
                SourceSpec::DualOscillator(Box::new(DualOscConfig::betrusted_default()))
            }
            SourceKind::TraceReplay => SourceSpec::TraceReplay(record_trace(trace_bytes)),
            SourceKind::OsEntropy => SourceSpec::OsEntropy,
        };
        ok &= run_pool(kind.as_str(), vec![spec], bytes);
    }
    ok &= run_pool(
        "mixed_4",
        vec![
            SourceSpec::CarryChain,
            SourceSpec::DualOscillator(Box::new(DualOscConfig::betrusted_default())),
            SourceSpec::TraceReplay(record_trace(trace_bytes)),
            SourceSpec::OsEntropy,
        ],
        bytes,
    );

    if ok {
        eprintln!("sources_smoke: OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
