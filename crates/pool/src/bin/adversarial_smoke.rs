//! CI smoke check for the adversarial detection stack: a 2-shard
//! deterministic pool with the jitter monitor on, hit by two scripted
//! campaigns — injection locking on shard 0 and a severe thermal
//! runaway on shard 1. Fails loudly unless:
//!
//! * the monitor's drift alarm fires on the locked shard (the SP
//!   800-90B gate is provably blind to locking — the locked bits stay
//!   statistically plausible, which is exactly why the monitor
//!   exists);
//! * the runaway shard raises both a drift event and a 90B health
//!   alarm, monitor strictly first, and retires;
//! * the delivered stream re-passes the continuous tests (zero
//!   unhealthy bytes).
//!
//! Environment overrides:
//! * `TRNG_ADVERSARIAL_SMOKE_BYTES` — bytes to draw (default 4 KiB)

use std::process::ExitCode;
use std::time::Duration;

use trng_core::health::{HealthStatus, OnlineHealth};
use trng_core::trng::TrngConfig;
use trng_fpga_sim::scenario::Scenario;
use trng_fpga_sim::time::Ps;
use trng_pool::{
    compile_campaign, onset_bytes, Conditioning, EntropyPool, IncidentKind, MonitorConfig,
    PoolConfig, ShardState,
};

fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be an integer, got {v:?}")),
        Err(_) => default,
    }
}

fn main() -> ExitCode {
    let total_bytes = env_usize("TRNG_ADVERSARIAL_SMOKE_BYTES", 4 << 10);
    eprintln!(
        "adversarial_smoke: locking on shard 0, thermal runaway on shard 1, {total_bytes} bytes"
    );

    let base = TrngConfig::paper_k1();
    let onset_time = Ps::from_us(300.0);
    let onset = onset_bytes(onset_time, Conditioning::DesignXor, &base.design);
    let locking = Scenario::injection_locking(onset_time, 1e12 / 480.0, 0.85);
    let runaway = Scenario::thermal_ramp(onset_time, 5000.0);
    let mut faults = compile_campaign(&locking, Conditioning::DesignXor, &base.design, &[0], false);
    faults.extend(compile_campaign(
        &runaway,
        Conditioning::DesignXor,
        &base.design,
        &[1],
        false,
    ));
    let config = PoolConfig::new(base, 2)
        .with_conditioning(Conditioning::DesignXor)
        .with_seed(0xAD5A)
        .with_block_bytes(64)
        .with_faults(faults)
        .with_monitor(MonitorConfig::default().with_interval_bytes(128))
        .deterministic(true);
    let mut pool = match EntropyPool::new(config) {
        Ok(pool) => pool,
        Err(e) => {
            eprintln!("adversarial_smoke: FAILED to build pool: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = pool.wait_online(Duration::from_secs(60)) {
        eprintln!("adversarial_smoke: FAILED waiting for admission: {e}");
        return ExitCode::FAILURE;
    }
    let mut delivered = vec![0u8; total_bytes];
    if let Err(e) = pool.fill_bytes(&mut delivered) {
        eprintln!("adversarial_smoke: FAILED to fill: {e}");
        return ExitCode::FAILURE;
    }

    let stats = pool.stats();
    print!("{stats}");
    let mut ok = true;

    // Zero unhealthy bytes: the delivered stream re-passes the same
    // continuous tests that guard the shards.
    let mut gate = OnlineHealth::new(0.5);
    let clean = delivered
        .iter()
        .flat_map(|&byte| (0..8).rev().map(move |i| byte >> i & 1 == 1))
        .all(|bit| gate.push(bit) == HealthStatus::Ok);
    if !clean {
        eprintln!("adversarial_smoke: FAILED: delivered stream alarmed a fresh health gate");
        ok = false;
    }

    let first = |shard: usize, kind: IncidentKind| {
        stats
            .journal
            .iter()
            .find(|e| e.shard == shard && e.kind == kind)
            .cloned()
    };

    // The locked shard: monitor drift alarm at or after the onset.
    match first(0, IncidentKind::JitterDrift) {
        Some(drift) if drift.at_bytes >= onset => {
            eprintln!(
                "adversarial_smoke: locking drift alarm at byte {} (onset {onset}, latency {} bytes)",
                drift.at_bytes,
                drift.at_bytes - onset
            );
        }
        Some(drift) => {
            eprintln!(
                "adversarial_smoke: FAILED: drift at {} precedes onset {onset}",
                drift.at_bytes
            );
            ok = false;
        }
        None => {
            eprintln!("adversarial_smoke: FAILED: locking campaign never tripped the monitor");
            ok = false;
        }
    }

    // The runaway shard: both gates fire, monitor strictly first, and
    // the persistent environment forces retirement.
    match (
        first(1, IncidentKind::JitterDrift),
        first(1, IncidentKind::Alarm),
    ) {
        (Some(drift), Some(alarm)) if drift.seq < alarm.seq => {
            eprintln!(
                "adversarial_smoke: runaway drift at byte {} then 90B alarm at byte {}",
                drift.at_bytes, alarm.at_bytes
            );
        }
        (Some(_), Some(_)) => {
            eprintln!("adversarial_smoke: FAILED: the 90B alarm pre-empted the monitor");
            ok = false;
        }
        (drift, alarm) => {
            eprintln!(
                "adversarial_smoke: FAILED: runaway detection incomplete (drift {drift:?}, alarm {alarm:?})"
            );
            ok = false;
        }
    }
    if stats.shards[1].state != ShardState::Retired {
        eprintln!(
            "adversarial_smoke: FAILED: shard 1 is {:?}, expected Retired",
            stats.shards[1].state
        );
        ok = false;
    }

    // The monitor ran on schedule on every shard.
    for s in &stats.shards {
        if s.monitor_measurements == 0 {
            eprintln!(
                "adversarial_smoke: FAILED: monitor never ran on shard {}",
                s.id
            );
            ok = false;
        }
    }

    if ok {
        eprintln!(
            "adversarial_smoke: OK ({} journal events)",
            stats.journal.len()
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
