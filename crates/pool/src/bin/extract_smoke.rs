//! CI smoke test for the composed Toeplitz extract stage: a 2-shard
//! deterministic composed pool streams ~1 MB, and the run fails on any
//! health alarm, retired shard, claimed > measured min-entropy, or a
//! replay divergence.
//!
//! Checks:
//! 1. Both shards admit and stay online for the whole stream — zero
//!    alarms, zero quarantines.
//! 2. The composed stage's leftover-hash claim is conservative:
//!    `claimed <= measured` min-entropy on the delivered stream, with
//!    the measured estimate above a sanity floor.
//! 3. The ratio was sized from the per-source claim (no wider than the
//!    design's np = 7 XOR rate).
//! 4. The composed stream is seed-replayable: a second pool built from
//!    the same configuration delivers the byte-identical prefix.
//!
//! Environment: `TRNG_EXTRACT_SMOKE_BYTES` (default 1_000_000),
//! `TRNG_EXTRACT_SMOKE_SHARDS` (default 2).

use std::process::ExitCode;
use std::time::Duration;

use trng_core::trng::TrngConfig;
use trng_pool::{ComposedExtract, Conditioning, EntropyPool, NoiseBackend, PoolConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn config(shards: usize) -> PoolConfig {
    // Raw per-shard conditioning: the composed stage is the only
    // conditioner, so the smoke exercises the full strength claim.
    // The batched noise backend is statistically equivalent to scalar
    // and an order of magnitude faster — this run hashes ~5 raw input
    // bits per output bit.
    PoolConfig::new(TrngConfig::paper_k1(), shards)
        .with_conditioning(Conditioning::Raw)
        .with_noise_backend(NoiseBackend::Batched)
        .with_composed_extract(ComposedExtract::new(32, 0x70E9))
        .with_seed(0xE47AC7)
        .deterministic(true)
}

fn main() -> ExitCode {
    let bytes = env_usize("TRNG_EXTRACT_SMOKE_BYTES", 1_000_000);
    let shards = env_usize("TRNG_EXTRACT_SMOKE_SHARDS", 2);
    println!("extract_smoke: {shards} shards, {bytes} composed bytes");

    let mut pool = match EntropyPool::new(config(shards)) {
        Ok(pool) => pool,
        Err(e) => {
            eprintln!("extract_smoke: pool build failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let online = match pool.wait_online(Duration::from_secs(600)) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("extract_smoke: admission failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if online != shards {
        eprintln!("extract_smoke: only {online}/{shards} shards admitted");
        return ExitCode::FAILURE;
    }

    let mut stream = vec![0u8; bytes];
    if let Err(e) = pool.fill_bytes(&mut stream) {
        eprintln!("extract_smoke: fill failed: {e}");
        return ExitCode::FAILURE;
    }
    let stats = pool.stats();
    let composed = stats.composed.as_ref().expect("composed stage configured");
    println!(
        "extract_smoke: ratio {} at eps 2^-{}, input claim {:.4}, \
         claimed {:.4} vs measured {:.4} min-entropy/bit",
        composed.ratio,
        composed.epsilon_log2,
        composed.input_claim_min_entropy,
        composed.claimed_min_entropy,
        composed.measured_min_entropy,
    );

    if stats.total_alarms() != 0 {
        eprintln!(
            "extract_smoke: {} health alarms on a clean run",
            stats.total_alarms()
        );
        return ExitCode::FAILURE;
    }
    if stats.shards.iter().any(|s| s.state.to_string() != "online") {
        eprintln!("extract_smoke: a shard left the online state:\n{stats}");
        return ExitCode::FAILURE;
    }
    if composed.ratio > 7 {
        eprintln!(
            "extract_smoke: leftover-hash ratio {} wider than the design's np = 7",
            composed.ratio
        );
        return ExitCode::FAILURE;
    }
    if composed.bytes_extracted < bytes as u64 {
        eprintln!(
            "extract_smoke: only {} bytes extracted for a {} byte delivery",
            composed.bytes_extracted, bytes
        );
        return ExitCode::FAILURE;
    }
    // The leftover-hash claim must under-promise the stream: measured
    // MCV min-entropy of near-uniform bytes sits near 1.0/bit, far
    // above the ~0.5/bit claim at eps 2^-32.
    if composed.claimed_min_entropy > composed.measured_min_entropy {
        eprintln!(
            "extract_smoke: claimed {:.4} exceeds measured {:.4} min-entropy/bit",
            composed.claimed_min_entropy, composed.measured_min_entropy
        );
        return ExitCode::FAILURE;
    }
    if composed.measured_min_entropy < 0.9 {
        eprintln!(
            "extract_smoke: measured min-entropy {:.4} below the 0.9/bit sanity floor",
            composed.measured_min_entropy
        );
        return ExitCode::FAILURE;
    }

    // Seed-replayability: the composed stream is a pure function of
    // the configuration.
    let mut replay_pool = EntropyPool::new(config(shards)).expect("replay pool");
    let prefix = bytes.min(4096);
    let mut replay = vec![0u8; prefix];
    if let Err(e) = replay_pool.fill_bytes(&mut replay) {
        eprintln!("extract_smoke: replay fill failed: {e}");
        return ExitCode::FAILURE;
    }
    if replay != stream[..prefix] {
        eprintln!("extract_smoke: composed stream is not seed-replayable");
        return ExitCode::FAILURE;
    }

    println!("extract_smoke: PASS");
    ExitCode::SUCCESS
}
