//! CI smoke check for the cross-shard coherence detector: a 3-shard
//! deterministic pool with the jitter monitor and detector on, hit by
//! a sub-threshold shared supply tone (0.4 % @ 5 MHz) on shards 0 and
//! 1 — the common-mode attack every per-shard gate is provably blind
//! to (DESIGN.md §12/§16). Fails loudly unless:
//!
//! * the 2-of-3 tone trips the quorum and journals exactly the
//!   expected `CommonModeCoherence` event — coherence probe code,
//!   aliased 5 MHz line, quorum mask 0b011, plausible magnitude —
//!   while the per-shard monitor and 90B gates stay silent;
//! * a control pool with the tone on *one* shard journals nothing (a
//!   local line must not make quorum);
//! * the detected run is byte-identically replayable, stats included;
//! * the delivered stream re-passes the continuous tests.
//!
//! Environment overrides:
//! * `TRNG_COHERENCE_SMOKE_BYTES` — bytes to draw (default 12 KiB)

use std::process::ExitCode;
use std::time::Duration;

use trng_core::health::{HealthStatus, OnlineHealth};
use trng_core::trng::TrngConfig;
use trng_fpga_sim::scenario::Scenario;
use trng_fpga_sim::time::Ps;
use trng_pool::{
    compile_campaign, decode_coherence_detail, onset_bytes, CoherenceConfig, Conditioning,
    EntropyPool, IncidentKind, MonitorConfig, PoolConfig, ProbeCode,
};

fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be an integer, got {v:?}")),
        Err(_) => default,
    }
}

fn build_pool(targets: &[usize], total_bytes: usize) -> Result<(EntropyPool, Vec<u8>), String> {
    let base = TrngConfig::paper_k1();
    let scenario = Scenario::shared_supply_tone(Ps::from_us(300.0), 5e6, 0.004);
    let faults = compile_campaign(
        &scenario,
        Conditioning::DesignXor,
        &base.design,
        targets,
        false,
    );
    let config = PoolConfig::new(base, 3)
        .with_conditioning(Conditioning::DesignXor)
        .with_seed(0xC0_4E)
        .with_block_bytes(64)
        .with_faults(faults)
        .with_monitor(MonitorConfig::default().with_interval_bytes(128))
        .with_coherence(CoherenceConfig::new().with_quorum(2))
        .deterministic(true);
    let mut pool = EntropyPool::new(config).map_err(|e| format!("build: {e}"))?;
    pool.wait_online(Duration::from_secs(60))
        .map_err(|e| format!("admission: {e}"))?;
    let mut delivered = vec![0u8; total_bytes];
    pool.fill_bytes(&mut delivered)
        .map_err(|e| format!("fill: {e}"))?;
    Ok((pool, delivered))
}

fn main() -> ExitCode {
    let total_bytes = env_usize("TRNG_COHERENCE_SMOKE_BYTES", 12 << 10);
    eprintln!(
        "coherence_smoke: shared 0.4% @ 5 MHz tone on shards 0+1 of 3, quorum 2, {total_bytes} bytes"
    );
    let onset = onset_bytes(
        Ps::from_us(300.0),
        Conditioning::DesignXor,
        &TrngConfig::paper_k1().design,
    );
    let mut ok = true;

    // --- The quorum run: tone on shards 0 and 1. ---
    let (pool, delivered) = match build_pool(&[0, 1], total_bytes) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("coherence_smoke: FAILED: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stats = pool.stats();
    print!("{stats}");

    // Zero unhealthy bytes.
    let mut gate = OnlineHealth::new(0.5);
    let clean = delivered
        .iter()
        .flat_map(|&byte| (0..8).rev().map(move |i| byte >> i & 1 == 1))
        .all(|bit| gate.push(bit) == HealthStatus::Ok);
    if !clean {
        eprintln!("coherence_smoke: FAILED: delivered stream alarmed a fresh health gate");
        ok = false;
    }

    // The per-shard gates stay blind — that is the point of the drill.
    for e in &stats.journal {
        if matches!(e.kind, IncidentKind::JitterDrift | IncidentKind::Alarm) {
            eprintln!("coherence_smoke: FAILED: per-shard gate fired unexpectedly: {e:?}");
            ok = false;
        }
    }

    // Exactly the expected coherence event.
    match stats
        .journal
        .iter()
        .find(|e| e.kind == IncidentKind::CommonModeCoherence)
    {
        Some(event) => {
            if event.shard != 0 {
                eprintln!(
                    "coherence_smoke: FAILED: event on shard {}, expected the lowest quorum shard 0",
                    event.shard
                );
                ok = false;
            }
            if event.at_bytes < onset || event.at_bytes - onset > 2560 {
                eprintln!(
                    "coherence_smoke: FAILED: detection at byte {} outside (onset {onset}, latency <= 2560]",
                    event.at_bytes
                );
                ok = false;
            }
            if ProbeCode::from_detail(event.detail) != Some(ProbeCode::Coherence) {
                eprintln!(
                    "coherence_smoke: FAILED: wrong probe code in detail {:#018x}",
                    event.detail
                );
                ok = false;
            }
            match decode_coherence_detail(event.detail) {
                Some((bin, mask, permille)) => {
                    if !(5..=7).contains(&bin) || mask != 0b011 || !(2..=6).contains(&permille) {
                        eprintln!(
                            "coherence_smoke: FAILED: detail bin {bin} mask {mask:#b} \
                             permille {permille}, expected the aliased line on shards 0+1"
                        );
                        ok = false;
                    } else {
                        eprintln!(
                            "coherence_smoke: quorum at byte {} (latency {} bytes): \
                             bin {bin}, mask {mask:#05b}, ~{permille} permille",
                            event.at_bytes,
                            event.at_bytes - onset
                        );
                    }
                }
                None => {
                    eprintln!("coherence_smoke: FAILED: detail does not decode as coherence");
                    ok = false;
                }
            }
        }
        None => {
            eprintln!("coherence_smoke: FAILED: the shared tone never tripped the quorum");
            ok = false;
        }
    }
    match &stats.coherence {
        Some(c) if c.events >= 1 && c.passes > 0 => {}
        other => {
            eprintln!("coherence_smoke: FAILED: coherence stats missing or empty: {other:?}");
            ok = false;
        }
    }

    // Byte-identical replay, detector state included.
    match build_pool(&[0, 1], total_bytes) {
        Ok((replay_pool, replayed)) => {
            if replayed != delivered {
                eprintln!("coherence_smoke: FAILED: replay diverged from the first run");
                ok = false;
            }
            if replay_pool.stats() != stats {
                eprintln!("coherence_smoke: FAILED: replayed stats diverged");
                ok = false;
            }
        }
        Err(e) => {
            eprintln!("coherence_smoke: FAILED: replay {e}");
            ok = false;
        }
    }

    // --- Control: the same tone on one shard only. ---
    match build_pool(&[2], total_bytes) {
        Ok((control, _)) => {
            let control_stats = control.stats();
            if control_stats
                .journal
                .iter()
                .any(|e| e.kind == IncidentKind::CommonModeCoherence)
            {
                eprintln!("coherence_smoke: FAILED: a single-shard tone tripped the quorum");
                ok = false;
            } else {
                eprintln!("coherence_smoke: single-shard control stayed below quorum");
            }
        }
        Err(e) => {
            eprintln!("coherence_smoke: FAILED: control {e}");
            ok = false;
        }
    }

    if ok {
        eprintln!(
            "coherence_smoke: OK ({} journal events)",
            stats.journal.len()
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
