//! Pool observability: per-shard lifecycle state and counters,
//! published lock-free so [`PoolStats`] snapshots
//! never stall the producers.

use core::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::time::Duration;

use trng_fpga_sim::noise::NoiseBackend;
use trng_sources::SourceKind;
use trng_testkit::json::Json;

use crate::coherence::{CoherenceStats, ResidualSeries};
use crate::journal::IncidentEvent;
use crate::shard::Conditioning;

/// Lifecycle state of one shard.
///
/// ```text
///             startup passed
///  Starting ------------------> Online
///     |                        ^     |
///     | startup failed         |     | continuous-test alarm
///     v        re-admitted     |     v
///  Retired <------------------ Quarantined
///     ^     startup failed or        |
///     |     alarm budget spent       |
///     +------------------------------+
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShardState {
    /// Built, start-up self-test not passed yet; contributes nothing.
    Starting,
    /// Healthy and feeding the pool.
    Online,
    /// A continuous test alarmed; the shard is isolated and must pass
    /// a fresh start-up test before re-admission.
    Quarantined,
    /// Permanently out of service (start-up failure or alarm budget
    /// exhausted).
    Retired,
}

impl ShardState {
    pub(crate) fn as_u8(self) -> u8 {
        match self {
            ShardState::Starting => 0,
            ShardState::Online => 1,
            ShardState::Quarantined => 2,
            ShardState::Retired => 3,
        }
    }

    pub(crate) fn from_u8(v: u8) -> Self {
        match v {
            0 => ShardState::Starting,
            1 => ShardState::Online,
            2 => ShardState::Quarantined,
            _ => ShardState::Retired,
        }
    }
}

impl fmt::Display for ShardState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ShardState::Starting => "starting",
            ShardState::Online => "online",
            ShardState::Quarantined => "quarantined",
            ShardState::Retired => "retired",
        })
    }
}

/// How a shard came to exist in the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShardOrigin {
    /// Part of the pool's initial complement.
    Initial,
    /// Spawned by the respawn supervisor to supersede a retired shard.
    Respawn {
        /// Id of the retired shard this one replaces.
        replaces: usize,
    },
}

impl fmt::Display for ShardOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardOrigin::Initial => f.write_str("initial"),
            ShardOrigin::Respawn { replaces } => write!(f, "respawn of {replaces}"),
        }
    }
}

/// Lock-free shared counters one shard publishes into.
#[derive(Debug, Default)]
pub(crate) struct ShardShared {
    state: AtomicU8,
    alarms: AtomicU64,
    readmissions: AtomicU64,
    startup_runs: AtomicU64,
    bytes_produced: AtomicU64,
    raw_bits: AtomicU64,
    sim_ns: AtomicU64,
    ring_high_water: AtomicUsize,
    /// 0 = initial shard; `replaced_id + 1` for a respawned one.
    replaces_plus1: AtomicU64,
    /// `true` once a replacement shard has taken over for this one.
    superseded: AtomicBool,
    monitor_measurements: AtomicU64,
    jitter_fs: AtomicU64,
    jitter_baseline_fs: AtomicU64,
    monitor_drift_events: AtomicU64,
    /// `SourceKind::as_u8` of the backend feeding this shard.
    source_kind: AtomicU8,
    /// `f64::to_bits` of the backend's per-raw-bit min-entropy claim.
    claim_bits: AtomicU64,
    /// `NoiseBackend::as_u8` of the live instance's noise synthesis.
    noise_backend: AtomicU8,
    /// `Conditioning::encode_label` of the shard's conditioning stage.
    conditioning: AtomicU64,
    /// Period-probe residual ring the coherence detector scans; fed by
    /// the shard's monitor, read lock-free from consumer threads.
    residuals: ResidualSeries,
    /// Set by the coherence detector under `CoherenceResponse::AlarmAll`;
    /// the shard consumes it at the top of its next production call and
    /// raises its normal alarm.
    alarm_requested: AtomicBool,
}

impl ShardShared {
    pub fn set_state(&self, s: ShardState) {
        self.state.store(s.as_u8(), Ordering::Release);
    }

    pub fn state(&self) -> ShardState {
        ShardState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// Marks this shard as a supervisor-spawned replacement.
    pub fn mark_respawned(&self, replaces: usize) {
        self.replaces_plus1
            .store(replaces as u64 + 1, Ordering::Release);
    }

    /// Marks this (retired) shard as superseded by a replacement.
    pub fn set_superseded(&self) {
        self.superseded.store(true, Ordering::Release);
    }

    pub fn superseded(&self) -> bool {
        self.superseded.load(Ordering::Acquire)
    }

    pub fn count_alarm(&self) {
        self.alarms.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count_readmission(&self) {
        self.readmissions.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count_startup_run(&self) {
        self.startup_runs.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_bytes(&self, n: u64) {
        self.bytes_produced.fetch_add(n, Ordering::Relaxed);
    }

    pub fn set_raw_bits(&self, n: u64) {
        self.raw_bits.store(n, Ordering::Relaxed);
    }

    pub fn set_sim_ns(&self, ns: u64) {
        self.sim_ns.store(ns, Ordering::Relaxed);
    }

    pub fn set_ring_high_water(&self, n: usize) {
        self.ring_high_water.fetch_max(n, Ordering::Relaxed);
    }

    /// Publishes one jitter-monitor observation: the latest estimated
    /// per-LUT differential sigma and the baseline it is judged
    /// against, both in femtoseconds.
    pub fn record_monitor(&self, jitter_fs: u64, baseline_fs: u64) {
        self.monitor_measurements.fetch_add(1, Ordering::Relaxed);
        self.jitter_fs.store(jitter_fs, Ordering::Relaxed);
        self.jitter_baseline_fs
            .store(baseline_fs, Ordering::Relaxed);
    }

    pub fn count_monitor_drift(&self) {
        self.monitor_drift_events.fetch_add(1, Ordering::Relaxed);
    }

    /// The shard's period-probe residual series (coherence detector input).
    pub fn residuals(&self) -> &ResidualSeries {
        &self.residuals
    }

    /// Ask the shard to raise an alarm on its next production call
    /// (coherence-detector escalation under `AlarmAll`).
    pub fn request_alarm(&self) {
        self.alarm_requested.store(true, Ordering::Release);
    }

    /// Consume a pending externally-requested alarm, if any. Called by
    /// the owning shard; returns `true` at most once per request.
    pub fn take_alarm_request(&self) -> bool {
        self.alarm_requested.swap(false, Ordering::AcqRel)
    }

    /// Labels this shard with its entropy backend, the min-entropy
    /// claim that parameterises its health tests, and the noise
    /// backend the live instance actually synthesises with.
    pub fn set_source(&self, kind: SourceKind, claim: f64, backend: NoiseBackend) {
        self.source_kind.store(kind.as_u8(), Ordering::Release);
        self.claim_bits.store(claim.to_bits(), Ordering::Release);
        self.noise_backend.store(backend.as_u8(), Ordering::Release);
    }

    /// Labels this shard's conditioning stage
    /// ([`Conditioning::encode_label`]); re-published together with the
    /// source label after fault rebuilds.
    pub fn set_conditioning(&self, encoded: u64) {
        self.conditioning.store(encoded, Ordering::Release);
    }

    pub fn snapshot(&self, id: usize) -> ShardStats {
        let origin = match self.replaces_plus1.load(Ordering::Acquire) {
            0 => ShardOrigin::Initial,
            n => ShardOrigin::Respawn {
                replaces: (n - 1) as usize,
            },
        };
        ShardStats {
            id,
            state: self.state(),
            origin,
            superseded: self.superseded(),
            alarms: self.alarms.load(Ordering::Relaxed),
            readmissions: self.readmissions.load(Ordering::Relaxed),
            startup_runs: self.startup_runs.load(Ordering::Relaxed),
            bytes_produced: self.bytes_produced.load(Ordering::Relaxed),
            raw_bits: self.raw_bits.load(Ordering::Relaxed),
            sim_elapsed: Duration::from_nanos(self.sim_ns.load(Ordering::Relaxed)),
            ring_high_water: self.ring_high_water.load(Ordering::Relaxed),
            monitor_measurements: self.monitor_measurements.load(Ordering::Relaxed),
            jitter_fs: self.jitter_fs.load(Ordering::Relaxed),
            jitter_baseline_fs: self.jitter_baseline_fs.load(Ordering::Relaxed),
            monitor_drift_events: self.monitor_drift_events.load(Ordering::Relaxed),
            source: SourceKind::from_u8(self.source_kind.load(Ordering::Acquire)),
            claimed_min_entropy: f64::from_bits(self.claim_bits.load(Ordering::Acquire)),
            noise_backend: NoiseBackend::from_u8(self.noise_backend.load(Ordering::Acquire)),
            conditioning: Conditioning::decode_label(self.conditioning.load(Ordering::Acquire)),
        }
    }
}

/// Point-in-time view of one shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Shard index within the pool.
    pub id: usize,
    /// Lifecycle state at snapshot time.
    pub state: ShardState,
    /// Whether the shard is initial complement or a respawned
    /// replacement.
    pub origin: ShardOrigin,
    /// `true` once a replacement has taken over for this (retired)
    /// shard; superseded shards are excluded from health
    /// classification.
    pub superseded: bool,
    /// Continuous-test alarms raised over the shard's lifetime.
    pub alarms: u64,
    /// Successful re-admissions after quarantine.
    pub readmissions: u64,
    /// Start-up test executions (initial admission + re-admissions).
    pub startup_runs: u64,
    /// Healthy conditioned bytes handed to the pool.
    pub bytes_produced: u64,
    /// Raw bits drawn from the underlying generator.
    pub raw_bits: u64,
    /// Elapsed *simulated* time of the shard's TRNG — the hardware
    /// clock domain, in which throughput scales with shard count.
    pub sim_elapsed: Duration,
    /// Peak occupancy of the shard's ring buffer, in bytes.
    pub ring_high_water: usize,
    /// Jitter-monitor observations completed (0 when the monitor is
    /// disabled).
    pub monitor_measurements: u64,
    /// Latest per-LUT differential jitter sigma estimated by the
    /// online monitor, in femtoseconds (0 before the first
    /// observation).
    pub jitter_fs: u64,
    /// The monitor's frozen healthy baseline for `jitter_fs`, in
    /// femtoseconds (0 until the baseline window completes).
    pub jitter_baseline_fs: u64,
    /// Drift events the monitor has journaled for this shard.
    pub monitor_drift_events: u64,
    /// Which entropy backend feeds this shard.
    pub source: SourceKind,
    /// The backend's per-raw-bit min-entropy claim — the figure the
    /// shard's SP 800-90B continuous tests are parameterised with.
    pub claimed_min_entropy: f64,
    /// How the shard's live instance synthesises noise variates —
    /// [`NoiseBackend::Scalar`] for replay-exact streams, or the
    /// statistically-equivalent batched engine. Always `Scalar` for
    /// backends without simulated noise (trace replay, the OS pool).
    pub noise_backend: NoiseBackend,
    /// Label of the shard's conditioning stage (`design_xor`,
    /// `xor:<rate>`, `von_neumann`, `raw`, `toeplitz:<ratio>`).
    pub conditioning: String,
}

impl ShardStats {
    /// Renders the shard snapshot as a JSON object. Field names match
    /// the struct fields; durations are serialized in nanoseconds.
    /// `origin` renders as `"initial"` or `"respawn"`, with the
    /// superseded shard's id in `replaces` for respawned shards.
    pub fn to_json(&self) -> Json {
        let (origin, replaces) = match self.origin {
            ShardOrigin::Initial => ("initial", None),
            ShardOrigin::Respawn { replaces } => ("respawn", Some(replaces)),
        };
        let mut fields = vec![
            ("id", Json::u64(self.id as u64)),
            ("state", Json::str(self.state.to_string())),
            ("origin", Json::str(origin)),
        ];
        if let Some(replaces) = replaces {
            fields.push(("replaces", Json::u64(replaces as u64)));
        }
        fields.extend([
            ("superseded", Json::Bool(self.superseded)),
            ("alarms", Json::u64(self.alarms)),
            ("readmissions", Json::u64(self.readmissions)),
            ("startup_runs", Json::u64(self.startup_runs)),
            ("bytes_produced", Json::u64(self.bytes_produced)),
            ("raw_bits", Json::u64(self.raw_bits)),
            (
                "sim_elapsed_ns",
                Json::u64(self.sim_elapsed.as_nanos() as u64),
            ),
            ("ring_high_water", Json::u64(self.ring_high_water as u64)),
            ("monitor_measurements", Json::u64(self.monitor_measurements)),
            ("jitter_fs", Json::u64(self.jitter_fs)),
            ("jitter_baseline_fs", Json::u64(self.jitter_baseline_fs)),
            ("monitor_drift_events", Json::u64(self.monitor_drift_events)),
            ("source", Json::str(self.source.as_str())),
            ("claimed_min_entropy", Json::num(self.claimed_min_entropy)),
            ("noise_backend", Json::str(self.noise_backend.as_str())),
            ("conditioning", Json::str(self.conditioning.clone())),
        ]);
        Json::obj(fields)
    }
}

/// Point-in-time view of the pool-level composed extract stage
/// (interleave-then-Toeplitz across independent shards; see
/// [`PoolConfig::with_composed_extract`](crate::pool::PoolConfig::with_composed_extract)).
#[derive(Debug, Clone, PartialEq)]
pub struct ComposedStats {
    /// Interleaved input bits consumed per output bit (input block =
    /// `ratio · 64` bits).
    pub ratio: u32,
    /// The stage's statistical-distance target: `ε = 2^−epsilon_log2`.
    pub epsilon_log2: u32,
    /// The *minimum* per-raw-bit min-entropy claim across the pool's
    /// input shards at construction — the eq. (7)-derived figure the
    /// leftover-hash sizing consumed.
    pub input_claim_min_entropy: f64,
    /// Claimed per-bit min-entropy of the composed output under the
    /// leftover hash lemma
    /// ([`extracted_min_entropy_per_bit`](trng_extract::extracted_min_entropy_per_bit)):
    /// ≈ 0.5 for 64-bit blocks at ε = 2^−32.
    pub claimed_min_entropy: f64,
    /// Measured per-bit min-entropy of the composed output — a byte
    /// most-common-value estimate with a 99% confidence penalty, 0.0
    /// until enough output has accumulated (4 KiB). The acceptance
    /// invariant is `claimed ≤ measured`: the lemma's conservative
    /// bound must under-promise what the stream empirically delivers.
    pub measured_min_entropy: f64,
    /// Composed output bytes extracted over the pool's lifetime.
    pub bytes_extracted: u64,
}

impl ComposedStats {
    /// Renders the composed-stage snapshot as a JSON object; field
    /// names match the struct fields.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("ratio", Json::u64(u64::from(self.ratio))),
            ("epsilon_log2", Json::u64(u64::from(self.epsilon_log2))),
            (
                "input_claim_min_entropy",
                Json::num(self.input_claim_min_entropy),
            ),
            ("claimed_min_entropy", Json::num(self.claimed_min_entropy)),
            ("measured_min_entropy", Json::num(self.measured_min_entropy)),
            ("bytes_extracted", Json::u64(self.bytes_extracted)),
        ])
    }
}

/// Coarse service health derived from the shard lifecycle states —
/// the classification a load balancer or health probe acts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolHealth {
    /// Every live shard is online.
    Healthy,
    /// Not every live shard is online (starting, quarantined, or
    /// retired): the pool serves at reduced — possibly zero —
    /// capacity, but at least one shard may still come (back) online.
    Degraded,
    /// A respawn is in flight: a supervisor-spawned replacement shard
    /// is running its admission gate, or every live shard has retired
    /// but respawn budget remains so a replacement is imminent.
    Recovering,
    /// Every live shard is retired and no respawn budget remains; the
    /// pool can never serve again.
    Exhausted,
}

impl fmt::Display for PoolHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PoolHealth::Healthy => "healthy",
            PoolHealth::Degraded => "degraded",
            PoolHealth::Recovering => "recovering",
            PoolHealth::Exhausted => "exhausted",
        })
    }
}

/// Point-in-time view of the whole pool.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolStats {
    /// One entry per shard, in shard order (respawned replacements
    /// follow the initial complement).
    pub shards: Vec<ShardStats>,
    /// Bytes delivered to consumers over the pool's lifetime.
    pub bytes_delivered: u64,
    /// Completed `fill_bytes`/`try_fill_bytes` calls.
    pub fill_calls: u64,
    /// Longest time a single fill call spent waiting for bytes.
    pub max_refill_wait: Duration,
    /// Replacement shards spawned by the respawn supervisor.
    pub respawns: u32,
    /// Respawn budget still available (0 when no policy is set).
    pub respawns_available: u32,
    /// Retired shard worker threads the supervisor has joined
    /// (threaded backend only).
    pub workers_joined: u64,
    /// The retained incident-journal window, oldest first.
    pub journal: Vec<IncidentEvent>,
    /// Total incidents ever recorded; when it exceeds `journal.len()`
    /// the bounded log has evicted its oldest events.
    pub journal_recorded: u64,
    /// The pool-level composed extract stage, when configured.
    pub composed: Option<ComposedStats>,
    /// The cross-shard coherence detector, when configured.
    pub coherence: Option<CoherenceStats>,
}

impl PoolStats {
    /// Number of shards currently online.
    pub fn online_shards(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.state == ShardState::Online)
            .count()
    }

    /// Total alarms across all shards.
    pub fn total_alarms(&self) -> u64 {
        self.shards.iter().map(|s| s.alarms).sum()
    }

    /// The *live* shard set: every shard except retired ones that a
    /// replacement has superseded. Health classification runs over
    /// this set, so a healed pool (dead shard + online replacement)
    /// reads healthy, not permanently degraded.
    pub fn live_shards(&self) -> impl Iterator<Item = &ShardStats> {
        self.shards
            .iter()
            .filter(|s| !(s.state == ShardState::Retired && s.superseded))
    }

    /// Coarse health classification over the live shard set:
    ///
    /// * [`PoolHealth::Exhausted`] — every live shard is retired and
    ///   no respawn budget remains;
    /// * [`PoolHealth::Recovering`] — a respawned replacement is still
    ///   in its admission gate, or every live shard retired but budget
    ///   remains (a respawn is imminent);
    /// * [`PoolHealth::Healthy`] — every live shard is online;
    /// * [`PoolHealth::Degraded`] — anything in between.
    pub fn health(&self) -> PoolHealth {
        let all_retired = self.live_shards().all(|s| s.state == ShardState::Retired);
        if all_retired {
            return if self.respawns_available > 0 {
                PoolHealth::Recovering
            } else {
                PoolHealth::Exhausted
            };
        }
        let respawn_in_flight = self.live_shards().any(|s| {
            s.state == ShardState::Starting && matches!(s.origin, ShardOrigin::Respawn { .. })
        });
        if respawn_in_flight {
            PoolHealth::Recovering
        } else if self.live_shards().all(|s| s.state == ShardState::Online) {
            PoolHealth::Healthy
        } else {
            PoolHealth::Degraded
        }
    }

    /// Renders the pool snapshot as a JSON object, one entry per
    /// [`Display`](fmt::Display) field plus the per-shard array —
    /// the payload the metrics endpoint of a serving layer exposes.
    /// Field names match the struct fields; durations are serialized
    /// in nanoseconds.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("bytes_delivered", Json::u64(self.bytes_delivered)),
            ("fill_calls", Json::u64(self.fill_calls)),
            (
                "max_refill_wait_ns",
                Json::u64(self.max_refill_wait.as_nanos() as u64),
            ),
            ("online_shards", Json::u64(self.online_shards() as u64)),
            ("total_alarms", Json::u64(self.total_alarms())),
            ("respawns", Json::u64(u64::from(self.respawns))),
            (
                "respawns_available",
                Json::u64(u64::from(self.respawns_available)),
            ),
            ("workers_joined", Json::u64(self.workers_joined)),
            ("health", Json::str(self.health().to_string())),
            ("sim_throughput_bps", Json::num(self.sim_throughput_bps())),
            (
                "shards",
                Json::Arr(self.shards.iter().map(ShardStats::to_json).collect()),
            ),
            ("sources", self.source_mix()),
            ("journal_recorded", Json::u64(self.journal_recorded)),
            (
                "journal_evicted",
                Json::u64(
                    self.journal_recorded
                        .saturating_sub(self.journal.len() as u64),
                ),
            ),
            (
                "journal",
                Json::Arr(self.journal.iter().map(IncidentEvent::to_json).collect()),
            ),
        ];
        // Additive: pools without the composed stage or coherence
        // detector keep their exact pre-existing payload shape.
        if let Some(composed) = &self.composed {
            fields.push(("composed", composed.to_json()));
        }
        if let Some(coherence) = &self.coherence {
            fields.push(("coherence", coherence.to_json()));
        }
        Json::obj(fields)
    }

    /// Per-backend aggregate rendered into the JSON `sources` object:
    /// one entry per [`SourceKind`] present in the pool, keyed by its
    /// metrics label, with shard/online counts, produced bytes, alarm
    /// totals and the *worst* (lowest) min-entropy claim across the
    /// kind's shards. All keys are additive over the per-shard array —
    /// the endpoint grows no information, only convenient grouping.
    pub fn source_mix(&self) -> Json {
        Json::obj(
            SourceKind::all()
                .iter()
                .filter_map(|&kind| {
                    let members: Vec<&ShardStats> =
                        self.shards.iter().filter(|s| s.source == kind).collect();
                    if members.is_empty() {
                        return None;
                    }
                    let online = members
                        .iter()
                        .filter(|s| s.state == ShardState::Online)
                        .count();
                    Some((
                        kind.as_str(),
                        Json::obj(vec![
                            ("shards", Json::u64(members.len() as u64)),
                            ("online", Json::u64(online as u64)),
                            (
                                "bytes_produced",
                                Json::u64(members.iter().map(|s| s.bytes_produced).sum()),
                            ),
                            ("alarms", Json::u64(members.iter().map(|s| s.alarms).sum())),
                            (
                                "claimed_min_entropy",
                                Json::num(
                                    members
                                        .iter()
                                        .map(|s| s.claimed_min_entropy)
                                        .fold(f64::INFINITY, f64::min),
                                ),
                            ),
                        ]),
                    ))
                })
                .collect::<Vec<_>>(),
        )
    }

    /// Aggregate throughput in the *simulated* clock domain, in bits
    /// per simulated second: total healthy bits produced divided by
    /// the longest per-shard simulated elapsed time. This is the
    /// paper's Table-2 metric — parallel instances produce their bytes
    /// in the *same* simulated window, so N healthy shards deliver
    /// ~N× the single-instance rate.
    ///
    /// Returns 0.0 before any shard has produced bytes.
    pub fn sim_throughput_bps(&self) -> f64 {
        let bits: u64 = self.shards.iter().map(|s| s.bytes_produced * 8).sum();
        let window = self
            .shards
            .iter()
            .map(|s| s.sim_elapsed)
            .max()
            .unwrap_or_default();
        if window.is_zero() {
            0.0
        } else {
            bits as f64 / window.as_secs_f64()
        }
    }
}

impl fmt::Display for PoolStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pool: {} delivered over {} calls, {}/{} shards online, {} alarms, \
             {} respawns ({} budget left)",
            self.bytes_delivered,
            self.fill_calls,
            self.online_shards(),
            self.shards.len(),
            self.total_alarms(),
            self.respawns,
            self.respawns_available,
        )?;
        for s in &self.shards {
            write!(
                f,
                "  shard {}: {:<11} [{}/{}] {:>10} B, {} alarms, {} readmissions, \
                 {} startups, ring high-water {} B",
                s.id,
                s.state.to_string(),
                s.source,
                s.conditioning,
                s.bytes_produced,
                s.alarms,
                s.readmissions,
                s.startup_runs,
                s.ring_high_water,
            )?;
            if let ShardOrigin::Respawn { replaces } = s.origin {
                write!(f, " (respawn of {replaces})")?;
            }
            if s.superseded {
                write!(f, " (superseded)")?;
            }
            if s.monitor_measurements > 0 {
                write!(
                    f,
                    ", jitter {} fs vs baseline {} fs ({} drift events)",
                    s.jitter_fs, s.jitter_baseline_fs, s.monitor_drift_events,
                )?;
            }
            writeln!(f)?;
        }
        if let Some(c) = &self.composed {
            writeln!(
                f,
                "  composed: toeplitz:{} at eps 2^-{}, claimed {:.4} vs measured {:.4} \
                 min-entropy/bit, {} B extracted",
                c.ratio,
                c.epsilon_log2,
                c.claimed_min_entropy,
                c.measured_min_entropy,
                c.bytes_extracted,
            )?;
        }
        if let Some(c) = &self.coherence {
            writeln!(
                f,
                "  coherence: window {} quorum {} snr {:.1}, {} passes, {} events",
                c.window, c.quorum, c.line_snr, c.passes, c.events,
            )?;
        }
        writeln!(
            f,
            "  journal: {} events retained, {} recorded lifetime",
            self.journal.len(),
            self.journal_recorded,
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_round_trips_through_u8() {
        for s in [
            ShardState::Starting,
            ShardState::Online,
            ShardState::Quarantined,
            ShardState::Retired,
        ] {
            assert_eq!(ShardState::from_u8(s.as_u8()), s);
        }
    }

    #[test]
    fn shared_counters_snapshot() {
        let shared = ShardShared::default();
        shared.set_state(ShardState::Online);
        shared.count_alarm();
        shared.count_startup_run();
        shared.count_startup_run();
        shared.count_readmission();
        shared.add_bytes(100);
        shared.add_bytes(28);
        shared.set_raw_bits(1024);
        shared.set_sim_ns(5_000);
        shared.set_ring_high_water(64);
        shared.set_ring_high_water(32); // max() keeps 64
        shared.record_monitor(2650, 2600);
        shared.record_monitor(2700, 2600);
        shared.count_monitor_drift();
        let s = shared.snapshot(3);
        assert_eq!(s.id, 3);
        assert_eq!(s.state, ShardState::Online);
        assert_eq!(s.alarms, 1);
        assert_eq!(s.readmissions, 1);
        assert_eq!(s.startup_runs, 2);
        assert_eq!(s.bytes_produced, 128);
        assert_eq!(s.raw_bits, 1024);
        assert_eq!(s.sim_elapsed, Duration::from_nanos(5_000));
        assert_eq!(s.ring_high_water, 64);
        assert_eq!(s.monitor_measurements, 2);
        assert_eq!(s.jitter_fs, 2700, "latest observation wins");
        assert_eq!(s.jitter_baseline_fs, 2600);
        assert_eq!(s.monitor_drift_events, 1);
    }

    #[test]
    fn sim_throughput_uses_slowest_shard_window() {
        let mk = |bytes: u64, sim_ms: u64| ShardStats {
            id: 0,
            state: ShardState::Online,
            origin: ShardOrigin::Initial,
            superseded: false,
            alarms: 0,
            readmissions: 0,
            startup_runs: 1,
            bytes_produced: bytes,
            raw_bits: 0,
            sim_elapsed: Duration::from_millis(sim_ms),
            ring_high_water: 0,
            monitor_measurements: 0,
            jitter_fs: 0,
            jitter_baseline_fs: 0,
            monitor_drift_events: 0,
            source: SourceKind::CarryChain,
            claimed_min_entropy: 0.05,
            noise_backend: NoiseBackend::Scalar,
            conditioning: "design_xor".to_string(),
        };
        let stats = PoolStats {
            shards: vec![mk(1000, 10), mk(1000, 10), mk(1000, 10), mk(1000, 10)],
            bytes_delivered: 4000,
            fill_calls: 1,
            max_refill_wait: Duration::ZERO,
            respawns: 0,
            respawns_available: 0,
            workers_joined: 0,
            journal: Vec::new(),
            journal_recorded: 0,
            composed: None,
            coherence: None,
        };
        // 4 shards x 8000 bits over the same 10 ms window: 3.2 Mb/s,
        // 4x what a single shard would report.
        assert!((stats.sim_throughput_bps() - 3.2e6).abs() < 1.0);
        let single = PoolStats {
            shards: vec![mk(1000, 10)],
            bytes_delivered: 1000,
            fill_calls: 1,
            max_refill_wait: Duration::ZERO,
            respawns: 0,
            respawns_available: 0,
            workers_joined: 0,
            journal: Vec::new(),
            journal_recorded: 0,
            composed: None,
            coherence: None,
        };
        assert!((single.sim_throughput_bps() - 0.8e6).abs() < 1.0);
    }

    fn sample_stats() -> PoolStats {
        let shard = |id: usize, state: ShardState| ShardStats {
            id,
            state,
            origin: ShardOrigin::Initial,
            superseded: false,
            alarms: id as u64,
            readmissions: 1,
            startup_runs: 2,
            bytes_produced: 4096 + id as u64,
            raw_bits: 32768,
            sim_elapsed: Duration::from_nanos(123_456),
            ring_high_water: 512,
            monitor_measurements: 9,
            jitter_fs: 2600,
            jitter_baseline_fs: 2500,
            monitor_drift_events: id as u64,
            source: if id == 0 {
                SourceKind::CarryChain
            } else {
                SourceKind::DualOscillator
            },
            claimed_min_entropy: 0.05 + id as f64 * 0.4,
            noise_backend: if id == 0 {
                NoiseBackend::Batched
            } else {
                NoiseBackend::Scalar
            },
            conditioning: if id == 0 {
                "design_xor".to_string()
            } else {
                "toeplitz:5".to_string()
            },
        };
        PoolStats {
            shards: vec![
                shard(0, ShardState::Online),
                shard(1, ShardState::Quarantined),
            ],
            bytes_delivered: 8190,
            fill_calls: 17,
            max_refill_wait: Duration::from_micros(250),
            respawns: 1,
            respawns_available: 2,
            workers_joined: 1,
            journal: vec![IncidentEvent {
                seq: 0,
                shard: 1,
                kind: crate::journal::IncidentKind::Alarm,
                sim_ns: 123,
                at_bytes: 456,
                detail: 0,
            }],
            journal_recorded: 5,
            composed: None,
            coherence: None,
        }
    }

    #[test]
    fn json_form_matches_struct_field_for_field() {
        let stats = sample_stats();
        let json = stats.to_json();
        let f = |k: &str| json.get(k).and_then(Json::as_f64).expect(k);
        assert_eq!(f("bytes_delivered"), stats.bytes_delivered as f64);
        assert_eq!(f("fill_calls"), stats.fill_calls as f64);
        assert_eq!(
            f("max_refill_wait_ns"),
            stats.max_refill_wait.as_nanos() as f64
        );
        assert_eq!(f("online_shards"), stats.online_shards() as f64);
        assert_eq!(f("total_alarms"), stats.total_alarms() as f64);
        assert_eq!(f("respawns"), f64::from(stats.respawns));
        assert_eq!(f("respawns_available"), f64::from(stats.respawns_available));
        assert_eq!(f("workers_joined"), stats.workers_joined as f64);
        assert_eq!(f("journal_recorded"), stats.journal_recorded as f64);
        assert_eq!(
            f("journal_evicted"),
            (stats.journal_recorded - stats.journal.len() as u64) as f64
        );
        let journal = json.get("journal").and_then(Json::as_arr).expect("journal");
        assert_eq!(journal.len(), stats.journal.len());
        assert_eq!(f("sim_throughput_bps"), stats.sim_throughput_bps());
        assert_eq!(
            json.get("health").and_then(Json::as_str),
            Some(stats.health().to_string().as_str())
        );
        let shards = json.get("shards").and_then(Json::as_arr).expect("shards");
        assert_eq!(shards.len(), stats.shards.len());
        for (j, s) in shards.iter().zip(&stats.shards) {
            let f = |k: &str| j.get(k).and_then(Json::as_f64).expect(k);
            assert_eq!(f("id"), s.id as f64);
            assert_eq!(
                j.get("state").and_then(Json::as_str),
                Some(s.state.to_string().as_str())
            );
            assert_eq!(j.get("origin").and_then(Json::as_str), Some("initial"));
            assert!(j.get("replaces").is_none());
            assert_eq!(j.get("superseded").and_then(Json::as_bool), Some(false));
            assert_eq!(f("alarms"), s.alarms as f64);
            assert_eq!(f("readmissions"), s.readmissions as f64);
            assert_eq!(f("startup_runs"), s.startup_runs as f64);
            assert_eq!(f("bytes_produced"), s.bytes_produced as f64);
            assert_eq!(f("raw_bits"), s.raw_bits as f64);
            assert_eq!(f("sim_elapsed_ns"), s.sim_elapsed.as_nanos() as f64);
            assert_eq!(f("ring_high_water"), s.ring_high_water as f64);
            assert_eq!(f("monitor_measurements"), s.monitor_measurements as f64);
            assert_eq!(f("jitter_fs"), s.jitter_fs as f64);
            assert_eq!(f("jitter_baseline_fs"), s.jitter_baseline_fs as f64);
            assert_eq!(f("monitor_drift_events"), s.monitor_drift_events as f64);
            assert_eq!(
                j.get("source").and_then(Json::as_str),
                Some(s.source.as_str())
            );
            assert_eq!(f("claimed_min_entropy"), s.claimed_min_entropy);
            assert_eq!(
                j.get("noise_backend").and_then(Json::as_str),
                Some(s.noise_backend.as_str())
            );
            assert_eq!(
                j.get("conditioning").and_then(Json::as_str),
                Some(s.conditioning.as_str())
            );
        }
    }

    #[test]
    fn composed_stage_renders_additively() {
        // Without the stage the payload has no `composed` key at all —
        // pre-existing consumers see the exact old shape.
        let mut stats = sample_stats();
        assert!(stats.to_json().get("composed").is_none());
        stats.composed = Some(ComposedStats {
            ratio: 5,
            epsilon_log2: 32,
            input_claim_min_entropy: 0.42,
            claimed_min_entropy: 0.49999,
            measured_min_entropy: 0.97,
            bytes_extracted: 1 << 20,
        });
        let json = stats.to_json();
        let c = json.get("composed").expect("composed object");
        let expect = stats.composed.as_ref().unwrap();
        let f = |k: &str| c.get(k).and_then(Json::as_f64).expect(k);
        assert_eq!(f("ratio"), f64::from(expect.ratio));
        assert_eq!(f("epsilon_log2"), f64::from(expect.epsilon_log2));
        assert_eq!(f("input_claim_min_entropy"), expect.input_claim_min_entropy);
        assert_eq!(f("claimed_min_entropy"), expect.claimed_min_entropy);
        assert_eq!(f("measured_min_entropy"), expect.measured_min_entropy);
        assert_eq!(f("bytes_extracted"), expect.bytes_extracted as f64);
        // The Display form carries the same headline figures.
        let text = stats.to_string();
        assert!(text.contains("toeplitz:5"), "{text}");
        assert!(text.contains("0.9700"), "{text}");
    }

    #[test]
    fn source_mix_groups_shards_by_backend() {
        // sample_stats mixes one carry-chain and one dual-oscillator
        // shard; the aggregate must key on each kind's metrics label
        // and report the *lowest* claim per kind.
        let mut stats = sample_stats();
        stats.shards.push(ShardStats {
            source: SourceKind::CarryChain,
            claimed_min_entropy: 0.02,
            ..stats.shards[0].clone()
        });
        let mix = stats.to_json();
        let mix = mix.get("sources").expect("sources object");
        let cc = mix.get("carry_chain").expect("carry_chain entry");
        assert_eq!(cc.get("shards").and_then(Json::as_f64), Some(2.0));
        assert_eq!(cc.get("online").and_then(Json::as_f64), Some(2.0));
        assert_eq!(
            cc.get("claimed_min_entropy").and_then(Json::as_f64),
            Some(0.02)
        );
        let dual = mix.get("dual_osc").expect("dual_osc entry");
        assert_eq!(dual.get("shards").and_then(Json::as_f64), Some(1.0));
        assert_eq!(dual.get("online").and_then(Json::as_f64), Some(0.0));
        assert!(mix.get("trace_replay").is_none(), "absent kinds omitted");
        assert!(mix.get("os_entropy").is_none());
        // Additivity: per-kind bytes sum to the per-shard total.
        let total: u64 = stats.shards.iter().map(|s| s.bytes_produced).sum();
        let grouped = cc.get("bytes_produced").and_then(Json::as_f64).unwrap()
            + dual.get("bytes_produced").and_then(Json::as_f64).unwrap();
        assert_eq!(grouped as u64, total);
    }

    #[test]
    fn display_and_json_agree_on_shared_fields() {
        // Every quantity the Display form prints must appear with the
        // same value in the JSON form.
        let stats = sample_stats();
        let text = stats.to_string();
        let json = stats.to_json();
        let f = |k: &str| json.get(k).and_then(Json::as_f64).expect(k) as u64;
        for n in [
            f("bytes_delivered"),
            f("fill_calls"),
            f("online_shards"),
            f("total_alarms"),
        ] {
            assert!(text.contains(&n.to_string()), "{n} missing from {text}");
        }
        let shards = json.get("shards").and_then(Json::as_arr).expect("shards");
        for j in shards {
            let state = j.get("state").and_then(Json::as_str).expect("state");
            assert!(text.contains(state), "{state} missing from {text}");
            for k in ["bytes_produced", "alarms", "readmissions", "startup_runs"] {
                let n = j.get(k).and_then(Json::as_f64).expect(k) as u64;
                assert!(text.contains(&n.to_string()), "{k}={n} missing from {text}");
            }
        }
    }

    #[test]
    fn health_classifies_lifecycle_mixtures() {
        let mut stats = sample_stats();
        stats.respawns_available = 0;
        stats.shards[1].state = ShardState::Online;
        assert_eq!(stats.health(), PoolHealth::Healthy);
        for state in [
            ShardState::Starting,
            ShardState::Quarantined,
            ShardState::Retired,
        ] {
            stats.shards[1].state = state;
            assert_eq!(stats.health(), PoolHealth::Degraded, "{state}");
        }
        stats.shards[0].state = ShardState::Retired;
        stats.shards[1].state = ShardState::Retired;
        assert_eq!(stats.health(), PoolHealth::Exhausted);
        assert_eq!(PoolHealth::Healthy.to_string(), "healthy");
        assert_eq!(PoolHealth::Degraded.to_string(), "degraded");
        assert_eq!(PoolHealth::Recovering.to_string(), "recovering");
        assert_eq!(PoolHealth::Exhausted.to_string(), "exhausted");
    }

    #[test]
    fn health_recovering_while_respawn_in_flight() {
        // A replacement shard in its admission gate reads recovering,
        // not degraded.
        let mut stats = sample_stats();
        stats.shards[0].state = ShardState::Online;
        stats.shards[1].state = ShardState::Starting;
        stats.shards[1].origin = ShardOrigin::Respawn { replaces: 0 };
        assert_eq!(stats.health(), PoolHealth::Recovering);
        // All live shards retired but budget remains: a respawn is
        // imminent, still recovering.
        stats.shards[0].state = ShardState::Retired;
        stats.shards[1].state = ShardState::Retired;
        stats.respawns_available = 1;
        assert_eq!(stats.health(), PoolHealth::Recovering);
        // Budget spent: exhausted.
        stats.respawns_available = 0;
        assert_eq!(stats.health(), PoolHealth::Exhausted);
    }

    #[test]
    fn superseded_retirees_leave_the_live_set() {
        // A healed pool — dead shard plus online replacement — reads
        // healthy once the retiree is marked superseded.
        let mut stats = sample_stats();
        stats.shards[0].state = ShardState::Retired;
        stats.shards[0].superseded = true;
        stats.shards[1].state = ShardState::Online;
        stats.shards[1].origin = ShardOrigin::Respawn { replaces: 0 };
        assert_eq!(stats.live_shards().count(), 1);
        assert_eq!(stats.health(), PoolHealth::Healthy);
        // A respawned shard's JSON names its predecessor.
        let json = stats.to_json();
        let shards = json.get("shards").and_then(Json::as_arr).expect("shards");
        assert_eq!(
            shards[0].get("superseded").and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(
            shards[1].get("origin").and_then(Json::as_str),
            Some("respawn")
        );
        assert_eq!(shards[1].get("replaces").and_then(Json::as_f64), Some(0.0));
        // And the Display form marks both ends of the hand-off.
        let text = stats.to_string();
        assert!(text.contains("(superseded)"), "{text}");
        assert!(text.contains("(respawn of 0)"), "{text}");
    }

    #[test]
    fn display_renders_every_shard() {
        let stats = PoolStats {
            shards: vec![ShardShared::default().snapshot(0)],
            bytes_delivered: 0,
            fill_calls: 0,
            max_refill_wait: Duration::ZERO,
            respawns: 0,
            respawns_available: 0,
            workers_joined: 0,
            journal: Vec::new(),
            journal_recorded: 0,
            composed: None,
            coherence: None,
        };
        let text = stats.to_string();
        assert!(text.contains("shard 0"));
        assert!(text.contains("starting"));
        assert!(text.contains("journal"));
    }

    #[test]
    fn shared_source_label_round_trips() {
        let shared = ShardShared::default();
        shared.set_source(SourceKind::TraceReplay, 0.93, NoiseBackend::Batched);
        let s = shared.snapshot(0);
        assert_eq!(s.source, SourceKind::TraceReplay);
        assert_eq!(s.claimed_min_entropy, 0.93);
        assert_eq!(s.noise_backend, NoiseBackend::Batched);
        // Unset conditioning decodes to the pool's default label.
        assert_eq!(s.conditioning, "design_xor");
    }

    #[test]
    fn shared_conditioning_label_round_trips() {
        let shared = ShardShared::default();
        for (mode, label) in [
            (Conditioning::DesignXor, "design_xor"),
            (Conditioning::Xor(3), "xor:3"),
            (Conditioning::VonNeumann, "von_neumann"),
            (Conditioning::Raw, "raw"),
            (Conditioning::Toeplitz { ratio: 5, seed: 9 }, "toeplitz:5"),
        ] {
            shared.set_conditioning(mode.encode_label());
            assert_eq!(shared.snapshot(0).conditioning, label);
            // Display agrees with the published label; the Toeplitz
            // seed is configuration, not telemetry.
            assert_eq!(mode.to_string(), label);
        }
    }

    #[test]
    fn shard_shared_respawn_marks_round_trip() {
        let shared = ShardShared::default();
        assert_eq!(shared.snapshot(5).origin, ShardOrigin::Initial);
        shared.mark_respawned(2);
        shared.set_superseded();
        let s = shared.snapshot(5);
        assert_eq!(s.origin, ShardOrigin::Respawn { replaces: 2 });
        assert!(s.superseded);
        assert_eq!(s.origin.to_string(), "respawn of 2");
    }
}
