//! Pool observability: per-shard lifecycle state and counters,
//! published lock-free so [`PoolStats`] snapshots
//! never stall the producers.

use core::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::time::Duration;

/// Lifecycle state of one shard.
///
/// ```text
///             startup passed
///  Starting ------------------> Online
///     |                        ^     |
///     | startup failed         |     | continuous-test alarm
///     v        re-admitted     |     v
///  Retired <------------------ Quarantined
///     ^     startup failed or        |
///     |     alarm budget spent       |
///     +------------------------------+
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShardState {
    /// Built, start-up self-test not passed yet; contributes nothing.
    Starting,
    /// Healthy and feeding the pool.
    Online,
    /// A continuous test alarmed; the shard is isolated and must pass
    /// a fresh start-up test before re-admission.
    Quarantined,
    /// Permanently out of service (start-up failure or alarm budget
    /// exhausted).
    Retired,
}

impl ShardState {
    pub(crate) fn as_u8(self) -> u8 {
        match self {
            ShardState::Starting => 0,
            ShardState::Online => 1,
            ShardState::Quarantined => 2,
            ShardState::Retired => 3,
        }
    }

    pub(crate) fn from_u8(v: u8) -> Self {
        match v {
            0 => ShardState::Starting,
            1 => ShardState::Online,
            2 => ShardState::Quarantined,
            _ => ShardState::Retired,
        }
    }
}

impl fmt::Display for ShardState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ShardState::Starting => "starting",
            ShardState::Online => "online",
            ShardState::Quarantined => "quarantined",
            ShardState::Retired => "retired",
        })
    }
}

/// Lock-free shared counters one shard publishes into.
#[derive(Debug, Default)]
pub(crate) struct ShardShared {
    state: AtomicU8,
    alarms: AtomicU64,
    readmissions: AtomicU64,
    startup_runs: AtomicU64,
    bytes_produced: AtomicU64,
    raw_bits: AtomicU64,
    sim_ns: AtomicU64,
    ring_high_water: AtomicUsize,
}

impl ShardShared {
    pub fn set_state(&self, s: ShardState) {
        self.state.store(s.as_u8(), Ordering::Release);
    }

    pub fn state(&self) -> ShardState {
        ShardState::from_u8(self.state.load(Ordering::Acquire))
    }

    pub fn count_alarm(&self) {
        self.alarms.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count_readmission(&self) {
        self.readmissions.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count_startup_run(&self) {
        self.startup_runs.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_bytes(&self, n: u64) {
        self.bytes_produced.fetch_add(n, Ordering::Relaxed);
    }

    pub fn set_raw_bits(&self, n: u64) {
        self.raw_bits.store(n, Ordering::Relaxed);
    }

    pub fn set_sim_ns(&self, ns: u64) {
        self.sim_ns.store(ns, Ordering::Relaxed);
    }

    pub fn set_ring_high_water(&self, n: usize) {
        self.ring_high_water.fetch_max(n, Ordering::Relaxed);
    }

    pub fn snapshot(&self, id: usize) -> ShardStats {
        ShardStats {
            id,
            state: self.state(),
            alarms: self.alarms.load(Ordering::Relaxed),
            readmissions: self.readmissions.load(Ordering::Relaxed),
            startup_runs: self.startup_runs.load(Ordering::Relaxed),
            bytes_produced: self.bytes_produced.load(Ordering::Relaxed),
            raw_bits: self.raw_bits.load(Ordering::Relaxed),
            sim_elapsed: Duration::from_nanos(self.sim_ns.load(Ordering::Relaxed)),
            ring_high_water: self.ring_high_water.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index within the pool.
    pub id: usize,
    /// Lifecycle state at snapshot time.
    pub state: ShardState,
    /// Continuous-test alarms raised over the shard's lifetime.
    pub alarms: u64,
    /// Successful re-admissions after quarantine.
    pub readmissions: u64,
    /// Start-up test executions (initial admission + re-admissions).
    pub startup_runs: u64,
    /// Healthy conditioned bytes handed to the pool.
    pub bytes_produced: u64,
    /// Raw bits drawn from the underlying generator.
    pub raw_bits: u64,
    /// Elapsed *simulated* time of the shard's TRNG — the hardware
    /// clock domain, in which throughput scales with shard count.
    pub sim_elapsed: Duration,
    /// Peak occupancy of the shard's ring buffer, in bytes.
    pub ring_high_water: usize,
}

/// Point-in-time view of the whole pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardStats>,
    /// Bytes delivered to consumers over the pool's lifetime.
    pub bytes_delivered: u64,
    /// Completed `fill_bytes`/`try_fill_bytes` calls.
    pub fill_calls: u64,
    /// Longest time a single fill call spent waiting for bytes.
    pub max_refill_wait: Duration,
}

impl PoolStats {
    /// Number of shards currently online.
    pub fn online_shards(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.state == ShardState::Online)
            .count()
    }

    /// Total alarms across all shards.
    pub fn total_alarms(&self) -> u64 {
        self.shards.iter().map(|s| s.alarms).sum()
    }

    /// Aggregate throughput in the *simulated* clock domain, in bits
    /// per simulated second: total healthy bits produced divided by
    /// the longest per-shard simulated elapsed time. This is the
    /// paper's Table-2 metric — parallel instances produce their bytes
    /// in the *same* simulated window, so N healthy shards deliver
    /// ~N× the single-instance rate.
    ///
    /// Returns 0.0 before any shard has produced bytes.
    pub fn sim_throughput_bps(&self) -> f64 {
        let bits: u64 = self.shards.iter().map(|s| s.bytes_produced * 8).sum();
        let window = self
            .shards
            .iter()
            .map(|s| s.sim_elapsed)
            .max()
            .unwrap_or_default();
        if window.is_zero() {
            0.0
        } else {
            bits as f64 / window.as_secs_f64()
        }
    }
}

impl fmt::Display for PoolStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pool: {} delivered over {} calls, {}/{} shards online, {} alarms",
            self.bytes_delivered,
            self.fill_calls,
            self.online_shards(),
            self.shards.len(),
            self.total_alarms(),
        )?;
        for s in &self.shards {
            writeln!(
                f,
                "  shard {}: {:<11} {:>10} B, {} alarms, {} readmissions, \
                 {} startups, ring high-water {} B",
                s.id,
                s.state.to_string(),
                s.bytes_produced,
                s.alarms,
                s.readmissions,
                s.startup_runs,
                s.ring_high_water,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_round_trips_through_u8() {
        for s in [
            ShardState::Starting,
            ShardState::Online,
            ShardState::Quarantined,
            ShardState::Retired,
        ] {
            assert_eq!(ShardState::from_u8(s.as_u8()), s);
        }
    }

    #[test]
    fn shared_counters_snapshot() {
        let shared = ShardShared::default();
        shared.set_state(ShardState::Online);
        shared.count_alarm();
        shared.count_startup_run();
        shared.count_startup_run();
        shared.count_readmission();
        shared.add_bytes(100);
        shared.add_bytes(28);
        shared.set_raw_bits(1024);
        shared.set_sim_ns(5_000);
        shared.set_ring_high_water(64);
        shared.set_ring_high_water(32); // max() keeps 64
        let s = shared.snapshot(3);
        assert_eq!(s.id, 3);
        assert_eq!(s.state, ShardState::Online);
        assert_eq!(s.alarms, 1);
        assert_eq!(s.readmissions, 1);
        assert_eq!(s.startup_runs, 2);
        assert_eq!(s.bytes_produced, 128);
        assert_eq!(s.raw_bits, 1024);
        assert_eq!(s.sim_elapsed, Duration::from_nanos(5_000));
        assert_eq!(s.ring_high_water, 64);
    }

    #[test]
    fn sim_throughput_uses_slowest_shard_window() {
        let mk = |bytes: u64, sim_ms: u64| ShardStats {
            id: 0,
            state: ShardState::Online,
            alarms: 0,
            readmissions: 0,
            startup_runs: 1,
            bytes_produced: bytes,
            raw_bits: 0,
            sim_elapsed: Duration::from_millis(sim_ms),
            ring_high_water: 0,
        };
        let stats = PoolStats {
            shards: vec![mk(1000, 10), mk(1000, 10), mk(1000, 10), mk(1000, 10)],
            bytes_delivered: 4000,
            fill_calls: 1,
            max_refill_wait: Duration::ZERO,
        };
        // 4 shards x 8000 bits over the same 10 ms window: 3.2 Mb/s,
        // 4x what a single shard would report.
        assert!((stats.sim_throughput_bps() - 3.2e6).abs() < 1.0);
        let single = PoolStats {
            shards: vec![mk(1000, 10)],
            bytes_delivered: 1000,
            fill_calls: 1,
            max_refill_wait: Duration::ZERO,
        };
        assert!((single.sim_throughput_bps() - 0.8e6).abs() < 1.0);
    }

    #[test]
    fn display_renders_every_shard() {
        let stats = PoolStats {
            shards: vec![ShardShared::default().snapshot(0)],
            bytes_delivered: 0,
            fill_calls: 0,
            max_refill_wait: Duration::ZERO,
        };
        let text = stats.to_string();
        assert!(text.contains("shard 0"));
        assert!(text.contains("starting"));
    }
}
