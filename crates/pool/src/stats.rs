//! Pool observability: per-shard lifecycle state and counters,
//! published lock-free so [`PoolStats`] snapshots
//! never stall the producers.

use core::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::time::Duration;

use trng_testkit::json::Json;

/// Lifecycle state of one shard.
///
/// ```text
///             startup passed
///  Starting ------------------> Online
///     |                        ^     |
///     | startup failed         |     | continuous-test alarm
///     v        re-admitted     |     v
///  Retired <------------------ Quarantined
///     ^     startup failed or        |
///     |     alarm budget spent       |
///     +------------------------------+
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShardState {
    /// Built, start-up self-test not passed yet; contributes nothing.
    Starting,
    /// Healthy and feeding the pool.
    Online,
    /// A continuous test alarmed; the shard is isolated and must pass
    /// a fresh start-up test before re-admission.
    Quarantined,
    /// Permanently out of service (start-up failure or alarm budget
    /// exhausted).
    Retired,
}

impl ShardState {
    pub(crate) fn as_u8(self) -> u8 {
        match self {
            ShardState::Starting => 0,
            ShardState::Online => 1,
            ShardState::Quarantined => 2,
            ShardState::Retired => 3,
        }
    }

    pub(crate) fn from_u8(v: u8) -> Self {
        match v {
            0 => ShardState::Starting,
            1 => ShardState::Online,
            2 => ShardState::Quarantined,
            _ => ShardState::Retired,
        }
    }
}

impl fmt::Display for ShardState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ShardState::Starting => "starting",
            ShardState::Online => "online",
            ShardState::Quarantined => "quarantined",
            ShardState::Retired => "retired",
        })
    }
}

/// Lock-free shared counters one shard publishes into.
#[derive(Debug, Default)]
pub(crate) struct ShardShared {
    state: AtomicU8,
    alarms: AtomicU64,
    readmissions: AtomicU64,
    startup_runs: AtomicU64,
    bytes_produced: AtomicU64,
    raw_bits: AtomicU64,
    sim_ns: AtomicU64,
    ring_high_water: AtomicUsize,
}

impl ShardShared {
    pub fn set_state(&self, s: ShardState) {
        self.state.store(s.as_u8(), Ordering::Release);
    }

    pub fn state(&self) -> ShardState {
        ShardState::from_u8(self.state.load(Ordering::Acquire))
    }

    pub fn count_alarm(&self) {
        self.alarms.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count_readmission(&self) {
        self.readmissions.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count_startup_run(&self) {
        self.startup_runs.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_bytes(&self, n: u64) {
        self.bytes_produced.fetch_add(n, Ordering::Relaxed);
    }

    pub fn set_raw_bits(&self, n: u64) {
        self.raw_bits.store(n, Ordering::Relaxed);
    }

    pub fn set_sim_ns(&self, ns: u64) {
        self.sim_ns.store(ns, Ordering::Relaxed);
    }

    pub fn set_ring_high_water(&self, n: usize) {
        self.ring_high_water.fetch_max(n, Ordering::Relaxed);
    }

    pub fn snapshot(&self, id: usize) -> ShardStats {
        ShardStats {
            id,
            state: self.state(),
            alarms: self.alarms.load(Ordering::Relaxed),
            readmissions: self.readmissions.load(Ordering::Relaxed),
            startup_runs: self.startup_runs.load(Ordering::Relaxed),
            bytes_produced: self.bytes_produced.load(Ordering::Relaxed),
            raw_bits: self.raw_bits.load(Ordering::Relaxed),
            sim_elapsed: Duration::from_nanos(self.sim_ns.load(Ordering::Relaxed)),
            ring_high_water: self.ring_high_water.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index within the pool.
    pub id: usize,
    /// Lifecycle state at snapshot time.
    pub state: ShardState,
    /// Continuous-test alarms raised over the shard's lifetime.
    pub alarms: u64,
    /// Successful re-admissions after quarantine.
    pub readmissions: u64,
    /// Start-up test executions (initial admission + re-admissions).
    pub startup_runs: u64,
    /// Healthy conditioned bytes handed to the pool.
    pub bytes_produced: u64,
    /// Raw bits drawn from the underlying generator.
    pub raw_bits: u64,
    /// Elapsed *simulated* time of the shard's TRNG — the hardware
    /// clock domain, in which throughput scales with shard count.
    pub sim_elapsed: Duration,
    /// Peak occupancy of the shard's ring buffer, in bytes.
    pub ring_high_water: usize,
}

impl ShardStats {
    /// Renders the shard snapshot as a JSON object. Field names match
    /// the struct fields; durations are serialized in nanoseconds.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::u64(self.id as u64)),
            ("state", Json::str(self.state.to_string())),
            ("alarms", Json::u64(self.alarms)),
            ("readmissions", Json::u64(self.readmissions)),
            ("startup_runs", Json::u64(self.startup_runs)),
            ("bytes_produced", Json::u64(self.bytes_produced)),
            ("raw_bits", Json::u64(self.raw_bits)),
            (
                "sim_elapsed_ns",
                Json::u64(self.sim_elapsed.as_nanos() as u64),
            ),
            ("ring_high_water", Json::u64(self.ring_high_water as u64)),
        ])
    }
}

/// Coarse service health derived from the shard lifecycle states —
/// the classification a load balancer or health probe acts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolHealth {
    /// Every shard is online.
    Healthy,
    /// Not every shard is online (starting, quarantined, or retired):
    /// the pool serves at reduced — possibly zero — capacity, but at
    /// least one shard may still come (back) online.
    Degraded,
    /// Every shard is retired; the pool can never serve again.
    Exhausted,
}

impl fmt::Display for PoolHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PoolHealth::Healthy => "healthy",
            PoolHealth::Degraded => "degraded",
            PoolHealth::Exhausted => "exhausted",
        })
    }
}

/// Point-in-time view of the whole pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardStats>,
    /// Bytes delivered to consumers over the pool's lifetime.
    pub bytes_delivered: u64,
    /// Completed `fill_bytes`/`try_fill_bytes` calls.
    pub fill_calls: u64,
    /// Longest time a single fill call spent waiting for bytes.
    pub max_refill_wait: Duration,
}

impl PoolStats {
    /// Number of shards currently online.
    pub fn online_shards(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.state == ShardState::Online)
            .count()
    }

    /// Total alarms across all shards.
    pub fn total_alarms(&self) -> u64 {
        self.shards.iter().map(|s| s.alarms).sum()
    }

    /// Coarse health classification: [`PoolHealth::Healthy`] when
    /// every shard is online, [`PoolHealth::Exhausted`] when every
    /// shard is retired, [`PoolHealth::Degraded`] in between.
    pub fn health(&self) -> PoolHealth {
        if self.shards.iter().all(|s| s.state == ShardState::Retired) {
            PoolHealth::Exhausted
        } else if self.online_shards() == self.shards.len() {
            PoolHealth::Healthy
        } else {
            PoolHealth::Degraded
        }
    }

    /// Renders the pool snapshot as a JSON object, one entry per
    /// [`Display`](fmt::Display) field plus the per-shard array —
    /// the payload the metrics endpoint of a serving layer exposes.
    /// Field names match the struct fields; durations are serialized
    /// in nanoseconds.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("bytes_delivered", Json::u64(self.bytes_delivered)),
            ("fill_calls", Json::u64(self.fill_calls)),
            (
                "max_refill_wait_ns",
                Json::u64(self.max_refill_wait.as_nanos() as u64),
            ),
            ("online_shards", Json::u64(self.online_shards() as u64)),
            ("total_alarms", Json::u64(self.total_alarms())),
            ("health", Json::str(self.health().to_string())),
            ("sim_throughput_bps", Json::num(self.sim_throughput_bps())),
            (
                "shards",
                Json::Arr(self.shards.iter().map(ShardStats::to_json).collect()),
            ),
        ])
    }

    /// Aggregate throughput in the *simulated* clock domain, in bits
    /// per simulated second: total healthy bits produced divided by
    /// the longest per-shard simulated elapsed time. This is the
    /// paper's Table-2 metric — parallel instances produce their bytes
    /// in the *same* simulated window, so N healthy shards deliver
    /// ~N× the single-instance rate.
    ///
    /// Returns 0.0 before any shard has produced bytes.
    pub fn sim_throughput_bps(&self) -> f64 {
        let bits: u64 = self.shards.iter().map(|s| s.bytes_produced * 8).sum();
        let window = self
            .shards
            .iter()
            .map(|s| s.sim_elapsed)
            .max()
            .unwrap_or_default();
        if window.is_zero() {
            0.0
        } else {
            bits as f64 / window.as_secs_f64()
        }
    }
}

impl fmt::Display for PoolStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pool: {} delivered over {} calls, {}/{} shards online, {} alarms",
            self.bytes_delivered,
            self.fill_calls,
            self.online_shards(),
            self.shards.len(),
            self.total_alarms(),
        )?;
        for s in &self.shards {
            writeln!(
                f,
                "  shard {}: {:<11} {:>10} B, {} alarms, {} readmissions, \
                 {} startups, ring high-water {} B",
                s.id,
                s.state.to_string(),
                s.bytes_produced,
                s.alarms,
                s.readmissions,
                s.startup_runs,
                s.ring_high_water,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_round_trips_through_u8() {
        for s in [
            ShardState::Starting,
            ShardState::Online,
            ShardState::Quarantined,
            ShardState::Retired,
        ] {
            assert_eq!(ShardState::from_u8(s.as_u8()), s);
        }
    }

    #[test]
    fn shared_counters_snapshot() {
        let shared = ShardShared::default();
        shared.set_state(ShardState::Online);
        shared.count_alarm();
        shared.count_startup_run();
        shared.count_startup_run();
        shared.count_readmission();
        shared.add_bytes(100);
        shared.add_bytes(28);
        shared.set_raw_bits(1024);
        shared.set_sim_ns(5_000);
        shared.set_ring_high_water(64);
        shared.set_ring_high_water(32); // max() keeps 64
        let s = shared.snapshot(3);
        assert_eq!(s.id, 3);
        assert_eq!(s.state, ShardState::Online);
        assert_eq!(s.alarms, 1);
        assert_eq!(s.readmissions, 1);
        assert_eq!(s.startup_runs, 2);
        assert_eq!(s.bytes_produced, 128);
        assert_eq!(s.raw_bits, 1024);
        assert_eq!(s.sim_elapsed, Duration::from_nanos(5_000));
        assert_eq!(s.ring_high_water, 64);
    }

    #[test]
    fn sim_throughput_uses_slowest_shard_window() {
        let mk = |bytes: u64, sim_ms: u64| ShardStats {
            id: 0,
            state: ShardState::Online,
            alarms: 0,
            readmissions: 0,
            startup_runs: 1,
            bytes_produced: bytes,
            raw_bits: 0,
            sim_elapsed: Duration::from_millis(sim_ms),
            ring_high_water: 0,
        };
        let stats = PoolStats {
            shards: vec![mk(1000, 10), mk(1000, 10), mk(1000, 10), mk(1000, 10)],
            bytes_delivered: 4000,
            fill_calls: 1,
            max_refill_wait: Duration::ZERO,
        };
        // 4 shards x 8000 bits over the same 10 ms window: 3.2 Mb/s,
        // 4x what a single shard would report.
        assert!((stats.sim_throughput_bps() - 3.2e6).abs() < 1.0);
        let single = PoolStats {
            shards: vec![mk(1000, 10)],
            bytes_delivered: 1000,
            fill_calls: 1,
            max_refill_wait: Duration::ZERO,
        };
        assert!((single.sim_throughput_bps() - 0.8e6).abs() < 1.0);
    }

    fn sample_stats() -> PoolStats {
        let shard = |id: usize, state: ShardState| ShardStats {
            id,
            state,
            alarms: id as u64,
            readmissions: 1,
            startup_runs: 2,
            bytes_produced: 4096 + id as u64,
            raw_bits: 32768,
            sim_elapsed: Duration::from_nanos(123_456),
            ring_high_water: 512,
        };
        PoolStats {
            shards: vec![
                shard(0, ShardState::Online),
                shard(1, ShardState::Quarantined),
            ],
            bytes_delivered: 8190,
            fill_calls: 17,
            max_refill_wait: Duration::from_micros(250),
        }
    }

    #[test]
    fn json_form_matches_struct_field_for_field() {
        let stats = sample_stats();
        let json = stats.to_json();
        let f = |k: &str| json.get(k).and_then(Json::as_f64).expect(k);
        assert_eq!(f("bytes_delivered"), stats.bytes_delivered as f64);
        assert_eq!(f("fill_calls"), stats.fill_calls as f64);
        assert_eq!(
            f("max_refill_wait_ns"),
            stats.max_refill_wait.as_nanos() as f64
        );
        assert_eq!(f("online_shards"), stats.online_shards() as f64);
        assert_eq!(f("total_alarms"), stats.total_alarms() as f64);
        assert_eq!(f("sim_throughput_bps"), stats.sim_throughput_bps());
        assert_eq!(
            json.get("health").and_then(Json::as_str),
            Some(stats.health().to_string().as_str())
        );
        let shards = json.get("shards").and_then(Json::as_arr).expect("shards");
        assert_eq!(shards.len(), stats.shards.len());
        for (j, s) in shards.iter().zip(&stats.shards) {
            let f = |k: &str| j.get(k).and_then(Json::as_f64).expect(k);
            assert_eq!(f("id"), s.id as f64);
            assert_eq!(
                j.get("state").and_then(Json::as_str),
                Some(s.state.to_string().as_str())
            );
            assert_eq!(f("alarms"), s.alarms as f64);
            assert_eq!(f("readmissions"), s.readmissions as f64);
            assert_eq!(f("startup_runs"), s.startup_runs as f64);
            assert_eq!(f("bytes_produced"), s.bytes_produced as f64);
            assert_eq!(f("raw_bits"), s.raw_bits as f64);
            assert_eq!(f("sim_elapsed_ns"), s.sim_elapsed.as_nanos() as f64);
            assert_eq!(f("ring_high_water"), s.ring_high_water as f64);
        }
    }

    #[test]
    fn display_and_json_agree_on_shared_fields() {
        // Every quantity the Display form prints must appear with the
        // same value in the JSON form.
        let stats = sample_stats();
        let text = stats.to_string();
        let json = stats.to_json();
        let f = |k: &str| json.get(k).and_then(Json::as_f64).expect(k) as u64;
        for n in [
            f("bytes_delivered"),
            f("fill_calls"),
            f("online_shards"),
            f("total_alarms"),
        ] {
            assert!(text.contains(&n.to_string()), "{n} missing from {text}");
        }
        let shards = json.get("shards").and_then(Json::as_arr).expect("shards");
        for j in shards {
            let state = j.get("state").and_then(Json::as_str).expect("state");
            assert!(text.contains(state), "{state} missing from {text}");
            for k in ["bytes_produced", "alarms", "readmissions", "startup_runs"] {
                let n = j.get(k).and_then(Json::as_f64).expect(k) as u64;
                assert!(text.contains(&n.to_string()), "{k}={n} missing from {text}");
            }
        }
    }

    #[test]
    fn health_classifies_lifecycle_mixtures() {
        let mut stats = sample_stats();
        stats.shards[1].state = ShardState::Online;
        assert_eq!(stats.health(), PoolHealth::Healthy);
        for state in [
            ShardState::Starting,
            ShardState::Quarantined,
            ShardState::Retired,
        ] {
            stats.shards[1].state = state;
            assert_eq!(stats.health(), PoolHealth::Degraded, "{state}");
        }
        stats.shards[0].state = ShardState::Retired;
        stats.shards[1].state = ShardState::Retired;
        assert_eq!(stats.health(), PoolHealth::Exhausted);
        assert_eq!(PoolHealth::Healthy.to_string(), "healthy");
        assert_eq!(PoolHealth::Degraded.to_string(), "degraded");
        assert_eq!(PoolHealth::Exhausted.to_string(), "exhausted");
    }

    #[test]
    fn display_renders_every_shard() {
        let stats = PoolStats {
            shards: vec![ShardShared::default().snapshot(0)],
            bytes_delivered: 0,
            fill_calls: 0,
            max_refill_wait: Duration::ZERO,
        };
        let text = stats.to_string();
        assert!(text.contains("shard 0"));
        assert!(text.contains("starting"));
    }
}
