//! Auditable incident journal: a bounded, lock-free event log every
//! shard (and the respawn supervisor) records its lifecycle incidents
//! into.
//!
//! AIS-31 evaluation is not a one-time certificate: an entropy claim
//! over a device's lifetime rests on being able to account for *every*
//! health incident after the fact. Bare counters ("3 alarms") cannot
//! do that — an evaluator needs to know *when* each alarm fired,
//! where in the delivered stream it sat, and how the supervisor
//! responded. The journal records exactly that:
//!
//! * one [`IncidentEvent`] per lifecycle transition —
//!   [`IncidentKind::Spawn`] / [`Alarm`](IncidentKind::Alarm) /
//!   [`Quarantine`](IncidentKind::Quarantine) /
//!   [`Readmit`](IncidentKind::Readmit) /
//!   [`Retire`](IncidentKind::Retire) /
//!   [`Respawn`](IncidentKind::Respawn) — stamped with the shard's
//!   simulated clock and its healthy-byte offset at the moment of the
//!   event;
//! * recording is lock-free (a fetch-add slot claim plus seqlock-style
//!   publication), so shard worker threads never contend with each
//!   other or with snapshot readers;
//! * the log is **bounded**: a fixed-capacity ring where the oldest
//!   events are overwritten once `capacity` is exceeded. Eviction is
//!   *detectable*, never silent — [`Journal::snapshot`] reports the
//!   total number of events ever recorded alongside the retained
//!   window, so an auditor can tell a complete history from a
//!   truncated one (and size the capacity accordingly).

use std::sync::atomic::{AtomicU64, Ordering};

use trng_testkit::json::Json;

/// Default number of events a pool journal retains.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

/// Which physics probe a monitoring event's `detail` word describes —
/// the exhaustive code set shared by every probe-carrying incident
/// ([`IncidentKind::JitterDrift`] and
/// [`IncidentKind::CommonModeCoherence`]). The code always sits in the
/// top byte of [`IncidentEvent::detail`]; the layout of the low bits is
/// probe-specific (see the incident-kind docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeCode {
    /// The per-shard differential two-RO sigma probe.
    Sigma,
    /// The per-shard oscillation-period probe.
    Period,
    /// The pool-level cross-shard coherence detector (Goertzel bank
    /// over period-probe residuals).
    Coherence,
}

impl ProbeCode {
    /// Every probe code, for exhaustive round-trip tests.
    pub const ALL: [ProbeCode; 3] = [ProbeCode::Sigma, ProbeCode::Period, ProbeCode::Coherence];

    /// The wire code stored in the detail word's top byte. Codes start
    /// at 1 so a zero detail word never reads as a probe event.
    pub fn as_u8(self) -> u8 {
        match self {
            ProbeCode::Sigma => 1,
            ProbeCode::Period => 2,
            ProbeCode::Coherence => 3,
        }
    }

    /// Decodes a wire code; `None` for values no probe has claimed.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(ProbeCode::Sigma),
            2 => Some(ProbeCode::Period),
            3 => Some(ProbeCode::Coherence),
            _ => None,
        }
    }

    /// Extracts the probe code from a journal detail word.
    pub fn from_detail(detail: u64) -> Option<Self> {
        ProbeCode::from_u8((detail >> 56) as u8)
    }

    /// Metrics label of the probe.
    pub fn as_str(self) -> &'static str {
        match self {
            ProbeCode::Sigma => "sigma",
            ProbeCode::Period => "period",
            ProbeCode::Coherence => "coherence",
        }
    }
}

impl core::fmt::Display for ProbeCode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What happened to a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IncidentKind {
    /// The shard was built as part of the pool's initial complement.
    Spawn,
    /// A continuous online test alarmed; the in-flight block was
    /// discarded.
    Alarm,
    /// The shard was isolated pending a fresh start-up test.
    Quarantine,
    /// The shard passed its re-admission start-up test and rejoined.
    Readmit,
    /// The shard left service permanently. For a retirement caused by
    /// a failed (re-)admission test, [`IncidentEvent::detail`] carries
    /// the startup failure mask.
    Retire,
    /// The supervisor spawned this shard as a replacement on a fresh
    /// fabric placement; [`IncidentEvent::detail`] carries the id of
    /// the retired shard it supersedes.
    Respawn,
    /// The online jitter monitor saw the shard's differential jitter
    /// or oscillation period leave its baseline band — an entropy-
    /// degradation early warning that does *not* by itself quarantine
    /// the shard. [`IncidentEvent::detail`] encodes the offending
    /// probe (`1` = jitter sigma, `2` = period, in the top byte) and
    /// the observed/baseline ratio in permille (low bits).
    JitterDrift,
    /// The pool-level coherence detector saw the *same* spectral line
    /// elevated on a quorum of shards' period-probe residual series —
    /// the signature of a common-mode environmental attack that every
    /// per-shard differential probe cancels by construction.
    /// [`IncidentEvent::detail`] packs
    /// [`ProbeCode::Coherence`] in the top byte, the DFT bin index in
    /// bits 48..56, the quorum shard bitmask in bits 32..48 and the
    /// line magnitude in permille of the baseline period in the low 32
    /// bits (see `trng_pool::coherence` for the encode/decode pair).
    /// The event is recorded against the lowest-indexed shard in the
    /// quorum and stamped with that shard's clock and byte offset.
    CommonModeCoherence,
}

impl IncidentKind {
    fn as_u8(self) -> u8 {
        match self {
            IncidentKind::Spawn => 0,
            IncidentKind::Alarm => 1,
            IncidentKind::Quarantine => 2,
            IncidentKind::Readmit => 3,
            IncidentKind::Retire => 4,
            IncidentKind::Respawn => 5,
            IncidentKind::JitterDrift => 6,
            IncidentKind::CommonModeCoherence => 7,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            0 => IncidentKind::Spawn,
            1 => IncidentKind::Alarm,
            2 => IncidentKind::Quarantine,
            3 => IncidentKind::Readmit,
            4 => IncidentKind::Retire,
            6 => IncidentKind::JitterDrift,
            7 => IncidentKind::CommonModeCoherence,
            _ => IncidentKind::Respawn,
        }
    }
}

impl core::fmt::Display for IncidentKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            IncidentKind::Spawn => "spawn",
            IncidentKind::Alarm => "alarm",
            IncidentKind::Quarantine => "quarantine",
            IncidentKind::Readmit => "readmit",
            IncidentKind::Retire => "retire",
            IncidentKind::Respawn => "respawn",
            IncidentKind::JitterDrift => "jitter_drift",
            IncidentKind::CommonModeCoherence => "common_mode_coherence",
        })
    }
}

/// One journaled lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncidentEvent {
    /// Global sequence number (0-based, gap-free across the pool).
    pub seq: u64,
    /// Shard the event concerns.
    pub shard: usize,
    /// What happened.
    pub kind: IncidentKind,
    /// The shard's simulated clock at the event, in nanoseconds
    /// (respawn events are stamped with the superseded shard's final
    /// simulated time).
    pub sim_ns: u64,
    /// The shard's healthy-byte offset at the event (for respawn
    /// events: the pool's delivered-byte offset when the replacement
    /// was spawned).
    pub at_bytes: u64,
    /// Event-specific detail: the startup failure mask for a
    /// retirement caused by a failed (re-)admission test
    /// (see [`trng_core::selftest::StartupReport::failure_mask`]),
    /// the superseded shard id for a respawn, 0 otherwise.
    pub detail: u64,
}

impl IncidentEvent {
    /// Renders the event as a JSON object (field names match).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seq", Json::u64(self.seq)),
            ("shard", Json::u64(self.shard as u64)),
            ("kind", Json::str(self.kind.to_string())),
            ("sim_ns", Json::u64(self.sim_ns)),
            ("at_bytes", Json::u64(self.at_bytes)),
            ("detail", Json::u64(self.detail)),
        ])
    }
}

impl core::fmt::Display for IncidentEvent {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "#{} shard {} {} @ {} ns / {} B",
            self.seq, self.shard, self.kind, self.sim_ns, self.at_bytes
        )?;
        if self.detail != 0 {
            write!(f, " (detail {:#x})", self.detail)?;
        }
        Ok(())
    }
}

/// One ring slot. `stamp` is 0 while empty or being (re)written and
/// `seq + 1` once the payload fields are published.
#[derive(Debug, Default)]
struct Slot {
    stamp: AtomicU64,
    /// `shard << 8 | kind`.
    who: AtomicU64,
    sim_ns: AtomicU64,
    at_bytes: AtomicU64,
    detail: AtomicU64,
}

/// The bounded, lock-free event log. See the module docs for the
/// recording and eviction semantics.
#[derive(Debug)]
pub struct Journal {
    slots: Box<[Slot]>,
    /// Total events ever recorded; doubles as the sequence allocator.
    recorded: AtomicU64,
}

impl Journal {
    /// Creates a journal retaining at least `capacity` events
    /// (rounded up to a power of two, floored at 8).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        Journal {
            slots: (0..cap).map(|_| Slot::default()).collect(),
            recorded: AtomicU64::new(0),
        }
    }

    /// Number of events the journal retains before evicting the
    /// oldest.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Acquire)
    }

    /// Records one event, evicting the oldest if the ring is full.
    /// Lock-free; safe to call from any shard worker.
    pub fn record(
        &self,
        shard: usize,
        kind: IncidentKind,
        sim_ns: u64,
        at_bytes: u64,
        detail: u64,
    ) {
        let seq = self.recorded.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(seq as usize) & (self.slots.len() - 1)];
        // Seqlock-style publication: invalidate, write fields, then
        // publish the stamp. A snapshot that races a lapping writer
        // sees a stamp mismatch and drops the slot instead of reading
        // torn fields.
        slot.stamp.store(0, Ordering::Release);
        slot.who.store(
            (shard as u64) << 8 | u64::from(kind.as_u8()),
            Ordering::Relaxed,
        );
        slot.sim_ns.store(sim_ns, Ordering::Relaxed);
        slot.at_bytes.store(at_bytes, Ordering::Relaxed);
        slot.detail.store(detail, Ordering::Relaxed);
        slot.stamp.store(seq + 1, Ordering::Release);
    }

    /// Snapshots the retained window, oldest first. Returns the events
    /// and the count of events evicted from the bounded ring (`0`
    /// means the snapshot is the complete history).
    ///
    /// Events still mid-publication by a racing writer are skipped —
    /// they surface in the next snapshot.
    pub fn snapshot(&self) -> (Vec<IncidentEvent>, u64) {
        let total = self.recorded.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = total.saturating_sub(cap);
        let mut events = Vec::with_capacity((total - start) as usize);
        for seq in start..total {
            let slot = &self.slots[(seq as usize) & (self.slots.len() - 1)];
            if slot.stamp.load(Ordering::Acquire) != seq + 1 {
                continue; // being overwritten or not yet published
            }
            let who = slot.who.load(Ordering::Relaxed);
            let sim_ns = slot.sim_ns.load(Ordering::Relaxed);
            let at_bytes = slot.at_bytes.load(Ordering::Relaxed);
            let detail = slot.detail.load(Ordering::Relaxed);
            // Re-check after reading the fields: a writer lapping this
            // slot mid-read would have bumped (or zeroed) the stamp.
            if slot.stamp.load(Ordering::Acquire) != seq + 1 {
                continue;
            }
            events.push(IncidentEvent {
                seq,
                shard: (who >> 8) as usize,
                kind: IncidentKind::from_u8((who & 0xFF) as u8),
                sim_ns,
                at_bytes,
                detail,
            });
        }
        (events, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every incident kind, in wire-code order. Adding a kind without
    /// extending this list fails the round-trip test below.
    const ALL_KINDS: [IncidentKind; 8] = [
        IncidentKind::Spawn,
        IncidentKind::Alarm,
        IncidentKind::Quarantine,
        IncidentKind::Readmit,
        IncidentKind::Retire,
        IncidentKind::Respawn,
        IncidentKind::JitterDrift,
        IncidentKind::CommonModeCoherence,
    ];

    #[test]
    fn kinds_round_trip_and_render() {
        for (i, kind) in ALL_KINDS.into_iter().enumerate() {
            assert_eq!(kind.as_u8() as usize, i, "wire codes must be dense");
            assert_eq!(IncidentKind::from_u8(kind.as_u8()), kind);
            assert!(!kind.to_string().is_empty());
        }
        // Unclaimed codes decode to the historical wildcard.
        assert_eq!(IncidentKind::from_u8(200), IncidentKind::Respawn);
    }

    #[test]
    fn every_kind_journals_and_snapshots_round_trip() {
        // One full record/snapshot cycle per kind — including the
        // coherence event — so a kind whose `who` packing breaks can
        // never reach a release.
        let journal = Journal::new(ALL_KINDS.len());
        for (i, kind) in ALL_KINDS.into_iter().enumerate() {
            journal.record(i, kind, i as u64 * 10, i as u64 * 100, i as u64 ^ 0x5A);
        }
        let (events, dropped) = journal.snapshot();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), ALL_KINDS.len());
        for (i, (e, kind)) in events.iter().zip(ALL_KINDS).enumerate() {
            assert_eq!(e.kind, kind);
            assert_eq!(e.shard, i);
            assert_eq!(e.sim_ns, i as u64 * 10);
            assert_eq!(e.at_bytes, i as u64 * 100);
            assert_eq!(e.detail, i as u64 ^ 0x5A);
            let json = e.to_json();
            assert_eq!(
                json.get("kind").and_then(Json::as_str),
                Some(kind.to_string().as_str())
            );
        }
    }

    #[test]
    fn probe_codes_are_exhaustive_and_round_trip() {
        for code in ProbeCode::ALL {
            assert_eq!(ProbeCode::from_u8(code.as_u8()), Some(code));
            assert_eq!(
                ProbeCode::from_detail(u64::from(code.as_u8()) << 56 | 0x1234),
                Some(code)
            );
            assert_eq!(code.to_string(), code.as_str());
        }
        assert_eq!(ProbeCode::from_u8(0), None, "zero is never a probe");
        assert_eq!(ProbeCode::from_detail(0), None);
        assert_eq!(ProbeCode::from_u8(9), None);
    }

    #[test]
    fn records_in_order_with_stamps() {
        let journal = Journal::new(64);
        journal.record(0, IncidentKind::Spawn, 0, 0, 0);
        journal.record(1, IncidentKind::Spawn, 0, 0, 0);
        journal.record(1, IncidentKind::Alarm, 5_000, 2048, 0);
        journal.record(1, IncidentKind::Quarantine, 5_000, 2048, 0);
        journal.record(1, IncidentKind::Retire, 9_000, 2048, 0b1001);
        journal.record(2, IncidentKind::Respawn, 9_000, 6144, 1);
        let (events, dropped) = journal.snapshot();
        assert_eq!(dropped, 0);
        assert_eq!(journal.recorded(), 6);
        assert_eq!(events.len(), 6);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            (0..6).collect::<Vec<_>>()
        );
        let retire = &events[4];
        assert_eq!(retire.shard, 1);
        assert_eq!(retire.kind, IncidentKind::Retire);
        assert_eq!(retire.sim_ns, 9_000);
        assert_eq!(retire.at_bytes, 2048);
        assert_eq!(retire.detail, 0b1001);
        let respawn = &events[5];
        assert_eq!(respawn.kind, IncidentKind::Respawn);
        assert_eq!(respawn.detail, 1, "supersedes shard 1");
    }

    #[test]
    fn bounded_ring_evicts_oldest_but_counts_everything() {
        let journal = Journal::new(8);
        assert_eq!(journal.capacity(), 8);
        for i in 0..20u64 {
            journal.record(0, IncidentKind::Alarm, i, i, 0);
        }
        let (events, dropped) = journal.snapshot();
        assert_eq!(journal.recorded(), 20, "evictions must stay countable");
        assert_eq!(dropped, 12);
        assert_eq!(events.len(), 8);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            (12..20).collect::<Vec<_>>(),
            "the retained window is the newest events, oldest first"
        );
    }

    #[test]
    fn capacity_is_floored_and_rounded() {
        assert_eq!(Journal::new(0).capacity(), 8);
        assert_eq!(Journal::new(9).capacity(), 16);
        assert_eq!(Journal::new(64).capacity(), 64);
    }

    #[test]
    fn concurrent_recorders_never_tear_a_snapshot() {
        use std::sync::Arc;
        let journal = Arc::new(Journal::new(64));
        let writers: Vec<_> = (0..4)
            .map(|shard| {
                let j = Arc::clone(&journal);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        j.record(shard, IncidentKind::Alarm, i * 10, i, shard as u64);
                    }
                })
            })
            .collect();
        // Snapshot while writers run: every returned event must be
        // internally consistent (detail always equals the shard id).
        for _ in 0..200 {
            let (events, _) = journal.snapshot();
            for e in &events {
                assert_eq!(e.detail, e.shard as u64, "torn event {e}");
                assert_eq!(e.kind, IncidentKind::Alarm);
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(journal.recorded(), 2000);
        let (events, dropped) = journal.snapshot();
        assert_eq!(events.len(), 64);
        assert_eq!(dropped, 2000 - 64);
    }

    #[test]
    fn wraparound_preserves_payloads_and_eviction_order() {
        // Fill well past capacity with distinguishable payloads and
        // check the retained window carries exactly the newest events,
        // oldest first, each with its own (untorn) payload.
        let journal = Journal::new(16);
        let cap = journal.capacity() as u64;
        let total = 5 * cap + 3; // lands mid-ring, not on a boundary
        for i in 0..total {
            journal.record(
                (i % 7) as usize,
                IncidentKind::from_u8((i % 7) as u8),
                i * 1000,
                i * 64,
                i ^ 0xABCD,
            );
        }
        let (events, dropped) = journal.snapshot();
        assert_eq!(journal.recorded(), total);
        assert_eq!(dropped, total - cap, "eviction count must be exact");
        assert_eq!(events.len(), cap as usize);
        for (offset, e) in events.iter().enumerate() {
            let i = dropped + offset as u64;
            assert_eq!(e.seq, i, "retained window must be gap-free");
            assert_eq!(e.shard, (i % 7) as usize);
            assert_eq!(e.kind, IncidentKind::from_u8((i % 7) as u8));
            assert_eq!(e.sim_ns, i * 1000);
            assert_eq!(e.at_bytes, i * 64);
            assert_eq!(e.detail, i ^ 0xABCD);
        }
    }

    #[test]
    fn snapshot_stays_consistent_under_a_lapping_writer() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        // A tiny ring and a writer that laps it continuously: every
        // snapshot must return internally consistent events (payload
        // fields derived from the sequence number must agree) in
        // strictly increasing seq order within the retained window.
        let journal = Arc::new(Journal::new(8));
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let j = Arc::clone(&journal);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    j.record(0, IncidentKind::Alarm, i, i * 2, i * 3);
                    i += 1;
                }
            })
        };
        for _ in 0..2000 {
            let (events, dropped) = journal.snapshot();
            assert!(dropped <= journal.recorded());
            let mut last_seq = None;
            for e in &events {
                assert_eq!(e.at_bytes, e.sim_ns * 2, "torn event {e}");
                assert_eq!(e.detail, e.sim_ns * 3, "torn event {e}");
                if let Some(prev) = last_seq {
                    assert!(e.seq > prev, "snapshot out of order");
                }
                last_seq = Some(e.seq);
            }
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn json_form_matches_event_field_for_field() {
        let event = IncidentEvent {
            seq: 7,
            shard: 3,
            kind: IncidentKind::Respawn,
            sim_ns: 123_456,
            at_bytes: 8192,
            detail: 1,
        };
        let json = event.to_json();
        let f = |k: &str| json.get(k).and_then(Json::as_f64).expect(k);
        assert_eq!(f("seq"), 7.0);
        assert_eq!(f("shard"), 3.0);
        assert_eq!(json.get("kind").and_then(Json::as_str), Some("respawn"));
        assert_eq!(f("sim_ns"), 123_456.0);
        assert_eq!(f("at_bytes"), 8192.0);
        assert_eq!(f("detail"), 1.0);
        let text = event.to_string();
        assert!(
            text.contains("shard 3") && text.contains("respawn"),
            "{text}"
        );
    }
}
