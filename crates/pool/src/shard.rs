//! One pool shard: an [`EntropySource`] backend wrapped in its own
//! health gate and conditioning stage, driven through the lifecycle
//! state machine of [`ShardState`].
//!
//! A shard only contributes bytes while `Online`. Admission (and
//! *re*-admission after a quarantine) is gated by the same start-up
//! self-test a [`SelfTestingTrng`](trng_core::selftest::SelfTestingTrng)
//! runs; while online, every raw bit feeds the SP 800-90B continuous
//! tests *before* it may enter the conditioning stage, and a block is
//! only released to the pool once every bit in it passed. An alarm
//! therefore discards the whole in-flight block — no byte derived from
//! a suspect stretch of the raw stream can reach a consumer.
//!
//! The shard is backend-agnostic: it owns a `Box<dyn EntropySource>`
//! and parameterises its health tests with the backend's
//! `claimed_min_entropy()`, so a carry-chain TDC, a dual-oscillator
//! sampler, a recorded trace or the OS pool all run through identical
//! gating.

use core::fmt;
use std::sync::Arc;

use trng_core::health::{HealthStatus, OnlineHealth};
use trng_core::postprocess::XorCompressor;
use trng_core::von_neumann::VonNeumann;
use trng_extract::{leftover_hash_ratio, ToeplitzExtractor};
use trng_fpga_sim::rng::SimRng;
use trng_sources::{run_source_startup, EntropySource};

use crate::journal::{IncidentKind, Journal};
use crate::monitor::{JitterMonitor, MonitorConfig};
use crate::stats::{ShardShared, ShardState};

/// How an injected fault replaces a shard's entropy source — the
/// [`SourceFault`](trng_sources::SourceFault) contract, re-exported
/// under the pool's historical name. Backends that cannot express a
/// requested fault reject it with a typed error, which the shard
/// converts into an alarm during block production.
pub use trng_sources::SourceFault as ShardFault;

/// Deterministically derives a per-shard / per-rebuild simulation seed
/// (re-exported from `trng-sources`, where every backend draws its
/// lanes from the same function).
pub(crate) use trng_sources::mix_seed;

/// Conditioning applied between the raw source and the pool's byte
/// stream, reusing the post-processors from `trng-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Conditioning {
    /// XOR compression at the source's own natural rate (`np` for the
    /// carry-chain design — the paper's Section 4.5 choice — or the
    /// backend's [`native_xor_rate`](EntropySource::native_xor_rate)).
    DesignXor,
    /// XOR compression at an explicit rate.
    Xor(u32),
    /// Von Neumann extraction (unbiased output, variable rate).
    VonNeumann,
    /// Raw bits, packed into bytes unconditioned.
    Raw,
    /// Seeded Toeplitz strong extraction
    /// ([`ToeplitzExtractor`]):
    /// every `ratio · 64` raw bits hash to one 64-bit output block,
    /// carrying the leftover-hash-lemma uniformity guarantee the XOR
    /// modes lack. Each shard derives its own matrix via
    /// [`mix_seed`] from `seed` and the
    /// shard's lane, so deterministic replay stays a pure function of
    /// the configuration.
    Toeplitz {
        /// Raw input bits consumed per output bit (the input block is
        /// `ratio · 64` bits wide); size it with
        /// [`leftover_hash_ratio`]
        /// or [`Conditioning::toeplitz_sized`]. Must be at least 1.
        ratio: u32,
        /// Matrix seed lane, mixed with the shard seed.
        seed: u64,
    },
}

impl Conditioning {
    /// A [`Conditioning::Toeplitz`] whose ratio is sized by the
    /// leftover hash lemma from a per-raw-bit min-entropy claim at
    /// statistical distance `ε = 2^−epsilon_log2` — the same
    /// calculation the composed pool stage applies across shards.
    ///
    /// # Panics
    ///
    /// When `claimed_min_entropy` is not a positive claim (see
    /// [`leftover_hash_ratio`]).
    pub fn toeplitz_sized(claimed_min_entropy: f64, epsilon_log2: u32, seed: u64) -> Self {
        Conditioning::Toeplitz {
            ratio: leftover_hash_ratio(claimed_min_entropy, epsilon_log2, 64),
            seed,
        }
    }

    /// Compact metrics label: `design_xor`, `xor:<rate>`,
    /// `von_neumann`, `raw`, or `toeplitz:<ratio>` (the matrix seed is
    /// configuration, not telemetry).
    pub(crate) fn encode_label(self) -> u64 {
        let (tag, param) = match self {
            Conditioning::DesignXor => (0u64, 0u32),
            Conditioning::Xor(rate) => (1, rate),
            Conditioning::VonNeumann => (2, 0),
            Conditioning::Raw => (3, 0),
            Conditioning::Toeplitz { ratio, .. } => (4, ratio),
        };
        tag << 32 | u64::from(param)
    }

    /// Decodes [`encode_label`](Conditioning::encode_label) back to
    /// the label string; unknown tags (never stored) read as the
    /// default `design_xor`.
    pub(crate) fn decode_label(encoded: u64) -> String {
        let param = encoded as u32;
        match encoded >> 32 {
            1 => format!("xor:{param}"),
            2 => "von_neumann".to_string(),
            3 => "raw".to_string(),
            4 => format!("toeplitz:{param}"),
            _ => "design_xor".to_string(),
        }
    }
}

impl fmt::Display for Conditioning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&Conditioning::decode_label(self.encode_label()))
    }
}

#[derive(Debug, Clone)]
enum Conditioner {
    Xor(XorCompressor),
    VonNeumann(VonNeumann),
    Raw,
    Toeplitz(ToeplitzExtractor),
}

/// What one raw bit produced out of the conditioning stage: XOR and
/// Von Neumann emit at most one bit per raw bit, the Toeplitz
/// extractor emits a whole 64-bit block when a raw bit completes its
/// input window.
enum Emit {
    Nothing,
    Bit(bool),
    /// Output bit `y_i` at word bit `i`; `y_0` is the stream-first bit.
    Word(u64),
}

impl Conditioner {
    /// `shard_seed` derives the per-shard Toeplitz matrix lane; the
    /// other modes ignore it.
    fn new(mode: Conditioning, native_rate: u32, shard_seed: u64) -> Self {
        match mode {
            Conditioning::DesignXor => Conditioner::Xor(XorCompressor::new(native_rate)),
            Conditioning::Xor(np) => Conditioner::Xor(XorCompressor::new(np)),
            Conditioning::VonNeumann => Conditioner::VonNeumann(VonNeumann::new()),
            Conditioning::Raw => Conditioner::Raw,
            Conditioning::Toeplitz { ratio, seed } => Conditioner::Toeplitz(
                ToeplitzExtractor::from_seed(64, ratio as usize * 64, mix_seed(seed, shard_seed)),
            ),
        }
    }

    fn push(&mut self, bit: bool) -> Emit {
        match self {
            Conditioner::Xor(c) => c.push(bit).map_or(Emit::Nothing, Emit::Bit),
            Conditioner::VonNeumann(v) => v.push(bit).map_or(Emit::Nothing, Emit::Bit),
            Conditioner::Raw => Emit::Bit(bit),
            Conditioner::Toeplitz(t) => t.push(bit).map_or(Emit::Nothing, Emit::Word),
        }
    }

    fn reset(&mut self) {
        match self {
            Conditioner::Xor(c) => c.reset(),
            Conditioner::VonNeumann(v) => *v = VonNeumann::new(),
            Conditioner::Raw => {}
            // Drops the partial input window; the seeded matrix is
            // configuration and survives so replay stays pure.
            Conditioner::Toeplitz(t) => t.reset(),
        }
    }

    /// Expected raw bits per output bit (Von Neumann uses its fair-
    /// source expectation of 4 raw bits per output bit).
    fn raw_bits_per_output(&self) -> u64 {
        match self {
            Conditioner::Xor(c) => u64::from(c.rate()),
            Conditioner::VonNeumann(_) => 4,
            Conditioner::Raw => 1,
            Conditioner::Toeplitz(t) => (t.input_block_bits() / t.output_block_bits()) as u64,
        }
    }

    /// `true` when the conditioner consumes a *fixed* number of raw
    /// bits per output bit, making a block's raw demand exactly
    /// computable up front (enables whole-byte batch fetching). The
    /// Toeplitz extractor is fixed-rate at block granularity: its
    /// 64-bit emissions divide the block exactly because block sizes
    /// are validated to a multiple of 8 bytes.
    fn is_fixed_rate(&self) -> bool {
        !matches!(self, Conditioner::VonNeumann(_))
    }

    /// Raw bits already absorbed toward the next output (always less
    /// than the rate — or, for Toeplitz, the input block — for
    /// fixed-rate conditioners; Von Neumann's consumption is
    /// data-dependent and reported as 0).
    fn pending_raw_bits(&self) -> u64 {
        match self {
            Conditioner::Xor(c) => u64::from(c.pending()),
            Conditioner::Toeplitz(t) => t.pending_input_bits() as u64,
            _ => 0,
        }
    }
}

/// Deterministic mid-stream fault injection for tests and drills: once
/// shard `shard` has produced `after_bytes` healthy bytes, its source
/// is swapped per `fault`.
#[derive(Debug, Clone)]
pub struct FaultInjection {
    /// Index of the shard to sabotage.
    pub shard: usize,
    /// Healthy bytes the shard must produce before the fault fires.
    pub after_bytes: u64,
    /// The fault to apply.
    pub fault: ShardFault,
    /// `true` models a transient disturbance: when the quarantined
    /// shard is rebuilt for its re-admission attempt the fault is
    /// gone, so the startup test passes and the shard rejoins.
    /// `false` models a persistent fault: the rebuilt shard still
    /// carries it, fails re-admission and is retired.
    pub transient: bool,
}

#[derive(Debug, Clone)]
struct PendingFault {
    after_bytes: u64,
    fault: ShardFault,
    transient: bool,
    applied: bool,
}

/// A single pooled entropy source with its health gate.
#[derive(Debug)]
pub(crate) struct Shard {
    id: usize,
    source: Box<dyn EntropySource>,
    /// The backend's natural XOR rate, frozen at construction so the
    /// startup compressor and `DesignXor` conditioning agree.
    native_rate: u32,
    /// The configured conditioning mode, kept for label re-publication
    /// after fault rebuilds.
    conditioning: Conditioning,
    health: OnlineHealth,
    conditioner: Conditioner,
    state: ShardState,
    alarms: u64,
    max_readmissions: u32,
    /// Scheduled faults for this shard (pre-filtered by the pool),
    /// in submission order.
    faults: Vec<PendingFault>,
    /// Index into `faults` of the fault currently corrupting the live
    /// instance, if any.
    active_fault: Option<usize>,
    bytes_produced: u64,
    shared: Arc<ShardShared>,
    journal: Arc<Journal>,
    /// Online jitter monitor, if enabled. Draws from its own rng lane
    /// derived from the shard seed, so enabling it never changes the
    /// shard's byte stream. Only observes backends that expose a
    /// carry-chain [`monitor_view`](EntropySource::monitor_view).
    monitor: Option<JitterMonitor>,
}

impl Shard {
    /// Wraps a built entropy source in the lifecycle machine. `seed`
    /// only derives the jitter monitor's rng lane — the source itself
    /// was seeded by whoever built it.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        source: Box<dyn EntropySource>,
        seed: u64,
        conditioning: Conditioning,
        faults: Vec<FaultInjection>,
        max_readmissions: u32,
        monitor: Option<MonitorConfig>,
        shared: Arc<ShardShared>,
        journal: Arc<Journal>,
    ) -> Self {
        let native_rate = source.native_xor_rate();
        let claim = source.claimed_min_entropy();
        let conditioner = Conditioner::new(conditioning, native_rate, seed);
        let monitor =
            monitor.map(|m| JitterMonitor::new(m, SimRng::seed_from(mix_seed(seed, 0x4_D017))));
        shared.set_state(ShardState::Starting);
        shared.set_source(source.kind(), claim, source.noise_backend());
        shared.set_conditioning(conditioning.encode_label());
        Shard {
            id,
            source,
            conditioning,
            native_rate,
            health: OnlineHealth::new(claim),
            conditioner,
            state: ShardState::Starting,
            alarms: 0,
            max_readmissions,
            faults: faults
                .into_iter()
                .map(|f| PendingFault {
                    after_bytes: f.after_bytes,
                    fault: f.fault,
                    transient: f.transient,
                    applied: false,
                })
                .collect(),
            active_fault: None,
            bytes_produced: 0,
            shared,
            journal,
            monitor,
        }
    }

    pub fn id(&self) -> usize {
        self.id
    }

    pub fn state(&self) -> ShardState {
        self.state
    }

    fn set_state(&mut self, s: ShardState) {
        self.state = s;
        self.shared.set_state(s);
    }

    fn publish_progress(&self) {
        self.shared.set_sim_ns(self.source.sim_now_ns());
        self.shared.set_raw_bits(self.source.raw_bits());
    }

    /// Re-publishes the source and conditioning labels after a rebuild
    /// swapped the live instance: the kind, claim and conditioning are
    /// stable across rebuilds, but the active noise backend can change
    /// (e.g. a faulted configuration whose layout the batched engine
    /// refuses falls back to scalar).
    fn publish_source_label(&self) {
        self.shared.set_source(
            self.source.kind(),
            self.source.claimed_min_entropy(),
            self.source.noise_backend(),
        );
        self.shared
            .set_conditioning(self.conditioning.encode_label());
    }

    /// Records a lifecycle incident stamped with the shard's current
    /// simulated time and healthy-byte offset.
    fn journal_event(&self, kind: IncidentKind, detail: u64) {
        self.journal.record(
            self.id,
            kind,
            self.source.sim_now_ns(),
            self.bytes_produced,
            detail,
        );
    }

    /// Drives one admission or re-admission attempt. Call while the
    /// shard is `Starting` or `Quarantined`; transitions to `Online`
    /// or `Retired`.
    pub fn recover(&mut self) {
        debug_assert!(matches!(
            self.state,
            ShardState::Starting | ShardState::Quarantined
        ));
        // A coherence alarm request that raced this shard into
        // quarantine is stale by the time readmission starts: consume
        // it so the readmitted shard is not immediately re-alarmed.
        self.shared.take_alarm_request();
        if self.state == ShardState::Quarantined {
            // Rebuild the source for a from-scratch validation run. A
            // transient fault is gone after the rebuild; a persistent
            // one follows the shard into its re-admission test.
            let fault = match self.active_fault {
                Some(i) if self.faults[i].transient => {
                    self.active_fault = None;
                    None
                }
                Some(i) => Some(self.faults[i].fault.clone()),
                None => None,
            };
            self.health.reset();
            self.conditioner.reset();
            if self.source.rebuild(fault.as_ref()).is_err() {
                self.set_state(ShardState::Retired);
                self.journal_event(IncidentKind::Retire, 0);
                return;
            }
            self.publish_source_label();
        }
        let was_quarantined = self.state == ShardState::Quarantined;
        let mut compressor = XorCompressor::new(self.native_rate);
        self.shared.count_startup_run();
        let report = run_source_startup(self.source.as_mut(), &mut self.health, &mut compressor);
        self.publish_progress();
        if report.passed() {
            self.conditioner.reset();
            if was_quarantined {
                self.shared.count_readmission();
                self.journal_event(IncidentKind::Readmit, 0);
            }
            self.set_state(ShardState::Online);
        } else {
            self.set_state(ShardState::Retired);
            self.journal_event(IncidentKind::Retire, u64::from(report.failure_mask()));
        }
    }

    /// Feeds one raw bit through the health gate and, if it passes,
    /// the conditioner (assembling output bytes MSB-first). Returns
    /// `false` when the bit tripped a continuous-test alarm — the
    /// caller must discard the block.
    fn ingest(&mut self, raw: bool, out: &mut Vec<u8>, byte: &mut u8, nbits: &mut u32) -> bool {
        if self.health.push(raw) == HealthStatus::Alarm {
            return false;
        }
        let mut emit_bit = |bit: bool| {
            *byte = *byte << 1 | u8::from(bit);
            *nbits += 1;
            if *nbits == 8 {
                out.push(*byte);
                *byte = 0;
                *nbits = 0;
            }
        };
        match self.conditioner.push(raw) {
            Emit::Nothing => {}
            Emit::Bit(bit) => emit_bit(bit),
            // A Toeplitz emission: the whole 64-bit block lands at
            // once, stream-first output bit (`y_0`, word bit 0) first
            // so it takes the MSB of the first assembled byte.
            Emit::Word(word) => {
                for i in 0..64 {
                    emit_bit(word >> i & 1 == 1);
                }
            }
        }
        true
    }

    fn raise_alarm(&mut self) {
        self.alarms += 1;
        self.shared.count_alarm();
        self.conditioner.reset();
        self.publish_progress();
        self.journal_event(IncidentKind::Alarm, self.alarms);
        if self.alarms > u64::from(self.max_readmissions) {
            self.set_state(ShardState::Retired);
            self.journal_event(IncidentKind::Retire, 0);
        } else {
            self.set_state(ShardState::Quarantined);
            self.journal_event(IncidentKind::Quarantine, 0);
        }
    }

    /// Produces one block of `block_bytes` conditioned bytes into
    /// `out` (cleared first). Returns `true` on a clean block; on any
    /// continuous-test alarm the whole block is discarded, the shard
    /// transitions per the lifecycle rules and `false` is returned.
    pub fn produce_block(&mut self, out: &mut Vec<u8>, block_bytes: usize) -> bool {
        debug_assert_eq!(self.state, ShardState::Online);
        out.clear();
        // An externally requested alarm (coherence-detector escalation
        // under `AlarmAll`) pre-empts production: the shard takes its
        // normal alarm path so quarantine and readmission work as for
        // any continuous-test trip.
        if self.shared.take_alarm_request() {
            self.raise_alarm();
            return false;
        }
        // Apply the earliest-scheduled ripe fault, if any. A ripe fault
        // supersedes an already-active one — campaign phases escalate
        // without waiting for a quarantine to clear the predecessor —
        // but a fault whose offset passed while a *noisier* fault was
        // corrupting the instance fires only after a transient
        // predecessor clears at re-admission (its offset is measured in
        // healthy bytes, which the corrupted stretch did not add to).
        let ripe = self
            .faults
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.applied && self.bytes_produced >= f.after_bytes)
            .min_by_key(|(_, f)| f.after_bytes)
            .map(|(i, _)| i);
        if let Some(i) = ripe {
            let fault = self.faults[i].fault.clone();
            // A mid-stream fault does not reset the health gate:
            // the attack hits a running, trusted source and the
            // continuous tests must catch it. A backend that cannot
            // express the requested fault rejects it, which burns an
            // alarm here — a drill targeting the wrong source kind is
            // itself an operational incident, not a silent no-op.
            if self.source.rebuild(Some(&fault)).is_err() {
                self.raise_alarm();
                return false;
            }
            self.faults[i].applied = true;
            self.active_fault = Some(i);
            self.publish_source_label();
        }
        // A health-passing source that still starves the conditioner
        // (possible only for Von Neumann under adversarial patterns)
        // is itself an entropy failure; bound the raw spend per block.
        let max_raw = (block_bytes as u64 * 8)
            .saturating_mul(self.conditioner.raw_bits_per_output())
            .saturating_mul(64);
        let mut raw_spent = 0u64;
        let mut byte = 0u8;
        let mut nbits = 0u32;
        if self.conditioner.is_fixed_rate() {
            // Fixed-rate conditioning (XOR / raw): the block consumes
            // exactly `block_bytes · 8 · rate` raw bits, so they can be
            // drawn from the source in whole bytes through the batch
            // API instead of one `next_raw_bit` call per bit. Every raw
            // bit still passes the health gate individually, in stream
            // order, before it may enter the conditioner — batching
            // changes the fetch granularity, not the gating semantics.
            // (`max_raw` cannot trip here: the exact demand is 64x
            // below it, as it was for the per-bit loop.)
            let need = (block_bytes as u64 * 8) * self.conditioner.raw_bits_per_output()
                - self.conditioner.pending_raw_bits();
            let mut chunk = [0u8; 64];
            let mut remaining = need;
            while remaining > 0 {
                let nbytes = ((remaining / 8) as usize).min(chunk.len());
                if nbytes > 0 {
                    self.source.fill_raw(&mut chunk[..nbytes]);
                }
                // `< 8` residual bits (possible only when `pending` was
                // non-zero) are fetched singly to keep the raw stream
                // position exact.
                let bits = if nbytes > 0 {
                    nbytes as u64 * 8
                } else {
                    remaining
                };
                for idx in 0..bits {
                    let raw = if nbytes > 0 {
                        chunk[(idx / 8) as usize] >> (7 - idx % 8) & 1 == 1
                    } else {
                        self.source.next_raw_bit()
                    };
                    if !self.ingest(raw, out, &mut byte, &mut nbits) {
                        out.clear();
                        self.raise_alarm();
                        return false;
                    }
                }
                remaining -= bits;
            }
            debug_assert_eq!(out.len(), block_bytes);
            debug_assert_eq!(nbits, 0);
        } else {
            // Variable-rate conditioning (Von Neumann): consumption is
            // data-dependent, so bits are drawn one at a time until the
            // block fills or the raw-spend bound trips.
            while out.len() < block_bytes {
                let raw = self.source.next_raw_bit();
                raw_spent += 1;
                if raw_spent > max_raw || !self.ingest(raw, out, &mut byte, &mut nbits) {
                    out.clear();
                    self.raise_alarm();
                    return false;
                }
            }
        }
        // End-of-block total-failure check on the raw capture quality.
        let stats = self.source.capture_stats();
        if self
            .health
            .report_missed_edges(stats.missed_edges, stats.samples)
            == HealthStatus::Alarm
        {
            out.clear();
            self.raise_alarm();
            return false;
        }
        self.bytes_produced += out.len() as u64;
        self.shared.add_bytes(out.len() as u64);
        self.publish_progress();
        self.run_monitor();
        true
    }

    /// Runs the online jitter monitor if one is configured, an
    /// observation is due and the backend exposes a carry-chain view
    /// to measure. A drift rising edge is journaled as
    /// [`IncidentKind::JitterDrift`]; the shard's lifecycle state is
    /// never touched — the monitor warns, the health gates act.
    fn run_monitor(&mut self) {
        let due = self
            .monitor
            .as_ref()
            .is_some_and(|m| m.due(self.bytes_produced));
        if !due {
            return;
        }
        let observed = {
            let Some((config, now)) = self.source.monitor_view() else {
                return;
            };
            let monitor = self.monitor.as_mut().expect("due implies present");
            monitor.observe(config, now)
        };
        let Some(obs) = observed else { return };
        self.shared.record_monitor(obs.jitter_fs, obs.baseline_fs);
        if let Some(ppm) = obs.period_residual_ppm {
            self.shared.residuals().push(ppm);
        }
        if let Some(drift) = obs.drift {
            self.shared.count_monitor_drift();
            self.journal_event(IncidentKind::JitterDrift, drift.encode());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trng_core::trng::TrngConfig;
    use trng_model::params::{DesignParams, PlatformParams};
    use trng_sources::CarryChainSource;

    fn shared() -> Arc<ShardShared> {
        Arc::new(ShardShared::default())
    }

    fn journal() -> Arc<Journal> {
        Arc::new(Journal::new(64))
    }

    fn src(config: TrngConfig, seed: u64) -> Box<dyn EntropySource> {
        Box::new(CarryChainSource::new(config, seed).expect("build"))
    }

    /// A configuration whose raw stream is (near-)frozen: drift-free
    /// sampling plus an overwhelming injection-locking attack. Startup
    /// reliably fails on it, and a healthy shard swapped onto it
    /// reliably alarms (same construction as the selftest tests).
    fn dead_config() -> TrngConfig {
        let mut config = TrngConfig::ideal();
        config.platform = PlatformParams::new(480.0, 17.0, 0.05).expect("valid");
        config.design = DesignParams {
            k: 4,
            n_a: 1,
            np: 1,
            f_clk_hz: (1e12f64 / (21.0 * 480.0)).round() as u64,
            ..DesignParams::paper_k4()
        };
        config
    }

    #[test]
    fn healthy_shard_comes_online_and_produces() {
        let s = shared();
        let mut shard = Shard::new(
            0,
            src(TrngConfig::paper_k1(), 42),
            42,
            Conditioning::DesignXor,
            Vec::new(),
            2,
            None,
            Arc::clone(&s),
            journal(),
        );
        assert_eq!(shard.state(), ShardState::Starting);
        shard.recover();
        assert_eq!(shard.state(), ShardState::Online);
        let mut block = Vec::new();
        assert!(shard.produce_block(&mut block, 64));
        assert_eq!(block.len(), 64);
        let snap = s.snapshot(0);
        assert_eq!(snap.state, ShardState::Online);
        assert_eq!(snap.bytes_produced, 64);
        assert_eq!(snap.startup_runs, 1);
        assert_eq!(snap.alarms, 0);
        assert!(snap.sim_elapsed.as_nanos() > 0);
        assert_eq!(snap.source, trng_sources::SourceKind::CarryChain);
        assert!(snap.claimed_min_entropy > 0.0);
    }

    #[test]
    fn dead_source_is_retired_at_admission() {
        let s = shared();
        let j = journal();
        let mut shard = Shard::new(
            0,
            src(dead_config(), 7),
            7,
            Conditioning::Raw,
            Vec::new(),
            2,
            None,
            Arc::clone(&s),
            Arc::clone(&j),
        );
        shard.recover();
        assert_eq!(shard.state(), ShardState::Retired);
        assert_eq!(s.snapshot(0).startup_runs, 1);
        // The failed admission lands in the journal with the failing
        // startup checks encoded in `detail`.
        let (events, _) = j.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, IncidentKind::Retire);
        assert_ne!(events[0].detail, 0, "failure mask must name a check");
    }

    #[test]
    fn transient_fault_quarantines_then_readmits() {
        let s = shared();
        let j = journal();
        let fault = FaultInjection {
            shard: 0,
            after_bytes: 128,
            fault: ShardFault::Config(Box::new(dead_config())),
            transient: true,
        };
        let mut shard = Shard::new(
            0,
            src(TrngConfig::paper_k1(), 42),
            42,
            Conditioning::DesignXor,
            vec![fault],
            2,
            None,
            Arc::clone(&s),
            Arc::clone(&j),
        );
        shard.recover();
        assert_eq!(shard.state(), ShardState::Online);
        let mut block = Vec::new();
        let mut clean_bytes = 0u64;
        let mut alarmed = false;
        for _ in 0..64 {
            if shard.produce_block(&mut block, 64) {
                clean_bytes += block.len() as u64;
            } else {
                assert!(block.is_empty(), "alarmed block must be discarded");
                alarmed = true;
                break;
            }
        }
        assert!(alarmed, "fault never tripped the continuous tests");
        assert_eq!(shard.state(), ShardState::Quarantined);
        // The fault fired only after the promised clean run-up.
        assert!(clean_bytes >= 128, "clean bytes {clean_bytes}");
        // Re-admission: the transient fault is gone after the rebuild.
        shard.recover();
        assert_eq!(shard.state(), ShardState::Online);
        assert!(shard.produce_block(&mut block, 64));
        let snap = s.snapshot(0);
        assert_eq!(snap.alarms, 1);
        assert_eq!(snap.readmissions, 1);
        assert_eq!(snap.startup_runs, 2);
        // Journal tells the full story: alarm, quarantine, readmit.
        let kinds: Vec<_> = j.snapshot().0.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            [
                IncidentKind::Alarm,
                IncidentKind::Quarantine,
                IncidentKind::Readmit,
            ]
        );
        let (events, _) = j.snapshot();
        assert!(
            events[0].at_bytes >= 128,
            "alarm stamped before the promised clean run-up"
        );
        assert!(events[0].sim_ns > 0);
    }

    #[test]
    fn persistent_fault_retires_at_readmission() {
        let s = shared();
        let fault = FaultInjection {
            shard: 0,
            after_bytes: 0,
            fault: ShardFault::Config(Box::new(dead_config())),
            transient: false,
        };
        let j = journal();
        let mut shard = Shard::new(
            0,
            src(TrngConfig::paper_k1(), 42),
            42,
            Conditioning::DesignXor,
            vec![fault],
            2,
            None,
            Arc::clone(&s),
            Arc::clone(&j),
        );
        shard.recover();
        assert_eq!(shard.state(), ShardState::Online);
        let mut block = Vec::new();
        assert!(!shard.produce_block(&mut block, 64), "fault must alarm");
        assert_eq!(shard.state(), ShardState::Quarantined);
        shard.recover();
        assert_eq!(shard.state(), ShardState::Retired);
        let snap = s.snapshot(0);
        assert_eq!(snap.alarms, 1);
        assert_eq!(snap.readmissions, 0);
        assert_eq!(snap.startup_runs, 2);
        let kinds: Vec<_> = j.snapshot().0.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            [
                IncidentKind::Alarm,
                IncidentKind::Quarantine,
                IncidentKind::Retire,
            ]
        );
    }

    #[test]
    fn alarm_budget_exhaustion_retires_without_retest() {
        let s = shared();
        let fault = FaultInjection {
            shard: 0,
            after_bytes: 0,
            fault: ShardFault::Config(Box::new(dead_config())),
            transient: false,
        };
        // Zero re-admissions allowed: first alarm retires outright.
        let mut shard = Shard::new(
            0,
            src(TrngConfig::paper_k1(), 42),
            42,
            Conditioning::DesignXor,
            vec![fault],
            0,
            None,
            Arc::clone(&s),
            journal(),
        );
        shard.recover();
        let mut block = Vec::new();
        assert!(!shard.produce_block(&mut block, 64));
        assert_eq!(shard.state(), ShardState::Retired);
    }

    #[test]
    fn fault_schedule_fires_each_fault_in_byte_order() {
        // Two transient faults on one shard: each trips the continuous
        // tests, quarantines, clears at re-admission, and the next one
        // fires at its own offset.
        let s = shared();
        let j = journal();
        let mk_fault = |after_bytes| FaultInjection {
            shard: 0,
            after_bytes,
            fault: ShardFault::Config(Box::new(dead_config())),
            transient: true,
        };
        let mut shard = Shard::new(
            0,
            src(TrngConfig::paper_k1(), 42),
            42,
            Conditioning::DesignXor,
            vec![mk_fault(256), mk_fault(0)],
            4,
            None,
            Arc::clone(&s),
            Arc::clone(&j),
        );
        shard.recover();
        let mut block = Vec::new();
        let mut alarms_seen = 0;
        while alarms_seen < 2 {
            match shard.state() {
                ShardState::Online => {
                    if !shard.produce_block(&mut block, 64) {
                        alarms_seen += 1;
                    }
                }
                ShardState::Quarantined => shard.recover(),
                other => panic!("unexpected state {other}"),
            }
        }
        shard.recover();
        assert_eq!(shard.state(), ShardState::Online);
        let snap = s.snapshot(0);
        assert_eq!(snap.alarms, 2);
        assert_eq!(snap.readmissions, 2);
        // The out-of-order schedule still fires lowest offset first:
        // first alarm before 256 clean bytes, second after.
        let (events, _) = j.snapshot();
        let alarms: Vec<_> = events
            .iter()
            .filter(|e| e.kind == IncidentKind::Alarm)
            .collect();
        assert_eq!(alarms.len(), 2);
        assert!(alarms[0].at_bytes < 256);
        assert!(alarms[1].at_bytes >= 256);
    }

    #[test]
    fn conditioning_rates_differ() {
        // Raw packs every raw bit; DesignXor consumes np per bit.
        let mk = |mode| {
            let s = shared();
            let mut shard = Shard::new(
                0,
                src(TrngConfig::paper_k1(), 9),
                9,
                mode,
                Vec::new(),
                2,
                None,
                Arc::clone(&s),
                journal(),
            );
            shard.recover();
            assert_eq!(shard.state(), ShardState::Online);
            let mut block = Vec::new();
            assert!(shard.produce_block(&mut block, 32));
            s.snapshot(0).raw_bits
        };
        let raw = mk(Conditioning::Raw);
        let xor = mk(Conditioning::DesignXor);
        // Both include the 14336-raw-bit startup; the xor run then
        // needs 7x the raw bits of the raw run for its 32 bytes.
        assert_eq!(xor - raw, 32 * 8 * 6);
        let vn = mk(Conditioning::VonNeumann);
        assert!(vn > raw, "Von Neumann discards pairs");
    }

    #[test]
    fn unsupported_fault_burns_an_alarm_not_a_silent_pass() {
        // A trace-replay backend cannot express a Config fault; the
        // drill degrades to an alarm so the schedule is never silently
        // dropped.
        let trace = std::sync::Arc::new(
            trng_sources::RecordedTrace::record(&TrngConfig::paper_k1(), 3, 2048).expect("capture"),
        );
        let s = shared();
        let fault = FaultInjection {
            shard: 0,
            after_bytes: 0,
            fault: ShardFault::Config(Box::new(dead_config())),
            transient: true,
        };
        let mut shard = Shard::new(
            0,
            Box::new(trng_sources::TraceReplaySource::new(trace).expect("valid")),
            3,
            Conditioning::Raw,
            vec![fault],
            2,
            None,
            Arc::clone(&s),
            journal(),
        );
        shard.recover();
        assert_eq!(shard.state(), ShardState::Online);
        let mut block = Vec::new();
        assert!(!shard.produce_block(&mut block, 32));
        assert_eq!(shard.state(), ShardState::Quarantined);
        assert_eq!(s.snapshot(0).alarms, 1);
    }

    #[test]
    fn mix_seed_separates_lanes() {
        assert_ne!(mix_seed(0, 0), mix_seed(0, 1));
        assert_ne!(mix_seed(0, 1), mix_seed(1, 0));
        assert_eq!(mix_seed(5, 9), mix_seed(5, 9));
    }
}
