//! One pool shard: a [`CarryChainTrng`] instance wrapped in its own
//! health gate and conditioning stage, driven through the lifecycle
//! state machine of [`ShardState`].
//!
//! A shard only contributes bytes while `Online`. Admission (and
//! *re*-admission after a quarantine) is gated by the same start-up
//! self-test a [`SelfTestingTrng`](trng_core::selftest::SelfTestingTrng)
//! runs; while online, every raw bit feeds the SP 800-90B continuous
//! tests *before* it may enter the conditioning stage, and a block is
//! only released to the pool once every bit in it passed. An alarm
//! therefore discards the whole in-flight block — no byte derived from
//! a suspect stretch of the raw stream can reach a consumer.

use std::sync::Arc;

use trng_core::health::{HealthStatus, OnlineHealth};
use trng_core::postprocess::XorCompressor;
use trng_core::selftest::{claimed_min_entropy, run_startup_test};
use trng_core::trng::{BuildTrngError, CarryChainTrng, TrngConfig};
use trng_core::von_neumann::VonNeumann;
use trng_fpga_sim::noise::AttackInjection;
use trng_fpga_sim::rng::SimRng;
use trng_fpga_sim::scenario::NoiseEnvironment;

use crate::journal::{IncidentKind, Journal};
use crate::monitor::{JitterMonitor, MonitorConfig};
use crate::stats::{ShardShared, ShardState};

/// Conditioning applied between the raw source and the pool's byte
/// stream, reusing the post-processors from `trng-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Conditioning {
    /// XOR compression at the design's own rate `np` (the paper's
    /// Section 4.5 choice — what the hardware ships).
    DesignXor,
    /// XOR compression at an explicit rate.
    Xor(u32),
    /// Von Neumann extraction (unbiased output, variable rate).
    VonNeumann,
    /// Raw bits, packed into bytes unconditioned.
    Raw,
}

#[derive(Debug, Clone)]
enum Conditioner {
    Xor(XorCompressor),
    VonNeumann(VonNeumann),
    Raw,
}

impl Conditioner {
    fn new(mode: Conditioning, design_np: u32) -> Self {
        match mode {
            Conditioning::DesignXor => Conditioner::Xor(XorCompressor::new(design_np)),
            Conditioning::Xor(np) => Conditioner::Xor(XorCompressor::new(np)),
            Conditioning::VonNeumann => Conditioner::VonNeumann(VonNeumann::new()),
            Conditioning::Raw => Conditioner::Raw,
        }
    }

    fn push(&mut self, bit: bool) -> Option<bool> {
        match self {
            Conditioner::Xor(c) => c.push(bit),
            Conditioner::VonNeumann(v) => v.push(bit),
            Conditioner::Raw => Some(bit),
        }
    }

    fn reset(&mut self) {
        match self {
            Conditioner::Xor(c) => c.reset(),
            Conditioner::VonNeumann(v) => *v = VonNeumann::new(),
            Conditioner::Raw => {}
        }
    }

    /// Expected raw bits per output bit (Von Neumann uses its fair-
    /// source expectation of 4 raw bits per output bit).
    fn raw_bits_per_output(&self) -> u64 {
        match self {
            Conditioner::Xor(c) => u64::from(c.rate()),
            Conditioner::VonNeumann(_) => 4,
            Conditioner::Raw => 1,
        }
    }

    /// `true` when the conditioner consumes a *fixed* number of raw
    /// bits per output bit, making a block's raw demand exactly
    /// computable up front (enables whole-byte batch fetching).
    fn is_fixed_rate(&self) -> bool {
        !matches!(self, Conditioner::VonNeumann(_))
    }

    /// Raw bits already absorbed toward the next output bit (always
    /// less than the rate for fixed-rate conditioners; Von Neumann's
    /// consumption is data-dependent and reported as 0).
    fn pending_raw_bits(&self) -> u64 {
        match self {
            Conditioner::Xor(c) => u64::from(c.pending()),
            _ => 0,
        }
    }
}

/// How an injected fault replaces a shard's entropy source.
#[derive(Debug, Clone)]
pub enum ShardFault {
    /// Keep the shard's configuration but enable this attack on its
    /// noise input (the simulator's manipulative-influence hook).
    Attack(AttackInjection),
    /// Replace the shard's configuration outright — e.g. an attacked
    /// *and* drift-frozen design whose entropy collapse is guaranteed
    /// to be visible to the continuous tests.
    Config(Box<TrngConfig>),
    /// Apply a scenario [`NoiseEnvironment`] over the shard's base
    /// configuration ([`TrngConfig::with_environment`]) — the campaign
    /// compiler's fault shape. Unlike [`ShardFault::Attack`], an
    /// environment can also modulate global conditions, flicker and
    /// the white-sigma budget; later campaign phases (scheduled at
    /// higher byte offsets) *escalate*: they supersede an
    /// already-active environment without waiting for a quarantine.
    Env(NoiseEnvironment),
}

/// Deterministic mid-stream fault injection for tests and drills: once
/// shard `shard` has produced `after_bytes` healthy bytes, its source
/// is swapped per `fault`.
#[derive(Debug, Clone)]
pub struct FaultInjection {
    /// Index of the shard to sabotage.
    pub shard: usize,
    /// Healthy bytes the shard must produce before the fault fires.
    pub after_bytes: u64,
    /// The fault to apply.
    pub fault: ShardFault,
    /// `true` models a transient disturbance: when the quarantined
    /// shard is rebuilt for its re-admission attempt the fault is
    /// gone, so the startup test passes and the shard rejoins.
    /// `false` models a persistent fault: the rebuilt shard still
    /// carries it, fails re-admission and is retired.
    pub transient: bool,
}

#[derive(Debug, Clone)]
struct PendingFault {
    after_bytes: u64,
    fault: ShardFault,
    transient: bool,
    applied: bool,
}

/// Deterministically derives a per-shard / per-rebuild simulation seed.
pub(crate) fn mix_seed(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A single pooled TRNG instance with its health gate.
#[derive(Debug)]
pub(crate) struct Shard {
    id: usize,
    base_config: TrngConfig,
    seed: u64,
    rebuilds: u64,
    trng: CarryChainTrng,
    health: OnlineHealth,
    conditioner: Conditioner,
    state: ShardState,
    alarms: u64,
    max_readmissions: u32,
    /// Scheduled faults for this shard (pre-filtered by the pool),
    /// in submission order.
    faults: Vec<PendingFault>,
    /// Index into `faults` of the fault currently corrupting the live
    /// instance, if any.
    active_fault: Option<usize>,
    bytes_produced: u64,
    /// Simulated time and raw-bit counts accumulated by instances
    /// retired by rebuilds (a rebuild restarts the simulation clock).
    sim_base_ns: u64,
    raw_base: u64,
    shared: Arc<ShardShared>,
    journal: Arc<Journal>,
    /// Online jitter monitor, if enabled. Draws from its own rng lane
    /// derived from the shard seed, so enabling it never changes the
    /// shard's byte stream.
    monitor: Option<JitterMonitor>,
}

impl Shard {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        config: TrngConfig,
        seed: u64,
        conditioning: Conditioning,
        faults: Vec<FaultInjection>,
        max_readmissions: u32,
        monitor: Option<MonitorConfig>,
        shared: Arc<ShardShared>,
        journal: Arc<Journal>,
    ) -> Result<Self, BuildTrngError> {
        let claim = claimed_min_entropy(&config)?;
        let trng = CarryChainTrng::new(config.clone(), seed)?;
        let conditioner = Conditioner::new(conditioning, config.design.np);
        let monitor =
            monitor.map(|m| JitterMonitor::new(m, SimRng::seed_from(mix_seed(seed, 0x4_D017))));
        shared.set_state(ShardState::Starting);
        Ok(Shard {
            id,
            base_config: config,
            seed,
            rebuilds: 0,
            trng,
            health: OnlineHealth::new(claim),
            conditioner,
            state: ShardState::Starting,
            alarms: 0,
            max_readmissions,
            faults: faults
                .into_iter()
                .map(|f| PendingFault {
                    after_bytes: f.after_bytes,
                    fault: f.fault,
                    transient: f.transient,
                    applied: false,
                })
                .collect(),
            active_fault: None,
            bytes_produced: 0,
            sim_base_ns: 0,
            raw_base: 0,
            shared,
            journal,
            monitor,
        })
    }

    pub fn id(&self) -> usize {
        self.id
    }

    pub fn state(&self) -> ShardState {
        self.state
    }

    fn set_state(&mut self, s: ShardState) {
        self.state = s;
        self.shared.set_state(s);
    }

    fn faulted_config(&self, fault: &ShardFault) -> TrngConfig {
        match fault {
            ShardFault::Attack(a) => {
                let mut c = self.base_config.clone();
                c.attack = Some(*a);
                c
            }
            ShardFault::Config(c) => (**c).clone(),
            ShardFault::Env(env) => self.base_config.with_environment(env),
        }
    }

    /// Replaces the live TRNG instance, banking the retired instance's
    /// simulated time so `ShardStats::sim_elapsed` stays monotonic.
    fn rebuild(&mut self, config: TrngConfig) -> Result<(), BuildTrngError> {
        self.sim_base_ns += self.trng.now().as_ns() as u64;
        self.raw_base += self.trng.stats().samples;
        self.rebuilds += 1;
        self.trng = CarryChainTrng::new(config, mix_seed(self.seed, self.rebuilds))?;
        Ok(())
    }

    fn publish_progress(&self) {
        self.shared
            .set_sim_ns(self.sim_base_ns + self.trng.now().as_ns() as u64);
        self.shared
            .set_raw_bits(self.raw_base + self.trng.stats().samples);
    }

    /// Records a lifecycle incident stamped with the shard's current
    /// simulated time and healthy-byte offset.
    fn journal_event(&self, kind: IncidentKind, detail: u64) {
        self.journal.record(
            self.id,
            kind,
            self.sim_base_ns + self.trng.now().as_ns() as u64,
            self.bytes_produced,
            detail,
        );
    }

    /// Drives one admission or re-admission attempt. Call while the
    /// shard is `Starting` or `Quarantined`; transitions to `Online`
    /// or `Retired`.
    pub fn recover(&mut self) {
        debug_assert!(matches!(
            self.state,
            ShardState::Starting | ShardState::Quarantined
        ));
        if self.state == ShardState::Quarantined {
            // Rebuild the source for a from-scratch validation run. A
            // transient fault is gone after the rebuild; a persistent
            // one follows the shard into its re-admission test.
            let config = match self.active_fault {
                Some(i) if self.faults[i].transient => {
                    self.active_fault = None;
                    self.base_config.clone()
                }
                Some(i) => self.faulted_config(&self.faults[i].fault.clone()),
                None => self.base_config.clone(),
            };
            self.health.reset();
            self.conditioner.reset();
            if self.rebuild(config).is_err() {
                self.set_state(ShardState::Retired);
                self.journal_event(IncidentKind::Retire, 0);
                return;
            }
        }
        let was_quarantined = self.state == ShardState::Quarantined;
        let mut compressor = XorCompressor::new(self.base_config.design.np);
        self.shared.count_startup_run();
        let report = run_startup_test(&mut self.trng, &mut self.health, &mut compressor);
        self.publish_progress();
        if report.passed() {
            self.conditioner.reset();
            if was_quarantined {
                self.shared.count_readmission();
                self.journal_event(IncidentKind::Readmit, 0);
            }
            self.set_state(ShardState::Online);
        } else {
            self.set_state(ShardState::Retired);
            self.journal_event(IncidentKind::Retire, u64::from(report.failure_mask()));
        }
    }

    /// Feeds one raw bit through the health gate and, if it passes,
    /// the conditioner (assembling output bytes MSB-first). Returns
    /// `false` when the bit tripped a continuous-test alarm — the
    /// caller must discard the block.
    fn ingest(&mut self, raw: bool, out: &mut Vec<u8>, byte: &mut u8, nbits: &mut u32) -> bool {
        if self.health.push(raw) == HealthStatus::Alarm {
            return false;
        }
        if let Some(bit) = self.conditioner.push(raw) {
            *byte = *byte << 1 | u8::from(bit);
            *nbits += 1;
            if *nbits == 8 {
                out.push(*byte);
                *byte = 0;
                *nbits = 0;
            }
        }
        true
    }

    fn raise_alarm(&mut self) {
        self.alarms += 1;
        self.shared.count_alarm();
        self.conditioner.reset();
        self.publish_progress();
        self.journal_event(IncidentKind::Alarm, self.alarms);
        if self.alarms > u64::from(self.max_readmissions) {
            self.set_state(ShardState::Retired);
            self.journal_event(IncidentKind::Retire, 0);
        } else {
            self.set_state(ShardState::Quarantined);
            self.journal_event(IncidentKind::Quarantine, 0);
        }
    }

    /// Produces one block of `block_bytes` conditioned bytes into
    /// `out` (cleared first). Returns `true` on a clean block; on any
    /// continuous-test alarm the whole block is discarded, the shard
    /// transitions per the lifecycle rules and `false` is returned.
    pub fn produce_block(&mut self, out: &mut Vec<u8>, block_bytes: usize) -> bool {
        debug_assert_eq!(self.state, ShardState::Online);
        out.clear();
        // Apply the earliest-scheduled ripe fault, if any. A ripe fault
        // supersedes an already-active one — campaign phases escalate
        // without waiting for a quarantine to clear the predecessor —
        // but a fault whose offset passed while a *noisier* fault was
        // corrupting the instance fires only after a transient
        // predecessor clears at re-admission (its offset is measured in
        // healthy bytes, which the corrupted stretch did not add to).
        let ripe = self
            .faults
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.applied && self.bytes_produced >= f.after_bytes)
            .min_by_key(|(_, f)| f.after_bytes)
            .map(|(i, _)| i);
        if let Some(i) = ripe {
            let config = self.faulted_config(&self.faults[i].fault.clone());
            // A mid-stream fault does not reset the health gate:
            // the attack hits a running, trusted source and the
            // continuous tests must catch it.
            if self.rebuild(config).is_err() {
                self.raise_alarm();
                return false;
            }
            self.faults[i].applied = true;
            self.active_fault = Some(i);
        }
        // A health-passing source that still starves the conditioner
        // (possible only for Von Neumann under adversarial patterns)
        // is itself an entropy failure; bound the raw spend per block.
        let max_raw = (block_bytes as u64 * 8)
            .saturating_mul(self.conditioner.raw_bits_per_output())
            .saturating_mul(64);
        let mut raw_spent = 0u64;
        let mut byte = 0u8;
        let mut nbits = 0u32;
        if self.conditioner.is_fixed_rate() {
            // Fixed-rate conditioning (XOR / raw): the block consumes
            // exactly `block_bytes · 8 · rate` raw bits, so they can be
            // drawn from the TRNG in whole bytes through the batch API
            // instead of one `next_raw_bit` call per bit. Every raw bit
            // still passes the health gate individually, in stream
            // order, before it may enter the conditioner — batching
            // changes the fetch granularity, not the gating semantics.
            // (`max_raw` cannot trip here: the exact demand is 64x
            // below it, as it was for the per-bit loop.)
            let need = (block_bytes as u64 * 8) * self.conditioner.raw_bits_per_output()
                - self.conditioner.pending_raw_bits();
            let mut chunk = [0u8; 64];
            let mut remaining = need;
            while remaining > 0 {
                let nbytes = ((remaining / 8) as usize).min(chunk.len());
                if nbytes > 0 {
                    self.trng.fill_raw(&mut chunk[..nbytes]);
                }
                // `< 8` residual bits (possible only when `pending` was
                // non-zero) are fetched singly to keep the raw stream
                // position exact.
                let bits = if nbytes > 0 {
                    nbytes as u64 * 8
                } else {
                    remaining
                };
                for idx in 0..bits {
                    let raw = if nbytes > 0 {
                        chunk[(idx / 8) as usize] >> (7 - idx % 8) & 1 == 1
                    } else {
                        self.trng.next_raw_bit()
                    };
                    if !self.ingest(raw, out, &mut byte, &mut nbits) {
                        out.clear();
                        self.raise_alarm();
                        return false;
                    }
                }
                remaining -= bits;
            }
            debug_assert_eq!(out.len(), block_bytes);
            debug_assert_eq!(nbits, 0);
        } else {
            // Variable-rate conditioning (Von Neumann): consumption is
            // data-dependent, so bits are drawn one at a time until the
            // block fills or the raw-spend bound trips.
            while out.len() < block_bytes {
                let raw = self.trng.next_raw_bit();
                raw_spent += 1;
                if raw_spent > max_raw || !self.ingest(raw, out, &mut byte, &mut nbits) {
                    out.clear();
                    self.raise_alarm();
                    return false;
                }
            }
        }
        // End-of-block total-failure check on the raw capture quality.
        let stats = *self.trng.stats();
        if self
            .health
            .report_missed_edges(stats.missed_edges, stats.samples)
            == HealthStatus::Alarm
        {
            out.clear();
            self.raise_alarm();
            return false;
        }
        self.bytes_produced += out.len() as u64;
        self.shared.add_bytes(out.len() as u64);
        self.publish_progress();
        self.run_monitor();
        true
    }

    /// Runs the online jitter monitor if one is configured and an
    /// observation is due. A drift rising edge is journaled as
    /// [`IncidentKind::JitterDrift`]; the shard's lifecycle state is
    /// never touched — the monitor warns, the health gates act.
    fn run_monitor(&mut self) {
        let due = self
            .monitor
            .as_ref()
            .is_some_and(|m| m.due(self.bytes_produced));
        if !due {
            return;
        }
        let observed = {
            let monitor = self.monitor.as_mut().expect("due implies present");
            monitor.observe(self.trng.config(), self.trng.now())
        };
        let Some(obs) = observed else { return };
        self.shared.record_monitor(obs.jitter_fs, obs.baseline_fs);
        if let Some(drift) = obs.drift {
            self.shared.count_monitor_drift();
            self.journal_event(IncidentKind::JitterDrift, drift.encode());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trng_model::params::{DesignParams, PlatformParams};

    fn shared() -> Arc<ShardShared> {
        Arc::new(ShardShared::default())
    }

    fn journal() -> Arc<Journal> {
        Arc::new(Journal::new(64))
    }

    /// A configuration whose raw stream is (near-)frozen: drift-free
    /// sampling plus an overwhelming injection-locking attack. Startup
    /// reliably fails on it, and a healthy shard swapped onto it
    /// reliably alarms (same construction as the selftest tests).
    fn dead_config() -> TrngConfig {
        let mut config = TrngConfig::ideal();
        config.platform = PlatformParams::new(480.0, 17.0, 0.05).expect("valid");
        config.design = DesignParams {
            k: 4,
            n_a: 1,
            np: 1,
            f_clk_hz: (1e12f64 / (21.0 * 480.0)).round() as u64,
            ..DesignParams::paper_k4()
        };
        config
    }

    #[test]
    fn healthy_shard_comes_online_and_produces() {
        let s = shared();
        let mut shard = Shard::new(
            0,
            TrngConfig::paper_k1(),
            42,
            Conditioning::DesignXor,
            Vec::new(),
            2,
            None,
            Arc::clone(&s),
            journal(),
        )
        .expect("build");
        assert_eq!(shard.state(), ShardState::Starting);
        shard.recover();
        assert_eq!(shard.state(), ShardState::Online);
        let mut block = Vec::new();
        assert!(shard.produce_block(&mut block, 64));
        assert_eq!(block.len(), 64);
        let snap = s.snapshot(0);
        assert_eq!(snap.state, ShardState::Online);
        assert_eq!(snap.bytes_produced, 64);
        assert_eq!(snap.startup_runs, 1);
        assert_eq!(snap.alarms, 0);
        assert!(snap.sim_elapsed.as_nanos() > 0);
    }

    #[test]
    fn dead_source_is_retired_at_admission() {
        let s = shared();
        let j = journal();
        let mut shard = Shard::new(
            0,
            dead_config(),
            7,
            Conditioning::Raw,
            Vec::new(),
            2,
            None,
            Arc::clone(&s),
            Arc::clone(&j),
        )
        .expect("build");
        shard.recover();
        assert_eq!(shard.state(), ShardState::Retired);
        assert_eq!(s.snapshot(0).startup_runs, 1);
        // The failed admission lands in the journal with the failing
        // startup checks encoded in `detail`.
        let (events, _) = j.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, IncidentKind::Retire);
        assert_ne!(events[0].detail, 0, "failure mask must name a check");
    }

    #[test]
    fn transient_fault_quarantines_then_readmits() {
        let s = shared();
        let j = journal();
        let fault = FaultInjection {
            shard: 0,
            after_bytes: 128,
            fault: ShardFault::Config(Box::new(dead_config())),
            transient: true,
        };
        let mut shard = Shard::new(
            0,
            TrngConfig::paper_k1(),
            42,
            Conditioning::DesignXor,
            vec![fault],
            2,
            None,
            Arc::clone(&s),
            Arc::clone(&j),
        )
        .expect("build");
        shard.recover();
        assert_eq!(shard.state(), ShardState::Online);
        let mut block = Vec::new();
        let mut clean_bytes = 0u64;
        let mut alarmed = false;
        for _ in 0..64 {
            if shard.produce_block(&mut block, 64) {
                clean_bytes += block.len() as u64;
            } else {
                assert!(block.is_empty(), "alarmed block must be discarded");
                alarmed = true;
                break;
            }
        }
        assert!(alarmed, "fault never tripped the continuous tests");
        assert_eq!(shard.state(), ShardState::Quarantined);
        // The fault fired only after the promised clean run-up.
        assert!(clean_bytes >= 128, "clean bytes {clean_bytes}");
        // Re-admission: the transient fault is gone after the rebuild.
        shard.recover();
        assert_eq!(shard.state(), ShardState::Online);
        assert!(shard.produce_block(&mut block, 64));
        let snap = s.snapshot(0);
        assert_eq!(snap.alarms, 1);
        assert_eq!(snap.readmissions, 1);
        assert_eq!(snap.startup_runs, 2);
        // Journal tells the full story: alarm, quarantine, readmit.
        let kinds: Vec<_> = j.snapshot().0.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            [
                IncidentKind::Alarm,
                IncidentKind::Quarantine,
                IncidentKind::Readmit,
            ]
        );
        let (events, _) = j.snapshot();
        assert!(
            events[0].at_bytes >= 128,
            "alarm stamped before the promised clean run-up"
        );
        assert!(events[0].sim_ns > 0);
    }

    #[test]
    fn persistent_fault_retires_at_readmission() {
        let s = shared();
        let fault = FaultInjection {
            shard: 0,
            after_bytes: 0,
            fault: ShardFault::Config(Box::new(dead_config())),
            transient: false,
        };
        let j = journal();
        let mut shard = Shard::new(
            0,
            TrngConfig::paper_k1(),
            42,
            Conditioning::DesignXor,
            vec![fault],
            2,
            None,
            Arc::clone(&s),
            Arc::clone(&j),
        )
        .expect("build");
        shard.recover();
        assert_eq!(shard.state(), ShardState::Online);
        let mut block = Vec::new();
        assert!(!shard.produce_block(&mut block, 64), "fault must alarm");
        assert_eq!(shard.state(), ShardState::Quarantined);
        shard.recover();
        assert_eq!(shard.state(), ShardState::Retired);
        let snap = s.snapshot(0);
        assert_eq!(snap.alarms, 1);
        assert_eq!(snap.readmissions, 0);
        assert_eq!(snap.startup_runs, 2);
        let kinds: Vec<_> = j.snapshot().0.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            [
                IncidentKind::Alarm,
                IncidentKind::Quarantine,
                IncidentKind::Retire,
            ]
        );
    }

    #[test]
    fn alarm_budget_exhaustion_retires_without_retest() {
        let s = shared();
        let fault = FaultInjection {
            shard: 0,
            after_bytes: 0,
            fault: ShardFault::Config(Box::new(dead_config())),
            transient: false,
        };
        // Zero re-admissions allowed: first alarm retires outright.
        let mut shard = Shard::new(
            0,
            TrngConfig::paper_k1(),
            42,
            Conditioning::DesignXor,
            vec![fault],
            0,
            None,
            Arc::clone(&s),
            journal(),
        )
        .expect("build");
        shard.recover();
        let mut block = Vec::new();
        assert!(!shard.produce_block(&mut block, 64));
        assert_eq!(shard.state(), ShardState::Retired);
    }

    #[test]
    fn fault_schedule_fires_each_fault_in_byte_order() {
        // Two transient faults on one shard: each trips the continuous
        // tests, quarantines, clears at re-admission, and the next one
        // fires at its own offset.
        let s = shared();
        let j = journal();
        let mk_fault = |after_bytes| FaultInjection {
            shard: 0,
            after_bytes,
            fault: ShardFault::Config(Box::new(dead_config())),
            transient: true,
        };
        let mut shard = Shard::new(
            0,
            TrngConfig::paper_k1(),
            42,
            Conditioning::DesignXor,
            vec![mk_fault(256), mk_fault(0)],
            4,
            None,
            Arc::clone(&s),
            Arc::clone(&j),
        )
        .expect("build");
        shard.recover();
        let mut block = Vec::new();
        let mut alarms_seen = 0;
        while alarms_seen < 2 {
            match shard.state() {
                ShardState::Online => {
                    if !shard.produce_block(&mut block, 64) {
                        alarms_seen += 1;
                    }
                }
                ShardState::Quarantined => shard.recover(),
                other => panic!("unexpected state {other}"),
            }
        }
        shard.recover();
        assert_eq!(shard.state(), ShardState::Online);
        let snap = s.snapshot(0);
        assert_eq!(snap.alarms, 2);
        assert_eq!(snap.readmissions, 2);
        // The out-of-order schedule still fires lowest offset first:
        // first alarm before 256 clean bytes, second after.
        let (events, _) = j.snapshot();
        let alarms: Vec<_> = events
            .iter()
            .filter(|e| e.kind == IncidentKind::Alarm)
            .collect();
        assert_eq!(alarms.len(), 2);
        assert!(alarms[0].at_bytes < 256);
        assert!(alarms[1].at_bytes >= 256);
    }

    #[test]
    fn conditioning_rates_differ() {
        // Raw packs every raw bit; DesignXor consumes np per bit.
        let mk = |mode| {
            let s = shared();
            let mut shard = Shard::new(
                0,
                TrngConfig::paper_k1(),
                9,
                mode,
                Vec::new(),
                2,
                None,
                Arc::clone(&s),
                journal(),
            )
            .expect("build");
            shard.recover();
            assert_eq!(shard.state(), ShardState::Online);
            let mut block = Vec::new();
            assert!(shard.produce_block(&mut block, 32));
            s.snapshot(0).raw_bits
        };
        let raw = mk(Conditioning::Raw);
        let xor = mk(Conditioning::DesignXor);
        // Both include the 14336-raw-bit startup; the xor run then
        // needs 7x the raw bits of the raw run for its 32 bytes.
        assert_eq!(xor - raw, 32 * 8 * 6);
        let vn = mk(Conditioning::VonNeumann);
        assert!(vn > raw, "Von Neumann discards pairs");
    }

    #[test]
    fn mix_seed_separates_lanes() {
        assert_ne!(mix_seed(0, 0), mix_seed(0, 1));
        assert_ne!(mix_seed(0, 1), mix_seed(1, 0));
        assert_eq!(mix_seed(5, 9), mix_seed(5, 9));
    }
}
