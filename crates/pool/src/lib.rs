//! # trng-pool — sharded, health-gated entropy service layer
//!
//! Production consumers of the carry-chain TRNG (the DAC'15 design
//! reproduced by this workspace) need more than a single simulated
//! instance: they need aggregate throughput, failure isolation, and a
//! hard guarantee that a failing source degrades *availability*, never
//! output *quality*. This crate provides that layer:
//!
//! * An [`EntropyPool`] runs N shards, each an
//!   [`EntropySource`](trng_sources::EntropySource) backend wrapped in
//!   its own SP 800-90B continuous-health gate parameterised by the
//!   backend's declared min-entropy claim. The default backend is the
//!   paper's [`CarryChainTrng`] placed on disjoint fabric regions via
//!   [`TrngConfig::for_shard`](trng_core::trng::TrngConfig::for_shard);
//!   [`PoolConfig::with_sources`] mixes in dual-oscillator samplers,
//!   recorded-trace replay, and the OS entropy pool per shard
//!   ([`SourceSpec`]).
//! * A shard must pass the AIS-31-style start-up self-test before it
//!   contributes a single byte; a continuous-test alarm quarantines it,
//!   discards its in-flight block, and forces a fresh start-up test
//!   before re-admission. Shards that fail re-admission, or exhaust
//!   their alarm budget, are retired.
//! * Healthy conditioned bytes flow through bounded lock-free
//!   single-producer/single-consumer rings ([`ring`]) with
//!   backpressure; consumers block in
//!   [`fill_bytes`](EntropyPool::fill_bytes) or bound their wait with
//!   [`try_fill_bytes`](EntropyPool::try_fill_bytes).
//! * Total source failure surfaces as
//!   [`PoolError::SourcesExhausted`] — a typed error, never silently
//!   biased bytes.
//! * [`PoolConfig::deterministic`] selects a single-threaded replay
//!   backend whose byte stream and [`PoolStats`] are a pure function of
//!   the configuration and seed, including scripted shard failures via
//!   [`FaultInjection`].
//! * With a [`RespawnPolicy`], the pool is *self-healing*: when
//!   retirements drop the online count below the policy's floor, a
//!   supervisor spawns a replacement shard on a fresh disjoint fabric
//!   placement. Replacements pass the same start-up gate before
//!   contributing, respawn storms are bounded by budget and backoff,
//!   and every lifecycle transition lands in a bounded lock-free
//!   incident [`journal`] that [`PoolStats`] snapshots for after-the-
//!   fact audit.
//! * [`PoolHandle`] ([`EntropyPool::into_shared`]) is a cheaply
//!   clonable, thread-safe handle serializing many consumers onto one
//!   pool — the request interface a network serving layer (such as
//!   `trng-serve`) dispatches its connections through. [`PoolStats`]
//!   additionally renders as JSON ([`PoolStats::to_json`]) with a
//!   coarse [`PoolHealth`] classification for metrics endpoints.
//!
//! ```
//! use std::time::Duration;
//! use trng_core::trng::TrngConfig;
//! use trng_pool::{Conditioning, EntropyPool, PoolConfig};
//!
//! let config = PoolConfig::new(TrngConfig::paper_k1(), 2)
//!     .with_conditioning(Conditioning::DesignXor)
//!     .deterministic(true);
//! let mut pool = EntropyPool::new(config)?;
//! assert_eq!(pool.wait_online(Duration::from_secs(30))?, 2);
//! let mut buf = [0u8; 64];
//! pool.fill_bytes(&mut buf)?;
//! println!("{}", pool.stats());
//! # Ok::<(), trng_pool::PoolError>(())
//! ```
//!
//! [`CarryChainTrng`]: trng_core::trng::CarryChainTrng

#![warn(missing_docs)]

pub mod campaign;
pub mod coherence;
pub mod handle;
pub mod journal;
pub mod monitor;
pub mod pool;
pub mod ring;
pub mod shard;
pub mod stats;

pub use campaign::{compile_campaign, compile_common_mode, onset_bytes};
pub use coherence::{
    decode_coherence_detail, goertzel_magnitude, CoherenceConfig, CoherenceResponse, CoherenceStats,
};
pub use handle::PoolHandle;
pub use journal::{IncidentEvent, IncidentKind, Journal, ProbeCode};
pub use monitor::{DriftProbe, MonitorConfig};
pub use pool::{ComposedExtract, EntropyPool, PoolConfig, PoolError, RespawnPolicy, SourceSpec};
pub use shard::{Conditioning, FaultInjection, ShardFault};
pub use stats::{ComposedStats, PoolHealth, PoolStats, ShardOrigin, ShardState, ShardStats};
// The extractor-sizing calculators, re-exported so pool consumers
// size `Conditioning::Toeplitz` / [`ComposedExtract`] ratios without
// naming `trng-extract` themselves.
pub use trng_extract::{
    extracted_min_entropy_per_bit, leftover_hash_output_bits, leftover_hash_ratio,
};
// Source-building vocabulary re-exported so pool consumers configure
// heterogeneous mixes without naming `trng-sources` themselves.
pub use trng_sources::{DualOscConfig, RecordedTrace, SourceError, SourceKind};
// The noise-synthesis knob ([`PoolConfig::with_noise_backend`]),
// re-exported for the same reason.
pub use trng_fpga_sim::noise::NoiseBackend;
