//! Cross-shard common-mode coherence detection.
//!
//! The per-shard jitter monitor ([`crate::monitor`]) is *differential* by
//! construction: its sigma probe subtracts two ring-oscillator paths that
//! share the same supply and temperature, so a common-mode modulation (a
//! shared supply tone, a global thermal ramp) cancels out of the statistic
//! that gates entropy claims. The period probe does see absolute delay, but
//! a sub-threshold tone (0.4 % against a ±2 % band) never trips it on any
//! single shard. DESIGN.md §12 documents exactly this blind spot.
//!
//! The one place a coherent environmental attack *is* visible is across
//! shards: independent oscillators have independent thermal noise, so the
//! probability that the same narrow spectral line is simultaneously elevated
//! on `quorum` shards by chance is the product of small per-shard
//! probabilities. This module implements that comparison:
//!
//! 1. Every shard publishes its per-observation period-probe residual
//!    (`period / baseline − 1`, in ppm) into a bounded lock-free
//!    `ResidualSeries` ring embedded in its `ShardShared` block.
//! 2. A `CoherenceDetector` pass — piggybacked on consumer calls to
//!    `EntropyPool::supervise`, no thread of its own — runs a Goertzel
//!    filter bank over the most recent `window` residuals of each online
//!    shard (mean-removed, Hann-windowed), and flags a grid bin as
//!    *elevated* on a shard when its amplitude exceeds `line_snr` times
//!    that shard's own median-across-bins noise floor.
//! 3. When the *same* bin is elevated on ≥ `quorum` shards the detector
//!    raises `IncidentKind::CommonModeCoherence` through the seqlock
//!    journal (rising-edge only), packing bin index, quorum mask and
//!    permille magnitude into the detail word, and — under
//!    [`CoherenceResponse::AlarmAll`] — requests an alarm on every quorum
//!    shard so the existing quarantine/readmit state machine drives
//!    recovery.
//!
//! Frequencies are expressed as *bins of the observation series*: with a
//! monitor interval of `interval_bytes` and the design's fixed
//! bit-extraction cadence, observations are exactly equally spaced in
//! simulated time, so an analog tone at `f` Hz aliases to a stable
//! normalized frequency identical on every shard — which is precisely the
//! signature the quorum rule keys on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use trng_testkit::json::Json;

use crate::journal::ProbeCode;
use crate::stats::ShardShared;
use crate::ShardState;

/// Capacity of each shard's residual ring, in observations. Power of two;
/// large enough for the widest supported detector window (64) so a scan
/// never needs more history than the ring retains.
pub(crate) const RESIDUAL_CAPACITY: usize = 64;

/// Bounded lock-free single-writer ring of period-probe residuals (ppm).
///
/// The owning shard pushes one `i64` residual per monitor observation; the
/// detector (running on a consumer thread) reads the most recent `n`
/// samples without locks. Writes store the slot with `Release` before
/// publishing the head, and readers re-check the head after copying so a
/// torn read that raced a lap is discarded rather than returned.
#[derive(Debug)]
pub(crate) struct ResidualSeries {
    /// Residuals, ppm, stored as `i64 as u64` bit patterns.
    slots: Box<[AtomicU64]>,
    /// Total residuals ever pushed; `head % capacity` is the next slot.
    head: AtomicU64,
}

impl Default for ResidualSeries {
    fn default() -> Self {
        let slots = (0..RESIDUAL_CAPACITY)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ResidualSeries {
            slots,
            head: AtomicU64::new(0),
        }
    }
}

impl ResidualSeries {
    /// Publish one residual (parts per million). Single writer: the shard
    /// that owns the enclosing `ShardShared`.
    pub(crate) fn push(&self, ppm: i64) {
        let head = self.head.load(Ordering::Relaxed);
        let idx = (head % RESIDUAL_CAPACITY as u64) as usize;
        self.slots[idx].store(ppm as u64, Ordering::Release);
        self.head.store(head + 1, Ordering::Release);
    }

    /// Total residuals ever pushed (monotonic).
    pub(crate) fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Snapshot the most recent `n` residuals, oldest first, as `f64` ppm.
    /// Returns fewer than `n` if the series is still short. Entries that a
    /// concurrent writer lapped mid-read are dropped from the front.
    pub(crate) fn latest(&self, n: usize) -> Vec<f64> {
        let n = n.min(RESIDUAL_CAPACITY);
        let head = self.head.load(Ordering::Acquire);
        let avail = head.min(n as u64);
        let start = head - avail;
        let mut out = Vec::with_capacity(avail as usize);
        for seq in start..head {
            let idx = (seq % RESIDUAL_CAPACITY as u64) as usize;
            out.push(self.slots[idx].load(Ordering::Acquire) as i64 as f64);
        }
        // A writer may have lapped the tail while we copied; anything older
        // than (head2 − capacity) may be torn. Drop it.
        let head2 = self.head.load(Ordering::Acquire);
        let oldest_valid = head2.saturating_sub(RESIDUAL_CAPACITY as u64);
        if oldest_valid > start {
            let drop = (oldest_valid - start).min(out.len() as u64) as usize;
            out.drain(..drop);
        }
        out
    }
}

/// Magnitude of the `bin`-th DFT coefficient of `samples`, computed by the
/// Goertzel recurrence: `|X_k|` for `X_k = Σ x[n]·e^{−2πi·k·n/N}`.
///
/// Exact (up to floating-point error) single-bin DFT — the property tests
/// below pin it against a naive DFT oracle. Callers that want calibrated
/// tone amplitudes must window and normalize themselves; this returns the
/// raw unnormalized coefficient magnitude.
pub fn goertzel_magnitude(samples: &[f64], bin: usize) -> f64 {
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    let w = 2.0 * std::f64::consts::PI * bin as f64 / n as f64;
    let coeff = 2.0 * w.cos();
    let (mut s1, mut s2) = (0.0_f64, 0.0_f64);
    for &x in samples {
        let s0 = x + coeff * s1 - s2;
        s2 = s1;
        s1 = s0;
    }
    // |X_k|² = s1² + s2² − coeff·s1·s2
    let power = s1 * s1 + s2 * s2 - coeff * s1 * s2;
    power.max(0.0).sqrt()
}

/// Escalation policy once a quorum coherence detection fires.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CoherenceResponse {
    /// Record the `CommonModeCoherence` journal event and surface it in
    /// stats/metrics, but keep producing. Appropriate when the pool feeds a
    /// downstream conditioner with its own safety margin.
    #[default]
    JournalOnly,
    /// Additionally request an alarm on every shard in the quorum mask: each
    /// one raises its normal alarm (journal `Alarm`, conditioner reset,
    /// quarantine) on its next production call, and the existing
    /// readmit/retire state machine governs recovery.
    AlarmAll,
}

/// Configuration for the cross-shard coherence detector.
///
/// Requires the per-shard monitor (`PoolConfig::with_monitor`) — the
/// detector consumes the monitor's period-probe residuals and has nothing
/// to scan without it; `EntropyPool::new` rejects the combination.
#[derive(Debug, Clone, PartialEq)]
pub struct CoherenceConfig {
    /// Number of most-recent residuals per shard the Goertzel bank scans.
    /// 8..=64 (bounded by the residual ring). Larger windows sharpen the
    /// frequency grid and lower the noise floor but lengthen detection
    /// latency by `window × interval_bytes` produced bytes.
    pub window: usize,
    /// Frequency grid, as DFT bin indices of the `window`-point series
    /// (`1 ≤ bin < window/2`; DC and Nyquist are excluded — DC is the
    /// baseline itself and Nyquist is sign-ambiguous under Hann). Empty
    /// means "all of `1..window/2`".
    pub bins: Vec<u32>,
    /// Minimum number of shards on which the same bin must be elevated
    /// simultaneously. At least 2 — one shard is by definition local drift,
    /// which the per-shard monitor already owns.
    pub quorum: usize,
    /// A bin is elevated on a shard when its Hann-windowed amplitude exceeds
    /// `line_snr ×` that shard's median amplitude across the grid (its own
    /// noise floor this pass).
    pub line_snr: f64,
    /// What to do beyond journaling when a detection fires.
    pub response: CoherenceResponse,
}

impl Default for CoherenceConfig {
    fn default() -> Self {
        CoherenceConfig {
            window: 16,
            bins: Vec::new(),
            quorum: 2,
            line_snr: 4.0,
            response: CoherenceResponse::JournalOnly,
        }
    }
}

impl CoherenceConfig {
    /// Default detector: 16-observation window, full grid, quorum 2,
    /// 4× median SNR, journal-only response.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the scan window length (observations per shard).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Restrict the frequency grid to specific bins (empty = full grid).
    pub fn with_bins(mut self, bins: Vec<u32>) -> Self {
        self.bins = bins;
        self
    }

    /// Set the shard quorum.
    pub fn with_quorum(mut self, quorum: usize) -> Self {
        self.quorum = quorum;
        self
    }

    /// Set the per-shard elevation threshold (multiple of the median floor).
    pub fn with_line_snr(mut self, line_snr: f64) -> Self {
        self.line_snr = line_snr;
        self
    }

    /// Set the escalation policy.
    pub fn with_response(mut self, response: CoherenceResponse) -> Self {
        self.response = response;
        self
    }

    /// The effective bin grid: configured bins, or all of `1..window/2`.
    pub(crate) fn grid(&self) -> Vec<u32> {
        if self.bins.is_empty() {
            (1..(self.window / 2) as u32).collect()
        } else {
            self.bins.clone()
        }
    }
}

/// Snapshot of detector state for `PoolStats` / serve metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct CoherenceStats {
    /// Scan window (observations).
    pub window: usize,
    /// Shard quorum.
    pub quorum: usize,
    /// Elevation threshold (multiple of per-shard median floor).
    pub line_snr: f64,
    /// Completed detector passes.
    pub passes: u64,
    /// Quorum detections journaled (rising edges).
    pub events: u64,
    /// The scanned bin grid.
    pub bins: Vec<u32>,
    /// Per-bin amplitude from the most recent pass: the *maximum* across
    /// shards of the Hann-calibrated tone amplitude, in ppm. Parallel to
    /// `bins`; empty until the first full-window pass.
    pub magnitudes_ppm: Vec<f64>,
}

impl CoherenceStats {
    /// Renders the detector snapshot as a JSON object; field names
    /// match the struct fields (`bins` and `magnitudes_ppm` are
    /// parallel arrays).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("window", Json::u64(self.window as u64)),
            ("quorum", Json::u64(self.quorum as u64)),
            ("line_snr", Json::num(self.line_snr)),
            ("passes", Json::u64(self.passes)),
            ("coherence_events", Json::u64(self.events)),
            (
                "bins",
                Json::Arr(self.bins.iter().map(|&b| Json::u64(u64::from(b))).collect()),
            ),
            (
                "magnitudes_ppm",
                Json::Arr(self.magnitudes_ppm.iter().map(|&m| Json::num(m)).collect()),
            ),
        ])
    }
}

/// One quorum detection, as returned by a scan pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Detection {
    /// Grid bin that tripped the quorum.
    pub bin: u32,
    /// Bitmask of shard indices where the bin was elevated (bit i = shard i;
    /// shards ≥ 64 cannot participate in the mask).
    pub mask: u64,
    /// Largest elevated amplitude across the quorum, ppm.
    pub magnitude_ppm: f64,
    /// Lowest-indexed shard in the mask — the event is journaled against it.
    pub shard: usize,
}

/// Pack a coherence detection into a journal detail word:
/// `ProbeCode::Coherence` in the top byte, bin in bits 48..56, the low 16
/// bits of the quorum mask in bits 32..48, permille magnitude in the low 32.
pub(crate) fn encode_coherence_detail(bin: u32, mask: u64, magnitude_ppm: f64) -> u64 {
    let permille = (magnitude_ppm / 1000.0).round().abs().min(u32::MAX as f64) as u64;
    (u64::from(ProbeCode::Coherence.as_u8()) << 56)
        | (u64::from(bin as u8) << 48)
        | ((mask & 0xFFFF) << 32)
        | permille
}

/// Unpack a coherence detail word into `(bin, quorum mask, permille)`.
/// Returns `None` if the probe code in the top byte is not `Coherence`.
pub fn decode_coherence_detail(detail: u64) -> Option<(u32, u64, u32)> {
    if ProbeCode::from_detail(detail) != Some(ProbeCode::Coherence) {
        return None;
    }
    let bin = ((detail >> 48) & 0xFF) as u32;
    let mask = (detail >> 32) & 0xFFFF;
    let permille = (detail & 0xFFFF_FFFF) as u32;
    Some((bin, mask, permille))
}

/// The pool-level detector. Owned by `EntropyPool`; `scan` is invoked from
/// `supervise()` on whatever consumer thread happens to call it.
#[derive(Debug)]
pub(crate) struct CoherenceDetector {
    config: CoherenceConfig,
    /// Resolved bin grid.
    bins: Vec<u32>,
    /// Whether the most recent pass found a quorum (edge detector state).
    active: bool,
    /// Completed passes.
    passes: u64,
    /// Rising-edge detections returned to the caller.
    events: u64,
    /// Sum of residual-ring heads at the last pass; a scan only runs when
    /// this advances, so inline (deterministic) pools scan at most once per
    /// new observation.
    last_heads: u64,
    /// Max-across-shards amplitude per grid bin from the latest pass, ppm.
    magnitudes: Vec<f64>,
}

impl CoherenceDetector {
    pub(crate) fn new(config: CoherenceConfig) -> Self {
        let bins = config.grid();
        let magnitudes = Vec::new();
        CoherenceDetector {
            config,
            bins,
            active: false,
            passes: 0,
            events: 0,
            last_heads: 0,
            magnitudes,
        }
    }

    pub(crate) fn response(&self) -> CoherenceResponse {
        self.config.response
    }

    /// Run one detector pass over the shard residual rings. Returns a
    /// rising-edge `Detection` when a bin trips the quorum that was not
    /// already tripping on the previous pass. Cheap no-op when no shard has
    /// published a new residual since the last pass.
    pub(crate) fn scan(&mut self, shared: &[Arc<ShardShared>]) -> Option<Detection> {
        let heads: u64 = shared.iter().map(|s| s.residuals().head()).sum();
        if heads == self.last_heads {
            return None;
        }
        self.last_heads = heads;

        let window = self.config.window;
        // Hann window and its coherent gain, for amplitude calibration:
        // a pure tone of amplitude A in bin k yields |X_w| ≈ A·Σw/2.
        let hann: Vec<f64> = (0..window)
            .map(|i| {
                let x = std::f64::consts::PI * i as f64 / window as f64;
                x.sin() * x.sin()
            })
            .collect();
        let hann_sum: f64 = hann.iter().sum();

        let mut elevated_masks = vec![0_u64; self.bins.len()];
        let mut elevated_amps = vec![0.0_f64; self.bins.len()];
        let mut max_amps = vec![0.0_f64; self.bins.len()];
        let mut scanned_any = false;

        for (i, sh) in shared.iter().enumerate() {
            if sh.state() != ShardState::Online {
                continue;
            }
            let samples = sh.residuals().latest(window);
            if samples.len() < window {
                continue;
            }
            scanned_any = true;
            let mean = samples.iter().sum::<f64>() / window as f64;
            let windowed: Vec<f64> = samples
                .iter()
                .zip(&hann)
                .map(|(&x, &w)| (x - mean) * w)
                .collect();
            // Amplitude per bin, ppm: 2·|X_w| / Σw recovers the tone
            // amplitude a pure sinusoid at that bin would have had.
            let amps: Vec<f64> = self
                .bins
                .iter()
                .map(|&b| 2.0 * goertzel_magnitude(&windowed, b as usize) / hann_sum)
                .collect();
            let mut sorted = amps.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            let floor = if sorted.is_empty() {
                0.0
            } else {
                sorted[sorted.len() / 2]
            };
            for (j, &amp) in amps.iter().enumerate() {
                if amp > max_amps[j] {
                    max_amps[j] = amp;
                }
                let hot = if floor > 0.0 {
                    amp > self.config.line_snr * floor
                } else {
                    amp > 0.0
                };
                if hot {
                    if i < 64 {
                        elevated_masks[j] |= 1 << i;
                    }
                    if amp > elevated_amps[j] {
                        elevated_amps[j] = amp;
                    }
                }
            }
        }

        if !scanned_any {
            return None;
        }
        self.passes += 1;
        self.magnitudes = max_amps;

        // Pick the strongest bin that meets the quorum.
        let mut best: Option<Detection> = None;
        for (j, &mask) in elevated_masks.iter().enumerate() {
            let count = mask.count_ones() as usize;
            if count >= self.config.quorum
                && best.is_none_or(|b| elevated_amps[j] > b.magnitude_ppm)
            {
                best = Some(Detection {
                    bin: self.bins[j],
                    mask,
                    magnitude_ppm: elevated_amps[j],
                    shard: mask.trailing_zeros() as usize,
                });
            }
        }

        match best {
            Some(det) if !self.active => {
                self.active = true;
                self.events += 1;
                Some(det)
            }
            Some(_) => None, // still in the same detection episode
            None => {
                self.active = false;
                None
            }
        }
    }

    pub(crate) fn stats(&self) -> CoherenceStats {
        CoherenceStats {
            window: self.config.window,
            quorum: self.config.quorum,
            line_snr: self.config.line_snr,
            passes: self.passes,
            events: self.events,
            bins: self.bins.clone(),
            magnitudes_ppm: self.magnitudes.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive O(N²) DFT oracle: magnitude of bin k.
    fn dft_magnitude(samples: &[f64], bin: usize) -> f64 {
        let n = samples.len() as f64;
        let (mut re, mut im) = (0.0_f64, 0.0_f64);
        for (i, &x) in samples.iter().enumerate() {
            let phi = -2.0 * std::f64::consts::PI * bin as f64 * i as f64 / n;
            re += x * phi.cos();
            im += x * phi.sin();
        }
        (re * re + im * im).sqrt()
    }

    /// Deterministic pseudo-random stream for test signals (SplitMix64).
    fn splitmix(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1_u64 << 53) as f64 - 0.5
    }

    #[test]
    fn goertzel_matches_naive_dft_on_noise() {
        let mut seed = 0xC0FFEE;
        for n in [8_usize, 16, 32, 64] {
            let samples: Vec<f64> = (0..n).map(|_| splitmix(&mut seed) * 100.0).collect();
            for bin in 0..n {
                let g = goertzel_magnitude(&samples, bin);
                let d = dft_magnitude(&samples, bin);
                assert!(
                    (g - d).abs() <= 1e-6 * d.max(1.0),
                    "n={n} bin={bin}: goertzel {g} vs dft {d}"
                );
            }
        }
    }

    #[test]
    fn single_tone_lands_in_its_bin() {
        let n = 32;
        for k in 1..n / 2 {
            let samples: Vec<f64> = (0..n)
                .map(|i| (2.0 * std::f64::consts::PI * k as f64 * i as f64 / n as f64).sin())
                .collect();
            // On-grid tone of amplitude 1: |X_k| = N/2 exactly, other
            // bins ~0 up to the recurrence's accumulated rounding.
            let mag = goertzel_magnitude(&samples, k);
            assert!(
                (mag - n as f64 / 2.0).abs() < 1e-9,
                "bin {k}: |X_k| = {mag}"
            );
            for other in 0..n / 2 {
                if other == k {
                    continue;
                }
                let leak = goertzel_magnitude(&samples, other);
                assert!(leak < 1e-6 * mag, "bin {k} leaked {leak} into bin {other}");
            }
        }
    }

    #[test]
    fn off_grid_tone_leakage_is_bounded() {
        // A tone half-way between bins 5 and 6 leaks everywhere, but the
        // two straddling bins must still dominate every bin ≥ 2 away.
        let n = 32;
        let f = 5.5;
        let samples: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / n as f64).sin())
            .collect();
        let near = goertzel_magnitude(&samples, 5).max(goertzel_magnitude(&samples, 6));
        for bin in 1..n / 2 {
            if (bin as f64 - f).abs() < 2.0 {
                continue;
            }
            let far = goertzel_magnitude(&samples, bin);
            assert!(
                far < near / 2.0,
                "far bin {bin} ({far}) not dominated by straddling bins ({near})"
            );
        }
    }

    #[test]
    fn goertzel_is_linear() {
        let mut seed = 0xDEAD_BEEF;
        let n = 24;
        let a: Vec<f64> = (0..n).map(|_| splitmix(&mut seed) * 10.0).collect();
        let b: Vec<f64> = (0..n).map(|_| splitmix(&mut seed) * 10.0).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(&x, &y)| x + 3.0 * y).collect();
        for bin in 0..n {
            // Magnitudes don't add, but the oracle's complex coefficients
            // do — so check |X(a + 3b)| against the oracle of the same sum.
            let g = goertzel_magnitude(&sum, bin);
            let d = dft_magnitude(&sum, bin);
            assert!((g - d).abs() <= 1e-6 * d.max(1.0));
            // And scaling: |X(2a)| = 2|X(a)|.
            let scaled: Vec<f64> = a.iter().map(|&x| 2.0 * x).collect();
            let g2 = goertzel_magnitude(&scaled, bin);
            let g1 = goertzel_magnitude(&a, bin);
            assert!((g2 - 2.0 * g1).abs() <= 1e-6 * g2.max(1.0));
        }
    }

    #[test]
    fn zero_input_is_silent() {
        let zeros = vec![0.0; 32];
        for bin in 0..32 {
            assert_eq!(goertzel_magnitude(&zeros, bin), 0.0);
        }
        assert_eq!(goertzel_magnitude(&[], 3), 0.0);
    }

    #[test]
    fn residual_series_returns_latest_in_order() {
        let ring = ResidualSeries::default();
        assert!(ring.latest(8).is_empty());
        for v in 0..10_i64 {
            ring.push(v * 100 - 300);
        }
        assert_eq!(ring.head(), 10);
        let got = ring.latest(4);
        assert_eq!(got, vec![300.0, 400.0, 500.0, 600.0]);
        // Wrap far past capacity; the newest CAPACITY entries survive.
        for v in 10..200_i64 {
            ring.push(v);
        }
        let got = ring.latest(3);
        assert_eq!(got, vec![197.0, 198.0, 199.0]);
        assert_eq!(ring.latest(RESIDUAL_CAPACITY).len(), RESIDUAL_CAPACITY);
    }

    #[test]
    fn coherence_detail_round_trips() {
        let detail = encode_coherence_detail(6, 0b1011, 4321.0);
        let (bin, mask, permille) = decode_coherence_detail(detail).unwrap();
        assert_eq!(bin, 6);
        assert_eq!(mask, 0b1011);
        assert_eq!(permille, 4); // 4321 ppm → 4 permille
        assert_eq!(ProbeCode::from_detail(detail), Some(ProbeCode::Coherence));
        // Non-coherence details decode to None.
        assert_eq!(decode_coherence_detail(2 << 56), None);
        assert_eq!(decode_coherence_detail(0), None);
    }

    #[test]
    fn default_grid_excludes_dc_and_nyquist() {
        let cfg = CoherenceConfig::new().with_window(16);
        assert_eq!(cfg.grid(), vec![1, 2, 3, 4, 5, 6, 7]);
        let cfg = cfg.with_bins(vec![3, 5]);
        assert_eq!(cfg.grid(), vec![3, 5]);
    }

    fn shared_with_tone(
        shards: usize,
        tone_shards: &[usize],
        bin: f64,
        window: usize,
    ) -> Vec<Arc<ShardShared>> {
        let mut seed = 0x5EED;
        (0..shards)
            .map(|i| {
                let sh = Arc::new(ShardShared::default());
                sh.set_state(ShardState::Online);
                for t in 0..window {
                    let noise = splitmix(&mut seed) * 40.0;
                    let tone = if tone_shards.contains(&i) {
                        4000.0 * (2.0 * std::f64::consts::PI * bin * t as f64 / window as f64).sin()
                    } else {
                        0.0
                    };
                    sh.residuals().push((noise + tone).round() as i64);
                }
                sh
            })
            .collect()
    }

    #[test]
    fn detector_trips_on_shared_tone_and_only_once() {
        let window = 16;
        let shared = shared_with_tone(3, &[0, 1], 5.0, window);
        let mut det = CoherenceDetector::new(CoherenceConfig::new().with_window(window));
        let hit = det.scan(&shared).expect("quorum tone must be detected");
        assert_eq!(hit.bin, 5);
        assert_eq!(hit.mask & 0b011, 0b011);
        assert_eq!(hit.shard, 0);
        assert!(hit.magnitude_ppm > 2000.0, "amp {}", hit.magnitude_ppm);
        // Same data, no new residuals → pass skipped entirely.
        assert!(det.scan(&shared).is_none());
        assert_eq!(det.stats().passes, 1);
        assert_eq!(det.stats().events, 1);
        // New residual but same episode → no second rising edge.
        shared[0].residuals().push(0);
        assert!(det.scan(&shared).is_none());
        assert_eq!(det.stats().passes, 2);
        assert_eq!(det.stats().events, 1);
    }

    #[test]
    fn single_shard_tone_does_not_trip_quorum() {
        let window = 16;
        let shared = shared_with_tone(3, &[2], 5.0, window);
        let mut det = CoherenceDetector::new(CoherenceConfig::new().with_window(window));
        assert!(det.scan(&shared).is_none());
        assert_eq!(det.stats().passes, 1);
        assert_eq!(det.stats().events, 0);
        // The single-shard line still shows up in the magnitude snapshot.
        let stats = det.stats();
        let j = stats.bins.iter().position(|&b| b == 5).unwrap();
        assert!(stats.magnitudes_ppm[j] > 2000.0);
    }

    #[test]
    fn offline_shards_do_not_participate() {
        let window = 16;
        let shared = shared_with_tone(3, &[0, 1], 5.0, window);
        shared[1].set_state(ShardState::Quarantined);
        let mut det = CoherenceDetector::new(CoherenceConfig::new().with_window(window));
        assert!(det.scan(&shared).is_none());
    }
}
