//! The entropy pool: N shards behind one byte-stream interface.
//!
//! Two interchangeable execution backends drive the same
//! [`Shard`](crate::shard) state machine:
//!
//! * **threaded** (default) — one worker thread per shard, each
//!   feeding a bounded lock-free SPSC ring; the pool handle drains
//!   the rings round-robin. Workers park briefly when their ring is
//!   full (backpressure), the consumer parks briefly when every ring
//!   is empty.
//! * **deterministic replay** — no threads: shards are stepped
//!   round-robin inside the consumer's call, so a given
//!   `(PoolConfig, seed)` always yields the byte-identical stream and
//!   [`PoolStats`] — including injected shard failures — which makes
//!   pool behaviour reproducible in tests.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use trng_core::trng::TrngConfig;
use trng_extract::{extracted_min_entropy_per_bit, leftover_hash_ratio, ToeplitzExtractor};
use trng_sources::{
    CarryChainSource, DualOscConfig, DualOscillatorSource, EntropySource, OsEntropySource,
    RecordedTrace, SourceError, TraceReplaySource,
};

use crate::coherence::{
    encode_coherence_detail, CoherenceConfig, CoherenceDetector, CoherenceResponse,
};
use crate::journal::{IncidentKind, Journal, DEFAULT_JOURNAL_CAPACITY};
use crate::monitor::MonitorConfig;
use crate::ring;
use crate::shard::{mix_seed, Conditioning, FaultInjection, Shard};
use crate::stats::{ComposedStats, PoolStats, ShardShared, ShardState};

/// How long a parked worker or consumer naps before re-checking.
const NAP: Duration = Duration::from_micros(200);

/// Elastic shard management: when retirements drop the number of
/// serviceable (non-retired) shards below `online_floor`, the pool's
/// supervisor spawns a replacement shard on the next fresh disjoint
/// fabric placement ([`TrngConfig::for_shard`] at the next unused
/// index). Replacements pass the same AIS-31-style start-up gate as
/// the initial complement before contributing a byte; respawn storms
/// are bounded by `max_respawns` (a lifetime budget) and `backoff`
/// (minimum wall-clock spacing between attempts, threaded backend
/// only — the deterministic replay backend ignores it so replay stays
/// a pure function of the configuration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RespawnPolicy {
    /// Minimum number of serviceable shards; a respawn triggers when
    /// the non-retired count drops below this.
    pub online_floor: usize,
    /// Lifetime budget of replacement spawns (attempts count even if
    /// the replacement fails its admission gate).
    pub max_respawns: u32,
    /// Minimum spacing between spawn attempts (threaded backend). The
    /// timer arms when a deficit is first noticed, so the first
    /// attempt also waits this long after the triggering retirement.
    pub backoff: Duration,
    /// Settle time a freshly spawned replacement waits before its
    /// first admission attempt (threaded backend only, like
    /// `backoff`). A re-placed ring-oscillator chain needs its
    /// operating point to stabilise before the start-up test is
    /// meaningful; the pool reads `recovering` for at least this long.
    pub settle: Duration,
}

impl RespawnPolicy {
    /// A policy holding `online_floor` shards serviceable with a
    /// lifetime budget of `max_respawns` replacements, no backoff and
    /// no settle time.
    pub fn new(online_floor: usize, max_respawns: u32) -> Self {
        RespawnPolicy {
            online_floor,
            max_respawns,
            backoff: Duration::ZERO,
            settle: Duration::ZERO,
        }
    }

    /// Sets the minimum spacing between spawn attempts, builder-style.
    pub fn with_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }

    /// Sets the replacement settle time, builder-style.
    pub fn with_settle(mut self, settle: Duration) -> Self {
        self.settle = settle;
        self
    }
}

/// Pool-level composed conditioning: interleave the (per-shard
/// conditioned, health-gated) delivery stream across all shards, then
/// run it through one seeded Toeplitz strong extractor — the first
/// output stage that *combines* entropy across independent shards
/// instead of conditioning each in isolation.
///
/// The composed claim ties the per-source eq. (7) bounds to the
/// extractor's output: every interleaved input bit carries at least
/// the *minimum* per-raw-bit min-entropy claim across the pool's
/// shards (per-shard conditioning only concentrates entropy, never
/// dilutes it below the raw claim), so hashing `ratio · 64` input
/// bits to 64 output bits at the leftover-hash-sized ratio yields
/// blocks within `ε = 2^−epsilon_log2` of uniform — a per-bit output
/// claim of [`extracted_min_entropy_per_bit`]`(64, epsilon_log2)`,
/// published as `claimed_min_entropy` in [`ComposedStats`] next to a
/// measured estimate the replay tests pin `claimed ≤ measured`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComposedExtract {
    /// Statistical-distance target `ε = 2^−epsilon_log2` for the
    /// leftover-hash sizing and the published output claim.
    pub epsilon_log2: u32,
    /// Matrix seed lane, mixed with the pool seed
    /// ([`mix_seed`]) so the composed stream
    /// stays a pure function of the configuration.
    pub seed: u64,
    /// Interleaved input bits per output bit. `None` (the default)
    /// sizes the ratio from the minimum per-source claim across the
    /// pool's shards via
    /// [`leftover_hash_ratio`].
    pub ratio: Option<u32>,
}

impl ComposedExtract {
    /// A composed stage at `ε = 2^−epsilon_log2` whose ratio is sized
    /// from the pool's per-source claims at build time.
    pub fn new(epsilon_log2: u32, seed: u64) -> Self {
        ComposedExtract {
            epsilon_log2,
            seed,
            ratio: None,
        }
    }

    /// Overrides the leftover-hash ratio sizing, builder-style. Must
    /// be at least 1 (validated at pool construction).
    pub fn with_ratio(mut self, ratio: u32) -> Self {
        self.ratio = Some(ratio);
        self
    }
}

/// Live state of the composed cross-shard extract stage: the seeded
/// extractor, buffered output bytes, and the claimed-vs-measured
/// min-entropy bookkeeping surfaced through [`ComposedStats`].
struct ComposedStage {
    extractor: ToeplitzExtractor,
    ratio: u32,
    epsilon_log2: u32,
    input_claim: f64,
    claimed: f64,
    /// Composed output bytes emitted but not yet handed to a consumer.
    out: VecDeque<u8>,
    /// Byte-value histogram of every composed output byte, feeding the
    /// most-common-value measured min-entropy estimate.
    counts: Box<[u64; 256]>,
    bytes_extracted: u64,
    /// Reused interleaved-input fetch buffer.
    scratch: Vec<u8>,
}

/// Composed output bytes the estimator needs before it reports a
/// non-zero measured min-entropy (the MCV estimate on fewer bytes is
/// all confidence penalty).
const COMPOSED_MEASURE_FLOOR: u64 = 4096;

/// Largest interleaved-input chunk fetched per inner fill, bounding
/// the scratch buffer while amortizing the per-call overhead.
const COMPOSED_CHUNK: usize = 64 * 1024;

impl ComposedStage {
    fn new(config: ComposedExtract, pool_seed: u64, input_claim: f64) -> Self {
        let ratio = config
            .ratio
            .unwrap_or_else(|| leftover_hash_ratio(input_claim, config.epsilon_log2, 64));
        let seed = mix_seed(pool_seed, mix_seed(config.seed, 0xC0_3ED));
        ComposedStage {
            extractor: ToeplitzExtractor::from_seed(64, ratio as usize * 64, seed),
            ratio,
            epsilon_log2: config.epsilon_log2,
            input_claim,
            claimed: extracted_min_entropy_per_bit(64, config.epsilon_log2),
            out: VecDeque::new(),
            counts: Box::new([0u64; 256]),
            bytes_extracted: 0,
            scratch: Vec::new(),
        }
    }

    /// Interleaved input bytes needed to emit `out_bytes` more composed
    /// bytes, given the extractor's partial block. Exact: the input
    /// block is `ratio · 64` bits and input arrives in whole bytes, so
    /// the demand is always byte-aligned.
    fn input_bytes_for(&self, out_bytes: usize) -> usize {
        let blocks = (out_bytes * 8).div_ceil(64);
        let need_bits =
            blocks * self.extractor.input_block_bits() - self.extractor.pending_input_bits();
        need_bits.div_ceil(8)
    }

    /// Absorbs interleaved delivery-stream bytes (MSB-first bit order,
    /// matching shard byte assembly); completed 64-bit blocks land in
    /// the output buffer as 8 bytes each.
    fn absorb(&mut self, input: &[u8]) {
        for &byte in input {
            for j in 0..8 {
                let bit = byte >> (7 - j) & 1 == 1;
                if let Some(word) = self.extractor.push(bit) {
                    // Output bit `y_i` is stream bit `i`: byte `k`'s
                    // MSB is `y_(8k)`, i.e. each little-endian byte of
                    // the word bit-reversed.
                    for k in 0..8 {
                        let out = ((word >> (8 * k)) as u8).reverse_bits();
                        self.counts[out as usize] += 1;
                        self.out.push_back(out);
                    }
                    self.bytes_extracted += 8;
                }
            }
        }
    }

    /// Moves buffered composed bytes into `dest[filled..]`, returning
    /// the new fill level.
    fn drain(&mut self, dest: &mut [u8], mut filled: usize) -> usize {
        while filled < dest.len() {
            match self.out.pop_front() {
                Some(b) => {
                    dest[filled] = b;
                    filled += 1;
                }
                None => break,
            }
        }
        filled
    }

    /// Measured per-bit min-entropy of the composed output: a byte
    /// most-common-value estimate with a 99% confidence penalty (the
    /// SP 800-90B 6.3.1 construction), 0.0 until
    /// [`COMPOSED_MEASURE_FLOOR`] bytes have accumulated.
    fn measured_min_entropy(&self) -> f64 {
        let n = self.bytes_extracted;
        if n < COMPOSED_MEASURE_FLOOR {
            return 0.0;
        }
        let nf = n as f64;
        let p_hat = self.counts.iter().copied().max().unwrap_or(0) as f64 / nf;
        let p_upper = (p_hat + 2.576 * (p_hat * (1.0 - p_hat) / (nf - 1.0)).sqrt()).min(1.0);
        -p_upper.log2() / 8.0
    }

    fn stats(&self) -> ComposedStats {
        ComposedStats {
            ratio: self.ratio,
            epsilon_log2: self.epsilon_log2,
            input_claim_min_entropy: self.input_claim,
            claimed_min_entropy: self.claimed,
            measured_min_entropy: self.measured_min_entropy(),
            bytes_extracted: self.bytes_extracted,
        }
    }
}

/// Which entropy backend one shard runs — the heterogeneous
/// source-mix unit of [`PoolConfig::with_sources`].
#[derive(Debug, Clone)]
pub enum SourceSpec {
    /// The paper's carry-chain TDC simulator, placed on its own
    /// disjoint fabric columns via [`TrngConfig::for_shard`] at the
    /// shard's index. The default for every shard when no source mix
    /// is configured.
    CarryChain,
    /// A dual-oscillator sampler built from the simulator's
    /// ring-oscillator primitives. Boxed: the oscillator config is an
    /// order of magnitude larger than every other variant.
    DualOscillator(Box<DualOscConfig>),
    /// Replay of a recorded raw capture through the live
    /// health/conditioning stack.
    TraceReplay(Arc<RecordedTrace>),
    /// The operating system's entropy pool. Deterministic pools get
    /// the seeded stand-in so replay stays a pure function of the
    /// configuration.
    OsEntropy,
}

/// Configuration of an [`EntropyPool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Base TRNG design; shard `i` runs [`TrngConfig::for_shard`]`(i)`.
    pub base: TrngConfig,
    /// Number of shards (parallel TRNG instances).
    pub shards: usize,
    /// Pool-level simulation seed; per-shard seeds are derived.
    pub seed: u64,
    /// Conditioning between raw bits and pool bytes.
    pub conditioning: Conditioning,
    /// Per-shard ring capacity in bytes (threaded backend).
    pub ring_capacity: usize,
    /// Bytes per health-gated production block.
    pub block_bytes: usize,
    /// Alarms a shard may survive (each costs a quarantine plus a
    /// passed re-admission test) before it is retired outright.
    pub max_readmissions: u32,
    /// `true` selects the single-threaded deterministic replay
    /// backend.
    pub deterministic: bool,
    /// Scripted fault schedule, for tests and failover drills. Any
    /// number of faults, each targeting one shard index; with a
    /// [`RespawnPolicy`] the schedule may also target replacement
    /// indices (`shards..shards + max_respawns`).
    pub faults: Vec<FaultInjection>,
    /// Elastic shard management; `None` disables respawning.
    pub respawn: Option<RespawnPolicy>,
    /// Capacity of the bounded incident journal, in events (rounded up
    /// to a power of two; oldest events are evicted once exceeded).
    pub journal_capacity: usize,
    /// Online jitter monitoring; `None` (the default) disables it so
    /// existing replay streams and journals stay byte-identical.
    pub monitor: Option<MonitorConfig>,
    /// Heterogeneous source mix: entry `i` picks shard `i`'s backend.
    /// Empty (the default) runs every shard on [`SourceSpec::CarryChain`]
    /// — byte-identical to pools built before source mixing existed.
    /// Non-empty lists must name exactly one spec per shard.
    pub sources: Vec<SourceSpec>,
    /// Pool-level composed conditioning (interleave-then-extract
    /// across shards); `None` (the default) keeps the delivery stream
    /// byte-identical to pools built before the stage existed.
    pub composed: Option<ComposedExtract>,
    /// Cross-shard coherence detection over the monitors' period-probe
    /// residuals; `None` (the default) disables it. Requires
    /// [`monitor`](PoolConfig::monitor) — the detector has nothing to
    /// scan without per-shard observations.
    pub coherence: Option<CoherenceConfig>,
}

impl PoolConfig {
    /// A pool of `shards` instances of `base` with default service
    /// parameters (design-rate XOR conditioning, 8 KiB rings, 256-byte
    /// blocks, 2 re-admissions, threaded backend).
    pub fn new(base: TrngConfig, shards: usize) -> Self {
        PoolConfig {
            base,
            shards,
            seed: 0x5EED,
            conditioning: Conditioning::DesignXor,
            ring_capacity: 8192,
            block_bytes: 256,
            max_readmissions: 2,
            deterministic: false,
            faults: Vec::new(),
            respawn: None,
            journal_capacity: DEFAULT_JOURNAL_CAPACITY,
            monitor: None,
            sources: Vec::new(),
            composed: None,
            coherence: None,
        }
    }

    /// Sets the pool seed, builder-style.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the conditioning stage, builder-style.
    pub fn with_conditioning(mut self, conditioning: Conditioning) -> Self {
        self.conditioning = conditioning;
        self
    }

    /// Sets the per-shard ring capacity, builder-style.
    pub fn with_ring_capacity(mut self, bytes: usize) -> Self {
        self.ring_capacity = bytes;
        self
    }

    /// Sets the production block size, builder-style.
    pub fn with_block_bytes(mut self, bytes: usize) -> Self {
        self.block_bytes = bytes.max(1);
        self
    }

    /// Sets the alarm budget, builder-style.
    pub fn with_max_readmissions(mut self, n: u32) -> Self {
        self.max_readmissions = n;
        self
    }

    /// Selects the deterministic replay backend, builder-style.
    pub fn deterministic(mut self, on: bool) -> Self {
        self.deterministic = on;
        self
    }

    /// Scripts one fault injection, builder-style (appends to the
    /// schedule; call repeatedly for multi-fault campaigns).
    pub fn with_fault(mut self, fault: FaultInjection) -> Self {
        self.faults.push(fault);
        self
    }

    /// Replaces the whole fault schedule, builder-style.
    pub fn with_faults(mut self, faults: Vec<FaultInjection>) -> Self {
        self.faults = faults;
        self
    }

    /// Enables elastic shard management, builder-style.
    pub fn with_respawn(mut self, policy: RespawnPolicy) -> Self {
        self.respawn = Some(policy);
        self
    }

    /// Sets the incident-journal capacity, builder-style.
    pub fn with_journal_capacity(mut self, events: usize) -> Self {
        self.journal_capacity = events;
        self
    }

    /// Enables the online jitter monitor on every shard, builder-style.
    pub fn with_monitor(mut self, monitor: MonitorConfig) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Sets the per-shard source mix, builder-style; `sources[i]`
    /// picks shard `i`'s backend and the list must cover every shard.
    pub fn with_sources(mut self, sources: Vec<SourceSpec>) -> Self {
        self.sources = sources;
        self
    }

    /// Enables the pool-level composed extract stage, builder-style:
    /// the interleaved cross-shard delivery stream is hashed through
    /// one seeded Toeplitz extractor before any byte reaches a
    /// consumer, and [`PoolStats`] gains a
    /// [`composed`](PoolStats::composed) snapshot reporting the
    /// stage's claimed (leftover-hash) vs measured min-entropy.
    pub fn with_composed_extract(mut self, composed: ComposedExtract) -> Self {
        self.composed = Some(composed);
        self
    }

    /// Enables the cross-shard coherence detector, builder-style. A
    /// common-mode supply tone cancels out of every per-shard
    /// differential probe; the detector compares the monitors'
    /// period-probe residual spectra *across* shards and journals
    /// [`IncidentKind::CommonModeCoherence`] when the same line is
    /// elevated on a quorum. Requires
    /// [`with_monitor`](PoolConfig::with_monitor).
    pub fn with_coherence(mut self, coherence: CoherenceConfig) -> Self {
        self.coherence = Some(coherence);
        self
    }

    /// Selects the noise-synthesis backend for every carry-chain shard
    /// (including supervisor-spawned replacements), builder-style.
    /// The scalar default keeps pool streams byte-identical to replay
    /// fixtures; the batched engine is statistically equivalent but an
    /// order of magnitude faster per raw bit. Dual-oscillator shards
    /// opt in separately through
    /// [`DualOscConfig::with_backend`]; trace replay and the OS pool
    /// have no simulated noise to synthesise.
    pub fn with_noise_backend(mut self, backend: trng_fpga_sim::noise::NoiseBackend) -> Self {
        self.base = self.base.with_noise_backend(backend);
        self
    }
}

/// Why the pool cannot serve bytes.
#[derive(Debug)]
pub enum PoolError {
    /// The configuration requested zero shards.
    NoShards,
    /// The configuration is inconsistent (e.g. a fault scripted for a
    /// shard index the pool does not have).
    InvalidConfig(String),
    /// A shard's entropy source could not be built.
    Build {
        /// Index of the failing shard.
        shard: usize,
        /// The underlying construction error.
        error: SourceError,
    },
    /// `try_fill_bytes` hit its deadline; `filled` healthy bytes were
    /// written to the front of the buffer before it expired.
    Timeout {
        /// Bytes delivered before the deadline.
        filled: usize,
    },
    /// Every shard is retired and no respawn budget remains; `filled`
    /// healthy bytes were written before the pool ran dry. The
    /// delivered prefix is health-clean — total failure surfaces as
    /// this error, never as biased bytes.
    SourcesExhausted {
        /// Bytes delivered before exhaustion.
        filled: usize,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::NoShards => write!(f, "pool configured with zero shards"),
            PoolError::InvalidConfig(why) => write!(f, "invalid pool configuration: {why}"),
            PoolError::Build { shard, error } => {
                write!(f, "shard {shard} failed to build: {error}")
            }
            PoolError::Timeout { filled } => {
                write!(f, "timed out after {filled} bytes")
            }
            PoolError::SourcesExhausted { filled } => {
                write!(
                    f,
                    "all entropy sources retired after {filled} bytes were delivered"
                )
            }
        }
    }
}

impl Error for PoolError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PoolError::Build { error, .. } => Some(error),
            _ => None,
        }
    }
}

struct Threaded {
    consumers: Vec<ring::Consumer>,
    stop: Arc<AtomicBool>,
    /// One slot per shard; `None` once the supervisor has joined a
    /// retired shard's worker.
    handles: Vec<Option<JoinHandle<()>>>,
    ring_capacity: usize,
}

struct Inline {
    /// One slot per shard; `None` marks a respawn attempt whose
    /// placement failed to build (slot kept so indices stay aligned
    /// with the pool's `shared` vector).
    shards: Vec<Option<Shard>>,
    queues: Vec<VecDeque<u8>>,
    block_bytes: usize,
}

enum Backend {
    Threaded(Threaded),
    Inline(Inline),
}

/// Builds one shard's entropy backend from its spec. Carry-chain
/// shards take their own disjoint fabric placement
/// ([`TrngConfig::for_shard`] at `index`); the other backends ignore
/// the base config. `deterministic` pools get the seeded OS stand-in
/// so replay stays a pure function of the configuration.
fn build_source(
    spec: &SourceSpec,
    base: &TrngConfig,
    index: u32,
    seed: u64,
    deterministic: bool,
) -> Result<Box<dyn EntropySource>, SourceError> {
    Ok(match spec {
        SourceSpec::CarryChain => Box::new(CarryChainSource::new(base.for_shard(index)?, seed)?),
        SourceSpec::DualOscillator(config) => {
            Box::new(DualOscillatorSource::new((**config).clone(), seed)?)
        }
        SourceSpec::TraceReplay(trace) => Box::new(TraceReplaySource::new(Arc::clone(trace))?),
        SourceSpec::OsEntropy if deterministic => Box::new(OsEntropySource::seeded(seed)),
        SourceSpec::OsEntropy => Box::new(OsEntropySource::from_os(seed)),
    })
}

/// State of the elastic-management supervisor: everything needed to
/// build a replacement shard, plus the budget/backoff bookkeeping.
/// Supervision piggybacks on consumer calls (`fill_bytes`,
/// `try_fill_bytes`, `wait_online`) — there is no supervisor thread.
struct Supervisor {
    policy: RespawnPolicy,
    base: TrngConfig,
    seed: u64,
    conditioning: Conditioning,
    block_bytes: usize,
    max_readmissions: u32,
    monitor: Option<MonitorConfig>,
    faults: Vec<FaultInjection>,
    /// Source spec per shard id, replacements included: a respawn
    /// inherits the spec of the shard it supersedes, so a dead
    /// dual-oscillator shard is replaced by a dual-oscillator shard.
    specs: Vec<SourceSpec>,
    deterministic: bool,
    /// Next fresh fabric placement index.
    next_index: u32,
    /// Respawns already spent.
    used: u32,
    last_attempt: Option<Instant>,
}

/// A sharded, health-gated entropy service.
///
/// # Examples
///
/// ```
/// use trng_core::trng::TrngConfig;
/// use trng_pool::{EntropyPool, PoolConfig};
///
/// // Deterministic replay backend: reproducible and thread-free.
/// let config = PoolConfig::new(TrngConfig::paper_k1(), 2).deterministic(true);
/// let mut pool = EntropyPool::new(config)?;
/// let mut key = [0u8; 32];
/// pool.fill_bytes(&mut key)?;
/// let stats = pool.stats();
/// assert_eq!(stats.bytes_delivered, 32);
/// assert_eq!(stats.total_alarms(), 0);
/// # Ok::<(), trng_pool::PoolError>(())
/// ```
pub struct EntropyPool {
    shared: Vec<Arc<ShardShared>>,
    backend: Backend,
    rr: usize,
    bytes_delivered: u64,
    fill_calls: u64,
    max_refill_wait: Duration,
    journal: Arc<Journal>,
    supervisor: Option<Supervisor>,
    workers_joined: u64,
    /// Pool-level composed extract stage, when configured.
    composed: Option<ComposedStage>,
    /// Cross-shard coherence detector, when configured.
    coherence: Option<CoherenceDetector>,
}

impl fmt::Debug for EntropyPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EntropyPool")
            .field("shards", &self.shared.len())
            .field(
                "backend",
                &match self.backend {
                    Backend::Threaded(_) => "threaded",
                    Backend::Inline(_) => "deterministic",
                },
            )
            .field("bytes_delivered", &self.bytes_delivered)
            .finish()
    }
}

impl EntropyPool {
    /// Builds the pool and (in the threaded backend) spawns one worker
    /// per shard. Shards start in [`ShardState::Starting`] and only
    /// contribute after passing the start-up self-test; use
    /// [`wait_online`](EntropyPool::wait_online) to block until
    /// admission has settled.
    ///
    /// # Errors
    ///
    /// [`PoolError::NoShards`], [`PoolError::InvalidConfig`], or the
    /// first shard whose TRNG fails to build.
    pub fn new(config: PoolConfig) -> Result<Self, PoolError> {
        if config.shards == 0 {
            return Err(PoolError::NoShards);
        }
        let budget = config
            .respawn
            .as_ref()
            .map_or(0, |p| p.max_respawns as usize);
        for f in &config.faults {
            if f.shard >= config.shards + budget {
                return Err(PoolError::InvalidConfig(format!(
                    "fault targets shard {} but the pool has {} (+{} respawn budget)",
                    f.shard, config.shards, budget
                )));
            }
        }
        if let Some(policy) = &config.respawn {
            if policy.online_floor == 0 || policy.online_floor > config.shards {
                return Err(PoolError::InvalidConfig(format!(
                    "respawn floor {} outside 1..={} shards",
                    policy.online_floor, config.shards
                )));
            }
        }
        if !config.sources.is_empty() && config.sources.len() != config.shards {
            return Err(PoolError::InvalidConfig(format!(
                "sources list has {} entries for {} shards",
                config.sources.len(),
                config.shards
            )));
        }
        if let Conditioning::Toeplitz { ratio, .. } = config.conditioning {
            if ratio == 0 {
                return Err(PoolError::InvalidConfig(
                    "Toeplitz conditioning ratio must be at least 1".to_string(),
                ));
            }
            // The fixed-rate batch fetch computes a block's raw demand
            // as `block_bytes · 8 · ratio`, exact only when the 64-bit
            // emissions divide the block.
            if !config.block_bytes.is_multiple_of(8) {
                return Err(PoolError::InvalidConfig(format!(
                    "Toeplitz conditioning needs block_bytes divisible by 8, got {}",
                    config.block_bytes
                )));
            }
        }
        if let Some(composed) = &config.composed {
            if composed.ratio == Some(0) {
                return Err(PoolError::InvalidConfig(
                    "composed extract ratio must be at least 1".to_string(),
                ));
            }
        }
        if let Some(coherence) = &config.coherence {
            if config.monitor.is_none() {
                return Err(PoolError::InvalidConfig(
                    "coherence detection requires the jitter monitor \
                     (PoolConfig::with_monitor)"
                        .to_string(),
                ));
            }
            if coherence.quorum < 2 || coherence.quorum > config.shards {
                return Err(PoolError::InvalidConfig(format!(
                    "coherence quorum {} outside 2..={} shards",
                    coherence.quorum, config.shards
                )));
            }
            if !(8..=64).contains(&coherence.window) {
                return Err(PoolError::InvalidConfig(format!(
                    "coherence window {} outside 8..=64 observations",
                    coherence.window
                )));
            }
            for &bin in &coherence.bins {
                if bin == 0 || bin as usize >= coherence.window / 2 {
                    return Err(PoolError::InvalidConfig(format!(
                        "coherence bin {} outside 1..{} for window {}",
                        bin,
                        coherence.window / 2,
                        coherence.window
                    )));
                }
            }
            if !coherence.line_snr.is_finite() || coherence.line_snr <= 0.0 {
                return Err(PoolError::InvalidConfig(format!(
                    "coherence line_snr {} must be positive",
                    coherence.line_snr
                )));
            }
        }
        let journal = Arc::new(Journal::new(config.journal_capacity));
        let shared: Vec<Arc<ShardShared>> = (0..config.shards)
            .map(|_| Arc::new(ShardShared::default()))
            .collect();
        let mut shards = Vec::with_capacity(config.shards);
        for (i, shared_i) in shared.iter().enumerate() {
            let spec = config
                .sources
                .get(i)
                .cloned()
                .unwrap_or(SourceSpec::CarryChain);
            let seed = mix_seed(config.seed, i as u64);
            let source = build_source(&spec, &config.base, i as u32, seed, config.deterministic)
                .map_err(|error| PoolError::Build { shard: i, error })?;
            let faults: Vec<FaultInjection> = config
                .faults
                .iter()
                .filter(|f| f.shard == i)
                .cloned()
                .collect();
            let shard = Shard::new(
                i,
                source,
                seed,
                config.conditioning,
                faults,
                config.max_readmissions,
                config.monitor.clone(),
                Arc::clone(shared_i),
                Arc::clone(&journal),
            );
            journal.record(i, IncidentKind::Spawn, 0, 0, 0);
            shards.push(shard);
        }

        // The composed claim is anchored to the weakest input: every
        // interleaved bit carries at least the minimum per-source
        // claim, which the leftover-hash sizing then consumes.
        let composed = config.composed.map(|c| {
            let input_claim = shared
                .iter()
                .enumerate()
                .map(|(i, s)| s.snapshot(i).claimed_min_entropy)
                .fold(f64::INFINITY, f64::min);
            ComposedStage::new(c, config.seed, input_claim)
        });

        let backend = if config.deterministic {
            Backend::Inline(Inline {
                queues: shards.iter().map(|_| VecDeque::new()).collect(),
                shards: shards.into_iter().map(Some).collect(),
                block_bytes: config.block_bytes,
            })
        } else {
            let stop = Arc::new(AtomicBool::new(false));
            let mut consumers = Vec::with_capacity(config.shards);
            let mut handles = Vec::with_capacity(config.shards);
            for shard in shards {
                let (producer, consumer) = ring::ring(config.ring_capacity);
                consumers.push(consumer);
                let stop = Arc::clone(&stop);
                let block_bytes = config.block_bytes;
                let name = format!("trng-pool-shard-{}", shard.id());
                let handle = std::thread::Builder::new()
                    .name(name)
                    .spawn(move || worker(shard, producer, stop, block_bytes))
                    .expect("spawn pool worker");
                handles.push(Some(handle));
            }
            Backend::Threaded(Threaded {
                consumers,
                stop,
                handles,
                ring_capacity: config.ring_capacity,
            })
        };

        let specs = if config.sources.is_empty() {
            vec![SourceSpec::CarryChain; config.shards]
        } else {
            config.sources
        };
        let supervisor = config.respawn.map(|policy| Supervisor {
            policy,
            base: config.base,
            seed: config.seed,
            conditioning: config.conditioning,
            block_bytes: config.block_bytes,
            max_readmissions: config.max_readmissions,
            monitor: config.monitor,
            faults: config.faults,
            specs,
            deterministic: config.deterministic,
            next_index: config.shards as u32,
            used: 0,
            last_attempt: None,
        });

        Ok(EntropyPool {
            shared,
            backend,
            rr: 0,
            bytes_delivered: 0,
            fill_calls: 0,
            max_refill_wait: Duration::ZERO,
            journal,
            supervisor,
            workers_joined: 0,
            composed,
            coherence: config.coherence.map(CoherenceDetector::new),
        })
    }

    /// Number of shards (in any state, replacements included).
    pub fn shard_count(&self) -> usize {
        self.shared.len()
    }

    /// `true` while a respawn is still possible: a policy is set and
    /// its budget is unspent.
    fn can_heal(&self) -> bool {
        self.supervisor
            .as_ref()
            .is_some_and(|s| s.used < s.policy.max_respawns)
    }

    /// One supervision pass, piggybacked on every consumer call: joins
    /// the worker threads of retired shards, then spawns replacement
    /// shards while the serviceable (non-retired) count is below the
    /// policy floor and budget/backoff allow. Returns `true` when at
    /// least one replacement was spawned.
    fn supervise(&mut self) -> bool {
        self.coherence_pass();
        if let Backend::Threaded(threaded) = &mut self.backend {
            // A retired shard's worker body has returned (or is about
            // to); join it so the thread is fully reclaimed.
            for (i, shared) in self.shared.iter().enumerate() {
                if shared.state() == ShardState::Retired {
                    if let Some(handle) = threaded.handles[i].take() {
                        let _ = handle.join();
                        self.workers_joined += 1;
                    }
                }
            }
        }
        let mut spawned = false;
        loop {
            let Some(sup) = &mut self.supervisor else {
                return spawned;
            };
            let serviceable = self
                .shared
                .iter()
                .filter(|s| s.state() != ShardState::Retired)
                .count();
            if serviceable >= sup.policy.online_floor || sup.used >= sup.policy.max_respawns {
                return spawned;
            }
            // Backoff bounds respawn storms in the threaded backend.
            // The deterministic replay backend ignores it: replay must
            // stay a pure function of the configuration, never of
            // wall-clock time. The timer arms when the deficit is
            // first noticed, so even the first attempt waits out the
            // configured spacing — the `degraded` window is observable
            // before the pool flips to `recovering`.
            if matches!(self.backend, Backend::Threaded(_)) {
                match sup.last_attempt {
                    Some(at) if at.elapsed() < sup.policy.backoff => return spawned,
                    Some(_) => {}
                    None => {
                        sup.last_attempt = Some(Instant::now());
                        if !sup.policy.backoff.is_zero() {
                            return spawned;
                        }
                    }
                }
            }
            sup.used += 1;
            let index = sup.next_index;
            sup.next_index += 1;
            sup.last_attempt = Some(Instant::now());
            let id = index as usize;
            let seed = mix_seed(sup.seed, u64::from(index));
            let conditioning = sup.conditioning;
            let block_bytes = sup.block_bytes;
            let max_readmissions = sup.max_readmissions;
            let monitor = sup.monitor.clone();
            let settle = sup.policy.settle;
            let faults: Vec<FaultInjection> = sup
                .faults
                .iter()
                .filter(|f| f.shard == id)
                .cloned()
                .collect();
            // The lowest-index retiree not yet superseded is the shard
            // this replacement stands in for. (One always exists when
            // the serviceable count is below the floor.)
            let replaced = self
                .shared
                .iter()
                .position(|s| s.state() == ShardState::Retired && !s.superseded())
                .unwrap_or(id);
            let replaced_snap = self.shared.get(replaced).map(|s| s.snapshot(replaced));
            // The replacement runs the same *kind* of source as its
            // retiree (carry-chain replacements still get a fresh
            // fabric placement at the new index); record the new
            // shard's spec so replacements-of-replacements inherit too.
            let spec = sup
                .specs
                .get(replaced)
                .cloned()
                .unwrap_or(SourceSpec::CarryChain);
            sup.specs.push(spec.clone());
            let source = build_source(&spec, &sup.base, index, seed, sup.deterministic);
            // The respawn incident is stamped against the *new* shard
            // id, carrying the replaced id in `detail` and the
            // retiree's final simulated time / healthy-byte offset.
            self.journal.record(
                id,
                IncidentKind::Respawn,
                replaced_snap
                    .as_ref()
                    .map_or(0, |s| s.sim_elapsed.as_nanos() as u64),
                replaced_snap.as_ref().map_or(0, |s| s.bytes_produced),
                replaced as u64,
            );
            let new_shared = Arc::new(ShardShared::default());
            new_shared.mark_respawned(replaced);
            let shard = source.map(|source| {
                Shard::new(
                    id,
                    source,
                    seed,
                    conditioning,
                    faults,
                    max_readmissions,
                    monitor,
                    Arc::clone(&new_shared),
                    Arc::clone(&self.journal),
                )
            });
            if let Some(s) = self.shared.get(replaced) {
                s.set_superseded();
            }
            match shard {
                Ok(shard) => {
                    self.shared.push(Arc::clone(&new_shared));
                    match &mut self.backend {
                        Backend::Threaded(threaded) => {
                            let (producer, consumer) = ring::ring(threaded.ring_capacity);
                            threaded.consumers.push(consumer);
                            let stop = Arc::clone(&threaded.stop);
                            let name = format!("trng-pool-shard-{id}");
                            let handle = std::thread::Builder::new()
                                .name(name)
                                .spawn(move || {
                                    // Let the fresh placement settle
                                    // before its admission gate runs.
                                    if !settle.is_zero() {
                                        std::thread::sleep(settle);
                                    }
                                    worker(shard, producer, stop, block_bytes)
                                })
                                .expect("spawn pool worker");
                            threaded.handles.push(Some(handle));
                        }
                        Backend::Inline(inline) => {
                            inline.shards.push(Some(shard));
                            inline.queues.push(VecDeque::new());
                        }
                    }
                    spawned = true;
                }
                Err(_) => {
                    // The fresh placement could not even be built (the
                    // fabric ran out of disjoint columns): the attempt
                    // still costs budget and stays auditable as an
                    // immediate retirement of the new id.
                    new_shared.set_state(ShardState::Retired);
                    self.shared.push(new_shared);
                    match &mut self.backend {
                        Backend::Threaded(threaded) => {
                            // Keep the per-shard vectors index-aligned
                            // with `shared`: a producer-less ring reads
                            // permanently empty.
                            let (_producer, consumer) = ring::ring(threaded.ring_capacity);
                            threaded.consumers.push(consumer);
                            threaded.handles.push(None);
                        }
                        Backend::Inline(inline) => {
                            inline.shards.push(None);
                            inline.queues.push(VecDeque::new());
                        }
                    }
                    self.journal.record(id, IncidentKind::Retire, 0, 0, 0);
                }
            }
        }
    }

    /// Blocks until no shard is still [`ShardState::Starting`], or the
    /// deadline passes. Returns the number of online shards.
    ///
    /// # Errors
    ///
    /// [`PoolError::SourcesExhausted`] when every shard retired during
    /// admission, [`PoolError::Timeout`] on deadline.
    pub fn wait_online(&mut self, timeout: Duration) -> Result<usize, PoolError> {
        let deadline = Instant::now() + timeout;
        loop {
            self.supervise();
            // The inline backend drives admission synchronously.
            if let Backend::Inline(inline) = &mut self.backend {
                for shard in inline.shards.iter_mut().flatten() {
                    while shard.state() == ShardState::Starting {
                        shard.recover();
                    }
                }
            }
            let states: Vec<ShardState> = self.shared.iter().map(|s| s.state()).collect();
            let all_retired = states.iter().all(|&s| s == ShardState::Retired);
            if all_retired && !self.can_heal() {
                return Err(PoolError::SourcesExhausted { filled: 0 });
            }
            if !all_retired && states.iter().all(|&s| s != ShardState::Starting) {
                return Ok(states.iter().filter(|&&s| s == ShardState::Online).count());
            }
            if Instant::now() >= deadline {
                return Err(PoolError::Timeout { filled: 0 });
            }
            std::thread::sleep(NAP);
        }
    }

    /// Fills `dest` with health-gated pool bytes, blocking as long as
    /// it takes (or until every source is gone).
    ///
    /// # Errors
    ///
    /// [`PoolError::SourcesExhausted`] once every shard is retired.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), PoolError> {
        self.fill(dest, None)
    }

    /// Fills `dest`, giving up at `timeout`. On error, the reported
    /// number of bytes at the front of `dest` are valid healthy bytes.
    ///
    /// The deterministic replay backend never waits, so the timeout is
    /// only meaningful for the threaded backend.
    ///
    /// # Errors
    ///
    /// [`PoolError::Timeout`] on deadline,
    /// [`PoolError::SourcesExhausted`] once every shard is retired.
    pub fn try_fill_bytes(&mut self, dest: &mut [u8], timeout: Duration) -> Result<(), PoolError> {
        let deadline = Instant::now() + timeout;
        self.fill(dest, Some(deadline))
    }

    fn fill(&mut self, dest: &mut [u8], deadline: Option<Instant>) -> Result<(), PoolError> {
        self.fill_calls += 1;
        let result = if self.composed.is_some() {
            self.fill_composed(dest, deadline)
        } else {
            self.fill_interleaved(dest, deadline)
        };
        match &result {
            Ok(()) => self.bytes_delivered += dest.len() as u64,
            Err(PoolError::Timeout { filled } | PoolError::SourcesExhausted { filled }) => {
                self.bytes_delivered += *filled as u64;
            }
            Err(_) => {}
        }
        result
    }

    /// The per-shard interleaved delivery stream (round-robin drain of
    /// the shards' conditioned, health-gated bytes) — the pool's
    /// output when no composed stage is configured, and the composed
    /// stage's input when one is.
    fn fill_interleaved(
        &mut self,
        dest: &mut [u8],
        deadline: Option<Instant>,
    ) -> Result<(), PoolError> {
        if matches!(self.backend, Backend::Inline(_)) {
            self.fill_inline(dest)
        } else {
            self.fill_threaded(dest, deadline)
        }
    }

    /// Composed fill: fetch interleaved bytes in bounded chunks, push
    /// them through the cross-shard Toeplitz extractor, and serve
    /// `dest` from the extracted output. On timeout or exhaustion the
    /// healthy interleaved prefix is still absorbed, whatever composed
    /// output it completed is delivered, and the error's `filled`
    /// counts *composed* bytes — the same partial-prefix contract the
    /// plain fill keeps.
    fn fill_composed(
        &mut self,
        dest: &mut [u8],
        deadline: Option<Instant>,
    ) -> Result<(), PoolError> {
        let mut stage = self.composed.take().expect("composed fill without stage");
        let result = self.fill_composed_inner(&mut stage, dest, deadline);
        self.composed = Some(stage);
        result
    }

    fn fill_composed_inner(
        &mut self,
        stage: &mut ComposedStage,
        dest: &mut [u8],
        deadline: Option<Instant>,
    ) -> Result<(), PoolError> {
        let mut filled = stage.drain(dest, 0);
        while filled < dest.len() {
            let need = stage
                .input_bytes_for(dest.len() - filled)
                .min(COMPOSED_CHUNK);
            let mut scratch = std::mem::take(&mut stage.scratch);
            scratch.clear();
            scratch.resize(need, 0);
            let inner = self.fill_interleaved(&mut scratch, deadline);
            match inner {
                Ok(()) => stage.absorb(&scratch),
                Err(PoolError::Timeout { filled: got }) => {
                    stage.absorb(&scratch[..got]);
                    stage.scratch = scratch;
                    let filled = stage.drain(dest, filled);
                    return Err(PoolError::Timeout { filled });
                }
                Err(PoolError::SourcesExhausted { filled: got }) => {
                    stage.absorb(&scratch[..got]);
                    stage.scratch = scratch;
                    let filled = stage.drain(dest, filled);
                    return Err(PoolError::SourcesExhausted { filled });
                }
                Err(e) => {
                    stage.scratch = scratch;
                    return Err(e);
                }
            }
            stage.scratch = scratch;
            filled = stage.drain(dest, filled);
        }
        Ok(())
    }

    fn fill_threaded(
        &mut self,
        dest: &mut [u8],
        deadline: Option<Instant>,
    ) -> Result<(), PoolError> {
        let mut filled = 0usize;
        let mut waited = Duration::ZERO;
        while filled < dest.len() {
            self.supervise();
            // Read states *before* the drain sweep: workers that were
            // already retired then cannot add bytes afterwards, so an
            // empty sweep plus all-retired is conclusive. (A pending
            // respawn — budget left but backoff not yet elapsed — is
            // not conclusive: keep waiting.)
            let all_retired = self.shared.iter().all(|s| s.state() == ShardState::Retired);
            let can_heal = self.can_heal();
            let rr = self.rr;
            let Backend::Threaded(threaded) = &mut self.backend else {
                unreachable!("threaded fill dispatched on inline backend");
            };
            let n = threaded.consumers.len();
            let mut got = 0usize;
            for k in 0..n {
                let idx = (rr + k) % n;
                got += threaded.consumers[idx].pop(&mut dest[filled + got..]);
                if filled + got == dest.len() {
                    break;
                }
            }
            self.rr = (rr + 1) % n;
            filled += got;
            if got == 0 {
                if all_retired && !can_heal {
                    self.max_refill_wait = self.max_refill_wait.max(waited);
                    return Err(PoolError::SourcesExhausted { filled });
                }
                if let Some(deadline) = deadline {
                    if Instant::now() >= deadline {
                        self.max_refill_wait = self.max_refill_wait.max(waited);
                        return Err(PoolError::Timeout { filled });
                    }
                }
                std::thread::sleep(NAP);
                waited += NAP;
            }
        }
        self.max_refill_wait = self.max_refill_wait.max(waited);
        Ok(())
    }

    fn fill_inline(&mut self, dest: &mut [u8]) -> Result<(), PoolError> {
        let mut filled = 0usize;
        let mut block = Vec::new();
        while filled < dest.len() {
            let spawned = self.supervise();
            let rr = self.rr;
            let Backend::Inline(inline) = &mut self.backend else {
                unreachable!("inline fill dispatched on threaded backend");
            };
            let n = inline.shards.len();
            let mut progressed = spawned;
            for k in 0..n {
                let i = (rr + k) % n;
                if !inline.queues[i].is_empty() {
                    while filled < dest.len() {
                        match inline.queues[i].pop_front() {
                            Some(b) => {
                                dest[filled] = b;
                                filled += 1;
                            }
                            None => break,
                        }
                    }
                    self.rr = (i + 1) % n;
                    progressed = true;
                    break;
                }
                let Some(shard) = inline.shards[i].as_mut() else {
                    continue;
                };
                match shard.state() {
                    ShardState::Online => {
                        if shard.produce_block(&mut block, inline.block_bytes) {
                            inline.queues[i].extend(block.drain(..));
                        }
                        progressed = true;
                        break;
                    }
                    ShardState::Starting | ShardState::Quarantined => {
                        shard.recover();
                        progressed = true;
                        break;
                    }
                    ShardState::Retired => {}
                }
            }
            if !progressed {
                return Err(PoolError::SourcesExhausted { filled });
            }
        }
        Ok(())
    }

    /// One coherence-detector pass, piggybacked (like respawn
    /// supervision) on consumer calls. A quorum rising edge is
    /// journaled as [`IncidentKind::CommonModeCoherence`] against the
    /// lowest-indexed shard in the quorum, stamped with that shard's
    /// progress; under [`CoherenceResponse::AlarmAll`] every quorum
    /// shard is additionally asked to raise its normal alarm.
    fn coherence_pass(&mut self) {
        let Some(detector) = &mut self.coherence else {
            return;
        };
        let Some(found) = detector.scan(&self.shared) else {
            return;
        };
        let detail = encode_coherence_detail(found.bin, found.mask, found.magnitude_ppm);
        let snap = self.shared[found.shard].snapshot(found.shard);
        self.journal.record(
            found.shard,
            IncidentKind::CommonModeCoherence,
            snap.sim_elapsed.as_nanos() as u64,
            snap.bytes_produced,
            detail,
        );
        if detector.response() == CoherenceResponse::AlarmAll {
            for (i, shared) in self.shared.iter().enumerate() {
                if i < 64 && found.mask >> i & 1 == 1 {
                    shared.request_alarm();
                }
            }
        }
    }

    /// Snapshots per-shard lifecycle state and pool-level counters.
    pub fn stats(&self) -> PoolStats {
        if let Backend::Threaded(threaded) = &self.backend {
            for (shared, consumer) in self.shared.iter().zip(&threaded.consumers) {
                shared.set_ring_high_water(consumer.high_water());
            }
        }
        let (journal, _dropped) = self.journal.snapshot();
        PoolStats {
            shards: self
                .shared
                .iter()
                .enumerate()
                .map(|(i, s)| s.snapshot(i))
                .collect(),
            bytes_delivered: self.bytes_delivered,
            fill_calls: self.fill_calls,
            max_refill_wait: self.max_refill_wait,
            respawns: self.supervisor.as_ref().map_or(0, |s| s.used),
            respawns_available: self
                .supervisor
                .as_ref()
                .map_or(0, |s| s.policy.max_respawns.saturating_sub(s.used)),
            workers_joined: self.workers_joined,
            journal_recorded: self.journal.recorded(),
            journal,
            composed: self.composed.as_ref().map(ComposedStage::stats),
            coherence: self.coherence.as_ref().map(CoherenceDetector::stats),
        }
    }
}

impl Drop for EntropyPool {
    fn drop(&mut self) {
        if let Backend::Threaded(threaded) = &mut self.backend {
            threaded.stop.store(true, Ordering::Release);
            for handle in threaded.handles.drain(..).flatten() {
                let _ = handle.join();
            }
        }
    }
}

/// Worker-thread body: drive one shard's lifecycle, pushing healthy
/// blocks into its ring with backpressure.
fn worker(mut shard: Shard, producer: ring::Producer, stop: Arc<AtomicBool>, block_bytes: usize) {
    let mut pending: Vec<u8> = Vec::new();
    let mut off = 0usize;
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        if off < pending.len() {
            off += producer.push(&pending[off..]);
            if off < pending.len() {
                // Ring full: the consumer is behind. Park briefly.
                std::thread::sleep(NAP);
                continue;
            }
        }
        match shard.state() {
            ShardState::Online => {
                if shard.produce_block(&mut pending, block_bytes) {
                    off = 0;
                } else {
                    // Alarm: the block was discarded inside the shard.
                    pending.clear();
                    off = 0;
                }
            }
            ShardState::Starting | ShardState::Quarantined => shard.recover(),
            ShardState::Retired => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardFault;
    use trng_core::trng::TrngConfig;
    use trng_model::params::{DesignParams, PlatformParams};

    fn dead_config() -> TrngConfig {
        let mut config = TrngConfig::ideal();
        config.platform = PlatformParams::new(480.0, 17.0, 0.05).expect("valid");
        config.design = DesignParams {
            k: 4,
            n_a: 1,
            np: 1,
            f_clk_hz: (1e12f64 / (21.0 * 480.0)).round() as u64,
            ..DesignParams::paper_k4()
        };
        config
    }

    fn small_pool(shards: usize) -> PoolConfig {
        PoolConfig::new(TrngConfig::paper_k1(), shards)
            .deterministic(true)
            .with_block_bytes(64)
            .with_seed(2015)
    }

    #[test]
    fn replay_mode_is_byte_identical() {
        let mut a = EntropyPool::new(small_pool(2)).expect("pool");
        let mut b = EntropyPool::new(small_pool(2)).expect("pool");
        let mut x = [0u8; 1024];
        let mut y = [0u8; 1024];
        a.fill_bytes(&mut x).expect("fill");
        b.fill_bytes(&mut y).expect("fill");
        assert_eq!(x, y);
        assert_eq!(a.stats(), b.stats());
        // A different pool seed diverges.
        let mut c = EntropyPool::new(small_pool(2).with_seed(2016)).expect("pool");
        let mut z = [0u8; 1024];
        c.fill_bytes(&mut z).expect("fill");
        assert_ne!(x, z);
    }

    #[test]
    fn replay_mode_interleaves_all_shards() {
        let mut pool = EntropyPool::new(small_pool(3)).expect("pool");
        let online = pool.wait_online(Duration::from_secs(30)).expect("online");
        assert_eq!(online, 3);
        let mut buf = [0u8; 512];
        pool.fill_bytes(&mut buf).expect("fill");
        let stats = pool.stats();
        assert_eq!(stats.bytes_delivered, 512);
        assert_eq!(stats.fill_calls, 1);
        for s in &stats.shards {
            assert!(s.bytes_produced > 0, "shard {} contributed nothing", s.id);
            assert_eq!(s.state, ShardState::Online);
            assert_eq!(s.alarms, 0);
        }
    }

    #[test]
    fn threaded_pool_serves_and_reports() {
        let config = PoolConfig::new(TrngConfig::paper_k1(), 2)
            .with_block_bytes(64)
            .with_seed(77);
        let mut pool = EntropyPool::new(config).expect("pool");
        let online = pool.wait_online(Duration::from_secs(60)).expect("online");
        assert_eq!(online, 2);
        let mut buf = [0u8; 2048];
        pool.fill_bytes(&mut buf).expect("fill");
        // 2048 zero bytes would mean the pool is broken (p ~ 2^-16384).
        assert!(buf.iter().any(|&b| b != 0));
        let stats = pool.stats();
        assert_eq!(stats.bytes_delivered, 2048);
        assert_eq!(stats.total_alarms(), 0);
        assert!(stats.shards.iter().any(|s| s.ring_high_water > 0));
        assert!(stats.sim_throughput_bps() > 0.0);
    }

    #[test]
    fn threaded_timeout_reports_partial_fill() {
        let config = PoolConfig::new(TrngConfig::paper_k1(), 1).with_seed(3);
        let mut pool = EntropyPool::new(config).expect("pool");
        pool.wait_online(Duration::from_secs(60)).expect("online");
        // The simulator produces a few KiB/s of np=7 bytes; 4 MiB in
        // 50 ms is impossible, so the deadline must fire.
        let mut huge = vec![0u8; 4 << 20];
        match pool.try_fill_bytes(&mut huge, Duration::from_millis(50)) {
            Err(PoolError::Timeout { filled }) => {
                assert!(filled < huge.len());
                assert_eq!(pool.stats().bytes_delivered, filled as u64);
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn timeout_partial_fill_touches_only_the_reported_prefix() {
        // Raw conditioning so the shard produces bytes fast enough for
        // several partial fills within the test budget.
        let config = PoolConfig::new(TrngConfig::paper_k1(), 1)
            .with_conditioning(Conditioning::Raw)
            .with_seed(11);
        let mut pool = EntropyPool::new(config).expect("pool");
        pool.wait_online(Duration::from_secs(60)).expect("online");
        // Repeated deadline-bounded fills into a sentinel-patterned
        // buffer: each call may only write the prefix it reports, and
        // `bytes_delivered` must account for exactly the sum.
        let mut total = 0u64;
        let mut timeouts = 0u32;
        for _ in 0..4 {
            let mut buf = vec![0xAAu8; 1 << 20];
            match pool.try_fill_bytes(&mut buf, Duration::from_millis(80)) {
                Ok(()) => total += buf.len() as u64,
                Err(PoolError::Timeout { filled }) => {
                    timeouts += 1;
                    assert!(filled < buf.len());
                    // Everything past the reported prefix is untouched.
                    assert!(
                        buf[filled..].iter().all(|&b| b == 0xAA),
                        "bytes written past the reported fill of {filled}"
                    );
                    total += filled as u64;
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        // The simulator cannot produce 1 MiB in 80 ms; every call must
        // have timed out, and the accounting must balance.
        assert_eq!(timeouts, 4);
        assert_eq!(pool.stats().bytes_delivered, total);
        assert!(total > 0, "no bytes at all in 4 x 80 ms of raw serving");
    }

    #[test]
    fn exhaustion_is_a_typed_error_not_biased_bytes() {
        let fault = FaultInjection {
            shard: 0,
            after_bytes: 256,
            fault: ShardFault::Config(Box::new(dead_config())),
            transient: false, // persistent: re-admission fails, shard retires
        };
        let config = small_pool(1).with_fault(fault).with_max_readmissions(1);
        let mut pool = EntropyPool::new(config).expect("pool");
        let mut sink = vec![0u8; 1 << 20];
        let err = pool.fill_bytes(&mut sink).expect_err("must run dry");
        match err {
            PoolError::SourcesExhausted { filled } => {
                assert!(filled >= 256, "clean prefix {filled}");
                assert!(filled < sink.len());
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
        let stats = pool.stats();
        assert_eq!(stats.shards[0].state, ShardState::Retired);
        assert_eq!(stats.shards[0].alarms, 1);
        assert_eq!(stats.shards[0].readmissions, 0);
    }

    #[test]
    fn zero_shards_is_rejected() {
        match EntropyPool::new(PoolConfig::new(TrngConfig::paper_k1(), 0)) {
            Err(PoolError::NoShards) => {}
            other => panic!("expected NoShards, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn out_of_range_fault_is_rejected() {
        let fault = FaultInjection {
            shard: 5,
            after_bytes: 0,
            fault: ShardFault::Config(Box::new(dead_config())),
            transient: true,
        };
        match EntropyPool::new(small_pool(2).with_fault(fault)) {
            Err(PoolError::InvalidConfig(why)) => assert!(why.contains("shard 5")),
            other => panic!("expected InvalidConfig, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn build_errors_carry_the_shard_index() {
        let mut base = TrngConfig::paper_k1();
        base.start_column = 5; // odd column: no carry chain anywhere
        match EntropyPool::new(PoolConfig::new(base, 2)) {
            Err(PoolError::Build { shard, .. }) => assert_eq!(shard, 0),
            other => panic!("expected Build, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn error_display_is_informative() {
        assert!(PoolError::NoShards.to_string().contains("zero shards"));
        assert!(PoolError::Timeout { filled: 3 }.to_string().contains('3'));
        assert!(PoolError::SourcesExhausted { filled: 9 }
            .to_string()
            .contains("retired"));
    }

    #[test]
    fn respawn_heals_a_persistent_shard_death() {
        // Shard 0 dies persistently; with one respawn in the budget the
        // pool replaces it on a fresh placement and serves on.
        let fault = FaultInjection {
            shard: 0,
            after_bytes: 128,
            fault: ShardFault::Config(Box::new(dead_config())),
            transient: false,
        };
        let config = small_pool(2)
            .with_fault(fault)
            .with_max_readmissions(1)
            .with_respawn(RespawnPolicy::new(2, 1));
        let mut pool = EntropyPool::new(config).expect("pool");
        let mut sink = vec![0u8; 8192];
        pool.fill_bytes(&mut sink).expect("respawn must heal");
        let stats = pool.stats();
        assert_eq!(stats.respawns, 1);
        assert_eq!(stats.respawns_available, 0);
        assert_eq!(stats.shards.len(), 3);
        assert_eq!(stats.shards[0].state, ShardState::Retired);
        assert!(stats.shards[0].superseded);
        assert_eq!(
            stats.shards[2].origin,
            crate::stats::ShardOrigin::Respawn { replaces: 0 }
        );
        assert_eq!(stats.shards[2].state, ShardState::Online);
        assert!(
            stats.shards[2].startup_runs >= 1,
            "replacement must pass the startup gate"
        );
        assert_eq!(stats.health(), crate::stats::PoolHealth::Healthy);
        // The journal tells the story: spawns, the alarm cascade, the
        // retirement and the respawn.
        let kinds: Vec<_> = stats.journal.iter().map(|e| (e.shard, e.kind)).collect();
        assert!(kinds.contains(&(0, IncidentKind::Retire)));
        assert!(kinds.contains(&(2, IncidentKind::Respawn)));
        let respawn = stats
            .journal
            .iter()
            .find(|e| e.kind == IncidentKind::Respawn)
            .expect("respawn event");
        assert_eq!(respawn.detail, 0, "replaces shard 0");
    }

    #[test]
    fn spent_budget_still_surfaces_typed_exhaustion() {
        // Persistent faults kill the original shard *and* its
        // replacement; once the budget is spent the pool must fail
        // with the typed error, with both attempts in the journal.
        let dead = || ShardFault::Config(Box::new(dead_config()));
        let config = small_pool(1)
            .with_max_readmissions(0)
            .with_fault(FaultInjection {
                shard: 0,
                after_bytes: 0,
                fault: dead(),
                transient: false,
            })
            .with_fault(FaultInjection {
                shard: 1, // the replacement's index
                after_bytes: 0,
                fault: dead(),
                transient: false,
            })
            .with_respawn(RespawnPolicy::new(1, 1));
        let mut pool = EntropyPool::new(config).expect("pool");
        let mut sink = vec![0u8; 1 << 16];
        match pool.fill_bytes(&mut sink) {
            Err(PoolError::SourcesExhausted { .. }) => {}
            other => panic!("expected exhaustion, got {other:?}"),
        }
        let stats = pool.stats();
        assert_eq!(stats.respawns, 1);
        assert_eq!(stats.respawns_available, 0);
        assert_eq!(stats.health(), crate::stats::PoolHealth::Exhausted);
        let respawns = stats
            .journal
            .iter()
            .filter(|e| e.kind == IncidentKind::Respawn)
            .count();
        assert_eq!(respawns, 1);
        // Both shard 0 and replacement 1 record a retirement.
        for shard in [0usize, 1] {
            assert!(
                stats
                    .journal
                    .iter()
                    .any(|e| e.shard == shard && e.kind == IncidentKind::Retire),
                "no retire event for shard {shard}"
            );
        }
    }

    #[test]
    fn fault_may_target_replacement_indices_only_with_policy() {
        let fault = || FaultInjection {
            shard: 2,
            after_bytes: 0,
            fault: ShardFault::Config(Box::new(dead_config())),
            transient: false,
        };
        assert!(matches!(
            EntropyPool::new(small_pool(2).with_fault(fault())),
            Err(PoolError::InvalidConfig(_))
        ));
        assert!(EntropyPool::new(
            small_pool(2)
                .with_fault(fault())
                .with_respawn(RespawnPolicy::new(2, 1)),
        )
        .is_ok());
    }

    #[test]
    fn respawn_floor_is_validated() {
        for floor in [0usize, 3] {
            match EntropyPool::new(small_pool(2).with_respawn(RespawnPolicy::new(floor, 1))) {
                Err(PoolError::InvalidConfig(why)) => assert!(why.contains("floor")),
                other => panic!("floor {floor} accepted: {:?}", other.map(|_| ())),
            }
        }
    }

    #[test]
    fn source_mix_must_cover_every_shard() {
        let config = small_pool(2).with_sources(vec![SourceSpec::OsEntropy]);
        match EntropyPool::new(config) {
            Err(PoolError::InvalidConfig(why)) => assert!(why.contains("sources")),
            other => panic!("expected InvalidConfig, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn mixed_sources_serve_and_label_their_shards() {
        let trace =
            Arc::new(RecordedTrace::record(&TrngConfig::paper_k1(), 99, 4096).expect("capture"));
        let config = small_pool(4).with_sources(vec![
            SourceSpec::CarryChain,
            SourceSpec::DualOscillator(Box::new(DualOscConfig::betrusted_default())),
            SourceSpec::TraceReplay(trace),
            SourceSpec::OsEntropy,
        ]);
        let mut pool = EntropyPool::new(config).expect("pool");
        let online = pool.wait_online(Duration::from_secs(60)).expect("online");
        assert_eq!(online, 4, "all four backends must pass admission");
        let mut buf = [0u8; 1024];
        pool.fill_bytes(&mut buf).expect("fill");
        let stats = pool.stats();
        use trng_sources::SourceKind;
        let kinds: Vec<SourceKind> = stats.shards.iter().map(|s| s.source).collect();
        assert_eq!(
            kinds,
            [
                SourceKind::CarryChain,
                SourceKind::DualOscillator,
                SourceKind::TraceReplay,
                SourceKind::OsEntropy,
            ]
        );
        for s in &stats.shards {
            assert!(s.bytes_produced > 0, "shard {} contributed nothing", s.id);
            assert!(
                s.claimed_min_entropy > 0.0 && s.claimed_min_entropy <= 1.0,
                "shard {} claim {}",
                s.id,
                s.claimed_min_entropy
            );
        }
        // Seeded OS stand-in + simulated sources: the whole mix replays.
        let trace2 =
            Arc::new(RecordedTrace::record(&TrngConfig::paper_k1(), 99, 4096).expect("capture"));
        let config2 = small_pool(4).with_sources(vec![
            SourceSpec::CarryChain,
            SourceSpec::DualOscillator(Box::new(DualOscConfig::betrusted_default())),
            SourceSpec::TraceReplay(trace2),
            SourceSpec::OsEntropy,
        ]);
        let mut again = EntropyPool::new(config2).expect("pool");
        let mut buf2 = [0u8; 1024];
        again.fill_bytes(&mut buf2).expect("fill");
        assert_eq!(buf, buf2, "mixed-source replay must be byte-identical");
    }

    #[test]
    fn respawn_inherits_the_retirees_source_kind() {
        // Shard 1 (OS-backed) dies to a Stuck fault with no readmission
        // budget; its replacement must be OS-backed too, not the
        // carry-chain default.
        let fault = FaultInjection {
            shard: 1,
            after_bytes: 64,
            fault: ShardFault::Stuck,
            transient: false,
        };
        let config = small_pool(2)
            .with_sources(vec![SourceSpec::CarryChain, SourceSpec::OsEntropy])
            .with_fault(fault)
            .with_max_readmissions(0)
            .with_respawn(RespawnPolicy::new(2, 1));
        let mut pool = EntropyPool::new(config).expect("pool");
        let mut sink = vec![0u8; 8192];
        pool.fill_bytes(&mut sink).expect("respawn must heal");
        let stats = pool.stats();
        assert_eq!(stats.respawns, 1);
        assert_eq!(stats.shards.len(), 3);
        assert_eq!(stats.shards[1].state, ShardState::Retired);
        assert_eq!(
            stats.shards[2].source,
            trng_sources::SourceKind::OsEntropy,
            "replacement must run the retiree's backend"
        );
        assert_eq!(stats.shards[2].state, ShardState::Online);
    }

    #[test]
    fn noise_backend_knob_labels_carry_chain_shards() {
        use trng_fpga_sim::noise::NoiseBackend;
        let config = small_pool(2).with_noise_backend(NoiseBackend::Batched);
        let mut pool = EntropyPool::new(config).expect("pool");
        let mut buf = [0u8; 512];
        pool.fill_bytes(&mut buf).expect("fill");
        let stats = pool.stats();
        for s in &stats.shards {
            assert_eq!(
                s.noise_backend,
                NoiseBackend::Batched,
                "shard {} must run the batched engine",
                s.id
            );
            assert!(s.bytes_produced > 0);
        }
        // The default stays scalar-labelled and produces the pinned
        // replay stream, which the batched engine must diverge from
        // (statistically equivalent, not draw-identical).
        let mut scalar = EntropyPool::new(small_pool(2)).expect("pool");
        let mut pinned = [0u8; 512];
        scalar.fill_bytes(&mut pinned).expect("fill");
        assert!(scalar
            .stats()
            .shards
            .iter()
            .all(|s| s.noise_backend == NoiseBackend::Scalar));
        assert_ne!(buf, pinned);
    }

    #[test]
    fn toeplitz_conditioning_replays_and_diverges_on_seed() {
        let toeplitz =
            |seed| small_pool(2).with_conditioning(Conditioning::Toeplitz { ratio: 5, seed });
        let mut a = EntropyPool::new(toeplitz(1)).expect("pool");
        let mut b = EntropyPool::new(toeplitz(1)).expect("pool");
        let mut x = [0u8; 1024];
        let mut y = [0u8; 1024];
        a.fill_bytes(&mut x).expect("fill");
        b.fill_bytes(&mut y).expect("fill");
        assert_eq!(x, y, "Toeplitz streams must be seed-replayable");
        // A different matrix seed over the same raw stream diverges.
        let mut c = EntropyPool::new(toeplitz(2)).expect("pool");
        let mut z = [0u8; 1024];
        c.fill_bytes(&mut z).expect("fill");
        assert_ne!(x, z);
        let stats = a.stats();
        for s in &stats.shards {
            assert_eq!(s.conditioning, "toeplitz:5");
            assert_eq!(s.alarms, 0);
        }
    }

    #[test]
    fn toeplitz_misconfigurations_are_rejected() {
        let zero = small_pool(1).with_conditioning(Conditioning::Toeplitz { ratio: 0, seed: 1 });
        match EntropyPool::new(zero) {
            Err(PoolError::InvalidConfig(why)) => assert!(why.contains("ratio")),
            other => panic!("ratio 0 accepted: {:?}", other.map(|_| ())),
        }
        // 64-bit emission blocks require block_bytes % 8 == 0.
        let ragged = small_pool(1)
            .with_conditioning(Conditioning::Toeplitz { ratio: 5, seed: 1 })
            .with_block_bytes(60);
        match EntropyPool::new(ragged) {
            Err(PoolError::InvalidConfig(why)) => assert!(why.contains("block_bytes")),
            other => panic!("ragged block accepted: {:?}", other.map(|_| ())),
        }
        let composed_zero =
            small_pool(1).with_composed_extract(ComposedExtract::new(32, 9).with_ratio(0));
        match EntropyPool::new(composed_zero) {
            Err(PoolError::InvalidConfig(why)) => assert!(why.contains("ratio")),
            other => panic!("composed ratio 0 accepted: {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn composed_extract_replays_and_claims_conservatively() {
        let composed = || {
            small_pool(2)
                .with_conditioning(Conditioning::Raw)
                .with_composed_extract(ComposedExtract::new(32, 7))
        };
        let mut pool = EntropyPool::new(composed()).expect("pool");
        let mut stream = vec![0u8; 8192];
        pool.fill_bytes(&mut stream).expect("fill");
        let stats = pool.stats();
        assert_eq!(stats.bytes_delivered, 8192);
        assert_eq!(stats.total_alarms(), 0);
        let c = stats.composed.as_ref().expect("composed stats");
        // Raw carry-chain shards claim the paper's per-bit min-entropy;
        // the leftover-hash lemma at eps 2^-32 sizes that to ratio 5.
        assert_eq!(c.ratio, 5);
        assert_eq!(c.epsilon_log2, 32);
        assert!(c.input_claim_min_entropy > 0.0 && c.input_claim_min_entropy < 1.0);
        assert!(
            (c.claimed_min_entropy - 0.5).abs() < 0.01,
            "64-bit blocks at eps 2^-32 claim ~0.5/bit, got {}",
            c.claimed_min_entropy
        );
        assert!(c.bytes_extracted >= 8192);
        // 8192 bytes clear the measurement floor; the MCV estimate of
        // the extracted stream must dominate the claim.
        assert!(
            c.claimed_min_entropy <= c.measured_min_entropy,
            "claimed {} > measured {}",
            c.claimed_min_entropy,
            c.measured_min_entropy
        );
        // The composed stream is a pure function of the configuration.
        let mut again = EntropyPool::new(composed()).expect("pool");
        let mut replay = vec![0u8; 8192];
        again.fill_bytes(&mut replay).expect("fill");
        assert_eq!(stream, replay, "composed stream must replay");
        // A different pool-level extractor seed diverges over the same
        // underlying shards.
        let mut other = EntropyPool::new(
            small_pool(2)
                .with_conditioning(Conditioning::Raw)
                .with_composed_extract(ComposedExtract::new(32, 8)),
        )
        .expect("pool");
        let mut diverged = vec![0u8; 8192];
        other.fill_bytes(&mut diverged).expect("fill");
        assert_ne!(stream, diverged);
    }

    #[test]
    fn conditioning_label_republishes_after_fault_rebuild() {
        // A transient stuck fault quarantines shard 0, forces a
        // rebuild and a fresh start-up gate; the readmitted shard must
        // still advertise its conditioning label.
        let fault = FaultInjection {
            shard: 0,
            after_bytes: 256,
            fault: ShardFault::Stuck,
            transient: true,
        };
        let config = small_pool(2)
            .with_conditioning(Conditioning::Toeplitz { ratio: 5, seed: 9 })
            .with_fault(fault);
        let mut pool = EntropyPool::new(config).expect("pool");
        let mut sink = vec![0u8; 8192];
        pool.fill_bytes(&mut sink).expect("fill");
        let stats = pool.stats();
        assert!(
            stats.shards[0].readmissions >= 1,
            "stuck fault must force a rebuild: {stats}"
        );
        for s in &stats.shards {
            assert_eq!(s.conditioning, "toeplitz:5", "shard {} label lost", s.id);
        }
    }

    #[test]
    fn composed_exhaustion_keeps_the_partial_prefix_contract() {
        let fault = FaultInjection {
            shard: 0,
            after_bytes: 4096,
            fault: ShardFault::Config(Box::new(dead_config())),
            transient: false,
        };
        let config = small_pool(1)
            .with_conditioning(Conditioning::Raw)
            .with_composed_extract(ComposedExtract::new(32, 3))
            .with_fault(fault)
            .with_max_readmissions(0);
        let mut pool = EntropyPool::new(config).expect("pool");
        let mut sink = vec![0xAAu8; 1 << 20];
        match pool.fill_bytes(&mut sink) {
            Err(PoolError::SourcesExhausted { filled }) => {
                assert!(filled > 0, "healthy prefix must still be extracted");
                assert!(filled < sink.len());
                // `filled` counts *composed* bytes and only that prefix
                // may have been written.
                assert!(
                    sink[filled..].iter().all(|&b| b == 0xAA),
                    "bytes written past the reported composed fill of {filled}"
                );
                assert_eq!(pool.stats().bytes_delivered, filled as u64);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn initial_spawns_are_journaled() {
        let pool = EntropyPool::new(small_pool(3)).expect("pool");
        let stats = pool.stats();
        let spawns: Vec<_> = stats
            .journal
            .iter()
            .filter(|e| e.kind == IncidentKind::Spawn)
            .map(|e| e.shard)
            .collect();
        assert_eq!(spawns, [0, 1, 2]);
        assert_eq!(stats.journal_recorded, 3);
    }
}
