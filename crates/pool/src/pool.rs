//! The entropy pool: N shards behind one byte-stream interface.
//!
//! Two interchangeable execution backends drive the same
//! [`Shard`](crate::shard) state machine:
//!
//! * **threaded** (default) — one worker thread per shard, each
//!   feeding a bounded lock-free SPSC ring; the pool handle drains
//!   the rings round-robin. Workers park briefly when their ring is
//!   full (backpressure), the consumer parks briefly when every ring
//!   is empty.
//! * **deterministic replay** — no threads: shards are stepped
//!   round-robin inside the consumer's call, so a given
//!   `(PoolConfig, seed)` always yields the byte-identical stream and
//!   [`PoolStats`] — including injected shard failures — which makes
//!   pool behaviour reproducible in tests.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use trng_core::trng::{BuildTrngError, TrngConfig};

use crate::ring;
use crate::shard::{mix_seed, Conditioning, FaultInjection, Shard};
use crate::stats::{PoolStats, ShardShared, ShardState};

/// How long a parked worker or consumer naps before re-checking.
const NAP: Duration = Duration::from_micros(200);

/// Configuration of an [`EntropyPool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Base TRNG design; shard `i` runs [`TrngConfig::for_shard`]`(i)`.
    pub base: TrngConfig,
    /// Number of shards (parallel TRNG instances).
    pub shards: usize,
    /// Pool-level simulation seed; per-shard seeds are derived.
    pub seed: u64,
    /// Conditioning between raw bits and pool bytes.
    pub conditioning: Conditioning,
    /// Per-shard ring capacity in bytes (threaded backend).
    pub ring_capacity: usize,
    /// Bytes per health-gated production block.
    pub block_bytes: usize,
    /// Alarms a shard may survive (each costs a quarantine plus a
    /// passed re-admission test) before it is retired outright.
    pub max_readmissions: u32,
    /// `true` selects the single-threaded deterministic replay
    /// backend.
    pub deterministic: bool,
    /// Optional scripted fault, for tests and failover drills.
    pub fault: Option<FaultInjection>,
}

impl PoolConfig {
    /// A pool of `shards` instances of `base` with default service
    /// parameters (design-rate XOR conditioning, 8 KiB rings, 256-byte
    /// blocks, 2 re-admissions, threaded backend).
    pub fn new(base: TrngConfig, shards: usize) -> Self {
        PoolConfig {
            base,
            shards,
            seed: 0x5EED,
            conditioning: Conditioning::DesignXor,
            ring_capacity: 8192,
            block_bytes: 256,
            max_readmissions: 2,
            deterministic: false,
            fault: None,
        }
    }

    /// Sets the pool seed, builder-style.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the conditioning stage, builder-style.
    pub fn with_conditioning(mut self, conditioning: Conditioning) -> Self {
        self.conditioning = conditioning;
        self
    }

    /// Sets the per-shard ring capacity, builder-style.
    pub fn with_ring_capacity(mut self, bytes: usize) -> Self {
        self.ring_capacity = bytes;
        self
    }

    /// Sets the production block size, builder-style.
    pub fn with_block_bytes(mut self, bytes: usize) -> Self {
        self.block_bytes = bytes.max(1);
        self
    }

    /// Sets the alarm budget, builder-style.
    pub fn with_max_readmissions(mut self, n: u32) -> Self {
        self.max_readmissions = n;
        self
    }

    /// Selects the deterministic replay backend, builder-style.
    pub fn deterministic(mut self, on: bool) -> Self {
        self.deterministic = on;
        self
    }

    /// Scripts a fault injection, builder-style.
    pub fn with_fault(mut self, fault: FaultInjection) -> Self {
        self.fault = Some(fault);
        self
    }
}

/// Why the pool cannot serve bytes.
#[derive(Debug)]
pub enum PoolError {
    /// The configuration requested zero shards.
    NoShards,
    /// The configuration is inconsistent (e.g. a fault scripted for a
    /// shard index the pool does not have).
    InvalidConfig(String),
    /// A shard's TRNG could not be built.
    Build {
        /// Index of the failing shard.
        shard: usize,
        /// The underlying construction error.
        error: BuildTrngError,
    },
    /// `try_fill_bytes` hit its deadline; `filled` healthy bytes were
    /// written to the front of the buffer before it expired.
    Timeout {
        /// Bytes delivered before the deadline.
        filled: usize,
    },
    /// Every shard is retired; `filled` healthy bytes were written
    /// before the pool ran dry. The delivered prefix is health-clean —
    /// total failure surfaces as this error, never as biased bytes.
    SourcesExhausted {
        /// Bytes delivered before exhaustion.
        filled: usize,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::NoShards => write!(f, "pool configured with zero shards"),
            PoolError::InvalidConfig(why) => write!(f, "invalid pool configuration: {why}"),
            PoolError::Build { shard, error } => {
                write!(f, "shard {shard} failed to build: {error}")
            }
            PoolError::Timeout { filled } => {
                write!(f, "timed out after {filled} bytes")
            }
            PoolError::SourcesExhausted { filled } => {
                write!(
                    f,
                    "all entropy sources retired after {filled} bytes were delivered"
                )
            }
        }
    }
}

impl Error for PoolError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PoolError::Build { error, .. } => Some(error),
            _ => None,
        }
    }
}

struct Threaded {
    consumers: Vec<ring::Consumer>,
    stop: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

struct Inline {
    shards: Vec<Shard>,
    queues: Vec<VecDeque<u8>>,
    block_bytes: usize,
}

enum Backend {
    Threaded(Threaded),
    Inline(Inline),
}

/// A sharded, health-gated entropy service.
///
/// # Examples
///
/// ```
/// use trng_core::trng::TrngConfig;
/// use trng_pool::{EntropyPool, PoolConfig};
///
/// // Deterministic replay backend: reproducible and thread-free.
/// let config = PoolConfig::new(TrngConfig::paper_k1(), 2).deterministic(true);
/// let mut pool = EntropyPool::new(config)?;
/// let mut key = [0u8; 32];
/// pool.fill_bytes(&mut key)?;
/// let stats = pool.stats();
/// assert_eq!(stats.bytes_delivered, 32);
/// assert_eq!(stats.total_alarms(), 0);
/// # Ok::<(), trng_pool::PoolError>(())
/// ```
pub struct EntropyPool {
    shared: Vec<Arc<ShardShared>>,
    backend: Backend,
    rr: usize,
    bytes_delivered: u64,
    fill_calls: u64,
    max_refill_wait: Duration,
}

impl fmt::Debug for EntropyPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EntropyPool")
            .field("shards", &self.shared.len())
            .field(
                "backend",
                &match self.backend {
                    Backend::Threaded(_) => "threaded",
                    Backend::Inline(_) => "deterministic",
                },
            )
            .field("bytes_delivered", &self.bytes_delivered)
            .finish()
    }
}

impl EntropyPool {
    /// Builds the pool and (in the threaded backend) spawns one worker
    /// per shard. Shards start in [`ShardState::Starting`] and only
    /// contribute after passing the start-up self-test; use
    /// [`wait_online`](EntropyPool::wait_online) to block until
    /// admission has settled.
    ///
    /// # Errors
    ///
    /// [`PoolError::NoShards`], [`PoolError::InvalidConfig`], or the
    /// first shard whose TRNG fails to build.
    pub fn new(config: PoolConfig) -> Result<Self, PoolError> {
        if config.shards == 0 {
            return Err(PoolError::NoShards);
        }
        if let Some(f) = &config.fault {
            if f.shard >= config.shards {
                return Err(PoolError::InvalidConfig(format!(
                    "fault targets shard {} but the pool has {}",
                    f.shard, config.shards
                )));
            }
        }
        let shared: Vec<Arc<ShardShared>> = (0..config.shards)
            .map(|_| Arc::new(ShardShared::default()))
            .collect();
        let mut shards = Vec::with_capacity(config.shards);
        for (i, shared_i) in shared.iter().enumerate() {
            let shard_config = config
                .base
                .for_shard(i as u32)
                .map_err(|error| PoolError::Build { shard: i, error })?;
            let fault = config.fault.clone().filter(|f| f.shard == i);
            let shard = Shard::new(
                i,
                shard_config,
                mix_seed(config.seed, i as u64),
                config.conditioning,
                fault,
                config.max_readmissions,
                Arc::clone(shared_i),
            )
            .map_err(|error| PoolError::Build { shard: i, error })?;
            shards.push(shard);
        }

        let backend = if config.deterministic {
            Backend::Inline(Inline {
                queues: shards.iter().map(|_| VecDeque::new()).collect(),
                shards,
                block_bytes: config.block_bytes,
            })
        } else {
            let stop = Arc::new(AtomicBool::new(false));
            let mut consumers = Vec::with_capacity(config.shards);
            let mut handles = Vec::with_capacity(config.shards);
            for shard in shards {
                let (producer, consumer) = ring::ring(config.ring_capacity);
                consumers.push(consumer);
                let stop = Arc::clone(&stop);
                let block_bytes = config.block_bytes;
                let name = format!("trng-pool-shard-{}", shard.id());
                let handle = std::thread::Builder::new()
                    .name(name)
                    .spawn(move || worker(shard, producer, stop, block_bytes))
                    .expect("spawn pool worker");
                handles.push(handle);
            }
            Backend::Threaded(Threaded {
                consumers,
                stop,
                handles,
            })
        };

        Ok(EntropyPool {
            shared,
            backend,
            rr: 0,
            bytes_delivered: 0,
            fill_calls: 0,
            max_refill_wait: Duration::ZERO,
        })
    }

    /// Number of shards (in any state).
    pub fn shard_count(&self) -> usize {
        self.shared.len()
    }

    /// Blocks until no shard is still [`ShardState::Starting`], or the
    /// deadline passes. Returns the number of online shards.
    ///
    /// # Errors
    ///
    /// [`PoolError::SourcesExhausted`] when every shard retired during
    /// admission, [`PoolError::Timeout`] on deadline.
    pub fn wait_online(&mut self, timeout: Duration) -> Result<usize, PoolError> {
        let deadline = Instant::now() + timeout;
        // The inline backend drives admission synchronously.
        if let Backend::Inline(inline) = &mut self.backend {
            for shard in &mut inline.shards {
                while shard.state() == ShardState::Starting {
                    shard.recover();
                }
            }
        }
        loop {
            let states: Vec<ShardState> = self.shared.iter().map(|s| s.state()).collect();
            if states.iter().all(|&s| s == ShardState::Retired) {
                return Err(PoolError::SourcesExhausted { filled: 0 });
            }
            if states.iter().all(|&s| s != ShardState::Starting) {
                return Ok(states.iter().filter(|&&s| s == ShardState::Online).count());
            }
            if Instant::now() >= deadline {
                return Err(PoolError::Timeout { filled: 0 });
            }
            std::thread::sleep(NAP);
        }
    }

    /// Fills `dest` with health-gated pool bytes, blocking as long as
    /// it takes (or until every source is gone).
    ///
    /// # Errors
    ///
    /// [`PoolError::SourcesExhausted`] once every shard is retired.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), PoolError> {
        self.fill(dest, None)
    }

    /// Fills `dest`, giving up at `timeout`. On error, the reported
    /// number of bytes at the front of `dest` are valid healthy bytes.
    ///
    /// The deterministic replay backend never waits, so the timeout is
    /// only meaningful for the threaded backend.
    ///
    /// # Errors
    ///
    /// [`PoolError::Timeout`] on deadline,
    /// [`PoolError::SourcesExhausted`] once every shard is retired.
    pub fn try_fill_bytes(&mut self, dest: &mut [u8], timeout: Duration) -> Result<(), PoolError> {
        let deadline = Instant::now() + timeout;
        self.fill(dest, Some(deadline))
    }

    fn fill(&mut self, dest: &mut [u8], deadline: Option<Instant>) -> Result<(), PoolError> {
        self.fill_calls += 1;
        let result = match &mut self.backend {
            Backend::Inline(inline) => Self::fill_inline(inline, &mut self.rr, dest),
            Backend::Threaded(threaded) => Self::fill_threaded(
                threaded,
                &self.shared,
                &mut self.rr,
                &mut self.max_refill_wait,
                dest,
                deadline,
            ),
        };
        match &result {
            Ok(()) => self.bytes_delivered += dest.len() as u64,
            Err(PoolError::Timeout { filled } | PoolError::SourcesExhausted { filled }) => {
                self.bytes_delivered += *filled as u64;
            }
            Err(_) => {}
        }
        result
    }

    fn fill_threaded(
        threaded: &mut Threaded,
        shared: &[Arc<ShardShared>],
        rr: &mut usize,
        max_refill_wait: &mut Duration,
        dest: &mut [u8],
        deadline: Option<Instant>,
    ) -> Result<(), PoolError> {
        let n = threaded.consumers.len();
        let mut filled = 0usize;
        let mut waited = Duration::ZERO;
        while filled < dest.len() {
            // Read states *before* the drain sweep: workers that were
            // already retired then cannot add bytes afterwards, so an
            // empty sweep plus all-retired is conclusive.
            let all_retired = shared.iter().all(|s| s.state() == ShardState::Retired);
            let mut got = 0usize;
            for k in 0..n {
                let idx = (*rr + k) % n;
                got += threaded.consumers[idx].pop(&mut dest[filled + got..]);
                if filled + got == dest.len() {
                    break;
                }
            }
            *rr = (*rr + 1) % n;
            filled += got;
            if got == 0 {
                if all_retired {
                    *max_refill_wait = (*max_refill_wait).max(waited);
                    return Err(PoolError::SourcesExhausted { filled });
                }
                if let Some(deadline) = deadline {
                    if Instant::now() >= deadline {
                        *max_refill_wait = (*max_refill_wait).max(waited);
                        return Err(PoolError::Timeout { filled });
                    }
                }
                std::thread::sleep(NAP);
                waited += NAP;
            }
        }
        *max_refill_wait = (*max_refill_wait).max(waited);
        Ok(())
    }

    fn fill_inline(inline: &mut Inline, rr: &mut usize, dest: &mut [u8]) -> Result<(), PoolError> {
        let n = inline.shards.len();
        let mut filled = 0usize;
        let mut block = Vec::with_capacity(inline.block_bytes);
        while filled < dest.len() {
            let mut progressed = false;
            for k in 0..n {
                let i = (*rr + k) % n;
                if !inline.queues[i].is_empty() {
                    while filled < dest.len() {
                        match inline.queues[i].pop_front() {
                            Some(b) => {
                                dest[filled] = b;
                                filled += 1;
                            }
                            None => break,
                        }
                    }
                    *rr = (i + 1) % n;
                    progressed = true;
                    break;
                }
                match inline.shards[i].state() {
                    ShardState::Online => {
                        if inline.shards[i].produce_block(&mut block, inline.block_bytes) {
                            inline.queues[i].extend(block.drain(..));
                        }
                        progressed = true;
                        break;
                    }
                    ShardState::Starting | ShardState::Quarantined => {
                        inline.shards[i].recover();
                        progressed = true;
                        break;
                    }
                    ShardState::Retired => {}
                }
            }
            if !progressed {
                return Err(PoolError::SourcesExhausted { filled });
            }
        }
        Ok(())
    }

    /// Snapshots per-shard lifecycle state and pool-level counters.
    pub fn stats(&self) -> PoolStats {
        if let Backend::Threaded(threaded) = &self.backend {
            for (shared, consumer) in self.shared.iter().zip(&threaded.consumers) {
                shared.set_ring_high_water(consumer.high_water());
            }
        }
        PoolStats {
            shards: self
                .shared
                .iter()
                .enumerate()
                .map(|(i, s)| s.snapshot(i))
                .collect(),
            bytes_delivered: self.bytes_delivered,
            fill_calls: self.fill_calls,
            max_refill_wait: self.max_refill_wait,
        }
    }
}

impl Drop for EntropyPool {
    fn drop(&mut self) {
        if let Backend::Threaded(threaded) = &mut self.backend {
            threaded.stop.store(true, Ordering::Release);
            for handle in threaded.handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

/// Worker-thread body: drive one shard's lifecycle, pushing healthy
/// blocks into its ring with backpressure.
fn worker(mut shard: Shard, producer: ring::Producer, stop: Arc<AtomicBool>, block_bytes: usize) {
    let mut pending: Vec<u8> = Vec::new();
    let mut off = 0usize;
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        if off < pending.len() {
            off += producer.push(&pending[off..]);
            if off < pending.len() {
                // Ring full: the consumer is behind. Park briefly.
                std::thread::sleep(NAP);
                continue;
            }
        }
        match shard.state() {
            ShardState::Online => {
                if shard.produce_block(&mut pending, block_bytes) {
                    off = 0;
                } else {
                    // Alarm: the block was discarded inside the shard.
                    pending.clear();
                    off = 0;
                }
            }
            ShardState::Starting | ShardState::Quarantined => shard.recover(),
            ShardState::Retired => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardFault;
    use trng_core::trng::TrngConfig;
    use trng_model::params::{DesignParams, PlatformParams};

    fn dead_config() -> TrngConfig {
        let mut config = TrngConfig::ideal();
        config.platform = PlatformParams::new(480.0, 17.0, 0.05).expect("valid");
        config.design = DesignParams {
            k: 4,
            n_a: 1,
            np: 1,
            f_clk_hz: (1e12f64 / (21.0 * 480.0)).round() as u64,
            ..DesignParams::paper_k4()
        };
        config
    }

    fn small_pool(shards: usize) -> PoolConfig {
        PoolConfig::new(TrngConfig::paper_k1(), shards)
            .deterministic(true)
            .with_block_bytes(64)
            .with_seed(2015)
    }

    #[test]
    fn replay_mode_is_byte_identical() {
        let mut a = EntropyPool::new(small_pool(2)).expect("pool");
        let mut b = EntropyPool::new(small_pool(2)).expect("pool");
        let mut x = [0u8; 1024];
        let mut y = [0u8; 1024];
        a.fill_bytes(&mut x).expect("fill");
        b.fill_bytes(&mut y).expect("fill");
        assert_eq!(x, y);
        assert_eq!(a.stats(), b.stats());
        // A different pool seed diverges.
        let mut c = EntropyPool::new(small_pool(2).with_seed(2016)).expect("pool");
        let mut z = [0u8; 1024];
        c.fill_bytes(&mut z).expect("fill");
        assert_ne!(x, z);
    }

    #[test]
    fn replay_mode_interleaves_all_shards() {
        let mut pool = EntropyPool::new(small_pool(3)).expect("pool");
        let online = pool.wait_online(Duration::from_secs(30)).expect("online");
        assert_eq!(online, 3);
        let mut buf = [0u8; 512];
        pool.fill_bytes(&mut buf).expect("fill");
        let stats = pool.stats();
        assert_eq!(stats.bytes_delivered, 512);
        assert_eq!(stats.fill_calls, 1);
        for s in &stats.shards {
            assert!(s.bytes_produced > 0, "shard {} contributed nothing", s.id);
            assert_eq!(s.state, ShardState::Online);
            assert_eq!(s.alarms, 0);
        }
    }

    #[test]
    fn threaded_pool_serves_and_reports() {
        let config = PoolConfig::new(TrngConfig::paper_k1(), 2)
            .with_block_bytes(64)
            .with_seed(77);
        let mut pool = EntropyPool::new(config).expect("pool");
        let online = pool.wait_online(Duration::from_secs(60)).expect("online");
        assert_eq!(online, 2);
        let mut buf = [0u8; 2048];
        pool.fill_bytes(&mut buf).expect("fill");
        // 2048 zero bytes would mean the pool is broken (p ~ 2^-16384).
        assert!(buf.iter().any(|&b| b != 0));
        let stats = pool.stats();
        assert_eq!(stats.bytes_delivered, 2048);
        assert_eq!(stats.total_alarms(), 0);
        assert!(stats.shards.iter().any(|s| s.ring_high_water > 0));
        assert!(stats.sim_throughput_bps() > 0.0);
    }

    #[test]
    fn threaded_timeout_reports_partial_fill() {
        let config = PoolConfig::new(TrngConfig::paper_k1(), 1).with_seed(3);
        let mut pool = EntropyPool::new(config).expect("pool");
        pool.wait_online(Duration::from_secs(60)).expect("online");
        // The simulator produces a few KiB/s of np=7 bytes; 4 MiB in
        // 50 ms is impossible, so the deadline must fire.
        let mut huge = vec![0u8; 4 << 20];
        match pool.try_fill_bytes(&mut huge, Duration::from_millis(50)) {
            Err(PoolError::Timeout { filled }) => {
                assert!(filled < huge.len());
                assert_eq!(pool.stats().bytes_delivered, filled as u64);
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn timeout_partial_fill_touches_only_the_reported_prefix() {
        // Raw conditioning so the shard produces bytes fast enough for
        // several partial fills within the test budget.
        let config = PoolConfig::new(TrngConfig::paper_k1(), 1)
            .with_conditioning(Conditioning::Raw)
            .with_seed(11);
        let mut pool = EntropyPool::new(config).expect("pool");
        pool.wait_online(Duration::from_secs(60)).expect("online");
        // Repeated deadline-bounded fills into a sentinel-patterned
        // buffer: each call may only write the prefix it reports, and
        // `bytes_delivered` must account for exactly the sum.
        let mut total = 0u64;
        let mut timeouts = 0u32;
        for _ in 0..4 {
            let mut buf = vec![0xAAu8; 1 << 20];
            match pool.try_fill_bytes(&mut buf, Duration::from_millis(80)) {
                Ok(()) => total += buf.len() as u64,
                Err(PoolError::Timeout { filled }) => {
                    timeouts += 1;
                    assert!(filled < buf.len());
                    // Everything past the reported prefix is untouched.
                    assert!(
                        buf[filled..].iter().all(|&b| b == 0xAA),
                        "bytes written past the reported fill of {filled}"
                    );
                    total += filled as u64;
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        // The simulator cannot produce 1 MiB in 80 ms; every call must
        // have timed out, and the accounting must balance.
        assert_eq!(timeouts, 4);
        assert_eq!(pool.stats().bytes_delivered, total);
        assert!(total > 0, "no bytes at all in 4 x 80 ms of raw serving");
    }

    #[test]
    fn exhaustion_is_a_typed_error_not_biased_bytes() {
        let fault = FaultInjection {
            shard: 0,
            after_bytes: 256,
            fault: ShardFault::Config(Box::new(dead_config())),
            transient: false, // persistent: re-admission fails, shard retires
        };
        let config = small_pool(1).with_fault(fault).with_max_readmissions(1);
        let mut pool = EntropyPool::new(config).expect("pool");
        let mut sink = vec![0u8; 1 << 20];
        let err = pool.fill_bytes(&mut sink).expect_err("must run dry");
        match err {
            PoolError::SourcesExhausted { filled } => {
                assert!(filled >= 256, "clean prefix {filled}");
                assert!(filled < sink.len());
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
        let stats = pool.stats();
        assert_eq!(stats.shards[0].state, ShardState::Retired);
        assert_eq!(stats.shards[0].alarms, 1);
        assert_eq!(stats.shards[0].readmissions, 0);
    }

    #[test]
    fn zero_shards_is_rejected() {
        match EntropyPool::new(PoolConfig::new(TrngConfig::paper_k1(), 0)) {
            Err(PoolError::NoShards) => {}
            other => panic!("expected NoShards, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn out_of_range_fault_is_rejected() {
        let fault = FaultInjection {
            shard: 5,
            after_bytes: 0,
            fault: ShardFault::Config(Box::new(dead_config())),
            transient: true,
        };
        match EntropyPool::new(small_pool(2).with_fault(fault)) {
            Err(PoolError::InvalidConfig(why)) => assert!(why.contains("shard 5")),
            other => panic!("expected InvalidConfig, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn build_errors_carry_the_shard_index() {
        let mut base = TrngConfig::paper_k1();
        base.start_column = 5; // odd column: no carry chain anywhere
        match EntropyPool::new(PoolConfig::new(base, 2)) {
            Err(PoolError::Build { shard, .. }) => assert_eq!(shard, 0),
            other => panic!("expected Build, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn error_display_is_informative() {
        assert!(PoolError::NoShards.to_string().contains("zero shards"));
        assert!(PoolError::Timeout { filled: 3 }.to_string().contains('3'));
        assert!(PoolError::SourcesExhausted { filled: 9 }
            .to_string()
            .contains("retired"));
    }
}
