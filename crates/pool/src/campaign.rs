//! Compiling [`Scenario`]s into the pool's fault schedule.
//!
//! A [`Scenario`] speaks in
//! simulated *time* — "at 2 ms the attacker switches on injection
//! locking" — while the pool's [`FaultInjection`] schedule speaks in
//! healthy *bytes produced per shard*. This module is the bridge:
//! [`onset_bytes`] converts a scenario onset into the byte offset at
//! which a shard running the given conditioning reaches that simulated
//! time, and [`compile_campaign`] maps every scenario phase onto every
//! target shard as a [`ShardFault::Env`] injection.
//!
//! The conversion is exact for the fixed-rate conditioners: one output
//! bit consumes `r` raw samples of `tA` each, so one byte spans
//! `8 · r · tA` of simulated time. Von Neumann extraction is
//! variable-rate; its *expected* consumption of 4 raw bits per output
//! bit is used, making onsets approximate (the adversarial soak only
//! runs Von Neumann rows where exact onset alignment is not asserted).

use trng_fpga_sim::scenario::Scenario;
use trng_fpga_sim::time::Ps;
use trng_model::params::DesignParams;

use crate::shard::{Conditioning, FaultInjection, ShardFault};

/// Expected raw bits consumed per conditioned output bit.
fn raw_bits_per_output(conditioning: Conditioning, design: &DesignParams) -> f64 {
    match conditioning {
        Conditioning::DesignXor => f64::from(design.np),
        Conditioning::Xor(r) => f64::from(r),
        // Von Neumann keeps one bit per accepted pair and accepts a
        // pair with probability 1/2 for a fair source: 4 raw bits per
        // output bit in expectation.
        Conditioning::VonNeumann => 4.0,
        Conditioning::Raw => 1.0,
        // The streaming Toeplitz block consumes ratio * 64 raw bits
        // per 64-bit output word.
        Conditioning::Toeplitz { ratio, .. } => f64::from(ratio),
    }
}

/// Healthy bytes a shard has produced by simulated time `onset`.
///
/// Each raw sample takes one accumulation interval `tA`, and one output
/// byte consumes `8 · r` raw samples where `r` is the conditioning
/// rate. Fractional bytes round *down*: the fault fires at the first
/// whole byte at-or-after the onset, never before it.
///
/// # Examples
///
/// ```
/// use trng_fpga_sim::time::Ps;
/// use trng_model::params::DesignParams;
/// use trng_pool::{onset_bytes, Conditioning};
///
/// let design = DesignParams::paper_k1(); // tA = 10 ns, np = 7
/// // One DesignXor byte spans 8 * 7 * 10 ns = 560 ns.
/// assert_eq!(onset_bytes(Ps::from_ns(560.0), Conditioning::DesignXor, &design), 1);
/// assert_eq!(onset_bytes(Ps::from_ms(2.0), Conditioning::Raw, &design), 25_000);
/// ```
pub fn onset_bytes(onset: Ps, conditioning: Conditioning, design: &DesignParams) -> u64 {
    let byte_span_ps = 8.0 * raw_bits_per_output(conditioning, design) * design.t_a_ps();
    (onset.as_ps() / byte_span_ps).floor() as u64
}

/// Compiles a scenario into the pool's fault schedule.
///
/// Every phase of `scenario` becomes one [`ShardFault::Env`] injection
/// per shard in `targets`, fired once that shard has produced the
/// phase's [`onset_bytes`]. Later phases escalate: the shard layer
/// applies a ripe environment fault even while an earlier one is still
/// active, so multi-phase campaigns (e.g. an amplitude ramp) play out
/// in order.
///
/// `transient` is forwarded to every injection: `true` models a
/// disturbance that is gone by the time a quarantined shard re-runs its
/// admission test, `false` a persistent condition that retires it.
pub fn compile_campaign(
    scenario: &Scenario,
    conditioning: Conditioning,
    design: &DesignParams,
    targets: &[usize],
    transient: bool,
) -> Vec<FaultInjection> {
    scenario
        .phases
        .iter()
        .flat_map(|phase| {
            targets.iter().map(move |&shard| FaultInjection {
                shard,
                after_bytes: onset_bytes(phase.onset, conditioning, design),
                fault: ShardFault::Env(phase.env.clone()),
                transient,
            })
        })
        .collect()
}

/// Compiles a common-mode scenario against *every* shard of a pool.
///
/// Shorthand for [`compile_campaign`] with `targets = 0..shards` — the
/// shape a shared environmental disturbance (e.g.
/// [`Scenario::shared_supply_tone`]) actually has: one supply rail, one
/// tone, every oscillator on the die modulated in phase. This is the
/// schedule the cross-shard [`CoherenceDetector`](crate::coherence)
/// exists to catch.
pub fn compile_common_mode(
    scenario: &Scenario,
    conditioning: Conditioning,
    design: &DesignParams,
    shards: usize,
    transient: bool,
) -> Vec<FaultInjection> {
    let targets: Vec<usize> = (0..shards).collect();
    compile_campaign(scenario, conditioning, design, &targets, transient)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn onset_conversion_matches_the_conditioning_rate() {
        let design = DesignParams::paper_k1(); // tA = 10 ns, np = 7
        let onset = Ps::from_ms(2.0);
        assert_eq!(onset_bytes(onset, Conditioning::DesignXor, &design), 3571);
        assert_eq!(onset_bytes(onset, Conditioning::Xor(7), &design), 3571);
        assert_eq!(onset_bytes(onset, Conditioning::Xor(1), &design), 25_000);
        assert_eq!(onset_bytes(onset, Conditioning::VonNeumann, &design), 6250);
        assert_eq!(onset_bytes(onset, Conditioning::Raw, &design), 25_000);
    }

    #[test]
    fn onset_rounds_down_so_faults_never_fire_early() {
        let design = DesignParams::paper_k1();
        // 1.5 DesignXor bytes of simulated time: the fault must wait
        // for the first whole byte, i.e. fire after byte 1.
        let onset = Ps::from_ns(560.0 * 1.5);
        assert_eq!(onset_bytes(onset, Conditioning::DesignXor, &design), 1);
        assert_eq!(onset_bytes(Ps::ZERO, Conditioning::Raw, &design), 0);
    }

    #[test]
    fn campaign_compiles_each_phase_for_each_target() {
        let design = DesignParams::paper_k1();
        let scenario = Scenario::supply_ramp(Ps::from_ms(1.0), 5e6, 0.04, 3, Ps::from_ms(0.5));
        let faults = compile_campaign(&scenario, Conditioning::Raw, &design, &[0, 2], true);
        assert_eq!(faults.len(), 6, "3 phases x 2 targets");
        // Phase onsets map to escalating byte offsets per target.
        let for_shard = |id: usize| {
            faults
                .iter()
                .filter(|f| f.shard == id)
                .map(|f| f.after_bytes)
                .collect::<Vec<_>>()
        };
        assert_eq!(for_shard(0), [12_500, 18_750, 25_000]);
        assert_eq!(for_shard(0), for_shard(2));
        assert!(faults.iter().all(|f| f.transient));
        assert!(faults.iter().all(|f| matches!(f.fault, ShardFault::Env(_))));
        // The compiled environments carry the escalating amplitudes.
        let amplitude = |f: &FaultInjection| match &f.fault {
            ShardFault::Env(env) => env.global.as_ref().expect("tone").tones[0].amplitude_rel,
            _ => unreachable!(),
        };
        let shard0: Vec<_> = faults.iter().filter(|f| f.shard == 0).collect();
        assert!(amplitude(shard0[0]) < amplitude(shard0[2]));
    }

    #[test]
    fn common_mode_targets_every_shard_identically() {
        let design = DesignParams::paper_k1();
        let scenario = Scenario::shared_supply_tone(Ps::from_us(300.0), 5e6, 0.004);
        let faults = compile_common_mode(&scenario, Conditioning::DesignXor, &design, 3, false);
        assert_eq!(faults.len(), 3, "one phase x 3 shards");
        let shards: Vec<usize> = faults.iter().map(|f| f.shard).collect();
        assert_eq!(shards, [0, 1, 2]);
        // The common mode is exactly that: same onset, same fault, on
        // every shard.
        assert!(faults
            .iter()
            .all(|f| f.after_bytes == faults[0].after_bytes));
        let fault_dbg = |f: &FaultInjection| format!("{:?}", f.fault);
        assert!(faults.iter().all(|f| fault_dbg(f) == fault_dbg(&faults[0])));
        let manual = compile_campaign(
            &scenario,
            Conditioning::DesignXor,
            &design,
            &[0, 1, 2],
            false,
        );
        assert_eq!(format!("{faults:?}"), format!("{manual:?}"));
    }
}
