//! A tiny JSON writer — the workspace's serialization shim.
//!
//! The optional `serde` derives were removed from the workspace; the
//! only serialization consumer left is the bench harness, which
//! writes its reports through this module. The writer covers exactly
//! the JSON subset we emit: objects, arrays, strings, numbers, bools
//! and null, with deterministic field order (insertion order).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number. Non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number value.
    pub fn num(x: impl Into<f64>) -> Json {
        Json::Num(x.into())
    }

    /// Builds a number value from a `u64` counter. Counters above
    /// 2^53 lose precision (JSON numbers are doubles); every counter
    /// this workspace serializes is far below that.
    pub fn u64(x: u64) -> Json {
        Json::Num(x as f64)
    }

    /// Looks up a key in an object; `None` for missing keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

/// Compact serialization — `json.to_string()` yields one-line JSON.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_nested_structures_compactly() {
        let v = Json::obj(vec![
            ("name", Json::str("bench")),
            ("n", Json::num(3)),
            ("ratio", Json::num(0.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::Arr(vec![Json::num(1), Json::num(2)])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"bench","n":3,"ratio":0.5,"ok":true,"none":null,"xs":[1,2]}"#
        );
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = Json::obj(vec![
            ("count", Json::u64(42)),
            ("name", Json::str("pool")),
            ("xs", Json::Arr(vec![Json::num(1)])),
        ]);
        assert_eq!(v.get("count").and_then(Json::as_f64), Some(42.0));
        assert_eq!(v.get("name").and_then(Json::as_str), Some("pool"));
        assert_eq!(
            v.get("xs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("count").is_none());
        assert!(Json::str("x").as_f64().is_none());
        assert!(Json::num(1).as_str().is_none());
        assert!(Json::num(1).as_arr().is_none());
    }

    #[test]
    fn escapes_strings() {
        let v = Json::str("a\"b\\c\nd\te\u{1}");
        assert_eq!(v.to_string(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::num(f64::NAN).to_string(), "null");
        assert_eq!(Json::num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn pretty_printing_is_stable() {
        let v = Json::obj(vec![("a", Json::Arr(vec![Json::num(1)]))]);
        assert_eq!(v.to_string_pretty(), "{\n  \"a\": [\n    1\n  ]\n}\n");
    }

    #[test]
    fn empty_containers_stay_compact() {
        assert_eq!(Json::Arr(vec![]).to_string_pretty(), "[]\n");
        assert_eq!(Json::Obj(vec![]).to_string_pretty(), "{}\n");
    }
}
