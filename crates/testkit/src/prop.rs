//! Minimal property-testing harness.
//!
//! A property is a closure over a seeded [`StdRng`]; the harness runs
//! it for `TRNG_PROP_CASES` independently-seeded cases (default 64)
//! and, on failure, reports the exact seed so the case replays with
//! no shrinking step:
//!
//! ```text
//! TRNG_PROP_SEED=0x3a2f… cargo test -p trng-model p1_is_a_probability
//! ```
//!
//! Unlike `proptest` there are no strategy combinators: tests draw
//! their inputs directly from the generator with [`Rng::gen_range`]
//! and the `vec_*` helpers below, which keeps the harness ~100 lines
//! and the dependency count zero.
//!
//! # Environment variables
//!
//! * `TRNG_PROP_CASES` — cases per property (default 64).
//! * `TRNG_PROP_SEED` — run exactly one case with this seed
//!   (hex with `0x` prefix, or decimal).

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::prng::{splitmix64, Rng, RngCore, SeedableRng, StdRng};

/// Number of cases each property runs, from `TRNG_PROP_CASES`.
pub fn cases() -> u64 {
    match std::env::var("TRNG_PROP_CASES") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("TRNG_PROP_CASES must be an integer, got {v:?}")),
        Err(_) => 64,
    }
}

fn parse_seed(v: &str) -> u64 {
    let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    parsed.unwrap_or_else(|_| panic!("TRNG_PROP_SEED must be a u64 (hex or decimal), got {v:?}"))
}

/// Derives the seed for case `index` of the named property.
///
/// Mixes a hash of the property name with the case index so every
/// property sees an independent, machine-independent seed sequence.
pub fn case_seed(name: &str, index: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix64(h ^ splitmix64(index.wrapping_add(0x9E37_79B9_7F4A_7C15)))
}

/// Runs `property` for [`cases`] seeded cases, reporting the failing
/// seed on panic.
///
/// A case that cannot satisfy its own preconditions should simply
/// `return` (counts as a pass), mirroring `prop_assume!` semantics.
pub fn check<F: Fn(&mut StdRng)>(name: &str, property: F) {
    if let Ok(v) = std::env::var("TRNG_PROP_SEED") {
        let seed = parse_seed(&v);
        let mut rng = StdRng::seed_from_u64(seed);
        property(&mut rng);
        return;
    }
    let n = cases();
    for index in 0..n {
        let seed = case_seed(name, index);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            property(&mut rng);
        }));
        if let Err(payload) = outcome {
            let cause: &str = if let Some(s) = payload.downcast_ref::<&str>() {
                s
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s
            } else {
                "<non-string panic payload>"
            };
            panic!(
                "property '{name}' failed at case {index}/{n} (seed {seed:#018x})\n\
                 replay: TRNG_PROP_SEED={seed:#x} cargo test {name}\n\
                 cause: {cause}"
            );
        }
    }
}

/// Declares `#[test]` functions that each run as a seeded property.
///
/// ```
/// trng_testkit::props! {
///     fn addition_commutes(rng) {
///         use trng_testkit::prng::Rng;
///         let (a, b) = (rng.gen::<u32>() / 2, rng.gen::<u32>() / 2);
///         assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! props {
    ($( $(#[$attr:meta])* fn $name:ident($rng:ident) $body:block )*) => {$(
        $(#[$attr])*
        #[test]
        fn $name() {
            $crate::prop::check(stringify!($name), |$rng: &mut $crate::prng::StdRng| $body);
        }
    )*};
}

/// A random `Vec<bool>` whose length is drawn from `len`.
pub fn vec_bool<R: RngCore>(rng: &mut R, len: Range<usize>) -> Vec<bool> {
    let n = rng.gen_range(len);
    (0..n).map(|_| rng.gen::<bool>()).collect()
}

/// A random `Vec<f64>` with values in `value` and length in `len`.
pub fn vec_f64<R: RngCore>(rng: &mut R, value: Range<f64>, len: Range<usize>) -> Vec<f64> {
    let n = rng.gen_range(len);
    (0..n).map(|_| rng.gen_range(value.clone())).collect()
}

/// Picks one element of a non-empty slice uniformly.
pub fn pick<T: Copy, R: RngCore>(rng: &mut R, options: &[T]) -> T {
    options[rng.gen_range(0..options.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_are_distinct_per_case_and_name() {
        let a: Vec<u64> = (0..64).map(|i| case_seed("alpha", i)).collect();
        let b: Vec<u64> = (0..64).map(|i| case_seed("beta", i)).collect();
        let mut all: Vec<u64> = a.iter().chain(&b).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 128, "seed collision");
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u64;
        check("counts_cases", |_| {});
        check("counts_cases2", |rng| {
            let _ = rng.next_u64();
        });
        // No direct hook into the closure count without interior
        // mutability; use a cell.
        let cell = std::cell::Cell::new(0u64);
        check("counts_cases3", |_| cell.set(cell.get() + 1));
        count += cell.get();
        assert_eq!(count, cases());
    }

    #[test]
    fn failing_property_reports_seed() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("always_fails", |_| panic!("boom"));
        }));
        let payload = result.expect_err("property must fail");
        let msg = payload
            .downcast_ref::<String>()
            .expect("formatted panic")
            .clone();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("TRNG_PROP_SEED=0x"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
        assert!(msg.contains("case 0/"), "{msg}");
    }

    #[test]
    fn helpers_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = vec_bool(&mut rng, 0..30);
            assert!(v.len() < 30);
            let f = vec_f64(&mut rng, -1.0..1.0, 1..10);
            assert!(!f.is_empty() && f.len() < 10);
            assert!(f.iter().all(|x| (-1.0..1.0).contains(x)));
            let p = pick(&mut rng, &[2, 4, 8]);
            assert!([2, 4, 8].contains(&p));
        }
    }

    props! {
        fn macro_declared_property_works(rng) {
            let x = rng.gen_range(0u32..100);
            assert!(x < 100);
        }
    }
}
