//! Micro-benchmark timer harness with a criterion-shaped API.
//!
//! Replaces `criterion` for the workspace's `harness = false` bench
//! targets: the call-site API (`Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! [`black_box`], [`criterion_group!`](crate::criterion_group),
//! [`criterion_main!`](crate::criterion_main)) is source-compatible
//! with the subset of criterion 0.5 this repository used.
//!
//! Each benchmark runs a wall-clock warmup, then takes N timed
//! samples (each a batch sized so one sample lasts ~2 ms) and reports
//! min / mean / median / p95 per-iteration times. Every group writes
//! a `BENCH_<group>.json` report via [`crate::json`].
//!
//! # Environment variables
//!
//! * `TRNG_BENCH_SAMPLES` — samples per benchmark (default 20,
//!   before any `sample_size` override in the bench source).
//! * `TRNG_BENCH_WARMUP_MS` — warmup duration (default 50).
//! * `TRNG_BENCH_SAMPLE_MS` — target duration of one sample batch
//!   (default 2).
//! * `TRNG_BENCH_OUT_DIR` — where `BENCH_*.json` files go
//!   (default: current directory).

use std::fmt::Display;
use std::time::{Duration, Instant};

use crate::json::Json;

/// An opaque value barrier preventing the optimizer from deleting a
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `<function>/<parameter>` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter (the group supplies the
    /// function name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements (bits, snippets, …) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Per-iteration timing statistics, in nanoseconds.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Fastest sample.
    pub min_ns: f64,
    /// Arithmetic mean of samples.
    pub mean_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// 95th-percentile sample.
    pub p95_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations batched inside each sample.
    pub iters_per_sample: u64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One finished benchmark: identifier, stats, optional throughput.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Group name.
    pub group: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Timing statistics.
    pub stats: Stats,
    /// Throughput declared for the group, if any.
    pub throughput: Option<Throughput>,
}

impl BenchRecord {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("name", Json::str(self.name.clone())),
            ("samples", Json::num(self.stats.samples as f64)),
            (
                "iters_per_sample",
                Json::num(self.stats.iters_per_sample as f64),
            ),
            ("min_ns", Json::num(self.stats.min_ns)),
            ("mean_ns", Json::num(self.stats.mean_ns)),
            ("median_ns", Json::num(self.stats.median_ns)),
            ("p95_ns", Json::num(self.stats.p95_ns)),
        ];
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                pairs.push(("elements_per_iter", Json::num(n as f64)));
                pairs.push((
                    "elements_per_sec",
                    Json::num(n as f64 * 1e9 / self.stats.median_ns),
                ));
            }
            Some(Throughput::Bytes(n)) => {
                pairs.push(("bytes_per_iter", Json::num(n as f64)));
                pairs.push((
                    "bytes_per_sec",
                    Json::num(n as f64 * 1e9 / self.stats.median_ns),
                ));
            }
            None => {}
        }
        Json::obj(pairs)
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// The timing loop driver handed to each benchmark closure.
pub struct Bencher {
    sample_count: usize,
    stats: Option<Stats>,
}

impl Bencher {
    /// Times `routine`, batching iterations into samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warmup = Duration::from_millis(env_u64("TRNG_BENCH_WARMUP_MS", 50));
        let sample_target = Duration::from_millis(env_u64("TRNG_BENCH_SAMPLE_MS", 2));

        // Warmup: run until the warmup budget elapses, estimating the
        // per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= warmup {
                break;
            }
        }
        let est_ns = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;

        // Batch size: one sample should last roughly `sample_target`.
        let iters_per_sample =
            ((sample_target.as_nanos() as f64 / est_ns.max(0.5)).ceil() as u64).max(1);

        let mut samples_ns = Vec::with_capacity(self.sample_count);
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples_ns.push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        let mut sorted = samples_ns.clone();
        sorted.sort_by(f64::total_cmp);
        self.stats = Some(Stats {
            min_ns: sorted[0],
            mean_ns: samples_ns.iter().sum::<f64>() / samples_ns.len() as f64,
            median_ns: percentile(&sorted, 0.5),
            p95_ns: percentile(&sorted, 0.95),
            samples: samples_ns.len(),
            iters_per_sample,
        });
    }
}

/// A named collection of benchmarks sharing throughput settings;
/// writes `BENCH_<group>.json` on [`BenchmarkGroup::finish`].
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    records: Vec<BenchRecord>,
}

impl BenchmarkGroup<'_> {
    /// Declares how many units each iteration processes.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_count: self.sample_size,
            stats: None,
        };
        f(&mut bencher);
        self.record(id, bencher);
        self
    }

    /// Runs one benchmark against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_count: self.sample_size,
            stats: None,
        };
        f(&mut bencher, input);
        self.record(id, bencher);
        self
    }

    fn record(&mut self, id: BenchmarkId, bencher: Bencher) {
        let stats = bencher
            .stats
            .unwrap_or_else(|| panic!("benchmark {}/{} never called iter()", self.name, id.name));
        let record = BenchRecord {
            group: self.name.clone(),
            name: id.name,
            stats,
            throughput: self.throughput,
        };
        let tp = match record.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:.2} Melem/s", n as f64 * 1e3 / record.stats.median_ns)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:.2} MB/s", n as f64 * 1e3 / record.stats.median_ns)
            }
            None => String::new(),
        };
        println!(
            "bench {:<40} median {:>10}  p95 {:>10}{}",
            format!("{}/{}", record.group, record.name),
            fmt_ns(record.stats.median_ns),
            fmt_ns(record.stats.p95_ns),
            tp,
        );
        self.records.push(record);
    }

    /// Writes this group's `BENCH_<group>.json` report.
    pub fn finish(&mut self) {
        let records = std::mem::take(&mut self.records);
        self.criterion.write_group_report(&self.name, &records);
        self.criterion.results.extend(records);
    }
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        if !self.records.is_empty() {
            // finish() was never called; flush anyway.
            self.finish();
        }
    }
}

/// Top-level bench driver: owns results and writes JSON reports.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchRecord>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: env_u64("TRNG_BENCH_SAMPLES", 20) as usize,
            records: Vec::new(),
            criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark (its own one-entry group).
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        {
            let mut group = self.benchmark_group(name);
            group.bench_function(name, f);
            group.finish();
        }
        self
    }

    fn write_group_report(&self, group: &str, records: &[BenchRecord]) {
        if records.is_empty() {
            return;
        }
        let report = Json::obj(vec![
            ("group", Json::str(group)),
            (
                "benchmarks",
                Json::Arr(records.iter().map(BenchRecord::to_json).collect()),
            ),
        ]);
        let dir = std::env::var("TRNG_BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
        let safe: String = group
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let path = std::path::Path::new(&dir).join(format!("BENCH_{safe}.json"));
        if let Err(e) = std::fs::write(&path, report.to_string_pretty()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }

    /// Prints the closing summary. Called by
    /// [`criterion_main!`](crate::criterion_main).
    pub fn finalize(&mut self) {
        println!(
            "\n{} benchmarks complete ({} groups)",
            self.results.len(),
            {
                let mut groups: Vec<&str> = self.results.iter().map(|r| r.group.as_str()).collect();
                groups.dedup();
                groups.len()
            }
        );
    }
}

/// Declares a bench group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::bench::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::bench::Criterion::default();
            $( $group(&mut criterion); )+
            criterion.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Env vars are process-global; serialize the tests that set them.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn fast_env() {
        // Tests must not spend 50 ms per warmup.
        std::env::set_var("TRNG_BENCH_WARMUP_MS", "1");
        std::env::set_var("TRNG_BENCH_SAMPLE_MS", "1");
        std::env::set_var("TRNG_BENCH_SAMPLES", "5");
    }

    #[test]
    fn bencher_produces_sane_stats() {
        let _guard = ENV_LOCK.lock().unwrap();
        fast_env();
        let mut c = Criterion::default();
        std::env::set_var("TRNG_BENCH_OUT_DIR", std::env::temp_dir());
        {
            let mut group = c.benchmark_group("testkit_selftest");
            group.throughput(Throughput::Elements(100));
            group.bench_function("spin", |b| {
                b.iter(|| (0..100u64).map(black_box).sum::<u64>())
            });
            group.finish();
        }
        assert_eq!(c.results.len(), 1);
        let s = &c.results[0].stats;
        assert!(s.min_ns > 0.0);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.p95_ns);
        assert_eq!(s.samples, 5);
    }

    #[test]
    fn group_report_is_written_as_json() {
        let _guard = ENV_LOCK.lock().unwrap();
        fast_env();
        let dir = std::env::temp_dir().join("trng_testkit_bench_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("TRNG_BENCH_OUT_DIR", &dir);
        let mut c = Criterion::default();
        c.bench_function("report_smoke", |b| b.iter(|| black_box(1 + 1)));
        let path = dir.join("BENCH_report_smoke.json");
        let body = std::fs::read_to_string(&path).expect("report written");
        assert!(body.contains("\"group\": \"report_smoke\""), "{body}");
        assert!(body.contains("median_ns"), "{body}");
        std::env::remove_var("TRNG_BENCH_OUT_DIR");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).name, "f/32");
        assert_eq!(BenchmarkId::from_parameter("k1").name, "k1");
    }

    #[test]
    fn percentile_handles_small_samples() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert!(percentile(&[], 0.5).is_nan());
    }
}
