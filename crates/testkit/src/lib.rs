//! `trng-testkit` — hermetic, zero-dependency test infrastructure.
//!
//! Every crate in this workspace builds and tests **offline**: no
//! registry crates, no network, no non-determinism that cannot be
//! pinned by a seed. This crate supplies the three pieces of
//! infrastructure that external crates used to provide:
//!
//! * [`prng`] — a seedable xoshiro256++ generator plus the small
//!   `rand`-style trait surface ([`prng::Rng`], [`prng::RngCore`],
//!   [`prng::SeedableRng`]) the workspace consumes. Replaces the
//!   `rand` crate.
//! * [`prop`] — a minimal property-testing harness: seeded case
//!   generation, case count configurable via `TRNG_PROP_CASES`,
//!   failing-seed reporting and single-seed replay via
//!   `TRNG_PROP_SEED`. Replaces `proptest` (no shrinking by design —
//!   a failing seed reproduces the exact case).
//! * [`bench`](mod@bench) — a micro-benchmark timer harness (warmup, N samples,
//!   median/p95, JSON reports written to `BENCH_<group>.json`) with a
//!   criterion-shaped API. Replaces `criterion`.
//! * [`json`] — a tiny JSON writer used by the bench reports (the
//!   workspace's serialization shim; replaces the optional `serde`
//!   derives, which were removed).
//! * [`alloc_counter`] — a counting global allocator so tests can
//!   assert that hot paths are allocation-free in steady state.
//!
//! # Seeding policy
//!
//! All randomness in tests flows from explicit `u64` seeds through
//! [`prng::StdRng::seed_from_u64`](prng::SeedableRng::seed_from_u64). The property harness derives one
//! seed per case from the property name and case index, so runs are
//! reproducible across machines and parallel test threads.

pub mod alloc_counter;
pub mod bench;
pub mod json;
pub mod prng;
pub mod prop;
