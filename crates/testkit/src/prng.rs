//! Deterministic pseudo-random generation with a `rand`-style API.
//!
//! The workspace's only generator is [`Xoshiro256pp`]
//! (xoshiro256++ 1.0, Blackman & Vigna), exposed under the alias
//! [`StdRng`] so call sites read exactly like `rand 0.8` code:
//!
//! ```
//! use trng_testkit::prng::{Rng, SeedableRng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let x: f64 = rng.gen();
//! let b: bool = rng.gen();
//! let roll = rng.gen_range(1u8..=6);
//! assert!((0.0..1.0).contains(&x));
//! assert!((1..=6).contains(&roll));
//! # let _ = b;
//! ```
//!
//! The trait surface is the subset of `rand` this workspace actually
//! uses: [`RngCore`] (raw words and bytes), [`Rng`] (typed draws and
//! ranges, blanket-implemented for every `RngCore`), [`SeedableRng`]
//! (explicit 64-bit seeding plus best-effort process entropy) and the
//! [`CryptoRng`] marker.

use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};
use std::ops::{Range, RangeInclusive};

/// SplitMix64 finalizer: a high-quality 64-bit mixer.
///
/// Used to expand a single `u64` seed into full generator state and
/// to derive independent per-case seeds in the property harness.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Raw generator interface: 64-bit words down to bytes.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (top half of [`RngCore::next_u64`] by default).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }

    /// Fills `out` with consecutive [`RngCore::next_u64`] outputs.
    ///
    /// Bulk word generation for batch consumers (block Gaussian
    /// synthesis): `fill_u64s(&mut buf)` leaves the generator in
    /// exactly the state of `buf.len()` repeated `next_u64` calls, so
    /// a bulk stream can always be cross-checked against the scalar
    /// one.
    fn fill_u64s(&mut self, out: &mut [u64]) {
        for slot in out {
            *slot = self.next_u64();
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }

    fn fill_u64s(&mut self, out: &mut [u64]) {
        (**self).fill_u64s(out)
    }
}

/// Marker: the generator is suitable for cryptographic use.
///
/// Purely a documentation marker, as in `rand` — nothing in the
/// workspace dispatches on it.
pub trait CryptoRng {}

/// Explicit seeding.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire state derives from `seed`.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from best-effort process entropy.
    ///
    /// Use only for exploratory runs; tests and experiments must use
    /// [`SeedableRng::seed_from_u64`] for reproducibility.
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

/// Returns a best-effort non-deterministic 64-bit seed.
///
/// Mixes the standard library's per-process SipHash keys
/// ([`RandomState`]) with the wall clock. Not cryptographically
/// strong — it only has to make `from_entropy` runs differ.
pub fn entropy_seed() -> u64 {
    let mut h = RandomState::new().build_hasher();
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0);
    h.write_u64(nanos);
    splitmix64(h.finish())
}

/// xoshiro256++ 1.0 (Blackman & Vigna, 2019). Public domain algorithm.
///
/// 256 bits of state, period 2^256 − 1, passes BigCrush. This is the
/// workspace's [`StdRng`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

/// The workspace's default deterministic generator.
pub type StdRng = Xoshiro256pp;

impl Xoshiro256pp {
    /// Forks an independent generator, advancing this one.
    pub fn fork(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }
}

impl SeedableRng for Xoshiro256pp {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        // The outputs of distinct splitmix64 steps are never all zero.
        let mut x = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        Xoshiro256pp { s }
    }
}

impl RngCore for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Four independent xoshiro256++ lanes, interleaved round-robin, in
/// structure-of-arrays layout.
///
/// Bulk word generation for throughput-bound consumers (the block
/// Gaussian synthesiser): one scalar xoshiro stream is latency-bound
/// on its serial state update (~4–5 cycles per word), while four
/// side-by-side lanes give the compiler independent `u64x4` work it
/// can keep in vector registers. Output word `i` comes from lane
/// `i % 4`, and each lane is bit-for-bit an ordinary [`Xoshiro256pp`]
/// seeded with the matching element of the seed array — so the stream
/// is pinned by the scalar generator (see the tests).
#[derive(Debug, Clone)]
pub struct Xoshiro256ppX4 {
    /// `s[w][l]` is state word `w` of lane `l`.
    s: [[u64; 4]; 4],
}

impl Xoshiro256ppX4 {
    /// Builds four lanes, lane `l` seeded as
    /// `Xoshiro256pp::seed_from_u64(seeds[l])`.
    pub fn from_lane_seeds(seeds: [u64; 4]) -> Self {
        let mut s = [[0u64; 4]; 4];
        for (l, &seed) in seeds.iter().enumerate() {
            let lane = Xoshiro256pp::seed_from_u64(seed);
            for (w, word) in lane.s.iter().enumerate() {
                s[w][l] = *word;
            }
        }
        Xoshiro256ppX4 { s }
    }

    /// Derives the four lane seeds from one seed by successive
    /// [`splitmix64`] steps (the same expansion a single generator
    /// uses for its state words).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut seeds = [0u64; 4];
        for slot in &mut seeds {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *slot = splitmix64(x);
        }
        Self::from_lane_seeds(seeds)
    }

    /// Fills `out` with interleaved lane outputs: `out[i]` is the next
    /// word of lane `i % 4`. Any length is allowed (a trailing partial
    /// round advances only the lanes it reads), but the lane rotation
    /// restarts at lane 0 on every call, so continuity of the
    /// interleaved stream across calls holds when lengths are
    /// multiples of four.
    pub fn fill_u64s(&mut self, out: &mut [u64]) {
        let [mut s0, mut s1, mut s2, mut s3] = self.s;
        let mut chunks = out.chunks_exact_mut(4);
        for chunk in &mut chunks {
            for l in 0..4 {
                chunk[l] = s0[l]
                    .wrapping_add(s3[l])
                    .rotate_left(23)
                    .wrapping_add(s0[l]);
                let t = s1[l] << 17;
                s2[l] ^= s0[l];
                s3[l] ^= s1[l];
                s1[l] ^= s2[l];
                s0[l] ^= s3[l];
                s2[l] ^= t;
                s3[l] = s3[l].rotate_left(45);
            }
        }
        for (l, slot) in chunks.into_remainder().iter_mut().enumerate() {
            *slot = s0[l]
                .wrapping_add(s3[l])
                .rotate_left(23)
                .wrapping_add(s0[l]);
            let t = s1[l] << 17;
            s2[l] ^= s0[l];
            s3[l] ^= s1[l];
            s1[l] ^= s2[l];
            s0[l] ^= s3[l];
            s2[l] ^= t;
            s3[l] = s3[l].rotate_left(45);
        }
        self.s = [s0, s1, s2, s3];
    }
}

/// Types drawable uniformly from a generator via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniform value of `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with full 53-bit mantissa resolution.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24-bit resolution.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Draws a uniform integer in `[0, n)` without modulo bias
/// (Lemire's multiply-then-reject method).
#[inline]
pub fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "empty range");
    // 2^64 mod n: values below this threshold in the low word would
    // be over-represented and are rejected.
    let threshold = n.wrapping_neg() % n;
    loop {
        let m = (rng.next_u64() as u128) * (n as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64_below(rng, span + 1) as $t
            }
        }
    )*};
}
range_uint!(u8, u16, u32, u64, usize);

macro_rules! range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}
range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = <$t as Standard>::sample_standard(rng); // [0, 1)
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                // 53 (resp. 24) uniform bits scaled onto [0, 1].
                let u = (rng.next_u64() >> 11) as $t / (((1u64 << 53) - 1) as $t);
                lo + (hi - lo) * u
            }
        }
    )*};
}
range_float!(f64, f32);

/// Typed draws on top of [`RngCore`], `rand`-style.
///
/// Blanket-implemented for every `RngCore`, so `SimRng`, `TrngRng`
/// and [`StdRng`] all get `gen`, `gen_range` and `gen_bool` for free.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range` (`a..b` or `a..=b`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p.clamp(0.0, 1.0)
    }

    /// Fills the byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Module alias so `rand`-era paths like `rngs::StdRng` keep reading
/// naturally after a mechanical `rand::` → `trng_testkit::prng::`
/// substitution.
pub mod rngs {
    pub use super::Xoshiro256pp as StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_xoshiro256pp() {
        // State {1, 2, 3, 4} — first outputs of the reference C
        // implementation of xoshiro256++ 1.0.
        let mut rng = Xoshiro256pp { s: [1, 2, 3, 4] };
        let expected: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
        assert_eq!(xs.iter().zip(&zs).filter(|(x, z)| x == z).count(), 0);
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 20];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u64().to_le_bytes();
        let w1 = b.next_u64().to_le_bytes();
        let w2 = b.next_u64().to_le_bytes();
        assert_eq!(&buf[..8], &w0);
        assert_eq!(&buf[8..16], &w1);
        assert_eq!(&buf[16..], &w2[..4]);
    }

    #[test]
    fn fill_u64s_matches_repeated_next_u64() {
        // The bulk API is pinned to the scalar stream: same words, and
        // the generator lands in the same state afterwards.
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let mut bulk = StdRng::seed_from_u64(seed);
            let mut scalar = StdRng::seed_from_u64(seed);
            for len in [0usize, 1, 7, 64, 1000] {
                let mut buf = vec![0u64; len];
                bulk.fill_u64s(&mut buf);
                let reference: Vec<u64> = (0..len).map(|_| scalar.next_u64()).collect();
                assert_eq!(buf, reference, "seed {seed} len {len}");
            }
            assert_eq!(bulk, scalar, "state diverged after bulk fills");
        }
    }

    #[test]
    fn interleaved_lanes_match_scalar_generators() {
        // Each lane of the x4 generator is pinned to an ordinary
        // Xoshiro256pp with the matching seed, interleaved round-robin.
        let seeds = [3u64, 5, 7, 11];
        let mut x4 = Xoshiro256ppX4::from_lane_seeds(seeds);
        let mut lanes: Vec<StdRng> = seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect();
        let mut buf = vec![0u64; 64];
        x4.fill_u64s(&mut buf);
        // A second call continues the lane streams (length % 4 == 0).
        let mut buf2 = vec![0u64; 32];
        x4.fill_u64s(&mut buf2);
        buf.extend_from_slice(&buf2);
        for (i, &w) in buf.iter().enumerate() {
            assert_eq!(w, lanes[i % 4].next_u64(), "word {i}");
        }
    }

    #[test]
    fn interleaved_partial_round_reads_leading_lanes() {
        let mut x4 = Xoshiro256ppX4::from_lane_seeds([1, 2, 3, 4]);
        let mut l0 = StdRng::seed_from_u64(1);
        let mut l1 = StdRng::seed_from_u64(2);
        let mut buf = [0u64; 6];
        x4.fill_u64s(&mut buf);
        let _ = l0.next_u64();
        let _ = l1.next_u64();
        assert_eq!(buf[4], l0.next_u64(), "lane 0, word 2");
        assert_eq!(buf[5], l1.next_u64(), "lane 1, word 2");
    }

    #[test]
    fn fill_u64s_forwards_through_mut_references() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let mut via_ref = [0u64; 9];
        let mut direct = [0u64; 9];
        {
            let r: &mut StdRng = &mut a;
            fn indirect<R: RngCore>(mut rng: R, out: &mut [u64]) {
                rng.fill_u64s(out);
            }
            indirect(r, &mut via_ref);
        }
        b.fill_u64s(&mut direct);
        assert_eq!(via_ref, direct);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let a = rng.gen_range(10u32..20);
            assert!((10..20).contains(&a));
            let b = rng.gen_range(1u8..=6);
            assert!((1..=6).contains(&b));
            let c = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&c));
            let d = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&d));
            let e = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&e));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges_uniformly() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 6];
        let n = 60_000;
        for _ in 0..n {
            counts[rng.gen_range(0usize..6)] += 1;
        }
        for &c in &counts {
            // Expected 10_000, sd ~ 91; 6 sigma ~ 550.
            assert!((c as i64 - 10_000).abs() < 600, "counts {counts:?}");
        }
    }

    #[test]
    fn gen_bool_and_floats_are_calibrated() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let ones = (0..n).filter(|_| rng.gen_bool(0.25)).count() as f64 / n as f64;
        assert!((ones - 0.25).abs() < 0.01, "{ones}");
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "{mean}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn bool_draws_are_balanced() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 100_000;
        let ones = (0..n).filter(|_| rng.gen::<bool>()).count() as f64 / n as f64;
        assert!((ones - 0.5).abs() < 0.008, "{ones}");
    }

    #[test]
    fn fork_diverges_from_parent() {
        let mut parent = StdRng::seed_from_u64(9);
        let mut child = parent.fork();
        let p: Vec<u64> = (0..16).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..16).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    fn entropy_seeds_differ() {
        // Two draws in a row must not collide (they hash distinct
        // RandomState keys).
        assert_ne!(entropy_seed(), entropy_seed());
    }

    #[test]
    fn uniform_below_handles_edges() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(uniform_u64_below(&mut rng, 1), 0);
        for _ in 0..1000 {
            assert!(uniform_u64_below(&mut rng, 3) < 3);
        }
    }
}
