//! A counting global allocator for zero-allocation assertions.
//!
//! Hot paths in this workspace (the TRNG sampling pipeline) promise
//! steady-state freedom from heap traffic. That promise is only
//! enforceable if a test can observe allocations, so this module
//! provides a [`GlobalAlloc`] wrapper around the system allocator that
//! counts every `alloc` / `alloc_zeroed` / `realloc` call.
//!
//! Install it in a *dedicated* integration-test binary (the counter is
//! process-global, so unrelated concurrent tests would pollute it):
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator;
//!
//! let before = allocation_count();
//! hot_path();
//! assert_eq!(allocation_count() - before, 0);
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts allocation events.
///
/// Deallocations are not counted: the interesting signal for a
/// steady-state check is new heap traffic, and frees always pair with
/// a counted allocation anyway.
pub struct CountingAllocator;

/// Total allocation events (`alloc`, `alloc_zeroed`, `realloc`) since
/// process start. Only meaningful when [`CountingAllocator`] is
/// installed as the `#[global_allocator]`.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The allocator is not installed in this (library) test binary, so
    // only the pass-through arithmetic is checked here; the end-to-end
    // behaviour is exercised by the consumers' dedicated test binaries.
    #[test]
    fn counter_starts_at_zero_without_installation() {
        assert_eq!(allocation_count(), 0);
    }
}
