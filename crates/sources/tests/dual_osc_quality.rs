//! Tier-1 statistical quality gates for the dual-oscillator sampler:
//! AIS-31 admission, seed-level properties, locking detectability and
//! a trimmed NIST battery on conditioned output.

use std::collections::HashSet;

use trng_core::health::OnlineHealth;
use trng_core::postprocess::XorCompressor;
use trng_fpga_sim::noise::AttackInjection;
use trng_fpga_sim::time::Ps;
use trng_sources::{
    run_source_startup, DualOscConfig, DualOscillatorSource, EntropySource, SourceFault,
};
use trng_stattests::assessment::assess;
use trng_stattests::bits::BitVec;
use trng_testkit::prng::Rng;

fn source(seed: u64) -> DualOscillatorSource {
    DualOscillatorSource::new(DualOscConfig::betrusted_default(), seed).expect("default builds")
}

fn raw_bits(src: &mut DualOscillatorSource, n: usize) -> Vec<bool> {
    (0..n).map(|_| src.next_raw_bit()).collect()
}

/// Distinct 16-bit windows in a stream — a cheap predictability probe.
/// A healthy sampler fills most of the window space; a phase-locked
/// one repeats a short periodic pattern.
fn pattern_diversity(bits: &[bool]) -> usize {
    let mut seen = HashSet::new();
    for w in bits.chunks_exact(16) {
        let mut v = 0u16;
        for &b in w {
            v = v << 1 | u16::from(b);
        }
        seen.insert(v);
    }
    seen.len()
}

#[test]
fn startup_admits_the_default_geometry() {
    for seed in [1u64, 2, 3, 4, 5] {
        let mut src = source(seed);
        let mut health = OnlineHealth::new(src.claimed_min_entropy());
        let mut compressor = XorCompressor::new(src.native_xor_rate());
        let report = run_source_startup(&mut src, &mut health, &mut compressor);
        assert!(
            report.passed(),
            "seed {seed}: startup failed, mask {:#x} (ones {}, longest run {})",
            report.failure_mask(),
            report.ones,
            report.longest_run
        );
    }
}

trng_testkit::props! {
    /// Identical `(config, seed)` pairs replay identically regardless
    /// of read granularity — the trait's batching contract.
    fn dual_osc_seed_determinism(rng) {
        let seed = rng.gen::<u64>();
        let mut by_bit = source(seed);
        let mut by_byte = source(seed);
        let bits = raw_bits(&mut by_bit, 128);
        let mut bytes = [0u8; 16];
        by_byte.fill_raw(&mut bytes);
        for (i, &bit) in bits.iter().enumerate() {
            assert_eq!(bit, bytes[i / 8] >> (7 - i % 8) & 1 == 1, "bit {i}");
        }
        assert_eq!(by_bit.raw_bits(), by_byte.raw_bits());
    }

    /// Whenever `validate` accepts a geometry, the sampler-ratio
    /// bounds actually hold: the fast ring out-runs the slow one and
    /// the per-sample sweep fraction stays away from integer ratios.
    fn accepted_geometries_respect_sampler_ratio_bounds(rng) {
        let mut config = DualOscConfig::betrusted_default();
        config.divider = rng.gen_range(1..48);
        config.fast.stage_delay = Ps::from_ps(rng.gen_range(200.0..6_000.0));
        config.slow.stage_delay = Ps::from_ps(rng.gen_range(1_000.0..8_000.0));
        if config.validate().is_err() {
            return; // rejected geometries are the other tests' job
        }
        let fast_period = 2.0 * config.fast.stages as f64 * config.fast.stage_delay.as_ps();
        assert!(fast_period < config.slow_period().as_ps());
        let frac = (config.sample_interval().as_ps() / config.slow_period().as_ps()).fract();
        assert!((0.05..=0.95).contains(&frac), "sweep fraction {frac}");
        assert!(config.claimed_min_entropy() >= 0.05);
    }
}

#[test]
fn locking_attack_collapses_pattern_diversity() {
    // Lock the slow rings to their own stage-transit grid: the phase
    // random walk becomes a bounded OU process, so the sampled stream
    // degenerates into a short periodic pattern. Plain monobit bias
    // stays near zero (the frozen phases scatter around the die), so
    // the discriminator is predictability, not ones-density — exactly
    // why the paper argues for model-based bounds over black-box
    // tests.
    let cfg = DualOscConfig::betrusted_default();
    let stage_hz = 1e12 / cfg.slow.stage_delay.as_ps();
    for seed in [1u64, 2, 3] {
        let mut healthy = source(seed);
        let h = pattern_diversity(&raw_bits(&mut healthy, 4_096));
        let mut locked = source(seed);
        locked
            .rebuild(Some(&SourceFault::Attack(AttackInjection::locking(
                stage_hz, 0.5,
            ))))
            .expect("attack applies");
        let l = pattern_diversity(&raw_bits(&mut locked, 4_096));
        assert!(h > 150, "seed {seed}: healthy diversity only {h}/256");
        assert!(
            l < h / 3,
            "seed {seed}: locking not visible (healthy {h}, locked {l})"
        );
    }
}

#[test]
fn trimmed_nist_battery_passes_on_conditioned_output() {
    let seqs: Vec<BitVec> = (0..2)
        .map(|s| {
            let mut src = source(500 + s);
            let raw = raw_bits(&mut src, 7 * 20_000);
            XorCompressor::compress(7, &raw).into_iter().collect()
        })
        .collect();
    let a = assess(&seqs);
    assert!(a.all_passed(), "failures: {:?}", a.failures());
}
