//! OS-entropy fallback: the operating system's pool behind the
//! [`EntropySource`] contract, as a production fallback tier.
//!
//! Two backings share one implementation:
//!
//! * **Live** ([`OsEntropySource::from_os`]) reads `/dev/urandom`
//!   through a 4 KiB buffer. Inherently non-replayable — use it only
//!   in non-deterministic pools.
//! * **Seeded** ([`OsEntropySource::seeded`]) draws a splitmix64
//!   counter stream instead, standing in for the OS pool wherever the
//!   deterministic replay contract must hold (replay-mode pools, CI,
//!   benchmarks). Also the automatic fallback when the device cannot
//!   be opened, so hermetic environments without `/dev/urandom` still
//!   come up.
//!
//! The entropy claim is a deliberately conservative 0.98 per bit —
//! the OS pool is conditioned full-entropy output, but claiming
//! slightly less keeps the SP 800-90B repetition cutoff finite (22 at
//! 0.98) so a latched-up stream is still caught. The source has no
//! physical clock; it reports a documented nominal rate of one raw
//! bit per simulated nanosecond so pool throughput accounting stays
//! defined.

use std::fs::File;
use std::io::Read;

use trng_fpga_sim::rng::splitmix64;

use crate::source::{mix_seed, CaptureStats, EntropySource, SourceError, SourceFault, SourceKind};

/// Conservative per-raw-bit min-entropy claim for the OS pool.
const OS_CLAIM: f64 = 0.98;

const BUF_BYTES: usize = 4_096;

#[derive(Debug)]
enum Backing {
    /// Deterministic splitmix64 counter stream.
    Seeded { lane: u64, counter: u64 },
    /// Buffered reads from the OS entropy device.
    Device(File),
}

/// The operating system's entropy pool (or its seeded stand-in) as a
/// pool backend — see the [module docs](self).
#[derive(Debug)]
pub struct OsEntropySource {
    backing: Backing,
    seed: u64,
    rebuilds: u64,
    buf: Vec<u8>,
    /// Bit cursor into `buf`; `buf.len() * 8` means exhausted.
    cursor: usize,
    bits: u64,
    bits_at_rebuild: u64,
    stuck: bool,
}

impl OsEntropySource {
    /// A deterministic seeded stream — the replay-safe stand-in.
    pub fn seeded(seed: u64) -> Self {
        OsEntropySource {
            backing: Backing::Seeded {
                lane: mix_seed(seed, 0),
                counter: 0,
            },
            seed,
            rebuilds: 0,
            buf: Vec::new(),
            cursor: 0,
            bits: 0,
            bits_at_rebuild: 0,
            stuck: false,
        }
    }

    /// The live OS pool, falling back to a seeded stream if the
    /// entropy device cannot be opened.
    pub fn from_os(seed: u64) -> Self {
        match File::open("/dev/urandom") {
            Ok(f) => OsEntropySource {
                backing: Backing::Device(f),
                seed,
                rebuilds: 0,
                buf: Vec::new(),
                cursor: 0,
                bits: 0,
                bits_at_rebuild: 0,
                stuck: false,
            },
            Err(_) => OsEntropySource::seeded(seed),
        }
    }

    /// Whether this instance replays deterministically.
    pub fn is_deterministic(&self) -> bool {
        matches!(self.backing, Backing::Seeded { .. })
    }

    fn refill(&mut self) {
        self.buf.resize(BUF_BYTES, 0);
        match &mut self.backing {
            Backing::Seeded { lane, counter } => {
                for chunk in self.buf.chunks_exact_mut(8) {
                    let word = splitmix64(*lane ^ *counter);
                    *counter += 1;
                    chunk.copy_from_slice(&word.to_be_bytes());
                }
            }
            Backing::Device(f) => {
                if f.read_exact(&mut self.buf).is_err() {
                    // A failing device degrades to the seeded stream
                    // rather than serving stale buffer contents.
                    self.backing = Backing::Seeded {
                        lane: mix_seed(self.seed, self.rebuilds),
                        counter: 0,
                    };
                    self.refill();
                    return;
                }
            }
        }
        self.cursor = 0;
    }
}

impl EntropySource for OsEntropySource {
    fn kind(&self) -> SourceKind {
        SourceKind::OsEntropy
    }

    fn claimed_min_entropy(&self) -> f64 {
        OS_CLAIM
    }

    fn native_xor_rate(&self) -> u32 {
        1
    }

    fn next_raw_bit(&mut self) -> bool {
        if self.stuck {
            return false;
        }
        if self.cursor >= self.buf.len() * 8 {
            self.refill();
        }
        let bit = self.buf[self.cursor / 8] >> (7 - self.cursor % 8) & 1 == 1;
        self.cursor += 1;
        self.bits += 1;
        bit
    }

    fn fill_raw(&mut self, out: &mut [u8]) {
        if self.stuck {
            out.fill(0);
            return;
        }
        for slot in out.iter_mut() {
            if self.cursor.is_multiple_of(8) {
                if self.cursor >= self.buf.len() * 8 {
                    self.refill();
                }
                *slot = self.buf[self.cursor / 8];
                self.cursor += 8;
                self.bits += 8;
            } else {
                let mut b = 0u8;
                for _ in 0..8 {
                    b = b << 1 | u8::from(self.next_raw_bit());
                }
                *slot = b;
            }
        }
    }

    fn raw_bits(&self) -> u64 {
        self.bits
    }

    fn sim_now_ns(&self) -> u64 {
        // Nominal clock: one raw bit per nanosecond.
        self.bits
    }

    fn capture_stats(&self) -> CaptureStats {
        CaptureStats {
            samples: self.bits - self.bits_at_rebuild,
            missed_edges: 0,
        }
    }

    fn rebuild(&mut self, fault: Option<&SourceFault>) -> Result<(), SourceError> {
        match fault {
            Some(SourceFault::Stuck) => {
                self.stuck = true;
                Ok(())
            }
            Some(f) => Err(SourceError::UnsupportedFault {
                kind: SourceKind::OsEntropy,
                fault: match f {
                    SourceFault::Attack(_) => "attack",
                    SourceFault::Config(_) => "carry-chain config",
                    SourceFault::Env(_) => "environment",
                    SourceFault::Stuck => unreachable!("handled above"),
                },
            }),
            None => {
                self.rebuilds += 1;
                if let Backing::Seeded { lane, counter } = &mut self.backing {
                    *lane = mix_seed(self.seed, self.rebuilds);
                    *counter = 0;
                }
                self.buf.clear();
                self.cursor = 0;
                self.bits_at_rebuild = self.bits;
                self.stuck = false;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_replay() {
        let mut a = OsEntropySource::seeded(9);
        let mut b = OsEntropySource::seeded(9);
        let mut x = [0u8; 128];
        let mut y = [0u8; 128];
        a.fill_raw(&mut x);
        b.fill_raw(&mut y);
        assert_eq!(x, y);
        assert_ne!(x, [0u8; 128]);
        assert_eq!(a.raw_bits(), 1_024);
    }

    #[test]
    fn per_bit_and_per_byte_reads_agree() {
        let mut a = OsEntropySource::seeded(5);
        let mut b = OsEntropySource::seeded(5);
        let mut bytes = [0u8; 16];
        a.fill_raw(&mut bytes);
        for byte in bytes {
            for k in 0..8 {
                assert_eq!(byte >> (7 - k) & 1 == 1, b.next_raw_bit());
            }
        }
    }

    #[test]
    fn rebuild_switches_lanes_without_losing_totals() {
        let mut src = OsEntropySource::seeded(7);
        let mut first = [0u8; 32];
        src.fill_raw(&mut first);
        src.rebuild(None).expect("replay restart");
        assert_eq!(src.raw_bits(), 256, "lifetime bits survive the rebuild");
        assert_eq!(src.capture_stats().samples, 0, "live counters reset");
        let mut second = [0u8; 32];
        src.fill_raw(&mut second);
        assert_ne!(first, second, "rebuild draws a fresh lane");
    }

    #[test]
    fn stuck_freezes_until_rebuilt() {
        let mut src = OsEntropySource::seeded(3);
        src.rebuild(Some(&SourceFault::Stuck))
            .expect("stuck applies");
        let mut out = [0xFFu8; 8];
        src.fill_raw(&mut out);
        assert_eq!(out, [0u8; 8]);
        src.rebuild(None).expect("recovers");
        src.fill_raw(&mut out);
        assert_ne!(out, [0u8; 8]);
    }

    #[test]
    fn live_mode_serves_bytes() {
        let mut src = OsEntropySource::from_os(0);
        let mut out = [0u8; 64];
        src.fill_raw(&mut out);
        assert_eq!(src.raw_bits(), 512);
    }
}
