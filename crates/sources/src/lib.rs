//! # trng-sources — pluggable entropy-source backends
//!
//! The pool layer (`trng-pool`) gates, conditions, supervises and
//! serves raw bits; none of that machinery is specific to the paper's
//! carry-chain TDC. This crate lifts the shard backend behind one
//! object-safe trait, [`EntropySource`], so a single pool can mix
//! heterogeneous sources:
//!
//! * [`CarryChainSource`] — the DAC'15 carry-chain TDC simulator,
//!   byte-identical to driving [`CarryChainTrng`] directly (the
//!   replay contract every existing fixture depends on);
//! * [`DualOscillatorSource`] — a betrusted-style sampler: slow
//!   die-circumscribing ring oscillators sampled on a divided fast-RO
//!   clock, with a Saarinen-style accumulated-jitter entropy claim;
//! * [`TraceReplaySource`] — a [`RecordedTrace`] of captured TDC
//!   output fed back through the full health/conditioning stack;
//! * [`OsEntropySource`] — the operating system's entropy pool as a
//!   production fallback tier.
//!
//! Every backend states its own worst-case
//! [`claimed_min_entropy`](EntropySource::claimed_min_entropy) per raw
//! bit, which parameterizes the SP 800-90B continuous tests and the
//! AIS-31 admission gate ([`run_source_startup`]), and honours the
//! same deterministic replay/seed contract: identical construction
//! inputs yield identical raw streams ([`OsEntropySource`] only in its
//! seeded replay mode, by nature).
//!
//! [`CarryChainTrng`]: trng_core::trng::CarryChainTrng

#![warn(missing_docs)]

pub mod carry_chain;
pub mod dual_osc;
pub mod os_entropy;
pub mod source;
pub mod trace;

pub use carry_chain::CarryChainSource;
pub use dual_osc::{DualOscConfig, DualOscillatorSource};
pub use os_entropy::OsEntropySource;
pub use source::{
    mix_seed, run_source_startup, CaptureStats, EntropySource, SourceError, SourceFault, SourceKind,
};
pub use trace::{RecordedTrace, TraceReplaySource};
