//! The [`EntropySource`] contract: what a shard backend must provide
//! for the pool's health gates, conditioning, replay and elastic
//! supervision to run unchanged on top of it.
//!
//! The trait is object-safe on purpose — a pool holds
//! `Box<dyn EntropySource>` per shard so one pool mixes heterogeneous
//! backends. The contract has four obligations:
//!
//! 1. **Raw bits.** [`next_raw_bit`](EntropySource::next_raw_bit) /
//!    [`fill_raw`](EntropySource::fill_raw) yield the *unconditioned*
//!    stream, MSB-first when packed. Batching must never change the
//!    stream position (fetch granularity, not semantics).
//! 2. **Entropy claim.**
//!    [`claimed_min_entropy`](EntropySource::claimed_min_entropy) is
//!    the backend's worst-case min-entropy per raw bit in `(0, 1]`,
//!    already derated for non-i.i.d. structure. It parameterizes the
//!    SP 800-90B continuous tests and is published per shard.
//! 3. **Replay.** Identical construction inputs yield identical raw
//!    streams, and [`rebuild`](EntropySource::rebuild) derives each
//!    successive instance deterministically (a fresh seed lane per
//!    rebuild) while banking elapsed simulated time and raw-bit
//!    counts so lifetime totals stay monotonic.
//! 4. **Fault hook.** [`rebuild`](EntropySource::rebuild) with
//!    `Some(fault)` swaps the live instance for a sabotaged one
//!    *without* resetting any health state the caller holds; a fault
//!    shape the backend cannot express is a typed
//!    [`SourceError::UnsupportedFault`], which the pool surfaces
//!    through its alarm/retire lifecycle.

use core::fmt;
use std::error::Error;

use trng_core::health::OnlineHealth;
use trng_core::postprocess::XorCompressor;
use trng_core::selftest::{StartupReport, STARTUP_BITS};
use trng_core::trng::{BuildTrngError, TrngConfig};
use trng_fpga_sim::noise::{AttackInjection, NoiseBackend};
use trng_fpga_sim::scenario::NoiseEnvironment;
use trng_fpga_sim::time::Ps;
use trng_model::params::ParamError;

/// Deterministically derives a per-shard / per-rebuild / per-lane
/// simulation seed (splitmix-style avalanche over both inputs).
pub fn mix_seed(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which backend family a source belongs to — the per-source label on
/// pool statistics and serve metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceKind {
    /// The DAC'15 carry-chain TDC simulator.
    CarryChain,
    /// Slow ring oscillators sampled on a divided fast-RO clock.
    DualOscillator,
    /// A recorded trace replayed through the live stack.
    TraceReplay,
    /// The operating system's entropy pool.
    OsEntropy,
}

impl SourceKind {
    /// Stable metrics label (also the CLI spelling).
    pub fn as_str(self) -> &'static str {
        match self {
            SourceKind::CarryChain => "carry_chain",
            SourceKind::DualOscillator => "dual_osc",
            SourceKind::TraceReplay => "trace_replay",
            SourceKind::OsEntropy => "os_entropy",
        }
    }

    /// Compact encoding for lock-free publication.
    pub fn as_u8(self) -> u8 {
        match self {
            SourceKind::CarryChain => 0,
            SourceKind::DualOscillator => 1,
            SourceKind::TraceReplay => 2,
            SourceKind::OsEntropy => 3,
        }
    }

    /// Inverse of [`SourceKind::as_u8`] (unknown values decode as the
    /// carry chain, the historical default).
    pub fn from_u8(v: u8) -> Self {
        match v {
            1 => SourceKind::DualOscillator,
            2 => SourceKind::TraceReplay,
            3 => SourceKind::OsEntropy,
            _ => SourceKind::CarryChain,
        }
    }

    /// Every kind, in `as_u8` order (for per-kind aggregation).
    pub fn all() -> [SourceKind; 4] {
        [
            SourceKind::CarryChain,
            SourceKind::DualOscillator,
            SourceKind::TraceReplay,
            SourceKind::OsEntropy,
        ]
    }
}

impl fmt::Display for SourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How an injected fault replaces a source's live instance.
#[derive(Debug, Clone)]
pub enum SourceFault {
    /// Keep the configuration but enable this attack on the noise
    /// input (the simulator's manipulative-influence hook).
    Attack(AttackInjection),
    /// Replace the carry-chain configuration outright — e.g. an
    /// attacked *and* drift-frozen design whose entropy collapse is
    /// guaranteed to be visible to the continuous tests. Only the
    /// carry-chain backend can express this shape.
    Config(Box<TrngConfig>),
    /// Apply a scenario [`NoiseEnvironment`] over the base
    /// configuration — the campaign compiler's fault shape. Unlike
    /// [`SourceFault::Attack`], an environment can also modulate
    /// global conditions, flicker and the white-sigma budget.
    Env(NoiseEnvironment),
    /// Freeze the output: every subsequent raw bit reads 0 and the
    /// source's clock stops, modelling a latched-up or disconnected
    /// generator. Supported by every backend, so per-backend
    /// quarantine/readmission drills do not depend on simulator
    /// internals.
    Stuck,
}

/// Why a source could not be built or rebuilt.
#[derive(Debug, Clone)]
pub enum SourceError {
    /// Constructing the underlying generator failed.
    Build(String),
    /// The requested fault shape is not meaningful for this backend
    /// (e.g. a carry-chain [`SourceFault::Config`] aimed at the OS
    /// pool). The pool turns this into an alarm so the shard walks
    /// the ordinary quarantine/retire lifecycle.
    UnsupportedFault {
        /// The backend that rejected the fault.
        kind: SourceKind,
        /// The rejected fault shape's name.
        fault: &'static str,
    },
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Build(why) => write!(f, "source build failed: {why}"),
            SourceError::UnsupportedFault { kind, fault } => {
                write!(f, "{kind} source does not support {fault} faults")
            }
        }
    }
}

impl Error for SourceError {}

impl From<BuildTrngError> for SourceError {
    fn from(e: BuildTrngError) -> Self {
        SourceError::Build(e.to_string())
    }
}

impl From<ParamError> for SourceError {
    fn from(e: ParamError) -> Self {
        SourceError::Build(e.to_string())
    }
}

/// Capture-quality counters of the *live* instance (since the last
/// rebuild): total samples drawn and how many edges the capture
/// mechanism missed. Backends without a capture mechanism report zero
/// missed edges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaptureStats {
    /// Samples drawn since the last rebuild.
    pub samples: u64,
    /// Edges the capture mechanism missed since the last rebuild.
    pub missed_edges: u64,
}

/// One shard backend: a raw-bit generator with an entropy claim, a
/// deterministic rebuild/replay contract and a fault-injection hook.
/// See the [module docs](self) for the full contract.
pub trait EntropySource: fmt::Debug + Send {
    /// Which backend family this is.
    fn kind(&self) -> SourceKind;

    /// Worst-case min-entropy per raw bit in `(0, 1]`, already derated
    /// for non-i.i.d. structure; parameterizes the continuous tests.
    fn claimed_min_entropy(&self) -> f64;

    /// The backend's natural XOR-compression rate — what
    /// `Conditioning::DesignXor` resolves to, and the rate the AIS-31
    /// startup compressor runs at. 1 for sources whose raw bits are
    /// already near full entropy.
    fn native_xor_rate(&self) -> u32;

    /// Draws the next raw (unconditioned) bit.
    fn next_raw_bit(&mut self) -> bool;

    /// Draws `out.len() * 8` raw bits, packed MSB-first. Batching must
    /// not change the stream position relative to per-bit draws; the
    /// default simply loops [`next_raw_bit`](EntropySource::next_raw_bit).
    fn fill_raw(&mut self, out: &mut [u8]) {
        for byte in out.iter_mut() {
            let mut b = 0u8;
            for _ in 0..8 {
                b = b << 1 | u8::from(self.next_raw_bit());
            }
            *byte = b;
        }
    }

    /// Lifetime raw bits drawn, across rebuilds (monotonic).
    fn raw_bits(&self) -> u64;

    /// Lifetime elapsed source time in nanoseconds, across rebuilds
    /// (monotonic). Simulated backends report their simulation clock;
    /// backends without one report a documented nominal clock.
    fn sim_now_ns(&self) -> u64;

    /// Capture-quality counters of the live instance, for the pool's
    /// end-of-block total-failure check.
    fn capture_stats(&self) -> CaptureStats;

    /// Replaces the live instance: `None` rebuilds the healthy base
    /// (clearing any active fault, next deterministic seed lane),
    /// `Some(fault)` rebuilds a sabotaged instance. Elapsed time and
    /// raw-bit counts of the retired instance are banked so lifetime
    /// totals stay monotonic.
    ///
    /// # Errors
    ///
    /// [`SourceError::Build`] when the replacement cannot be
    /// constructed, [`SourceError::UnsupportedFault`] when the fault
    /// shape is not meaningful for this backend.
    fn rebuild(&mut self, fault: Option<&SourceFault>) -> Result<(), SourceError>;

    /// A view for the carry-chain online jitter monitor: the live
    /// configuration and current simulated time. `None` (the default)
    /// for backends the monitor's differential sigma probe cannot
    /// model; the pool then skips monitoring for that shard.
    fn monitor_view(&self) -> Option<(&TrngConfig, Ps)> {
        None
    }

    /// The noise-synthesis backend the live instance actually runs —
    /// published per shard so operators can tell replay-exact scalar
    /// streams from batched ones. Backends without simulated noise
    /// (trace replay, the OS pool) report the scalar default.
    fn noise_backend(&self) -> NoiseBackend {
        NoiseBackend::Scalar
    }
}

/// Runs the AIS-31-style start-up self-test against any
/// [`EntropySource`], feeding every raw bit drawn through `health` and
/// compressing with `compressor` — the source-generic twin of
/// [`trng_core::selftest::run_startup_test`], with identical checks,
/// thresholds and draw order (so the carry-chain adapter admits on
/// exactly the bits the hard-wired pool did).
pub fn run_source_startup(
    source: &mut dyn EntropySource,
    health: &mut OnlineHealth,
    compressor: &mut XorCompressor,
) -> StartupReport {
    use trng_core::health::HealthStatus;

    let before = source.capture_stats();
    let mut collected = 0usize;
    let mut ones = 0usize;
    let mut longest_run = 0usize;
    let mut run = 0usize;
    let mut prev = None;
    while collected < STARTUP_BITS {
        let raw = source.next_raw_bit();
        let _ = health.push(raw);
        if let Some(bit) = compressor.push(raw) {
            ones += usize::from(bit);
            if prev == Some(bit) {
                run += 1;
            } else {
                run = 1;
                prev = Some(bit);
            }
            longest_run = longest_run.max(run);
            collected += 1;
        }
    }
    let after = source.capture_stats();
    let samples = after.samples - before.samples;
    let missed = after.missed_edges - before.missed_edges;
    let missed_rate = if samples == 0 {
        0.0
    } else {
        missed as f64 / samples as f64
    };
    StartupReport {
        ones,
        longest_run,
        monobit_ok: (899..=1149).contains(&ones),
        long_run_ok: longest_run < 34,
        missed_edge_ok: missed_rate < 0.01 || samples < 1000,
        online_ok: health.status() == HealthStatus::Ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_seed_separates_lanes() {
        assert_ne!(mix_seed(0, 0), mix_seed(0, 1));
        assert_ne!(mix_seed(0, 1), mix_seed(1, 0));
        assert_eq!(mix_seed(5, 9), mix_seed(5, 9));
    }

    #[test]
    fn kind_round_trips_and_labels() {
        for kind in SourceKind::all() {
            assert_eq!(SourceKind::from_u8(kind.as_u8()), kind);
            assert_eq!(kind.to_string(), kind.as_str());
        }
        assert_eq!(SourceKind::from_u8(200), SourceKind::CarryChain);
    }

    #[test]
    fn errors_display_their_cause() {
        let e = SourceError::Build("no carry chain".into());
        assert!(e.to_string().contains("no carry chain"));
        let e = SourceError::UnsupportedFault {
            kind: SourceKind::OsEntropy,
            fault: "config",
        };
        assert!(e.to_string().contains("os_entropy"));
        assert!(e.to_string().contains("config"));
    }
}
