//! Recorded-trace replay: captured raw TDC output fed back through
//! the live health/conditioning stack.
//!
//! A [`RecordedTrace`] stores the raw byte stream of a real capture
//! *plus* per-byte cumulative checkpoints of the capture's simulated
//! clock and sample/missed-edge counters. Replaying the trace through
//! a [`TraceReplaySource`] therefore reproduces not just the bits but
//! the progress accounting the original run published — the pool's
//! startup test, missed-edge check, statistics and incident journal
//! all see exactly what they saw live. This holds at every point the
//! pool actually reads the counters (startup completion and block
//! boundaries) because fixed-rate consumption is whole-raw-byte
//! aligned; mid-byte reads floor to the previous byte checkpoint.
//! Von Neumann conditioning consumes a data-dependent number of raw
//! bits and is therefore outside the byte-exactness guarantee.
//!
//! When the trace is exhausted it wraps, and the checkpoint totals
//! keep accumulating across passes so lifetime counters stay
//! monotonic.

use std::sync::Arc;

use trng_core::trng::{CarryChainTrng, TrngConfig};

use crate::source::{CaptureStats, EntropySource, SourceError, SourceFault, SourceKind};

/// A captured raw stream with per-byte progress checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedTrace {
    /// The recorded source's worst-case min-entropy claim per raw bit.
    pub claimed_min_entropy: f64,
    /// The recorded source's natural XOR-compression rate.
    pub xor_rate: u32,
    /// The raw bytes, MSB-first within each byte.
    pub bytes: Vec<u8>,
    /// Cumulative simulated nanoseconds after each byte was drawn.
    pub sim_ns_at: Vec<u64>,
    /// Cumulative sample count after each byte was drawn.
    pub samples_at: Vec<u64>,
    /// Cumulative missed-edge count after each byte was drawn.
    pub missed_at: Vec<u64>,
}

impl RecordedTrace {
    /// Captures `nbytes` of raw output from a fresh carry-chain TDC
    /// run, checkpointing the simulator's counters after every byte.
    ///
    /// # Errors
    ///
    /// [`SourceError::Build`] when the configuration is rejected.
    pub fn record(config: &TrngConfig, seed: u64, nbytes: usize) -> Result<Self, SourceError> {
        let claim = trng_core::selftest::claimed_min_entropy(config)?;
        let mut trng = CarryChainTrng::new(config.clone(), seed)?;
        let mut bytes = Vec::with_capacity(nbytes);
        let mut sim_ns_at = Vec::with_capacity(nbytes);
        let mut samples_at = Vec::with_capacity(nbytes);
        let mut missed_at = Vec::with_capacity(nbytes);
        let mut byte = [0u8; 1];
        for _ in 0..nbytes {
            trng.fill_raw(&mut byte);
            bytes.push(byte[0]);
            sim_ns_at.push(trng.now().as_ns() as u64);
            let stats = trng.stats();
            samples_at.push(stats.samples);
            missed_at.push(stats.missed_edges);
        }
        Ok(RecordedTrace {
            claimed_min_entropy: claim,
            xor_rate: config.design.np,
            bytes,
            sim_ns_at,
            samples_at,
            missed_at,
        })
    }

    fn validate(&self) -> Result<(), SourceError> {
        if self.bytes.is_empty() {
            return Err(SourceError::Build("trace has no bytes".into()));
        }
        if self.sim_ns_at.len() != self.bytes.len()
            || self.samples_at.len() != self.bytes.len()
            || self.missed_at.len() != self.bytes.len()
        {
            return Err(SourceError::Build(format!(
                "trace checkpoints out of step: {} bytes vs {}/{}/{} checkpoints",
                self.bytes.len(),
                self.sim_ns_at.len(),
                self.samples_at.len(),
                self.missed_at.len()
            )));
        }
        if !(0.0 < self.claimed_min_entropy && self.claimed_min_entropy <= 1.0) {
            return Err(SourceError::Build(format!(
                "trace entropy claim {} outside (0, 1]",
                self.claimed_min_entropy
            )));
        }
        if self.xor_rate == 0 {
            return Err(SourceError::Build(
                "trace xor rate must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Replays a [`RecordedTrace`] behind the [`EntropySource`] contract.
#[derive(Debug)]
pub struct TraceReplaySource {
    trace: Arc<RecordedTrace>,
    /// Bit position within the current pass.
    pos: u64,
    /// Completed passes since the last rebuild.
    wraps: u64,
    sim_base_ns: u64,
    raw_base: u64,
    stuck: bool,
}

impl TraceReplaySource {
    /// Wraps a trace for replay.
    ///
    /// # Errors
    ///
    /// [`SourceError::Build`] when the trace is empty or its
    /// checkpoint vectors are inconsistent.
    pub fn new(trace: Arc<RecordedTrace>) -> Result<Self, SourceError> {
        trace.validate()?;
        Ok(TraceReplaySource {
            trace,
            pos: 0,
            wraps: 0,
            sim_base_ns: 0,
            raw_base: 0,
            stuck: false,
        })
    }

    /// Checkpoint totals at the current pass position, floored to the
    /// previous whole byte.
    fn pass_totals(&self) -> (u64, u64, u64) {
        let byte = (self.pos / 8) as usize;
        if byte == 0 {
            (0, 0, 0)
        } else {
            let i = byte - 1;
            (
                self.trace.sim_ns_at[i],
                self.trace.samples_at[i],
                self.trace.missed_at[i],
            )
        }
    }

    /// Totals accumulated since the last rebuild (all passes).
    fn live_totals(&self) -> (u64, u64, u64) {
        let last = self.trace.bytes.len() - 1;
        let full = (
            self.trace.sim_ns_at[last],
            self.trace.samples_at[last],
            self.trace.missed_at[last],
        );
        let (ns, samples, missed) = self.pass_totals();
        (
            self.wraps * full.0 + ns,
            self.wraps * full.1 + samples,
            self.wraps * full.2 + missed,
        )
    }
}

impl EntropySource for TraceReplaySource {
    fn kind(&self) -> SourceKind {
        SourceKind::TraceReplay
    }

    fn claimed_min_entropy(&self) -> f64 {
        self.trace.claimed_min_entropy
    }

    fn native_xor_rate(&self) -> u32 {
        self.trace.xor_rate
    }

    fn next_raw_bit(&mut self) -> bool {
        if self.stuck {
            return false;
        }
        let byte = self.trace.bytes[(self.pos / 8) as usize];
        let bit = byte >> (7 - self.pos % 8) & 1 == 1;
        self.pos += 1;
        if self.pos == self.trace.bytes.len() as u64 * 8 {
            self.pos = 0;
            self.wraps += 1;
        }
        bit
    }

    fn fill_raw(&mut self, out: &mut [u8]) {
        if self.stuck {
            out.fill(0);
            return;
        }
        for slot in out.iter_mut() {
            if self.pos.is_multiple_of(8) {
                *slot = self.trace.bytes[(self.pos / 8) as usize];
                self.pos += 8;
                if self.pos == self.trace.bytes.len() as u64 * 8 {
                    self.pos = 0;
                    self.wraps += 1;
                }
            } else {
                let mut b = 0u8;
                for _ in 0..8 {
                    b = b << 1 | u8::from(self.next_raw_bit());
                }
                *slot = b;
            }
        }
    }

    fn raw_bits(&self) -> u64 {
        self.raw_base + self.live_totals().1
    }

    fn sim_now_ns(&self) -> u64 {
        self.sim_base_ns + self.live_totals().0
    }

    fn capture_stats(&self) -> CaptureStats {
        let (_, samples, missed) = self.live_totals();
        CaptureStats {
            samples,
            missed_edges: missed,
        }
    }

    fn rebuild(&mut self, fault: Option<&SourceFault>) -> Result<(), SourceError> {
        match fault {
            Some(SourceFault::Stuck) => {
                self.stuck = true;
                Ok(())
            }
            Some(f) => Err(SourceError::UnsupportedFault {
                kind: SourceKind::TraceReplay,
                fault: match f {
                    SourceFault::Attack(_) => "attack",
                    SourceFault::Config(_) => "carry-chain config",
                    SourceFault::Env(_) => "environment",
                    SourceFault::Stuck => unreachable!("handled above"),
                },
            }),
            None => {
                // Replay restart: bank what this pass produced and
                // rewind to the head of the trace.
                let (ns, samples, _) = self.live_totals();
                self.sim_base_ns += ns;
                self.raw_base += samples;
                self.pos = 0;
                self.wraps = 0;
                self.stuck = false;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Arc<RecordedTrace> {
        Arc::new(RecordedTrace::record(&TrngConfig::paper_k1(), 11, 64).expect("capture succeeds"))
    }

    #[test]
    fn replay_reproduces_the_recorded_bytes_and_counters() {
        let trace = trace();
        let mut src = TraceReplaySource::new(trace.clone()).expect("valid trace");
        let mut out = [0u8; 64];
        src.fill_raw(&mut out);
        assert_eq!(&out[..], &trace.bytes[..]);
        // After a full pass the counters equal the recording's finals.
        assert_eq!(src.raw_bits(), *trace.samples_at.last().unwrap());
        assert_eq!(src.sim_now_ns(), *trace.sim_ns_at.last().unwrap());
        // Second pass wraps and keeps accumulating.
        src.fill_raw(&mut out);
        assert_eq!(&out[..], &trace.bytes[..]);
        assert_eq!(src.raw_bits(), 2 * trace.samples_at.last().unwrap());
    }

    #[test]
    fn per_bit_and_per_byte_reads_agree() {
        let trace = trace();
        let mut a = TraceReplaySource::new(trace.clone()).expect("valid trace");
        let mut b = TraceReplaySource::new(trace).expect("valid trace");
        let mut bytes = [0u8; 16];
        a.fill_raw(&mut bytes);
        for byte in bytes {
            for k in 0..8 {
                assert_eq!(byte >> (7 - k) & 1 == 1, b.next_raw_bit());
            }
        }
    }

    #[test]
    fn rebuild_banks_and_rewinds() {
        let trace = trace();
        let mut src = TraceReplaySource::new(trace.clone()).expect("valid trace");
        let mut out = [0u8; 32];
        src.fill_raw(&mut out);
        let bits = src.raw_bits();
        src.rebuild(None).expect("replay restart");
        assert_eq!(src.raw_bits(), bits, "banked totals survive the rewind");
        let mut again = [0u8; 32];
        src.fill_raw(&mut again);
        assert_eq!(&again[..], &trace.bytes[..32], "rewound to the head");
    }

    #[test]
    fn foreign_faults_are_typed_rejections() {
        let mut src = TraceReplaySource::new(trace()).expect("valid trace");
        let fault = SourceFault::Env(Default::default());
        match src.rebuild(Some(&fault)) {
            Err(SourceError::UnsupportedFault { kind, .. }) => {
                assert_eq!(kind, SourceKind::TraceReplay);
            }
            other => panic!("expected UnsupportedFault, got {other:?}"),
        }
    }

    #[test]
    fn inconsistent_checkpoints_are_rejected() {
        let mut t = (*trace()).clone();
        t.samples_at.pop();
        assert!(TraceReplaySource::new(Arc::new(t)).is_err());
    }
}
