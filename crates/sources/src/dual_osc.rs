//! A betrusted-style dual-oscillator backend: slow free-running ring
//! oscillators sampled on a divided fast-RO clock.
//!
//! The layout follows the betrusted-EC ring-oscillator TRNG: several
//! *slow* rings (on real silicon, long die-circumscribing loops whose
//! accumulated jitter dominates) free-run while a *fast* ring provides
//! the sampling clock. Every `divider`-th edge of the fast ring
//! defines a sample instant; the raw bit is the XOR of the slow
//! rings' output levels at that instant. Between consecutive samples
//! each slow ring accumulates white phase jitter over many stage
//! transits, so the sampled phase performs a random walk modulo the
//! slow period — Saarinen's model ("On Entropy and Bit Patterns of
//! Ring Oscillator Jitter", PAPERS.md) bounds the per-bit entropy
//! from the relative accumulated jitter, and XOR across independent
//! rings sharpens the bound through the piling-up lemma.
//!
//! Both rings are the *event-driven* simulator primitives from
//! `trng-fpga-sim` ([`RingOscillator`]): every stage transit is an
//! explicit event, so injected attacks (periodic modulation, injection
//! locking) propagate into the sampled stream exactly as they would in
//! the carry-chain TDC path.

use std::collections::VecDeque;

use trng_fpga_sim::process::DeviceSeed;
use trng_fpga_sim::ring_oscillator::{RingOscillator, RingOscillatorConfig};
use trng_fpga_sim::rng::SimRng;
use trng_fpga_sim::time::Ps;

use crate::source::{mix_seed, CaptureStats, EntropySource, SourceError, SourceFault, SourceKind};

/// Geometry of a dual-oscillator sampler.
#[derive(Debug, Clone)]
pub struct DualOscConfig {
    /// Configuration of each slow (sampled) ring. The `device` field
    /// is a base identity; ring `i` runs as a distinct device derived
    /// from it so process variation spreads the ring periods apart.
    pub slow: RingOscillatorConfig,
    /// How many independent slow rings are XORed per raw bit.
    pub slow_rings: usize,
    /// Configuration of the fast (sampling) ring.
    pub fast: RingOscillatorConfig,
    /// A sample is taken every `divider`-th edge of the fast ring.
    pub divider: u32,
    /// The backend's natural XOR-compression rate (what
    /// `Conditioning::DesignXor` resolves to for this source).
    pub xor_rate: u32,
}

impl DualOscConfig {
    /// A betrusted-flavoured default: three slow 3-stage rings at
    /// 3.3 ns/stage (T_slow ≈ 19.8 ns) with 90 ps white jitter per
    /// stage, sampled every 15th edge of a 3-stage 1.6 ns/stage fast
    /// ring (τ ≈ 72 ns, so the sweep fraction τ/T_slow lands near the
    /// golden ratio and the phase walk equidistributes quickly).
    pub fn betrusted_default() -> Self {
        let mut slow = RingOscillatorConfig::paper_default();
        slow.stages = 3;
        slow.stage_delay = Ps::from_ns(3.3);
        slow.noise = trng_fpga_sim::noise::NoiseConfig::white_only(Ps::from_ps(90.0));
        slow.history_window = Ps::from_ns(4.0);
        let mut fast = RingOscillatorConfig::paper_default();
        fast.stages = 3;
        fast.stage_delay = Ps::from_ns(1.6);
        fast.noise = trng_fpga_sim::noise::NoiseConfig::white_only(Ps::from_ps(9.0));
        fast.history_window = Ps::from_ns(256.0);
        DualOscConfig {
            slow,
            slow_rings: 3,
            fast,
            divider: 15,
            xor_rate: 7,
        }
    }

    /// Returns the geometry with both rings switched to `backend`.
    ///
    /// The dual-oscillator path has no whole-window engine, but
    /// [`NoiseBackend::Batched`](trng_fpga_sim::noise::NoiseBackend::Batched)
    /// still moves every ring's Gaussian draws onto the block ziggurat
    /// (statistically equivalent, not draw-identical to the scalar
    /// default).
    #[must_use]
    pub fn with_backend(mut self, backend: trng_fpga_sim::noise::NoiseBackend) -> Self {
        self.slow.backend = backend;
        self.fast.backend = backend;
        self
    }

    /// Nominal slow-ring period `2 · stages · stage_delay`.
    pub fn slow_period(&self) -> Ps {
        Ps::from_ps(2.0 * self.slow.stages as f64 * self.slow.stage_delay.as_ps())
    }

    /// Nominal interval between sample instants: `divider` fast-ring
    /// half-periods (node edges alternate once per half-period).
    pub fn sample_interval(&self) -> Ps {
        Ps::from_ps(self.divider as f64 * self.fast.stages as f64 * self.fast.stage_delay.as_ps())
    }

    /// Validates the geometry, including the sampler-ratio bounds: the
    /// fast ring must actually be faster than the slow one, and the
    /// fractional sweep per sample must stay away from 0 and 1 (a
    /// near-integer ratio resamples the same phase and the entropy
    /// claim collapses).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated bound.
    pub fn validate(&self) -> Result<(), String> {
        self.slow
            .validate()
            .map_err(|e| format!("slow ring: {e}"))?;
        self.fast
            .validate()
            .map_err(|e| format!("fast ring: {e}"))?;
        if self.slow_rings == 0 {
            return Err("need at least one slow ring".into());
        }
        if self.divider == 0 {
            return Err("sampling divider must be at least 1".into());
        }
        if self.xor_rate == 0 {
            return Err("xor rate must be at least 1".into());
        }
        let fast_period = 2.0 * self.fast.stages as f64 * self.fast.stage_delay.as_ps();
        let slow_period = self.slow_period().as_ps();
        if fast_period >= slow_period {
            return Err(format!(
                "fast ring period ({fast_period} ps) must be below the slow period \
                 ({slow_period} ps) — the sampler must out-run the sampled ring"
            ));
        }
        let sweep = self.sample_interval().as_ps() / slow_period;
        let frac = sweep.fract();
        if !(0.05..=0.95).contains(&frac) {
            return Err(format!(
                "sweep fraction frac(τ/T_slow) = {frac:.3} is too close to an integer \
                 ratio; pick a divider so it falls in [0.05, 0.95]"
            ));
        }
        Ok(())
    }

    /// Saarinen-style worst-case min-entropy claim per raw bit.
    ///
    /// Accumulated jitter over one sampling interval: the slow ring
    /// transits `τ / d_slow` stages, each adding white sigma, and the
    /// fast ring's `divider · stages` transits jitter the sample
    /// instant itself. With relative sigma `σ_rel = σ_acc / T_slow`,
    /// the predictability bias of one sampled ring is bounded by
    /// `b = (2/π)·exp(−2π²σ_rel²)`, XOR across `R` rings piles up to
    /// `ε = ½·(2·min(b, ½))^R`, and the claim is half the resulting
    /// min-entropy, floored at the same 0.05 the carry-chain claim
    /// uses. For realistic parameters the floor is what you get —
    /// consistent with the deliberately conservative carry-chain
    /// claim.
    pub fn claimed_min_entropy(&self) -> f64 {
        let tau = self.sample_interval().as_ps();
        let slow_sigma = self.slow.noise.white.sigma().as_ps();
        let fast_sigma = self.fast.noise.white.sigma().as_ps();
        let slow_transits = tau / self.slow.stage_delay.as_ps();
        let fast_transits = (self.divider as f64) * self.fast.stages as f64;
        let acc_var =
            slow_sigma * slow_sigma * slow_transits + fast_sigma * fast_sigma * fast_transits;
        let sigma_rel = acc_var.sqrt() / self.slow_period().as_ps();
        let b = (2.0 / core::f64::consts::PI)
            * (-2.0 * core::f64::consts::PI.powi(2) * sigma_rel * sigma_rel).exp();
        let eps = 0.5 * (2.0 * b.min(0.5)).powi(self.slow_rings as i32);
        let h = -(0.5 + eps).log2();
        (h * 0.5).clamp(0.05, 1.0)
    }
}

impl Default for DualOscConfig {
    fn default() -> Self {
        DualOscConfig::betrusted_default()
    }
}

/// State of one live sampler instance (replaced wholesale on rebuild).
#[derive(Debug)]
struct Sampler {
    slow: Vec<RingOscillator>,
    fast: RingOscillator,
    /// How far the fast ring has been scanned for sampling edges.
    scan_to: Ps,
    /// Fast-ring edges seen so far (for the divider).
    edge_count: u64,
    /// Sample instants discovered but not yet consumed.
    pending: VecDeque<Ps>,
    /// Time of the most recently consumed sample instant.
    t_now: Ps,
}

/// Slow ring oscillators sampled on a divided fast-RO clock — see the
/// [module docs](self).
#[derive(Debug)]
pub struct DualOscillatorSource {
    config: DualOscConfig,
    fault_slow: Option<RingOscillatorConfig>,
    seed: u64,
    rebuilds: u64,
    sampler: Sampler,
    samples: u64,
    sim_base_ns: u64,
    raw_base: u64,
    claim: f64,
    stuck: bool,
}

impl DualOscillatorSource {
    /// Builds the sampler from a geometry and a simulation seed.
    ///
    /// # Errors
    ///
    /// [`SourceError::Build`] when [`DualOscConfig::validate`] rejects
    /// the geometry or a ring cannot be constructed.
    pub fn new(config: DualOscConfig, seed: u64) -> Result<Self, SourceError> {
        config.validate().map_err(SourceError::Build)?;
        let claim = config.claimed_min_entropy();
        let sampler = build_sampler(&config, &config.slow, seed, 0)?;
        Ok(DualOscillatorSource {
            config,
            fault_slow: None,
            seed,
            rebuilds: 0,
            sampler,
            samples: 0,
            sim_base_ns: 0,
            raw_base: 0,
            claim,
            stuck: false,
        })
    }

    /// The sampler geometry.
    pub fn config(&self) -> &DualOscConfig {
        &self.config
    }
}

/// Builds all rings of one sampler instance. Ring noise seeds come
/// from the `(seed, rebuild)` lane so every rebuild is a fresh but
/// deterministic draw; device identities derive from `seed` alone so a
/// rebuild models power-cycling the *same* silicon.
fn build_sampler(
    config: &DualOscConfig,
    slow_config: &RingOscillatorConfig,
    seed: u64,
    rebuilds: u64,
) -> Result<Sampler, SourceError> {
    let lane = mix_seed(seed, rebuilds);
    let mut slow = Vec::with_capacity(config.slow_rings);
    for i in 0..config.slow_rings {
        let mut c = slow_config.clone();
        c.device = DeviceSeed::new(mix_seed(seed, 0xD0 + i as u64));
        c.base_site = (c.base_site.0 + 4 * i as u64, c.base_site.1);
        let ring = RingOscillator::new(c, SimRng::seed_from(mix_seed(lane, i as u64)))
            .map_err(SourceError::Build)?;
        slow.push(ring);
    }
    let mut fast_config = config.fast.clone();
    fast_config.device = DeviceSeed::new(mix_seed(seed, 0xFA57));
    let fast = RingOscillator::new(fast_config, SimRng::seed_from(mix_seed(lane, 0xFA57)))
        .map_err(SourceError::Build)?;
    Ok(Sampler {
        slow,
        fast,
        scan_to: Ps::ZERO,
        edge_count: 0,
        pending: VecDeque::new(),
        t_now: Ps::ZERO,
    })
}

impl Sampler {
    /// Scans the fast ring forward until at least one sample instant
    /// is pending. Chunks stay within half the fast ring's history
    /// window so `edges_in` never walks into pruned history.
    fn refill_pending(&mut self, divider: u64) {
        let chunk = Ps::from_ps(self.fast.config().history_window.as_ps() * 0.5);
        while self.pending.is_empty() {
            let from = self.scan_to;
            let to = Ps::from_ps(from.as_ps() + chunk.as_ps());
            self.fast.run_until(to);
            let edges: Vec<Ps> = self.fast.node(0).edge_train().edges_in(from, to).collect();
            for t in edges {
                self.edge_count += 1;
                if self.edge_count.is_multiple_of(divider) {
                    self.pending.push_back(t);
                }
            }
            self.scan_to = to;
        }
    }

    fn next_bit(&mut self, divider: u64) -> bool {
        self.refill_pending(divider);
        let t = self.pending.pop_front().expect("refill left a sample");
        self.t_now = t;
        let mut bit = false;
        for ring in &mut self.slow {
            ring.run_until(t);
            bit ^= ring.node(0).edge_train().level_at(t);
        }
        bit
    }
}

impl EntropySource for DualOscillatorSource {
    fn kind(&self) -> SourceKind {
        SourceKind::DualOscillator
    }

    fn claimed_min_entropy(&self) -> f64 {
        self.claim
    }

    fn native_xor_rate(&self) -> u32 {
        self.config.xor_rate
    }

    fn next_raw_bit(&mut self) -> bool {
        if self.stuck {
            return false;
        }
        self.samples += 1;
        self.sampler.next_bit(self.config.divider as u64)
    }

    fn raw_bits(&self) -> u64 {
        self.raw_base + self.samples
    }

    fn sim_now_ns(&self) -> u64 {
        self.sim_base_ns + self.sampler.t_now.as_ns() as u64
    }

    fn capture_stats(&self) -> CaptureStats {
        CaptureStats {
            samples: self.samples,
            missed_edges: 0,
        }
    }

    fn rebuild(&mut self, fault: Option<&SourceFault>) -> Result<(), SourceError> {
        let slow_config = match fault {
            Some(SourceFault::Stuck) => {
                self.stuck = true;
                return Ok(());
            }
            Some(SourceFault::Attack(a)) => {
                let mut c = self.config.slow.clone();
                c.noise.attack = Some(*a);
                Some(c)
            }
            Some(SourceFault::Env(env)) => {
                let mut c = self.config.slow.clone();
                c.noise = env.apply_to(&self.config.slow.noise);
                Some(c)
            }
            Some(SourceFault::Config(_)) => {
                return Err(SourceError::UnsupportedFault {
                    kind: SourceKind::DualOscillator,
                    fault: "carry-chain config",
                })
            }
            None => None,
        };
        self.fault_slow = slow_config;
        self.sim_base_ns += self.sampler.t_now.as_ns() as u64;
        self.raw_base += self.samples;
        self.samples = 0;
        self.rebuilds += 1;
        let slow = self.fault_slow.as_ref().unwrap_or(&self.config.slow);
        self.sampler = build_sampler(&self.config, slow, self.seed, self.rebuilds)?;
        self.stuck = false;
        Ok(())
    }

    fn noise_backend(&self) -> trng_fpga_sim::noise::NoiseBackend {
        self.config.slow.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_validates_and_floors_its_claim() {
        let config = DualOscConfig::betrusted_default();
        config.validate().expect("default geometry is sound");
        let h = config.claimed_min_entropy();
        assert!((0.05..=1.0).contains(&h), "claim {h} out of range");
    }

    #[test]
    fn integer_sweep_ratio_is_rejected() {
        let mut config = DualOscConfig::betrusted_default();
        // τ = divider · stages · d_fast; make it an exact multiple of
        // T_slow = 2 · stages · d_slow.
        config.fast.stage_delay = Ps::from_ns(1.1);
        config.divider = 12; // τ = 12·3·1.1 = 39.6 = 2·19.8
        let err = config.validate().expect_err("integer sweep must fail");
        assert!(err.contains("sweep fraction"), "unexpected error: {err}");
    }

    #[test]
    fn fast_ring_must_outrun_the_slow_ring() {
        let mut config = DualOscConfig::betrusted_default();
        config.fast.stage_delay = Ps::from_ns(5.0);
        let err = config.validate().expect_err("slow sampler must fail");
        assert!(err.contains("out-run"), "unexpected error: {err}");
    }

    #[test]
    fn same_seed_means_same_stream() {
        let mut a =
            DualOscillatorSource::new(DualOscConfig::betrusted_default(), 41).expect("builds");
        let mut b =
            DualOscillatorSource::new(DualOscConfig::betrusted_default(), 41).expect("builds");
        let mut x = [0u8; 64];
        let mut y = [0u8; 64];
        a.fill_raw(&mut x);
        b.fill_raw(&mut y);
        assert_eq!(x, y);
        assert_eq!(a.raw_bits(), 512);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a =
            DualOscillatorSource::new(DualOscConfig::betrusted_default(), 1).expect("builds");
        let mut b =
            DualOscillatorSource::new(DualOscConfig::betrusted_default(), 2).expect("builds");
        let mut x = [0u8; 64];
        let mut y = [0u8; 64];
        a.fill_raw(&mut x);
        b.fill_raw(&mut y);
        assert_ne!(x, y);
    }
}
