//! The carry-chain TDC backend: [`CarryChainTrng`] behind the
//! [`EntropySource`] contract.
//!
//! This adapter is the byte-identity anchor for the whole subsystem:
//! given the same `(TrngConfig, seed)` and the same sequence of
//! rebuilds, it produces *exactly* the raw stream the pool's
//! hard-wired shard produced before the trait existed — same seed
//! lanes (`mix_seed(seed, rebuild_count)`), same time/raw-bit banking
//! across rebuilds, same fault-to-config mapping. Replay fixtures
//! recorded against the old pool therefore stay valid.

use trng_core::trng::{CarryChainTrng, TrngConfig};
use trng_fpga_sim::time::Ps;

use crate::source::{mix_seed, CaptureStats, EntropySource, SourceError, SourceFault, SourceKind};

/// The DAC'15 carry-chain TDC simulator as a pool backend.
#[derive(Debug)]
pub struct CarryChainSource {
    base: TrngConfig,
    seed: u64,
    rebuilds: u64,
    trng: CarryChainTrng,
    sim_base_ns: u64,
    raw_base: u64,
    claim: f64,
    stuck: bool,
}

impl CarryChainSource {
    /// Builds the source from a carry-chain configuration and a
    /// simulation seed (the same pair [`CarryChainTrng::new`] takes).
    ///
    /// # Errors
    ///
    /// [`SourceError::Build`] when the entropy claim cannot be derived
    /// from the parameters or the simulator rejects the configuration.
    pub fn new(config: TrngConfig, seed: u64) -> Result<Self, SourceError> {
        let claim = trng_core::selftest::claimed_min_entropy(&config)?;
        let trng = CarryChainTrng::new(config.clone(), seed)?;
        Ok(CarryChainSource {
            base: config,
            seed,
            rebuilds: 0,
            trng,
            sim_base_ns: 0,
            raw_base: 0,
            claim,
            stuck: false,
        })
    }

    /// The live simulator configuration (after any applied fault).
    pub fn config(&self) -> &TrngConfig {
        self.trng.config()
    }

    fn faulted_config(&self, fault: &SourceFault) -> Result<TrngConfig, SourceError> {
        match fault {
            SourceFault::Attack(a) => {
                let mut c = self.base.clone();
                c.attack = Some(*a);
                Ok(c)
            }
            SourceFault::Config(c) => Ok((**c).clone()),
            SourceFault::Env(env) => Ok(self.base.with_environment(env)),
            SourceFault::Stuck => unreachable!("stuck handled before config mapping"),
        }
    }
}

impl EntropySource for CarryChainSource {
    fn kind(&self) -> SourceKind {
        SourceKind::CarryChain
    }

    fn claimed_min_entropy(&self) -> f64 {
        self.claim
    }

    fn native_xor_rate(&self) -> u32 {
        self.base.design.np
    }

    fn next_raw_bit(&mut self) -> bool {
        if self.stuck {
            return false;
        }
        self.trng.next_raw_bit()
    }

    fn fill_raw(&mut self, out: &mut [u8]) {
        if self.stuck {
            out.fill(0);
            return;
        }
        self.trng.fill_raw(out);
    }

    fn raw_bits(&self) -> u64 {
        self.raw_base + self.trng.stats().samples
    }

    fn sim_now_ns(&self) -> u64 {
        self.sim_base_ns + self.trng.now().as_ns() as u64
    }

    fn capture_stats(&self) -> CaptureStats {
        let stats = self.trng.stats();
        CaptureStats {
            samples: stats.samples,
            missed_edges: stats.missed_edges,
        }
    }

    fn rebuild(&mut self, fault: Option<&SourceFault>) -> Result<(), SourceError> {
        if let Some(SourceFault::Stuck) = fault {
            // Freeze in place: the live instance stops advancing, so
            // no time is banked and no fresh seed lane is consumed.
            self.stuck = true;
            return Ok(());
        }
        let config = match fault {
            Some(f) => self.faulted_config(f)?,
            None => self.base.clone(),
        };
        self.sim_base_ns += self.trng.now().as_ns() as u64;
        self.raw_base += self.trng.stats().samples;
        self.rebuilds += 1;
        self.trng = CarryChainTrng::new(config, mix_seed(self.seed, self.rebuilds))?;
        self.stuck = false;
        Ok(())
    }

    fn monitor_view(&self) -> Option<(&TrngConfig, Ps)> {
        Some((self.trng.config(), self.trng.now()))
    }

    fn noise_backend(&self) -> trng_fpga_sim::noise::NoiseBackend {
        // Report what the live instance actually runs: a requested
        // batched engine that fell back to scalar reads as scalar.
        self.trng.active_noise_backend()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source(seed: u64) -> CarryChainSource {
        CarryChainSource::new(TrngConfig::paper_k1(), seed).expect("paper config builds")
    }

    #[test]
    fn matches_the_bare_trng_bit_for_bit() {
        let mut src = source(77);
        let mut bare = CarryChainTrng::new(TrngConfig::paper_k1(), 77).expect("builds");
        for _ in 0..4_096 {
            assert_eq!(src.next_raw_bit(), bare.next_raw_bit());
        }
        let mut a = [0u8; 64];
        let mut b = [0u8; 64];
        src.fill_raw(&mut a);
        bare.fill_raw(&mut b);
        assert_eq!(a, b);
        assert_eq!(src.raw_bits(), bare.stats().samples);
    }

    #[test]
    fn rebuild_banks_time_and_derives_the_next_lane() {
        let mut src = source(9);
        let mut buf = [0u8; 32];
        src.fill_raw(&mut buf);
        let before_ns = src.sim_now_ns();
        let before_bits = src.raw_bits();
        src.rebuild(None).expect("healthy rebuild");
        assert_eq!(src.sim_now_ns(), before_ns);
        assert_eq!(src.raw_bits(), before_bits);

        // The replacement runs on the lane the old shard used.
        let mut lane = CarryChainTrng::new(TrngConfig::paper_k1(), mix_seed(9, 1)).expect("builds");
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        src.fill_raw(&mut a);
        lane.fill_raw(&mut b);
        assert_eq!(a, b);
        assert!(src.sim_now_ns() > before_ns);
    }

    #[test]
    fn stuck_freezes_output_and_clock_until_rebuilt() {
        let mut src = source(3);
        let mut buf = [0u8; 8];
        src.fill_raw(&mut buf);
        let frozen_ns = src.sim_now_ns();
        src.rebuild(Some(&SourceFault::Stuck))
            .expect("stuck applies");
        let mut out = [0xFFu8; 16];
        src.fill_raw(&mut out);
        assert!(out.iter().all(|&b| b == 0));
        assert!(!src.next_raw_bit());
        assert_eq!(src.sim_now_ns(), frozen_ns);
        src.rebuild(None).expect("recovers");
        let mut post = [0u8; 16];
        src.fill_raw(&mut post);
        assert!(post.iter().any(|&b| b != 0));
    }
}
