//! Property-based tests of the statistical substrate.
//!
//! Runs under the hermetic `trng-testkit` harness: each property
//! executes `TRNG_PROP_CASES` (default 64) independently seeded cases
//! and reports the failing seed for replay via `TRNG_PROP_SEED`.

use trng_stattests::bits::BitVec;
use trng_stattests::fft::{dft, Complex};
use trng_stattests::special::{erf, erfc, igam, igamc, ln_gamma};
use trng_testkit::prng::{Rng, SeedableRng, StdRng};
use trng_testkit::prop::{vec_bool, vec_f64};
use trng_testkit::props;

props! {
    fn bitvec_roundtrips_bools(rng) {
        let bits = vec_bool(rng, 0..300);
        let v = BitVec::from_bools(&bits);
        assert_eq!(v.len(), bits.len());
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(v.get(i), b);
        }
        let back: Vec<bool> = v.iter().collect();
        assert_eq!(back, bits);
    }

    fn bitvec_count_ones_matches_model(rng) {
        let bits = vec_bool(rng, 1..300);
        let start_frac = rng.gen_range(0.0..1.0f64);
        let len_frac = rng.gen_range(0.0..1.0f64);
        let v = BitVec::from_bools(&bits);
        assert_eq!(v.count_ones(), bits.iter().filter(|&&b| b).count());
        let start = (start_frac * bits.len() as f64) as usize;
        let len = ((bits.len() - start) as f64 * len_frac) as usize;
        let expected = bits[start..start + len].iter().filter(|&&b| b).count();
        assert_eq!(v.count_ones_in(start, len), expected);
    }

    fn bitvec_window_value_matches_model(rng) {
        let bits = vec_bool(rng, 8..100);
        let start_frac = rng.gen_range(0.0..1.0f64);
        let width = rng.gen_range(1usize..9);
        let v = BitVec::from_bools(&bits);
        let start = ((bits.len() - width) as f64 * start_frac) as usize;
        let mut expected = 0u64;
        for &b in &bits[start..start + width] {
            expected = expected << 1 | u64::from(b);
        }
        assert_eq!(v.window_value(start, width), expected);
    }

    fn bitvec_slice_matches_model(rng) {
        let bits = vec_bool(rng, 1..200);
        let start_frac = rng.gen_range(0.0..1.0f64);
        let len_frac = rng.gen_range(0.0..1.0f64);
        let v = BitVec::from_bools(&bits);
        let start = (start_frac * bits.len() as f64) as usize;
        let len = ((bits.len() - start) as f64 * len_frac) as usize;
        let s = v.slice(start, len);
        let expected: Vec<bool> = bits[start..start + len].to_vec();
        let got: Vec<bool> = s.iter().collect();
        assert_eq!(got, expected);
    }

    fn incomplete_gamma_complementarity(rng) {
        let a = rng.gen_range(0.05..30.0f64);
        let x = rng.gen_range(0.0..60.0f64);
        let s = igam(a, x) + igamc(a, x);
        assert!((s - 1.0).abs() < 1e-10, "a={} x={} sum={}", a, x, s);
    }

    fn igamc_monotone_in_x(rng) {
        let a = rng.gen_range(0.1..20.0f64);
        let x = rng.gen_range(0.0..40.0f64);
        let dx = rng.gen_range(0.0..5.0f64);
        assert!(igamc(a, x + dx) <= igamc(a, x) + 1e-12);
    }

    fn ln_gamma_recurrence(rng) {
        let x = rng.gen_range(0.5..50.0f64);
        // Gamma(x+1) = x * Gamma(x).
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        assert!((lhs - rhs).abs() < 1e-10, "x = {}", x);
    }

    fn erf_bounds_and_complement(rng) {
        let x = rng.gen_range(-5.0..5.0f64);
        assert!(erf(x).abs() <= 1.0);
        assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13);
    }

    fn dft_matches_naive_for_arbitrary_lengths(rng) {
        let re = vec_f64(rng, -2.0..2.0, 1..24);
        let input: Vec<Complex> = re.iter().map(|&r| (r, 0.0)).collect();
        let got = dft(&input);
        let n = input.len();
        for (k, got_k) in got.iter().enumerate() {
            let mut acc = (0.0f64, 0.0f64);
            for (j, &(xr, _)) in input.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                acc.0 += xr * ang.cos();
                acc.1 += xr * ang.sin();
            }
            assert!((got_k.0 - acc.0).abs() < 1e-7, "k={} re", k);
            assert!((got_k.1 - acc.1).abs() < 1e-7, "k={} im", k);
        }
    }

    fn dft_parseval(rng) {
        let re = vec_f64(rng, -2.0..2.0, 1..40);
        let input: Vec<Complex> = re.iter().map(|&r| (r, 0.0)).collect();
        let out = dft(&input);
        let time: f64 = input.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum();
        let freq: f64 =
            out.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum::<f64>() / input.len() as f64;
        assert!((time - freq).abs() < 1e-7);
    }

    fn cheap_tests_produce_valid_p_values(rng) {
        let seed = rng.gen::<u64>();
        let n = rng.gen_range(200usize..2_000);
        let mut bit_rng = StdRng::seed_from_u64(seed);
        let bits: BitVec = (0..n).map(|_| bit_rng.gen::<bool>()).collect();
        for outcome in [
            trng_stattests::nist::frequency::test(&bits),
            trng_stattests::nist::block_frequency::test(&bits),
            trng_stattests::nist::runs::test(&bits),
            trng_stattests::nist::serial::test(&bits),
            trng_stattests::nist::cusum::test(&bits),
            trng_stattests::nist::approx_entropy::test(&bits),
        ].into_iter().flatten() {
            for &p in &outcome.p_values {
                assert!((0.0..=1.0).contains(&p), "{}: p = {}", outcome.name, p);
            }
        }
    }

    fn uniformity_p_value_is_valid(rng) {
        let n = rng.gen_range(0usize..200);
        let ps: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..=1.0f64)).collect();
        let u = trng_stattests::assessment::uniformity_p_value(&ps);
        assert!((0.0..=1.0).contains(&u));
    }
}
