//! Property-based tests of the statistical substrate.

use proptest::prelude::*;
use trng_stattests::bits::BitVec;
use trng_stattests::fft::{dft, Complex};
use trng_stattests::special::{erf, erfc, igam, igamc, ln_gamma};

proptest! {
    #[test]
    fn bitvec_roundtrips_bools(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
        let v = BitVec::from_bools(&bits);
        prop_assert_eq!(v.len(), bits.len());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(v.get(i), b);
        }
        let back: Vec<bool> = v.iter().collect();
        prop_assert_eq!(back, bits);
    }

    #[test]
    fn bitvec_count_ones_matches_model(
        bits in proptest::collection::vec(any::<bool>(), 1..300),
        start_frac in 0.0..1.0f64,
        len_frac in 0.0..1.0f64,
    ) {
        let v = BitVec::from_bools(&bits);
        prop_assert_eq!(v.count_ones(), bits.iter().filter(|&&b| b).count());
        let start = (start_frac * bits.len() as f64) as usize;
        let len = ((bits.len() - start) as f64 * len_frac) as usize;
        let expected = bits[start..start + len].iter().filter(|&&b| b).count();
        prop_assert_eq!(v.count_ones_in(start, len), expected);
    }

    #[test]
    fn bitvec_window_value_matches_model(
        bits in proptest::collection::vec(any::<bool>(), 8..100),
        start_frac in 0.0..1.0f64,
        width in 1usize..9,
    ) {
        let v = BitVec::from_bools(&bits);
        let start = ((bits.len() - width) as f64 * start_frac) as usize;
        let mut expected = 0u64;
        for &b in &bits[start..start + width] {
            expected = expected << 1 | u64::from(b);
        }
        prop_assert_eq!(v.window_value(start, width), expected);
    }

    #[test]
    fn bitvec_slice_matches_model(
        bits in proptest::collection::vec(any::<bool>(), 1..200),
        start_frac in 0.0..1.0f64,
        len_frac in 0.0..1.0f64,
    ) {
        let v = BitVec::from_bools(&bits);
        let start = (start_frac * bits.len() as f64) as usize;
        let len = ((bits.len() - start) as f64 * len_frac) as usize;
        let s = v.slice(start, len);
        let expected: Vec<bool> = bits[start..start + len].to_vec();
        let got: Vec<bool> = s.iter().collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn incomplete_gamma_complementarity(a in 0.05..30.0f64, x in 0.0..60.0f64) {
        let s = igam(a, x) + igamc(a, x);
        prop_assert!((s - 1.0).abs() < 1e-10, "a={} x={} sum={}", a, x, s);
    }

    #[test]
    fn igamc_monotone_in_x(a in 0.1..20.0f64, x in 0.0..40.0f64, dx in 0.0..5.0f64) {
        prop_assert!(igamc(a, x + dx) <= igamc(a, x) + 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence(x in 0.5..50.0f64) {
        // Gamma(x+1) = x * Gamma(x).
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-10, "x = {}", x);
    }

    #[test]
    fn erf_bounds_and_complement(x in -5.0..5.0f64) {
        prop_assert!(erf(x).abs() <= 1.0);
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13);
    }

    #[test]
    fn dft_matches_naive_for_arbitrary_lengths(
        re in proptest::collection::vec(-2.0..2.0f64, 1..24),
    ) {
        let input: Vec<Complex> = re.iter().map(|&r| (r, 0.0)).collect();
        let got = dft(&input);
        let n = input.len();
        for (k, got_k) in got.iter().enumerate() {
            let mut acc = (0.0f64, 0.0f64);
            for (j, &(xr, _)) in input.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                acc.0 += xr * ang.cos();
                acc.1 += xr * ang.sin();
            }
            prop_assert!((got_k.0 - acc.0).abs() < 1e-7, "k={} re", k);
            prop_assert!((got_k.1 - acc.1).abs() < 1e-7, "k={} im", k);
        }
    }

    #[test]
    fn dft_parseval(re in proptest::collection::vec(-2.0..2.0f64, 1..40)) {
        let input: Vec<Complex> = re.iter().map(|&r| (r, 0.0)).collect();
        let out = dft(&input);
        let time: f64 = input.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum();
        let freq: f64 =
            out.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum::<f64>() / input.len() as f64;
        prop_assert!((time - freq).abs() < 1e-7);
    }

    #[test]
    fn cheap_tests_produce_valid_p_values(
        seed in any::<u64>(),
        n in 200usize..2_000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let bits: BitVec = (0..n).map(|_| rng.gen::<bool>()).collect();
        for outcome in [
            trng_stattests::nist::frequency::test(&bits),
            trng_stattests::nist::block_frequency::test(&bits),
            trng_stattests::nist::runs::test(&bits),
            trng_stattests::nist::serial::test(&bits),
            trng_stattests::nist::cusum::test(&bits),
            trng_stattests::nist::approx_entropy::test(&bits),
        ].into_iter().flatten() {
            for &p in &outcome.p_values {
                prop_assert!((0.0..=1.0).contains(&p), "{}: p = {}", outcome.name, p);
            }
        }
    }

    #[test]
    fn uniformity_p_value_is_valid(
        ps in proptest::collection::vec(0.0..=1.0f64, 0..200),
    ) {
        let u = trng_stattests::assessment::uniformity_p_value(&ps);
        prop_assert!((0.0..=1.0).contains(&u));
    }
}
