//! FIPS 140-2 power-up statistical tests.
//!
//! The classic quick quartet over a single 20 000-bit sample —
//! historically the on-chip self-test of hardware RNGs, and a natural
//! candidate for the paper's "embedded tests" future work (cheap
//! enough for an FPGA). Bounds follow FIPS 140-2 (change notice):
//!
//! * monobit: ones in `(9725, 10275)`;
//! * poker: `1.03 < X < 57.4`;
//! * runs: per-length intervals;
//! * long run: no run ≥ 26.

use crate::bits::BitVec;

use core::fmt;

/// Sample size the tests operate on.
pub const SAMPLE_BITS: usize = 20_000;

/// Result of the FIPS 140-2 quartet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fips140Report {
    /// Monobit verdict.
    pub monobit: bool,
    /// Poker verdict.
    pub poker: bool,
    /// Runs verdict.
    pub runs: bool,
    /// Long-run verdict.
    pub long_run: bool,
}

impl Fips140Report {
    /// `true` if all four tests passed.
    pub fn all_passed(&self) -> bool {
        self.monobit && self.poker && self.runs && self.long_run
    }
}

impl fmt::Display for Fips140Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "monobit: {}, poker: {}, runs: {}, long run: {} => {}",
            self.monobit,
            self.poker,
            self.runs,
            self.long_run,
            if self.all_passed() { "PASS" } else { "FAIL" }
        )
    }
}

/// FIPS 140-2 runs-test intervals for run lengths 1..=5 and ≥6.
const RUNS_BOUNDS: [(u64, u64); 6] = [
    (2315, 2685),
    (1114, 1386),
    (527, 723),
    (240, 384),
    (103, 209),
    (103, 209),
];

/// Runs the FIPS 140-2 tests on the first 20 000 bits.
///
/// # Panics
///
/// Panics if fewer than 20 000 bits are provided.
pub fn run_fips140(bits: &BitVec) -> Fips140Report {
    assert!(
        bits.len() >= SAMPLE_BITS,
        "FIPS 140-2 needs {SAMPLE_BITS} bits, got {}",
        bits.len()
    );
    // Monobit.
    let ones = bits.count_ones_in(0, SAMPLE_BITS);
    let monobit = (9726..10275).contains(&ones);

    // Poker.
    let mut counts = [0u64; 16];
    for i in 0..SAMPLE_BITS / 4 {
        counts[bits.window_value(i * 4, 4) as usize] += 1;
    }
    let sum_sq: f64 = counts.iter().map(|&c| (c * c) as f64).sum();
    let x = 16.0 / 5000.0 * sum_sq - 5000.0;
    let poker = x > 1.03 && x < 57.4;

    // Runs and long run in one pass.
    let mut run_counts = [[0u64; 6]; 2];
    let mut longest = 1usize;
    let mut run_val = bits.get(0);
    let mut run_len = 1usize;
    for i in 1..SAMPLE_BITS {
        let b = bits.get(i);
        if b == run_val {
            run_len += 1;
        } else {
            run_counts[usize::from(run_val)][run_len.min(6) - 1] += 1;
            longest = longest.max(run_len);
            run_val = b;
            run_len = 1;
        }
    }
    run_counts[usize::from(run_val)][run_len.min(6) - 1] += 1;
    longest = longest.max(run_len);
    let runs = (0..2).all(|v| {
        RUNS_BOUNDS
            .iter()
            .enumerate()
            .all(|(i, &(lo, hi))| (lo..=hi).contains(&run_counts[v][i]))
    });
    let long_run = longest < 26;

    Fips140Report {
        monobit,
        poker,
        runs,
        long_run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_bits(n: usize, seed: u64) -> BitVec {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen::<bool>()).collect()
    }

    #[test]
    fn random_data_passes() {
        for seed in 50..60 {
            let r = run_fips140(&random_bits(SAMPLE_BITS, seed));
            assert!(r.all_passed(), "seed {seed}: {r}");
        }
    }

    #[test]
    fn constant_data_fails_everything_but_poker_edge() {
        let bits: BitVec = (0..SAMPLE_BITS).map(|_| true).collect();
        let r = run_fips140(&bits);
        assert!(!r.monobit);
        assert!(!r.poker);
        assert!(!r.runs);
        assert!(!r.long_run);
        assert!(!r.all_passed());
    }

    #[test]
    fn alternating_data_fails_runs() {
        let bits: BitVec = (0..SAMPLE_BITS).map(|i| i % 2 == 0).collect();
        let r = run_fips140(&bits);
        assert!(r.monobit);
        assert!(!r.runs);
    }

    #[test]
    fn single_long_run_fails_only_long_run() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(61);
        let mut bits = BitVec::new();
        for i in 0..SAMPLE_BITS {
            if (5000..5026).contains(&i) {
                bits.push(true);
            } else {
                bits.push(rng.gen());
            }
        }
        let r = run_fips140(&bits);
        assert!(!r.long_run, "{r}");
    }

    #[test]
    fn mild_bias_fails_monobit() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(62);
        let bits: BitVec = (0..SAMPLE_BITS).map(|_| rng.gen::<f64>() < 0.53).collect();
        let r = run_fips140(&bits);
        assert!(!r.monobit);
    }

    #[test]
    fn display_summarizes() {
        let r = run_fips140(&random_bits(SAMPLE_BITS, 63));
        assert!(format!("{r}").contains("PASS"));
    }

    #[test]
    #[should_panic(expected = "needs 20000 bits")]
    fn rejects_short_input() {
        let _ = run_fips140(&random_bits(100, 64));
    }
}
