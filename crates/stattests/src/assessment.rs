//! Multi-sequence assessment — SP 800-22 §4.2.
//!
//! A single sequence failing one of dozens of P-values at α = 0.01 is
//! expected occasionally even for a perfect source. NIST's acceptance
//! criterion therefore evaluates *ensembles*: run the battery on `S`
//! sequences, then
//!
//! 1. **Proportion test** (§4.2.1): for each test statistic, the
//!    fraction of sequences passing must lie above
//!    `(1 − α) − 3·sqrt(α(1 − α)/S)`;
//! 2. **Uniformity test** (§4.2.2): the P-values of each statistic
//!    must be uniform on `[0, 1]` — χ² over ten bins with a threshold
//!    of `P_T ≥ 0.0001`.
//!
//! This is the machinery behind Table 1's `n_NIST` search: a
//! configuration "passes all NIST tests" when every statistic meets
//! both criteria.

use crate::bits::BitVec;
use crate::nist::battery::run_battery_with_alpha;
use crate::nist::ALPHA;
use crate::special::igamc;

use std::collections::BTreeMap;

/// Assessment of one statistic across sequences.
#[derive(Debug, Clone, PartialEq)]
pub struct StatAssessment {
    /// Test name.
    pub name: String,
    /// P-values collected across sequences (all statistics of the
    /// test pooled, as the NIST tool does per-statistic files; we pool
    /// per test which is slightly stricter).
    pub p_values: Vec<f64>,
    /// Fraction of P-values at or above alpha.
    pub proportion: f64,
    /// Minimum acceptable proportion for this ensemble size.
    pub proportion_threshold: f64,
    /// Uniformity P-value (χ² over 10 bins).
    pub uniformity_p: f64,
}

impl StatAssessment {
    /// `true` if both §4.2 criteria are met.
    pub fn passes(&self) -> bool {
        self.proportion >= self.proportion_threshold && self.uniformity_p >= 0.0001
    }
}

/// Ensemble assessment over all tests.
#[derive(Debug, Clone)]
pub struct Assessment {
    /// Per-test assessments, ordered by name.
    pub stats: Vec<StatAssessment>,
    /// Number of sequences evaluated.
    pub sequences: usize,
}

impl Assessment {
    /// `true` if every test's ensemble criteria are met.
    pub fn all_passed(&self) -> bool {
        self.stats.iter().all(StatAssessment::passes)
    }

    /// Names of tests whose ensemble criteria failed.
    pub fn failures(&self) -> Vec<&str> {
        self.stats
            .iter()
            .filter(|s| !s.passes())
            .map(|s| s.name.as_str())
            .collect()
    }
}

/// Uniformity χ² of P-values over ten equal bins (§4.2.2).
pub fn uniformity_p_value(p_values: &[f64]) -> f64 {
    if p_values.is_empty() {
        return 1.0;
    }
    let mut bins = [0u64; 10];
    for &p in p_values {
        let idx = ((p * 10.0) as usize).min(9);
        bins[idx] += 1;
    }
    let e = p_values.len() as f64 / 10.0;
    let chi2: f64 = bins
        .iter()
        .map(|&b| (b as f64 - e) * (b as f64 - e) / e)
        .sum();
    igamc(4.5, chi2 / 2.0)
}

/// Proportion threshold for an ensemble of `s` sequences (§4.2.1).
pub fn proportion_threshold(s: usize, alpha: f64) -> f64 {
    let p_hat = 1.0 - alpha;
    p_hat - 3.0 * (p_hat * alpha / s as f64).sqrt()
}

/// Runs the battery over an ensemble of sequences and applies the
/// §4.2 acceptance criteria at α = 0.01.
///
/// # Panics
///
/// Panics if `sequences` is empty.
pub fn assess(sequences: &[BitVec]) -> Assessment {
    assess_with_alpha(sequences, ALPHA)
}

/// Ensemble assessment at an explicit significance level.
///
/// # Panics
///
/// Panics if `sequences` is empty or `alpha` is not in `(0, 1)`.
pub fn assess_with_alpha(sequences: &[BitVec], alpha: f64) -> Assessment {
    assert!(!sequences.is_empty(), "need at least one sequence");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    let mut per_test: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
    for seq in sequences {
        let battery = run_battery_with_alpha(seq, alpha);
        for result in battery.results.iter().flatten() {
            per_test
                .entry(result.name)
                .or_default()
                .extend(result.p_values.iter().copied());
        }
    }
    let stats = per_test
        .into_iter()
        .map(|(name, p_values)| {
            let count = p_values.len();
            let passing = p_values.iter().filter(|&&p| p >= alpha).count() as f64;
            let proportion = passing / count as f64;
            // The binomial confidence band is computed from the number
            // of pooled P-values of this statistic. For small pools
            // (ensembles far below NIST's recommended 55+ sequences)
            // the band is additionally floored so that a single
            // failing P-value cannot reject the ensemble.
            let mut threshold = proportion_threshold(count, alpha);
            if count <= 30 {
                threshold = threshold.min((count as f64 - 1.5) / count as f64);
            }
            let uniformity_p = uniformity_p_value(&p_values);
            StatAssessment {
                name: name.to_string(),
                p_values,
                proportion,
                proportion_threshold: threshold,
                uniformity_p,
            }
        })
        .collect();
    Assessment {
        stats,
        sequences: sequences.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_bits(n: usize, seed: u64) -> BitVec {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen::<bool>()).collect()
    }

    #[test]
    fn threshold_matches_nist_example() {
        // SP 800-22 §4.2.1 example: 1000 sequences at alpha = 0.01 ->
        // threshold ~ 0.980561.
        let t = proportion_threshold(1000, 0.01);
        assert!((t - 0.980_561).abs() < 1e-5, "t = {t}");
    }

    #[test]
    fn uniformity_of_uniform_p_values_is_high() {
        let ps: Vec<f64> = (0..1000).map(|i| (i as f64 + 0.5) / 1000.0).collect();
        let p = uniformity_p_value(&ps);
        assert!(p > 0.99, "p = {p}");
    }

    #[test]
    fn uniformity_of_clustered_p_values_is_low() {
        let ps: Vec<f64> = (0..1000).map(|_| 0.35).collect();
        let p = uniformity_p_value(&ps);
        assert!(p < 1e-10, "p = {p}");
    }

    #[test]
    fn good_ensemble_passes() {
        let seqs: Vec<BitVec> = (0..8).map(|s| random_bits(60_000, 100 + s)).collect();
        let a = assess(&seqs);
        assert!(a.all_passed(), "failures: {:?}", a.failures());
        assert_eq!(a.sequences, 8);
        assert!(!a.stats.is_empty());
    }

    #[test]
    fn biased_ensemble_fails() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let seqs: Vec<BitVec> = (0..6)
            .map(|s| {
                let mut rng = trng_testkit::prng::StdRng::seed_from_u64(200 + s);
                (0..60_000).map(|_| rng.gen::<f64>() < 0.53).collect()
            })
            .collect();
        let a = assess(&seqs);
        assert!(!a.all_passed());
        assert!(a.failures().iter().any(|n| n.contains("frequency")));
    }

    #[test]
    fn empty_p_values_are_uniform() {
        assert_eq!(uniformity_p_value(&[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one sequence")]
    fn rejects_empty_ensemble() {
        let _ = assess(&[]);
    }
}
