//! Special functions used by the test statistics.
//!
//! The NIST SP 800-22 P-values are expressed through the complementary
//! error function `erfc` and the regularized upper incomplete gamma
//! function `igamc(a, x) = Q(a, x) = Γ(a, x)/Γ(a)`. Both are
//! implemented from scratch (no external math crate is on the approved
//! dependency list) following the classical series / continued-fraction
//! split, and validated against published reference values.

/// Natural log of the gamma function (Lanczos approximation, g = 7,
/// n = 9), accurate to ~1e-13 relative for positive arguments.
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    // Lanczos coefficients (g = 7).
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = core::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * core::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized *lower* incomplete gamma function `P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn igam(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "shape must be positive, got {a}");
    assert!(x >= 0.0, "argument must be non-negative, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        igam_series(a, x)
    } else {
        1.0 - igamc_cf(a, x)
    }
}

/// Regularized *upper* incomplete gamma function `Q(a, x) = 1 − P(a, x)`
/// — the `igamc` of the NIST test suite.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
///
/// # Examples
///
/// ```
/// use trng_stattests::special::igamc;
/// // Q(1, x) = exp(-x).
/// assert!((igamc(1.0, 2.0) - (-2.0f64).exp()).abs() < 1e-14);
/// ```
pub fn igamc(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "shape must be positive, got {a}");
    assert!(x >= 0.0, "argument must be non-negative, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - igam_series(a, x)
    } else {
        igamc_cf(a, x)
    }
}

/// Series expansion of `P(a, x)`, for `x < a + 1`.
fn igam_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut term = sum;
    for _ in 0..500 {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * 1e-17 {
            break;
        }
    }
    (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp().min(1.0)
}

/// Continued fraction for `Q(a, x)`, for `x >= a + 1` (modified Lentz).
fn igamc_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    ((a * x.ln() - x - ln_gamma(a)).exp() * h).clamp(0.0, 1.0)
}

/// Complementary error function, accurate in the tail.
///
/// Same construction as in the `trng-model` crate (series +
/// continued fraction), duplicated here so the statistical-test
/// substrate stays dependency-free.
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x <= 2.0 {
        1.0 - erf_series(x)
    } else {
        erfc_cf(x)
    }
}

/// Error function `erf(x) = 1 − erfc(x)`.
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x < 0.0 {
        return -erf(-x);
    }
    if x <= 2.0 {
        erf_series(x)
    } else {
        1.0 - erfc_cf(x)
    }
}

fn erf_series(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    let mut n = 0u32;
    loop {
        n += 1;
        term *= 2.0 * x2 / (2.0 * f64::from(n) + 1.0);
        let new_sum = sum + term;
        if new_sum == sum || n > 200 {
            break;
        }
        sum = new_sum;
    }
    core::f64::consts::FRAC_2_SQRT_PI * (-x2).exp() * sum
}

fn erfc_cf(x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut f = x;
    let mut c = f;
    let mut d = 0.0f64;
    for k in 1..=500u32 {
        let a = f64::from(k) / 2.0;
        d = x + a * d;
        if d.abs() < TINY {
            d = TINY;
        }
        d = 1.0 / d;
        c = x + a / c;
        if c.abs() < TINY {
            c = TINY;
        }
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x * x).exp() / core::f64::consts::PI.sqrt() / f
}

/// Standard-normal CDF `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / core::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_on_integers_matches_factorials() {
        // Gamma(n) = (n-1)!
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &f) in facts.iter().enumerate() {
            let got = ln_gamma(n as f64 + 1.0);
            assert!((got - f64::ln(f)).abs() < 1e-12, "n = {n}");
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Gamma(1/2) = sqrt(pi).
        let want = core::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - want).abs() < 1e-13);
        // Gamma(3/2) = sqrt(pi)/2.
        let want = (core::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((ln_gamma(1.5) - want).abs() < 1e-13);
    }

    #[test]
    fn igamc_known_values() {
        // Q(1, x) = exp(-x).
        for x in [0.1, 0.5, 1.0, 3.0, 10.0] {
            assert!((igamc(1.0, x) - (-x).exp()).abs() < 1e-13, "x = {x}");
        }
        // Q(2, x) = (1 + x) exp(-x).
        for x in [0.1, 1.0, 5.0] {
            assert!(
                (igamc(2.0, x) - (1.0 + x) * (-x).exp()).abs() < 1e-13,
                "x = {x}"
            );
        }
        // Chi-squared survival with k = 4 dof at x = 9.49 (95 %):
        // Q(2, 4.745) ~ 0.05.
        let p = igamc(2.0, 9.488 / 2.0);
        assert!((p - 0.05).abs() < 0.001, "p = {p}");
    }

    #[test]
    fn igam_igamc_sum_to_one() {
        for a in [0.5, 1.0, 2.5, 10.0] {
            for x in [0.1, 1.0, 2.0, 15.0] {
                let s = igam(a, x) + igamc(a, x);
                assert!((s - 1.0).abs() < 1e-12, "a {a} x {x}: {s}");
            }
        }
    }

    #[test]
    fn igamc_is_monotone_decreasing_in_x() {
        let mut prev = 1.0;
        for i in 1..100 {
            let q = igamc(3.0, i as f64 * 0.3);
            assert!(q <= prev + 1e-14);
            prev = q;
        }
    }

    #[test]
    fn nist_reference_example_frequency() {
        // SP 800-22 §2.1.8: for the 100-bit pi example the frequency
        // test gives P-value = erfc(0.387.../sqrt(2))... use the simpler
        // documented example: eps = 1100100100001111110110101010001000,
        // n = 100... Instead validate erfc at the documented point:
        // erfc(1.238/sqrt(2)) ~ 0.215684 (runs-test example value plugs
        // through erfc, checked in the runs test module).
        let p = erfc(0.632_455_532 / core::f64::consts::SQRT_2);
        assert!((p - 0.527_089).abs() < 1e-5, "p = {p}");
    }

    #[test]
    fn erfc_matches_model_crate_values() {
        assert!((erfc(2.0) - 0.004_677_734_981_047_266).abs() < 1e-15);
        let got = erfc(5.0);
        let want = 1.537_459_794_428_034_8e-12;
        assert!((got / want - 1.0).abs() < 1e-12);
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-14);
    }

    #[test]
    fn normal_cdf_quantiles() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((normal_cdf(1.644_853_626_951_472_2) - 0.95).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn igamc_rejects_bad_shape() {
        let _ = igamc(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires a positive argument")]
    fn ln_gamma_rejects_non_positive() {
        let _ = ln_gamma(0.0);
    }
}
