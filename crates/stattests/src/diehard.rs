//! A DIEHARD subset — Marsaglia's battery, cited by the paper
//! alongside NIST as the classic black-box evaluation.
//!
//! Two representative tests are implemented (full DIEHARD is long
//! superseded by SP 800-22, which this crate provides completely):
//!
//! * **Birthday spacings** — `m = 512` "birthdays" drawn from 24-bit
//!   words in a year of `n = 2^24` days; the number of duplicated
//!   spacings is asymptotically Poisson(λ = m³/(4n) = 2). Repeated
//!   over many trials and χ²-tested against the Poisson mass.
//! * **Count-the-1s (stream)** — bytes are mapped to five "letters" by
//!   their popcount; overlapping five-letter words should follow the
//!   product multinomial. The statistic is the classic
//!   `χ²(5⁵) − χ²(5⁴)` difference, approximately normal with mean
//!   2500 and variance 5000.

use crate::bits::BitVec;
use crate::special::{erfc, igamc, ln_gamma};

/// Result of one DIEHARD test.
#[derive(Debug, Clone, PartialEq)]
pub struct DiehardOutcome {
    /// Test name.
    pub name: &'static str,
    /// P-value.
    pub p_value: f64,
}

/// Error for sequences too short to run a test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsufficientData {
    /// Test name.
    pub name: &'static str,
    /// Bits required.
    pub required: usize,
}

impl core::fmt::Display for InsufficientData {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} needs at least {} bits", self.name, self.required)
    }
}

impl std::error::Error for InsufficientData {}

/// Birthdays per trial.
const BDAY_M: usize = 512;
/// Bits per birthday (year length 2^24).
const BDAY_BITS: usize = 24;
/// Poisson rate: m^3 / 4n = 512^3 / 2^26 = 2.
const BDAY_LAMBDA: f64 = 2.0;

/// Poisson mass `e^-λ λ^k / k!`.
fn poisson_pmf(lambda: f64, k: usize) -> f64 {
    (-lambda + k as f64 * lambda.ln() - ln_gamma(k as f64 + 1.0)).exp()
}

/// Runs the birthday-spacings test over as many trials as the data
/// affords (each trial consumes `512 × 24` bits), χ²-testing the
/// duplicate-spacing counts against Poisson(2).
///
/// # Errors
///
/// Needs at least 20 trials (245 760 bits).
pub fn birthday_spacings(bits: &BitVec) -> Result<DiehardOutcome, InsufficientData> {
    const NAME: &str = "diehard birthday spacings";
    let per_trial = BDAY_M * BDAY_BITS;
    let trials = bits.len() / per_trial;
    if trials < 20 {
        return Err(InsufficientData {
            name: NAME,
            required: 20 * per_trial,
        });
    }
    // Category k = number of duplicated spacings, binned 0..=5, >=6.
    let mut counts = [0u64; 7];
    for t in 0..trials {
        let base = t * per_trial;
        let mut birthdays: Vec<u32> = (0..BDAY_M)
            .map(|i| bits.window_value(base + i * BDAY_BITS, BDAY_BITS) as u32)
            .collect();
        birthdays.sort_unstable();
        let mut spacings: Vec<u32> = birthdays.windows(2).map(|w| w[1] - w[0]).collect();
        spacings.sort_unstable();
        let duplicates = spacings.windows(2).filter(|w| w[0] == w[1]).count();
        counts[duplicates.min(6)] += 1;
    }
    // Chi-square vs Poisson(2) over the 7 categories.
    let n = trials as f64;
    let mut chi2 = 0.0;
    let mut tail = 1.0;
    for (k, &c) in counts.iter().enumerate() {
        let p = if k < 6 {
            let p = poisson_pmf(BDAY_LAMBDA, k);
            tail -= p;
            p
        } else {
            tail.max(1e-12)
        };
        let e = n * p;
        chi2 += (c as f64 - e) * (c as f64 - e) / e;
    }
    let p_value = igamc(3.0, chi2 / 2.0); // 6 dof
    Ok(DiehardOutcome {
        name: NAME,
        p_value,
    })
}

/// Letter of a byte: popcount binned as ≤2, 3, 4, 5, ≥6.
fn letter(byte: u64) -> usize {
    match (byte as u8).count_ones() {
        0..=2 => 0,
        3 => 1,
        4 => 2,
        5 => 3,
        _ => 4,
    }
}

/// Letter probabilities: sums of C(8,k)/256 over the bins.
const LETTER_P: [f64; 5] = [
    37.0 / 256.0, // 0..=2 ones: 1 + 8 + 28
    56.0 / 256.0, // 3
    70.0 / 256.0, // 4
    56.0 / 256.0, // 5
    37.0 / 256.0, // 6..=8: 28 + 8 + 1
];

/// Runs the count-the-1s (stream) test: `χ²(5⁵) − χ²(5⁴)` over
/// overlapping letter words, normally referred with mean 2500 and
/// variance 5000.
///
/// # Errors
///
/// Needs at least 64 000 bytes (512 000 bits).
pub fn count_the_ones(bits: &BitVec) -> Result<DiehardOutcome, InsufficientData> {
    const NAME: &str = "diehard count-the-1s";
    let n_bytes = bits.len() / 8;
    if n_bytes < 64_000 {
        return Err(InsufficientData {
            name: NAME,
            required: 64_000 * 8,
        });
    }
    let letters: Vec<usize> = (0..n_bytes)
        .map(|i| letter(bits.window_value(i * 8, 8)))
        .collect();
    let words = letters.len() - 4;
    let mut count5 = vec![0u64; 5usize.pow(5)];
    let mut count4 = vec![0u64; 5usize.pow(4)];
    for w in letters.windows(5) {
        let idx5 = w.iter().fold(0usize, |acc, &l| acc * 5 + l);
        count5[idx5] += 1;
        let idx4 = w[..4].iter().fold(0usize, |acc, &l| acc * 5 + l);
        count4[idx4] += 1;
    }
    let chi = |counts: &[u64], width: usize| -> f64 {
        let mut total = 0.0;
        for (idx, &c) in counts.iter().enumerate() {
            // Expected probability = product of letter probabilities.
            let mut p = 1.0;
            let mut rest = idx;
            for _ in 0..width {
                p *= LETTER_P[rest % 5];
                rest /= 5;
            }
            let e = words as f64 * p;
            total += (c as f64 - e) * (c as f64 - e) / e;
        }
        total
    };
    let stat = chi(&count5, 5) - chi(&count4, 4);
    // dof = 5^5 - 5^4 = 2500; normal approximation.
    let z = (stat - 2500.0) / 5000f64.sqrt();
    let p_value = erfc(z.abs() / core::f64::consts::SQRT_2);
    Ok(DiehardOutcome {
        name: NAME,
        p_value,
    })
}

/// Runs the implemented DIEHARD subset.
pub fn run_diehard(bits: &BitVec) -> Vec<Result<DiehardOutcome, InsufficientData>> {
    vec![birthday_spacings(bits), count_the_ones(bits)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_bits(n: usize, seed: u64) -> BitVec {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen::<bool>()).collect()
    }

    #[test]
    fn poisson_pmf_sums_to_one() {
        let s: f64 = (0..60).map(|k| poisson_pmf(2.0, k)).sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!((poisson_pmf(2.0, 0) - (-2.0f64).exp()).abs() < 1e-12);
        assert!((poisson_pmf(2.0, 2) - 2.0 * (-2.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn letter_probabilities_sum_to_one() {
        let s: f64 = LETTER_P.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        // And match direct popcount enumeration.
        let mut counts = [0u32; 5];
        for b in 0u64..256 {
            counts[letter(b)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (f64::from(c) / 256.0 - LETTER_P[i]).abs() < 1e-12,
                "letter {i}"
            );
        }
    }

    #[test]
    fn birthday_spacings_passes_random_data() {
        let bits = random_bits(60 * BDAY_M * BDAY_BITS, 80);
        let out = birthday_spacings(&bits).expect("enough data");
        assert!(out.p_value > 0.001, "p = {}", out.p_value);
    }

    #[test]
    fn birthday_spacings_fails_low_entropy_words() {
        // Restrict birthdays to a tiny subrange: many duplicate
        // spacings in every trial.
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(81);
        let mut bits = BitVec::new();
        for _ in 0..40 * BDAY_M {
            let w: u64 = rng.gen::<u64>() % 1024; // only 10 bits vary
            for j in (0..BDAY_BITS).rev() {
                bits.push(w >> j & 1 == 1);
            }
        }
        let out = birthday_spacings(&bits).expect("enough data");
        assert!(out.p_value < 1e-6, "p = {}", out.p_value);
    }

    #[test]
    fn count_the_ones_passes_random_data() {
        let bits = random_bits(70_000 * 8, 82);
        let out = count_the_ones(&bits).expect("enough data");
        assert!(out.p_value > 0.001, "p = {}", out.p_value);
    }

    #[test]
    fn count_the_ones_fails_biased_bytes() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(83);
        let bits: BitVec = (0..70_000 * 8).map(|_| rng.gen::<f64>() < 0.45).collect();
        let out = count_the_ones(&bits).expect("enough data");
        assert!(out.p_value < 1e-6, "p = {}", out.p_value);
    }

    #[test]
    fn count_the_ones_fails_periodic_bytes() {
        // Repeating byte pattern: word frequencies are degenerate.
        let mut bits = BitVec::new();
        for i in 0..70_000 {
            let b: u64 = [0x35u64, 0xA7, 0x1C][i % 3];
            for j in (0..8).rev() {
                bits.push(b >> j & 1 == 1);
            }
        }
        let out = count_the_ones(&bits).expect("enough data");
        assert!(out.p_value < 1e-10, "p = {}", out.p_value);
    }

    #[test]
    fn short_data_is_reported() {
        let bits = random_bits(1000, 84);
        for r in run_diehard(&bits) {
            let e = r.expect_err("too short");
            assert!(e.to_string().contains("needs at least"));
        }
    }
}
