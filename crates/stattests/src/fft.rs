//! Complex FFT for the NIST spectral (DFT) test.
//!
//! A dependency-free iterative radix-2 Cooley–Tukey transform plus a
//! Bluestein (chirp-z) wrapper so sequences of *any* length can be
//! transformed — the NIST DFT test runs on the full sequence length,
//! which is rarely a power of two.

use core::f64::consts::PI;

/// A complex number as `(re, im)`.
pub type Complex = (f64, f64);

#[inline]
fn c_add(a: Complex, b: Complex) -> Complex {
    (a.0 + b.0, a.1 + b.1)
}

#[inline]
fn c_sub(a: Complex, b: Complex) -> Complex {
    (a.0 - b.0, a.1 - b.1)
}

#[inline]
fn c_mul(a: Complex, b: Complex) -> Complex {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

#[inline]
fn c_conj(a: Complex) -> Complex {
    (a.0, -a.1)
}

/// In-place radix-2 FFT.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft_pow2(data: &mut [Complex]) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "radix-2 FFT needs a power-of-two length, got {n}"
    );
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * PI / len as f64;
        let wlen = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = (1.0, 0.0);
            for j in 0..len / 2 {
                let u = data[i + j];
                let v = c_mul(data[i + j + len / 2], w);
                data[i + j] = c_add(u, v);
                data[i + j + len / 2] = c_sub(u, v);
                w = c_mul(w, wlen);
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Inverse radix-2 FFT (normalized).
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn ifft_pow2(data: &mut [Complex]) {
    let n = data.len();
    for x in data.iter_mut() {
        *x = c_conj(*x);
    }
    fft_pow2(data);
    let inv = 1.0 / n as f64;
    for x in data.iter_mut() {
        *x = (x.0 * inv, -x.1 * inv);
    }
}

/// Forward DFT of arbitrary length via Bluestein's algorithm.
///
/// Returns `X[k] = Σ_j x[j]·e^{−2πi jk/n}` for `k = 0..n`.
pub fn dft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut data = input.to_vec();
        fft_pow2(&mut data);
        return data;
    }
    // Bluestein: x[j]·w^{j²/2} convolved with chirp.
    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![(0.0, 0.0); m];
    let mut b = vec![(0.0, 0.0); m];
    // chirp[j] = e^{-i π j² / n}; compute j² mod 2n to avoid precision
    // loss for large j.
    let chirp: Vec<Complex> = (0..n)
        .map(|j| {
            let idx = (j * j) % (2 * n);
            let ang = -PI * idx as f64 / n as f64;
            (ang.cos(), ang.sin())
        })
        .collect();
    for j in 0..n {
        a[j] = c_mul(input[j], chirp[j]);
        b[j] = c_conj(chirp[j]);
        if j != 0 {
            b[m - j] = c_conj(chirp[j]);
        }
    }
    fft_pow2(&mut a);
    fft_pow2(&mut b);
    for i in 0..m {
        a[i] = c_mul(a[i], b[i]);
    }
    ifft_pow2(&mut a);
    (0..n).map(|k| c_mul(a[k], chirp[k])).collect()
}

/// Moduli of the first `n/2` DFT coefficients of a ±1-mapped bit
/// sequence — the quantity the NIST spectral test thresholds.
pub fn spectrum_moduli(pm1: &[f64]) -> Vec<f64> {
    let input: Vec<Complex> = pm1.iter().map(|&x| (x, 0.0)).collect();
    let out = dft(&input);
    out.iter()
        .take(pm1.len() / 2)
        .map(|c| (c.0 * c.0 + c.1 * c.1).sqrt())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(input: &[Complex]) -> Vec<Complex> {
        let n = input.len();
        (0..n)
            .map(|k| {
                let mut acc = (0.0, 0.0);
                for (j, &x) in input.iter().enumerate() {
                    let ang = -2.0 * PI * (j * k) as f64 / n as f64;
                    acc = c_add(acc, c_mul(x, (ang.cos(), ang.sin())));
                }
                acc
            })
            .collect()
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x.0 - y.0).abs() < tol && (x.1 - y.1).abs() < tol,
                "bin {i}: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn pow2_matches_naive() {
        let input: Vec<Complex> = (0..16)
            .map(|i| ((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let mut got = input.clone();
        fft_pow2(&mut got);
        assert_close(&got, &naive_dft(&input), 1e-10);
    }

    #[test]
    fn bluestein_matches_naive_for_odd_lengths() {
        for n in [3usize, 5, 7, 12, 100, 33] {
            let input: Vec<Complex> = (0..n)
                .map(|i| ((i as f64 * 0.37).cos(), (i as f64 * 0.11).sin()))
                .collect();
            let got = dft(&input);
            assert_close(&got, &naive_dft(&input), 1e-8);
        }
    }

    #[test]
    fn ifft_round_trips() {
        let input: Vec<Complex> = (0..64).map(|i| (i as f64, -(i as f64) / 3.0)).collect();
        let mut data = input.clone();
        fft_pow2(&mut data);
        ifft_pow2(&mut data);
        assert_close(&data, &input, 1e-9);
    }

    #[test]
    fn dc_bin_is_the_sum() {
        let input = vec![(1.0, 0.0); 10];
        let out = dft(&input);
        assert!((out[0].0 - 10.0).abs() < 1e-9);
        assert!(out[0].1.abs() < 1e-9);
        for c in &out[1..] {
            assert!(c.0.abs() < 1e-9 && c.1.abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_holds() {
        let input: Vec<Complex> = (0..50).map(|i| ((i as f64).sin(), 0.0)).collect();
        let out = dft(&input);
        let time: f64 = input.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum();
        let freq: f64 = out.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum::<f64>() / 50.0;
        assert!((time - freq).abs() < 1e-8, "{time} vs {freq}");
    }

    #[test]
    fn spectrum_of_alternating_sequence_peaks_at_nyquist_edge() {
        // +1, -1, +1, -1, ... concentrates all energy at k = n/2, which
        // is excluded from the first n/2 bins; all retained bins ~0.
        let pm1: Vec<f64> = (0..64)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let mods = spectrum_moduli(&pm1);
        assert_eq!(mods.len(), 32);
        for (i, m) in mods.iter().enumerate() {
            assert!(*m < 1e-6, "bin {i}: {m}");
        }
    }

    #[test]
    fn empty_input() {
        assert!(dft(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn fft_pow2_rejects_other_lengths() {
        let mut d = vec![(0.0, 0.0); 6];
        fft_pow2(&mut d);
    }
}
