//! Empirical entropy estimators (SP 800-90B style).
//!
//! The paper derives entropy from its stochastic model; these
//! estimators provide the *empirical* cross-check used in
//! EXPERIMENTS.md: estimate entropy directly from generated bits and
//! compare with the model's lower bound. Three standard binary
//! estimators:
//!
//! * most-common-value (MCV) — SP 800-90B §6.3.1;
//! * Markov — §6.3.3 (first-order, binary);
//! * collision — §6.3.2 (simplified binary variant);
//! * plus plain Shannon entropy of the empirical bit frequency.

use crate::bits::BitVec;

/// Shannon entropy of the empirical ones-frequency.
///
/// # Panics
///
/// Panics if the sequence is empty.
pub fn shannon_bias_entropy(bits: &BitVec) -> f64 {
    assert!(!bits.is_empty(), "need at least one bit");
    let p = bits.count_ones() as f64 / bits.len() as f64;
    if p == 0.0 || p == 1.0 {
        return 0.0;
    }
    -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
}

/// Most-common-value min-entropy estimate with the SP 800-90B upper
/// confidence bound on the most common probability.
///
/// # Panics
///
/// Panics if the sequence is empty.
pub fn mcv_min_entropy(bits: &BitVec) -> f64 {
    assert!(!bits.is_empty(), "need at least one bit");
    let n = bits.len() as f64;
    let ones = bits.count_ones() as f64;
    let p_max = (ones / n).max(1.0 - ones / n);
    let p_u = (p_max + 2.576 * (p_max * (1.0 - p_max) / (n - 1.0)).sqrt()).min(1.0);
    -p_u.log2()
}

/// First-order Markov min-entropy estimate (binary): accounts for
/// bit-to-bit correlation, the defect XOR post-processing cannot hide
/// from an evaluator.
///
/// # Panics
///
/// Panics if the sequence has fewer than 2 bits.
pub fn markov_min_entropy(bits: &BitVec) -> f64 {
    assert!(bits.len() >= 2, "need at least two bits");
    // Transition counts.
    let mut trans = [[0u64; 2]; 2];
    for i in 1..bits.len() {
        trans[bits.bit(i - 1) as usize][bits.bit(i) as usize] += 1;
    }
    let p = |row: [u64; 2]| -> [f64; 2] {
        let total = (row[0] + row[1]) as f64;
        if total == 0.0 {
            [0.5, 0.5]
        } else {
            [row[0] as f64 / total, row[1] as f64 / total]
        }
    };
    let p0 = p(trans[0]);
    let p1 = p(trans[1]);
    let ones = bits.count_ones() as f64 / bits.len() as f64;
    let initial = [1.0 - ones, ones];
    // Most likely 128-bit path probability (dynamic programming over
    // the 2-state chain), per the 90B Markov estimate idea.
    const STEPS: usize = 128;
    let trans_p = [p0, p1];
    let best = [initial[0].max(1e-300), initial[1].max(1e-300)];
    let mut log_best = [best[0].log2(), best[1].log2()];
    for _ in 1..STEPS {
        let next0 = (log_best[0] + trans_p[0][0].max(1e-300).log2())
            .max(log_best[1] + trans_p[1][0].max(1e-300).log2());
        let next1 = (log_best[0] + trans_p[0][1].max(1e-300).log2())
            .max(log_best[1] + trans_p[1][1].max(1e-300).log2());
        log_best = [next0, next1];
    }
    let max_log = log_best[0].max(log_best[1]);
    (-max_log / STEPS as f64).clamp(0.0, 1.0)
}

/// Binary collision min-entropy estimate: mean time between collisions
/// of consecutive bit pairs, mapped to a probability bound.
///
/// A simplified variant of SP 800-90B §6.3.2 adequate for comparing
/// configurations; not a certified implementation.
///
/// # Panics
///
/// Panics if the sequence has fewer than 16 bits.
pub fn collision_min_entropy(bits: &BitVec) -> f64 {
    assert!(bits.len() >= 16, "need at least sixteen bits");
    // Scan for the first repeat among consecutive samples ("collision"),
    // restart, and average the collision times.
    let mut times = Vec::new();
    let mut i = 0usize;
    while i + 1 < bits.len() {
        // For binary data a collision happens as soon as two equal bits
        // appear; collision time is 2 or 3 (pairs 00,11 collide at 2;
        // 010 at 3 etc.).
        let t = if bits.get(i) == bits.get(i + 1) {
            2
        } else if i + 2 < bits.len() {
            3
        } else {
            break;
        };
        times.push(t as f64);
        i += t;
    }
    if times.is_empty() {
        return 0.0;
    }
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    // For Bernoulli(p), E[collision time] = 2 + 2p(1-p). Invert for
    // p_max and convert to min-entropy.
    let pq = ((mean - 2.0) / 2.0).clamp(0.0, 0.25);
    let p_max = 0.5 + (0.25 - pq).sqrt();
    (-p_max.log2()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_bits(n: usize, seed: u64) -> BitVec {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen::<bool>()).collect()
    }

    fn biased_bits(n: usize, p: f64, seed: u64) -> BitVec {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen::<f64>() < p).collect()
    }

    #[test]
    fn fair_source_estimates_near_one() {
        let bits = random_bits(200_000, 66);
        assert!(shannon_bias_entropy(&bits) > 0.999);
        assert!(mcv_min_entropy(&bits) > 0.98);
        assert!(markov_min_entropy(&bits) > 0.97);
        assert!(collision_min_entropy(&bits) > 0.9);
    }

    #[test]
    fn biased_source_is_detected_by_all() {
        let bits = biased_bits(200_000, 0.7, 71);
        let h = shannon_bias_entropy(&bits);
        assert!((h - 0.8813).abs() < 0.02, "H = {h}");
        let mcv = mcv_min_entropy(&bits);
        assert!((mcv - 0.514).abs() < 0.03, "MCV = {mcv}");
        assert!(markov_min_entropy(&bits) < 0.62);
        assert!(collision_min_entropy(&bits) < 0.75);
    }

    #[test]
    fn markov_catches_correlation_that_bias_misses() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(72);
        // Balanced but sticky: P(flip) = 0.1 -> balanced marginals.
        let mut prev = false;
        let bits: BitVec = (0..200_000)
            .map(|_| {
                if rng.gen::<f64>() < 0.1 {
                    prev = !prev;
                }
                prev
            })
            .collect();
        // Marginal entropy looks perfect...
        assert!(shannon_bias_entropy(&bits) > 0.99);
        // ...but the Markov estimate exposes the dependence:
        // -log2(0.9) ~ 0.152 per bit.
        let m = markov_min_entropy(&bits);
        assert!((m - 0.152).abs() < 0.02, "Markov = {m}");
    }

    #[test]
    fn constant_source_has_zero_entropy() {
        let bits: BitVec = (0..1000).map(|_| true).collect();
        assert_eq!(shannon_bias_entropy(&bits), 0.0);
        assert!(mcv_min_entropy(&bits) < 1e-6);
        assert!(markov_min_entropy(&bits) < 1e-6);
        assert!(collision_min_entropy(&bits) < 1e-6);
    }

    #[test]
    fn estimates_are_conservative_vs_shannon() {
        for seed in 73..78 {
            let bits = biased_bits(100_000, 0.6, seed);
            let h = shannon_bias_entropy(&bits);
            assert!(mcv_min_entropy(&bits) <= h + 0.01);
            assert!(markov_min_entropy(&bits) <= h + 0.01);
        }
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn empty_rejected() {
        let _ = shannon_bias_entropy(&BitVec::new());
    }
}
