//! AIS-31 statistical tests (procedure A core tests plus the Coron
//! entropy estimator of procedure B).
//!
//! Section 2 of the reproduced paper frames TRNG evaluation in the
//! AIS-31 methodology (Killmann & Schindler): statistical testing is
//! the *last* stage after stochastic modelling. These are the
//! standard tests the evaluation procedure applies to raw and
//! internal random numbers:
//!
//! * **T0** disjointness: 2^16 consecutive 48-bit blocks must be
//!   pairwise distinct;
//! * **T1** monobit, **T2** poker, **T3** runs, **T4** long run —
//!   the FIPS 140-1 quartet over 20 000 bits;
//! * **T5** autocorrelation over 10 000 bits;
//! * **T8** Coron's entropy estimator (procedure B), which must
//!   exceed 7.976 bits per byte.

use crate::bits::BitVec;

use core::fmt;
use std::collections::HashSet;

/// Verdict of one AIS-31 test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ais31Verdict {
    /// Test passed.
    Pass,
    /// Test failed.
    Fail,
    /// The sequence is too short to run this test.
    TooShort,
}

impl fmt::Display for Ais31Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Ais31Verdict::Pass => "pass",
            Ais31Verdict::Fail => "FAIL",
            Ais31Verdict::TooShort => "too short",
        })
    }
}

/// Number of bits T1–T4 evaluate.
pub const FIPS_BITS: usize = 20_000;

/// T0 — disjointness: the first 2^16 non-overlapping 48-bit words must
/// be pairwise distinct (needs 48·65536 = 3 145 728 bits).
pub fn t0_disjointness(bits: &BitVec) -> Ais31Verdict {
    const WORDS: usize = 1 << 16;
    const WIDTH: usize = 48;
    if bits.len() < WORDS * WIDTH {
        return Ais31Verdict::TooShort;
    }
    let mut seen = HashSet::with_capacity(WORDS);
    for i in 0..WORDS {
        if !seen.insert(bits.window_value(i * WIDTH, WIDTH)) {
            return Ais31Verdict::Fail;
        }
    }
    Ais31Verdict::Pass
}

/// T1 — monobit: the number of ones in 20 000 bits must lie in
/// `(9654, 10346)` (AIS-31 bound).
pub fn t1_monobit(bits: &BitVec) -> Ais31Verdict {
    if bits.len() < FIPS_BITS {
        return Ais31Verdict::TooShort;
    }
    let ones = bits.count_ones_in(0, FIPS_BITS);
    if (9655..10346).contains(&ones) {
        Ais31Verdict::Pass
    } else {
        Ais31Verdict::Fail
    }
}

/// T2 — poker: χ² of 4-bit nibble frequencies over 20 000 bits must
/// lie in `(1.03, 57.4)`.
pub fn t2_poker(bits: &BitVec) -> Ais31Verdict {
    if bits.len() < FIPS_BITS {
        return Ais31Verdict::TooShort;
    }
    let mut counts = [0u64; 16];
    for i in 0..FIPS_BITS / 4 {
        counts[bits.window_value(i * 4, 4) as usize] += 1;
    }
    let sum_sq: f64 = counts.iter().map(|&c| (c * c) as f64).sum();
    let x = 16.0 / 5000.0 * sum_sq - 5000.0;
    if x > 1.03 && x < 57.4 {
        Ais31Verdict::Pass
    } else {
        Ais31Verdict::Fail
    }
}

/// Run-length acceptance intervals of T3 (runs of each length 1..=6+,
/// for both zeros and ones, over 20 000 bits).
const T3_BOUNDS: [(u64, u64); 6] = [
    (2267, 2733),
    (1079, 1421),
    (502, 748),
    (223, 402),
    (90, 223),
    (90, 223),
];

/// T3 — runs: counts of runs of each length (1..5, ≥6) for both bit
/// values must each lie within the tabulated intervals.
pub fn t3_runs(bits: &BitVec) -> Ais31Verdict {
    if bits.len() < FIPS_BITS {
        return Ais31Verdict::TooShort;
    }
    let mut counts = [[0u64; 6]; 2]; // [bit value][length bucket]
    let mut run_val = bits.get(0);
    let mut run_len = 1usize;
    for i in 1..FIPS_BITS {
        let b = bits.get(i);
        if b == run_val {
            run_len += 1;
        } else {
            counts[usize::from(run_val)][run_len.min(6) - 1] += 1;
            run_val = b;
            run_len = 1;
        }
    }
    counts[usize::from(run_val)][run_len.min(6) - 1] += 1;
    for value_counts in &counts {
        for (bucket, &(lo, hi)) in T3_BOUNDS.iter().enumerate() {
            let c = value_counts[bucket];
            if c < lo || c > hi {
                return Ais31Verdict::Fail;
            }
        }
    }
    Ais31Verdict::Pass
}

/// T4 — long run: no run of length ≥ 34 may occur in 20 000 bits.
pub fn t4_long_run(bits: &BitVec) -> Ais31Verdict {
    if bits.len() < FIPS_BITS {
        return Ais31Verdict::TooShort;
    }
    let mut run_len = 1usize;
    for i in 1..FIPS_BITS {
        if bits.get(i) == bits.get(i - 1) {
            run_len += 1;
            if run_len >= 34 {
                return Ais31Verdict::Fail;
            }
        } else {
            run_len = 1;
        }
    }
    Ais31Verdict::Pass
}

/// T5 — autocorrelation: the statistic `Z_τ = Σ_{i<5000} ε_i ⊕ ε_{i+τ}`
/// must lie in `(2326, 2674)`. AIS-31 selects the most suspicious
/// shift on one half of the data and evaluates it on the other; here a
/// representative set of shifts is checked directly, each on 5000
/// bits.
pub fn t5_autocorrelation(bits: &BitVec) -> Ais31Verdict {
    const WINDOW: usize = 5_000;
    const MAX_TAU: usize = 100;
    if bits.len() < WINDOW + MAX_TAU {
        return Ais31Verdict::TooShort;
    }
    for tau in [1usize, 2, 3, 8, 16, MAX_TAU] {
        let z: usize = (0..WINDOW)
            .filter(|&i| bits.get(i) != bits.get(i + tau))
            .count();
        if !(2327..2674).contains(&z) {
            return Ais31Verdict::Fail;
        }
    }
    Ais31Verdict::Pass
}

/// T8 — Coron's entropy estimator over bytes (L = 8, Q = 2560,
/// K = 256 000 source words recommended; scaled to the available
/// data). The estimate must exceed 7.976 bits per byte.
pub fn t8_entropy(bits: &BitVec) -> Ais31Verdict {
    const L: usize = 8;
    const Q: usize = 2560;
    let total_words = bits.len() / L;
    if total_words < Q + 2560 {
        return Ais31Verdict::TooShort;
    }
    let k = total_words - Q;
    let mut last = [0usize; 256];
    for i in 0..Q {
        last[bits.window_value(i * L, L) as usize] = i + 1;
    }
    // Coron's g(i) coefficients: sum via the telescoping formula
    // g(d) = (1/ln 2) * sum_{k=1}^{d-1} 1/k  (approximately); the exact
    // estimator uses g(d) = (1/ln 2) * Σ_{k=1..d-1} 1/k.
    let harmonic =
        |d: usize| -> f64 { (1..d).map(|k| 1.0 / k as f64).sum::<f64>() / core::f64::consts::LN_2 };
    let mut sum = 0.0;
    for i in Q..total_words {
        let v = bits.window_value(i * L, L) as usize;
        let d = i + 1 - last[v];
        last[v] = i + 1;
        sum += harmonic(d);
    }
    let estimate = sum / k as f64;
    if estimate > 7.976 {
        Ais31Verdict::Pass
    } else {
        Ais31Verdict::Fail
    }
}

/// Summary of a full AIS-31 run.
///
/// Serializable but not deserializable: test names are static borrows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ais31Report {
    /// (test name, verdict) pairs, in procedure order.
    pub verdicts: Vec<(&'static str, Ais31Verdict)>,
}

impl Ais31Report {
    /// `true` when no applicable test failed.
    pub fn all_passed(&self) -> bool {
        self.verdicts.iter().all(|&(_, v)| v != Ais31Verdict::Fail)
    }
}

impl fmt::Display for Ais31Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.verdicts {
            writeln!(f, "  {name:<20} {v}")?;
        }
        write!(
            f,
            "  => {}",
            if self.all_passed() { "PASS" } else { "FAIL" }
        )
    }
}

/// Runs all implemented AIS-31 tests.
pub fn run_ais31(bits: &BitVec) -> Ais31Report {
    Ais31Report {
        verdicts: vec![
            ("T0 disjointness", t0_disjointness(bits)),
            ("T1 monobit", t1_monobit(bits)),
            ("T2 poker", t2_poker(bits)),
            ("T3 runs", t3_runs(bits)),
            ("T4 long run", t4_long_run(bits)),
            ("T5 autocorrelation", t5_autocorrelation(bits)),
            ("T8 entropy (Coron)", t8_entropy(bits)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_bits(n: usize, seed: u64) -> BitVec {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen::<bool>()).collect()
    }

    #[test]
    fn random_data_passes_everything() {
        let bits = random_bits(3_200_000, 40);
        let report = run_ais31(&bits);
        assert!(report.all_passed(), "{report}");
        assert!(report
            .verdicts
            .iter()
            .all(|&(_, v)| v == Ais31Verdict::Pass));
    }

    #[test]
    fn constant_data_fails_t1_t3_t4() {
        let bits: BitVec = (0..25_000).map(|_| true).collect();
        assert_eq!(t1_monobit(&bits), Ais31Verdict::Fail);
        assert_eq!(t3_runs(&bits), Ais31Verdict::Fail);
        assert_eq!(t4_long_run(&bits), Ais31Verdict::Fail);
    }

    #[test]
    fn alternating_data_fails_t3_and_t5() {
        let bits: BitVec = (0..25_000).map(|i| i % 2 == 0).collect();
        // Monobit is perfect but runs are all length 1 and
        // autocorrelation at shift 1 is total.
        assert_eq!(t1_monobit(&bits), Ais31Verdict::Pass);
        assert_eq!(t3_runs(&bits), Ais31Verdict::Fail);
        assert_eq!(t5_autocorrelation(&bits), Ais31Verdict::Fail);
    }

    #[test]
    fn repeated_counter_fails_t0() {
        // 48-bit words that repeat with period 256.
        let mut bits = BitVec::new();
        for i in 0..(1usize << 16) {
            let w = (i % 256) as u64;
            for j in (0..48).rev() {
                bits.push(w >> j & 1 == 1);
            }
        }
        assert_eq!(t0_disjointness(&bits), Ais31Verdict::Fail);
    }

    #[test]
    fn unique_counter_passes_t0() {
        let mut bits = BitVec::new();
        for i in 0..(1usize << 16) {
            let w = i as u64;
            for j in (0..48).rev() {
                bits.push(w >> j & 1 == 1);
            }
        }
        assert_eq!(t0_disjointness(&bits), Ais31Verdict::Pass);
    }

    #[test]
    fn poker_detects_nibble_skew() {
        // Nibbles cycling over only 4 of 16 values.
        let bits: BitVec = (0..FIPS_BITS).map(|i| (i / 2) % 2 == 0).collect();
        assert_eq!(t2_poker(&bits), Ais31Verdict::Fail);
    }

    #[test]
    fn t8_low_entropy_source_fails() {
        // Bytes restricted to two values: entropy 1 bit/byte.
        let bits: BitVec = (0..400_000)
            .map(|i| (i / 8) % 2 == 0 && i % 8 == 7)
            .collect();
        assert_eq!(t8_entropy(&bits), Ais31Verdict::Fail);
    }

    #[test]
    fn short_input_reports_too_short() {
        let bits = random_bits(1_000, 41);
        assert_eq!(t0_disjointness(&bits), Ais31Verdict::TooShort);
        assert_eq!(t1_monobit(&bits), Ais31Verdict::TooShort);
        assert_eq!(t5_autocorrelation(&bits), Ais31Verdict::TooShort);
        assert_eq!(t8_entropy(&bits), Ais31Verdict::TooShort);
        // Too-short never fails the report.
        assert!(run_ais31(&bits).all_passed());
    }

    #[test]
    fn verdict_display() {
        assert_eq!(format!("{}", Ais31Verdict::Pass), "pass");
        assert_eq!(format!("{}", Ais31Verdict::Fail), "FAIL");
        assert_eq!(format!("{}", Ais31Verdict::TooShort), "too short");
    }
}
