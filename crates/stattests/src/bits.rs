//! Packed bit sequences.
//!
//! Statistical tests run over sequences of 10^5–10^6 bits; [`BitVec`]
//! stores them packed 64-per-word with O(1) indexed access, population
//! count and windowed iteration — the access patterns the NIST tests
//! need.

use core::fmt;

/// A growable, packed sequence of bits.
///
/// # Examples
///
/// ```
/// use trng_stattests::bits::BitVec;
///
/// let bits: BitVec = [true, false, true, true].into_iter().collect();
/// assert_eq!(bits.len(), 4);
/// assert_eq!(bits.count_ones(), 3);
/// assert!(bits.get(0) && !bits.get(1));
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        BitVec::default()
    }

    /// Creates an empty sequence with capacity for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        BitVec {
            words: Vec::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    /// Builds from a slice of bools.
    pub fn from_bools(bools: &[bool]) -> Self {
        bools.iter().copied().collect()
    }

    /// Builds from packed bytes, LSB-first within each byte, taking the
    /// first `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > bytes.len() * 8`.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Self {
        assert!(len <= bytes.len() * 8, "length exceeds provided bytes");
        let mut v = BitVec::with_capacity(len);
        for i in 0..len {
            v.push(bytes[i / 8] >> (i % 8) & 1 == 1);
        }
        v
    }

    /// Parses a string of `'0'`/`'1'` characters (other characters are
    /// skipped — convenient for whitespace-formatted reference data).
    pub fn from_binary_str(s: &str) -> Self {
        s.chars()
            .filter_map(|c| match c {
                '0' => Some(false),
                '1' => Some(true),
                _ => None,
            })
            .collect()
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        let off = self.len % 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << off;
        }
        self.len += 1;
    }

    /// The bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.len, "index {index} out of range {}", self.len);
        self.words[index / 64] >> (index % 64) & 1 == 1
    }

    /// The bit at `index` as 0/1.
    #[inline]
    pub fn bit(&self, index: usize) -> u8 {
        u8::from(self.get(index))
    }

    /// The bit at `index` mapped to ±1 (`1 → +1`, `0 → −1`), the
    /// transformation used by several NIST tests.
    #[inline]
    pub fn pm1(&self, index: usize) -> f64 {
        if self.get(index) {
            1.0
        } else {
            -1.0
        }
    }

    /// Total number of one bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Ones within `[start, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the sequence.
    pub fn count_ones_in(&self, start: usize, len: usize) -> usize {
        assert!(start + len <= self.len, "range out of bounds");
        // Straightforward per-bit loop is fast enough for block sizes
        // used by the tests; keep it simple and correct.
        (start..start + len).filter(|&i| self.get(i)).count()
    }

    /// Iterator over all bits.
    pub fn iter(&self) -> Iter<'_> {
        Iter { v: self, i: 0 }
    }

    /// Interprets `len` bits starting at `start` as a big-endian
    /// integer (first bit = MSB), as the template tests do.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64` or the range exceeds the sequence.
    pub fn window_value(&self, start: usize, len: usize) -> u64 {
        assert!(len <= 64, "window too wide");
        assert!(start + len <= self.len, "range out of bounds");
        let mut x = 0u64;
        for i in 0..len {
            x = (x << 1) | u64::from(self.get(start + i));
        }
        x
    }

    /// A copy of bits `[start, start + len)` as a new `BitVec`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the sequence.
    pub fn slice(&self, start: usize, len: usize) -> BitVec {
        assert!(start + len <= self.len, "range out of bounds");
        (start..start + len).map(|i| self.get(i)).collect()
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut v = BitVec::with_capacity(iter.size_hint().0);
        for b in iter {
            v.push(b);
        }
        v
    }
}

impl Extend<bool> for BitVec {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

impl From<&[bool]> for BitVec {
    fn from(bools: &[bool]) -> Self {
        BitVec::from_bools(bools)
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[len={}", self.len)?;
        if self.len <= 64 {
            write!(f, ", bits=")?;
            for i in 0..self.len {
                write!(f, "{}", self.bit(i))?;
            }
        }
        write!(f, "]")
    }
}

/// Borrowed bit iterator.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    v: &'a BitVec,
    i: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        if self.i < self.v.len() {
            let b = self.v.get(self.i);
            self.i += 1;
            Some(b)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.v.len() - self.i;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl<'a> IntoIterator for &'a BitVec {
    type Item = bool;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut v = BitVec::new();
        for i in 0..200 {
            v.push(i % 3 == 0);
        }
        assert_eq!(v.len(), 200);
        for i in 0..200 {
            assert_eq!(v.get(i), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    fn count_ones_matches_iteration() {
        let v: BitVec = (0..1000).map(|i| i % 7 < 3).collect();
        let direct = v.iter().filter(|&b| b).count();
        assert_eq!(v.count_ones(), direct);
        assert_eq!(v.count_ones_in(0, 1000), direct);
        assert_eq!(v.count_ones_in(10, 0), 0);
        let partial = (100..200).filter(|i| i % 7 < 3).count();
        assert_eq!(v.count_ones_in(100, 100), partial);
    }

    #[test]
    fn from_binary_str_skips_noise() {
        let v = BitVec::from_binary_str("11 00\n101");
        assert_eq!(v.len(), 7);
        assert_eq!(v.count_ones(), 4);
        assert!(v.get(0) && v.get(1) && !v.get(2));
    }

    #[test]
    fn from_bytes_lsb_first() {
        let v = BitVec::from_bytes(&[0b0000_0101, 0xFF], 10);
        assert_eq!(v.len(), 10);
        assert!(v.get(0)); // LSB of first byte
        assert!(!v.get(1));
        assert!(v.get(2));
        assert!(v.get(8) && v.get(9));
    }

    #[test]
    fn window_value_is_big_endian() {
        let v = BitVec::from_binary_str("10110");
        assert_eq!(v.window_value(0, 5), 0b10110);
        assert_eq!(v.window_value(1, 3), 0b011);
        assert_eq!(v.window_value(4, 1), 0);
    }

    #[test]
    fn pm1_mapping() {
        let v = BitVec::from_binary_str("10");
        assert_eq!(v.pm1(0), 1.0);
        assert_eq!(v.pm1(1), -1.0);
    }

    #[test]
    fn slice_copies_range() {
        let v = BitVec::from_binary_str("110100111");
        let s = v.slice(2, 4);
        assert_eq!(s.len(), 4);
        assert_eq!(format!("{s:?}"), "BitVec[len=4, bits=0100]");
    }

    #[test]
    fn collect_and_extend() {
        let mut v: BitVec = [true, false].into_iter().collect();
        v.extend([true, true]);
        assert_eq!(v.len(), 4);
        assert_eq!(v.count_ones(), 3);
        let round: Vec<bool> = v.iter().collect();
        assert_eq!(round, vec![true, false, true, true]);
    }

    #[test]
    fn debug_truncates_long_vectors() {
        let v: BitVec = (0..100).map(|_| true).collect();
        assert_eq!(format!("{v:?}"), "BitVec[len=100]");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_bounds_checked() {
        let v = BitVec::from_binary_str("1");
        let _ = v.get(1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn count_range_bounds_checked() {
        let v = BitVec::from_binary_str("1111");
        let _ = v.count_ones_in(2, 3);
    }
}
