//! Statistical evaluation substrate: NIST SP 800-22, AIS-31 and
//! FIPS 140-2 test batteries plus empirical entropy estimators, all
//! implemented from scratch.
//!
//! The reproduced paper ("Highly Efficient Entropy Extraction for
//! TRNGs on FPGAs", DAC 2015) defines its Table-1 column `n_NIST` as
//! the minimal XOR-compression rate whose output "passes all NIST
//! tests"; Section 2 frames the whole evaluation in the AIS-31
//! methodology. This crate supplies that machinery:
//!
//! * [`bits`] — packed bit sequences;
//! * [`nist`] — all fifteen SP 800-22 tests plus the battery runner;
//! * [`assessment`] — the multi-sequence acceptance criteria
//!   (proportion + P-value uniformity, SP 800-22 §4.2);
//! * [`ais31`] — AIS-31 procedure tests T0–T5 and T8;
//! * [`diehard`] — a DIEHARD subset (the other battery the paper
//!   cites);
//! * [`fips140`] — the FIPS 140-2 power-up quartet;
//! * [`estimators`] — empirical (min-)entropy estimators;
//! * [`special`] / [`fft`] — the supporting numerics.
//!
//! # Example
//!
//! ```
//! use trng_testkit::prng::{Rng, SeedableRng};
//! use trng_stattests::bits::BitVec;
//! use trng_stattests::nist::run_battery;
//!
//! let mut rng = trng_testkit::prng::StdRng::seed_from_u64(7);
//! let bits: BitVec = (0..100_000).map(|_| rng.gen::<bool>()).collect();
//! let result = run_battery(&bits);
//! assert!(result.all_passed(), "{result}");
//! ```
//!
//! (The doc example uses `trng-testkit` from dev-dependencies; the
//! library itself is dependency-free.)

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ais31;
pub mod assessment;
pub mod bits;
pub mod diehard;
pub mod estimators;
pub mod fft;
pub mod fips140;
pub mod nist;
pub mod special;

pub use assessment::{assess, Assessment};
pub use bits::BitVec;
pub use nist::{run_battery, BatteryResult};
