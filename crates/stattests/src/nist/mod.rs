//! The NIST SP 800-22 statistical test suite, implemented from
//! scratch.
//!
//! Table 1 of the reproduced paper defines `n_NIST` as "the minimal
//! compression rate needed to pass all statistical tests" of this
//! suite, so a faithful implementation is part of the evaluation
//! substrate. All fifteen tests of SP 800-22 rev. 1a are provided:
//!
//! | § | Test | Module |
//! |---|------|--------|
//! | 2.1 | Frequency (monobit) | [`frequency`] |
//! | 2.2 | Frequency within a block | [`block_frequency`] |
//! | 2.3 | Runs | [`runs`] |
//! | 2.4 | Longest run of ones in a block | [`longest_run`] |
//! | 2.5 | Binary matrix rank | [`rank`] |
//! | 2.6 | Discrete Fourier transform (spectral) | [`dft`] |
//! | 2.7 | Non-overlapping template matching | [`templates`] |
//! | 2.8 | Overlapping template matching | [`templates`] |
//! | 2.9 | Maurer's universal statistical | [`universal`] |
//! | 2.10 | Linear complexity | [`linear_complexity`] |
//! | 2.11 | Serial | [`serial`] |
//! | 2.12 | Approximate entropy | [`approx_entropy`] |
//! | 2.13 | Cumulative sums | [`cusum`] |
//! | 2.14 | Random excursions | [`excursions`] |
//! | 2.15 | Random excursions variant | [`excursions`] |
//!
//! Each test takes a [`BitVec`](crate::bits::BitVec) and returns a
//! [`TestOutcome`] (one or more P-values) or a [`TestError`] when the
//! sequence does not meet the test's applicability requirements.
//! [`battery`] runs everything; [`crate::assessment`] applies the
//! multi-sequence acceptance criterion of SP 800-22 §4.2.

pub mod approx_entropy;
pub mod battery;
pub mod block_frequency;
pub mod cusum;
pub mod dft;
pub mod excursions;
pub mod frequency;
pub mod linear_complexity;
pub mod longest_run;
pub mod rank;
pub mod runs;
pub mod serial;
pub mod templates;
pub mod universal;

pub use battery::{run_battery, BatteryResult};

use core::fmt;
use std::error::Error;

/// The default significance level of SP 800-22.
pub const ALPHA: f64 = 0.01;

/// Result of one statistical test: one or more P-values.
#[derive(Debug, Clone, PartialEq)]
pub struct TestOutcome {
    /// Test name (SP 800-22 terminology).
    pub name: &'static str,
    /// All P-values the test produced (most tests produce one;
    /// templates, serial, cusum and excursions produce several).
    pub p_values: Vec<f64>,
}

impl TestOutcome {
    /// Creates an outcome with a single P-value.
    pub fn single(name: &'static str, p: f64) -> Self {
        TestOutcome {
            name,
            p_values: vec![p],
        }
    }

    /// `true` if every P-value is at or above the significance level.
    pub fn passes(&self, alpha: f64) -> bool {
        self.p_values.iter().all(|&p| p >= alpha)
    }

    /// The smallest P-value (1.0 for an empty list).
    pub fn min_p(&self) -> f64 {
        self.p_values.iter().copied().fold(1.0, f64::min)
    }
}

impl fmt::Display for TestOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: min P = {:.6}", self.name, self.min_p())
    }
}

/// Why a test could not run on the given sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestError {
    /// The sequence is shorter than the test's minimum length.
    TooShort {
        /// Test name.
        name: &'static str,
        /// Minimum applicable length.
        required: usize,
        /// Actual length.
        actual: usize,
    },
    /// A test-specific applicability condition failed (e.g. too few
    /// zero crossings for the random excursions tests).
    NotApplicable {
        /// Test name.
        name: &'static str,
        /// Human-readable reason.
        reason: String,
    },
}

impl TestError {
    /// The test the error belongs to.
    pub fn name(&self) -> &'static str {
        match self {
            TestError::TooShort { name, .. } | TestError::NotApplicable { name, .. } => name,
        }
    }
}

impl fmt::Display for TestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestError::TooShort {
                name,
                required,
                actual,
            } => write!(
                f,
                "{name}: sequence of {actual} bits is shorter than the required {required}"
            ),
            TestError::NotApplicable { name, reason } => {
                write!(f, "{name}: not applicable ({reason})")
            }
        }
    }
}

impl Error for TestError {}

/// Shorthand used by every test function.
pub type TestResult = Result<TestOutcome, TestError>;

pub(crate) fn require_len(
    name: &'static str,
    actual: usize,
    required: usize,
) -> Result<(), TestError> {
    if actual < required {
        Err(TestError::TooShort {
            name,
            required,
            actual,
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_pass_logic() {
        let o = TestOutcome {
            name: "x",
            p_values: vec![0.2, 0.05, 0.9],
        };
        assert!(o.passes(0.01));
        assert!(!o.passes(0.06));
        assert!((o.min_p() - 0.05).abs() < 1e-15);
    }

    #[test]
    fn single_constructor() {
        let o = TestOutcome::single("frequency", 0.5);
        assert_eq!(o.p_values, vec![0.5]);
        assert_eq!(format!("{o}"), "frequency: min P = 0.500000");
    }

    #[test]
    fn error_display_and_name() {
        let e = TestError::TooShort {
            name: "rank",
            required: 38912,
            actual: 100,
        };
        assert_eq!(e.name(), "rank");
        assert!(format!("{e}").contains("38912"));
        let e = TestError::NotApplicable {
            name: "random excursions",
            reason: "only 12 cycles".into(),
        };
        assert!(format!("{e}").contains("12 cycles"));
    }

    #[test]
    fn require_len_helper() {
        assert!(require_len("t", 100, 100).is_ok());
        assert!(require_len("t", 99, 100).is_err());
    }
}
