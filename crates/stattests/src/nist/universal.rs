//! Maurer's universal statistical test — SP 800-22 §2.9.
//!
//! Measures the compressibility of the sequence: the average log2
//! distance between repeated occurrences of `L`-bit blocks converges
//! to a known constant for a random source.
//!
//! Parameter selection: SP 800-22's table starts at `L = 6`
//! (n ≥ 387 840); Maurer's original definition covers `L = 1..16` with
//! `Q = 10·2^L` initialization blocks. To keep the test applicable at
//! the 10^5-bit sequence lengths used by the scaled-down Table-1
//! harness, this implementation selects the largest `L` with
//! `Q + K` blocks available where `K ≥ 1000·2^L`, going as low as
//! `L = 4` (documented deviation; the reference expected values and
//! variances from the Handbook of Applied Cryptography Table are used).

use crate::bits::BitVec;
use crate::nist::{TestError, TestOutcome, TestResult};
use crate::special::erfc;

/// Test name.
pub const NAME: &str = "universal (Maurer)";

/// Expected value and variance of the per-block statistic for
/// L = 1..=16 (index L−1), Handbook of Applied Cryptography /
/// SP 800-22 §2.9.4.
pub const EXPECTED: [(f64, f64); 16] = [
    (0.732_649_5, 0.690),
    (1.537_438_3, 1.338),
    (2.401_606_8, 1.901),
    (3.311_224_7, 2.358),
    (4.253_426_6, 2.705),
    (5.217_705_2, 2.954),
    (6.196_250_7, 3.125),
    (7.183_665_6, 3.238),
    (8.176_424_8, 3.311),
    (9.172_324_3, 3.356),
    (10.170_032, 3.384),
    (11.168_765, 3.401),
    (12.168_070, 3.410),
    (13.167_693, 3.416),
    (14.167_488, 3.419),
    (15.167_379, 3.421),
];

/// Smallest block length this implementation will select.
pub const MIN_L: usize = 4;

/// Largest block length.
pub const MAX_L: usize = 16;

/// Picks the largest applicable `L` for a sequence length, or `None`.
pub fn choose_l(n: usize) -> Option<usize> {
    (MIN_L..=MAX_L)
        .rev()
        .find(|&l| n >= (10 + 1000) * (1 << l) * l)
}

/// Runs Maurer's universal test.
///
/// # Errors
///
/// `TooShort` when even `L = 4` has insufficient blocks
/// (n < 1010·2⁴·4 = 64 640).
pub fn test(bits: &BitVec) -> TestResult {
    let Some(l) = choose_l(bits.len()) else {
        return Err(TestError::TooShort {
            name: NAME,
            required: (10 + 1000) * (1 << MIN_L) * MIN_L,
            actual: bits.len(),
        });
    };
    let q = 10 * (1 << l); // initialization blocks
    let total_blocks = bits.len() / l;
    let k = total_blocks - q; // test blocks
    let mut table = vec![0usize; 1 << l];
    for i in 0..q {
        let v = bits.window_value(i * l, l) as usize;
        table[v] = i + 1; // 1-based block index
    }
    let mut sum = 0.0;
    for i in q..total_blocks {
        let v = bits.window_value(i * l, l) as usize;
        let last = table[v];
        table[v] = i + 1;
        // Distance since last occurrence (i+1 - last); unseen values
        // can only occur if Q didn't cover them — distance counts from
        // block 0 conventionally (last = 0 gives i + 1).
        sum += ((i + 1 - last) as f64).log2();
    }
    let fn_stat = sum / k as f64;
    let (mu, var) = EXPECTED[l - 1];
    // Finite-K correction factor c(L, K) from SP 800-22 §2.9.4.
    let c =
        0.7 - 0.8 / l as f64 + (4.0 + 32.0 / l as f64) * (k as f64).powf(-3.0 / l as f64) / 15.0;
    let sigma = c * (var / k as f64).sqrt();
    let p = erfc((fn_stat - mu).abs() / (core::f64::consts::SQRT_2 * sigma));
    Ok(TestOutcome::single(NAME, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l_selection_follows_length() {
        assert_eq!(choose_l(64_639), None);
        assert_eq!(choose_l(64_640), Some(4));
        assert_eq!(choose_l(200_000), Some(5));
        assert_eq!(choose_l(387_840), Some(6));
        // NIST's own table: n >= 904 960 -> L = 7; >= 2 068 480 -> 8.
        assert_eq!(choose_l(1_000_000), Some(7));
        assert_eq!(choose_l(2_000_000), Some(7));
        assert_eq!(choose_l(2_068_480), Some(8));
    }

    #[test]
    fn expected_table_is_monotone() {
        for w in EXPECTED.windows(2) {
            assert!(w[1].0 > w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        // mu(L) converges to L - 0.8327...
        assert!((EXPECTED[15].0 - (16.0 - 0.832_621)).abs() < 1e-3);
    }

    #[test]
    fn random_data_passes() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(14);
        let bits: BitVec = (0..200_000).map(|_| rng.gen::<bool>()).collect();
        let p = test(&bits).unwrap().min_p();
        assert!(p > 0.001, "p = {p}");
    }

    #[test]
    fn periodic_data_fails() {
        // Period 32: every L-bit block repeats with short distances.
        let bits: BitVec = (0..200_000).map(|i| (i % 32) < 11).collect();
        let p = test(&bits).unwrap().min_p();
        assert!(p < 1e-10, "p = {p}");
    }

    #[test]
    fn biased_data_fails() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(15);
        let bits: BitVec = (0..200_000).map(|_| rng.gen::<f64>() < 0.4).collect();
        let p = test(&bits).unwrap().min_p();
        assert!(p < 0.01, "p = {p}");
    }

    #[test]
    fn too_short_errors() {
        let bits: BitVec = (0..10_000).map(|_| true).collect();
        assert!(matches!(test(&bits), Err(TestError::TooShort { .. })));
    }
}
