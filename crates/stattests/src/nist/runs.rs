//! Runs test — SP 800-22 §2.3.
//!
//! Counts the total number of runs `V_n` (maximal blocks of equal
//! bits) and compares it with the expectation `2nπ(1−π)` for the
//! observed ones-proportion `π`:
//! `P = erfc(|V_n − 2nπ(1−π)| / (2√(2n)·π(1−π)))`.
//!
//! Prerequisite: the frequency test must be passable,
//! `|π − ½| < 2/√n`; otherwise the runs test is not applicable and
//! reports `P = 0` per the specification.

use crate::bits::BitVec;
use crate::nist::{require_len, TestOutcome, TestResult};
use crate::special::erfc;

/// Test name.
pub const NAME: &str = "runs";

/// Minimum recommended sequence length.
pub const MIN_LEN: usize = 100;

/// Runs the runs test.
///
/// # Errors
///
/// `TooShort` below 100 bits.
/// # Examples
///
/// ```
/// use trng_testkit::prng::{Rng, SeedableRng};
/// use trng_stattests::bits::BitVec;
/// let mut rng = trng_testkit::prng::StdRng::seed_from_u64(1);
/// let bits: BitVec = (0..10_000).map(|_| rng.gen::<bool>()).collect();
/// let p = trng_stattests::nist::runs::test(&bits)?.min_p();
/// assert!(p > 0.0001);
/// # Ok::<(), trng_stattests::nist::TestError>(())
/// ```
pub fn test(bits: &BitVec) -> TestResult {
    require_len(NAME, bits.len(), MIN_LEN)?;
    let n = bits.len() as f64;
    let pi = bits.count_ones() as f64 / n;
    // Frequency prerequisite (§2.3.4 step 2).
    if (pi - 0.5).abs() >= 2.0 / n.sqrt() {
        return Ok(TestOutcome::single(NAME, 0.0));
    }
    let mut v = 1u64;
    let mut prev = bits.get(0);
    for i in 1..bits.len() {
        let b = bits.get(i);
        if b != prev {
            v += 1;
            prev = b;
        }
    }
    let num = (v as f64 - 2.0 * n * pi * (1.0 - pi)).abs();
    let den = 2.0 * (2.0 * n).sqrt() * pi * (1.0 - pi);
    let p = erfc(num / den);
    Ok(TestOutcome::single(NAME, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SP 800-22 §2.3.4: ε = 1001101011 (n = 10), π = 0.6, V = 7,
    /// P = 0.147232.
    #[test]
    fn nist_worked_example() {
        let bits = BitVec::from_binary_str("1001101011");
        let n = 10.0;
        let pi = bits.count_ones() as f64 / n;
        assert!((pi - 0.6).abs() < 1e-12);
        let mut v = 1u64;
        for i in 1..bits.len() {
            if bits.get(i) != bits.get(i - 1) {
                v += 1;
            }
        }
        assert_eq!(v, 7);
        let p = erfc(
            (v as f64 - 2.0 * n * pi * (1.0 - pi)).abs()
                / (2.0 * (2.0 * n).sqrt() * pi * (1.0 - pi)),
        );
        assert!((p - 0.147232).abs() < 1e-6, "p = {p}");
    }

    #[test]
    fn random_data_passes() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(3);
        let bits: BitVec = (0..100_000).map(|_| rng.gen::<bool>()).collect();
        assert!(test(&bits).unwrap().min_p() > 0.001);
    }

    #[test]
    fn alternating_sequence_fails() {
        // 1010... has the maximum possible number of runs.
        let bits: BitVec = (0..10_000).map(|i| i % 2 == 0).collect();
        let p = test(&bits).unwrap().min_p();
        assert!(p < 1e-10, "p = {p}");
    }

    #[test]
    fn long_runs_fail() {
        // Blocks of 64 equal bits: far too few runs.
        let bits: BitVec = (0..10_000).map(|i| (i / 64) % 2 == 0).collect();
        let p = test(&bits).unwrap().min_p();
        assert!(p < 1e-10, "p = {p}");
    }

    #[test]
    fn prerequisite_failure_reports_zero() {
        // 90 % ones: frequency prerequisite fails -> P = 0.
        let bits: BitVec = (0..10_000).map(|i| i % 10 != 0).collect();
        assert_eq!(test(&bits).unwrap().min_p(), 0.0);
    }

    #[test]
    fn too_short_errors() {
        let bits = BitVec::from_binary_str("1001101011");
        assert!(test(&bits).is_err());
    }
}
