//! Cumulative sums test — SP 800-22 §2.13.
//!
//! Treats the ±1-mapped sequence as a random walk and checks that the
//! maximal partial-sum excursion is consistent with Brownian-bridge
//! behaviour. Two P-values: forward and backward walks.

use crate::bits::BitVec;
use crate::nist::{require_len, TestOutcome, TestResult};
use crate::special::normal_cdf;

/// Test name.
pub const NAME: &str = "cumulative sums";

/// Minimum recommended sequence length.
pub const MIN_LEN: usize = 100;

/// P-value for a maximal excursion `z` over `n` steps (§2.13.4 step 3).
fn cusum_p(n: usize, z: f64) -> f64 {
    let n_f = n as f64;
    let sqrt_n = n_f.sqrt();
    // Lower summation limits take the ceiling (the sum runs over the
    // integers k with start <= k <= end); verified against the §2.13.4
    // worked example (z = 4, n = 10 -> P = 0.4116588).
    let k_lo_1 = ((-n_f / z + 1.0) / 4.0).ceil() as i64;
    let k_hi_1 = ((n_f / z - 1.0) / 4.0).floor() as i64;
    let mut sum1 = 0.0;
    for k in k_lo_1..=k_hi_1 {
        let k = k as f64;
        sum1 += normal_cdf((4.0 * k + 1.0) * z / sqrt_n) - normal_cdf((4.0 * k - 1.0) * z / sqrt_n);
    }
    let k_lo_2 = ((-n_f / z - 3.0) / 4.0).ceil() as i64;
    let k_hi_2 = ((n_f / z - 1.0) / 4.0).floor() as i64;
    let mut sum2 = 0.0;
    for k in k_lo_2..=k_hi_2 {
        let k = k as f64;
        sum2 += normal_cdf((4.0 * k + 3.0) * z / sqrt_n) - normal_cdf((4.0 * k + 1.0) * z / sqrt_n);
    }
    (1.0 - sum1 + sum2).clamp(0.0, 1.0)
}

/// Maximal absolute partial sum of the walk, forward or backward.
fn max_excursion(bits: &BitVec, forward: bool) -> f64 {
    let n = bits.len();
    let mut s = 0i64;
    let mut z = 0i64;
    for i in 0..n {
        let idx = if forward { i } else { n - 1 - i };
        s += if bits.get(idx) { 1 } else { -1 };
        z = z.max(s.abs());
    }
    z as f64
}

/// Runs the cumulative sums test (both modes).
///
/// # Errors
///
/// `TooShort` below 100 bits.
/// # Examples
///
/// ```
/// use trng_testkit::prng::{Rng, SeedableRng};
/// use trng_stattests::bits::BitVec;
/// let mut rng = trng_testkit::prng::StdRng::seed_from_u64(4);
/// let bits: BitVec = (0..5_000).map(|_| rng.gen::<bool>()).collect();
/// let out = trng_stattests::nist::cusum::test(&bits)?;
/// assert_eq!(out.p_values.len(), 2); // forward and backward
/// # Ok::<(), trng_stattests::nist::TestError>(())
/// ```
pub fn test(bits: &BitVec) -> TestResult {
    require_len(NAME, bits.len(), MIN_LEN)?;
    let n = bits.len();
    let z_fwd = max_excursion(bits, true);
    let z_bwd = max_excursion(bits, false);
    Ok(TestOutcome {
        name: NAME,
        p_values: vec![cusum_p(n, z_fwd), cusum_p(n, z_bwd)],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SP 800-22 §2.13.4 worked example: ε = 1011010111 (n = 10),
    /// forward z = 4, P = 0.4116588.
    #[test]
    fn nist_worked_example() {
        let bits = BitVec::from_binary_str("1011010111");
        let z = max_excursion(&bits, true);
        assert_eq!(z, 4.0);
        let p = cusum_p(10, z);
        assert!((p - 0.411_658_8).abs() < 1e-6, "p = {p}");
    }

    #[test]
    fn excursion_directions_differ() {
        let bits = BitVec::from_binary_str("1111100000");
        assert_eq!(max_excursion(&bits, true), 5.0);
        assert_eq!(max_excursion(&bits, false), 5.0);
        let bits = BitVec::from_binary_str("1111000000");
        assert_eq!(max_excursion(&bits, true), 4.0);
        // Backward: 0000001111 walks to -6 first.
        assert_eq!(max_excursion(&bits, false), 6.0);
    }

    #[test]
    fn random_data_passes() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(22);
        let bits: BitVec = (0..100_000).map(|_| rng.gen::<bool>()).collect();
        let out = test(&bits).unwrap();
        assert_eq!(out.p_values.len(), 2);
        assert!(out.min_p() > 0.001, "min p = {}", out.min_p());
    }

    #[test]
    fn drifting_data_fails() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(23);
        // 52 % ones: the walk drifts far from the origin.
        let bits: BitVec = (0..100_000).map(|_| rng.gen::<f64>() < 0.52).collect();
        let out = test(&bits).unwrap();
        assert!(out.min_p() < 1e-6, "min p = {}", out.min_p());
    }

    #[test]
    fn alternating_data_scores_high() {
        // 1010...: the walk never leaves {0, 1}: z = 1 is *too small*,
        // the test only penalizes large excursions, so P ~ 1. (The
        // runs test catches this defect instead.)
        let bits: BitVec = (0..10_000).map(|i| i % 2 == 0).collect();
        let out = test(&bits).unwrap();
        assert!(out.min_p() > 0.9);
    }

    #[test]
    fn too_short_errors() {
        let bits = BitVec::from_binary_str("1011010111");
        assert!(test(&bits).is_err());
    }
}
