//! Template matching tests — SP 800-22 §2.7 (non-overlapping) and
//! §2.8 (overlapping).
//!
//! The non-overlapping test scans `N = 8` blocks for occurrences of
//! aperiodic 9-bit templates (restarting the scan after each match);
//! the overlapping test counts (possibly overlapping) occurrences of
//! the all-ones template in 1032-bit blocks and bins them against the
//! theoretical distribution.
//!
//! SP 800-22 uses all 148 aperiodic templates of length 9; running all
//! of them is supported ([`all_aperiodic_templates`]), but the default
//! entry point uses a deterministic subset
//! ([`DEFAULT_TEMPLATE_STRIDE`]) to keep battery runtime proportionate
//! — the subset is documented in EXPERIMENTS.md as a deviation.

use crate::bits::BitVec;
use crate::nist::{require_len, TestError, TestOutcome, TestResult};
use crate::special::igamc;

/// Template length used by both tests (the SP 800-22 reference choice).
pub const TEMPLATE_LEN: usize = 9;

/// Stride through the aperiodic template list used by the default
/// non-overlapping test: every 10th template (15 of 148).
pub const DEFAULT_TEMPLATE_STRIDE: usize = 10;

/// Number of blocks of the non-overlapping test.
pub const NON_OVERLAPPING_BLOCKS: usize = 8;

/// Test names.
pub const NAME_NON_OVERLAPPING: &str = "non-overlapping template";
/// Name of the overlapping variant.
pub const NAME_OVERLAPPING: &str = "overlapping template";

/// `true` if `t` (of length `m`, MSB-first) is aperiodic: no proper
/// shift of the template matches itself, i.e. it cannot overlap with a
/// copy of itself.
pub fn is_aperiodic(t: u64, m: usize) -> bool {
    // Template must not have any period d < m: for all 1 <= d < m,
    // the first m-d bits must differ from the last m-d bits somewhere.
    for d in 1..m {
        let keep = m - d;
        let high = t >> d; // first `keep` bits (as low bits)
        let low = t & ((1u64 << keep) - 1);
        if high == low {
            return false;
        }
    }
    true
}

/// All aperiodic templates of length [`TEMPLATE_LEN`], in increasing
/// numeric order (148 of them for m = 9, matching SP 800-22).
pub fn all_aperiodic_templates() -> Vec<u64> {
    (0..(1u64 << TEMPLATE_LEN))
        .filter(|&t| is_aperiodic(t, TEMPLATE_LEN))
        .collect()
}

/// The default template subset (every [`DEFAULT_TEMPLATE_STRIDE`]-th
/// aperiodic template).
pub fn default_templates() -> Vec<u64> {
    all_aperiodic_templates()
        .into_iter()
        .step_by(DEFAULT_TEMPLATE_STRIDE)
        .collect()
}

/// Runs the non-overlapping template test with the default subset.
///
/// # Errors
///
/// `TooShort` below 8 blocks of 128 bits.
pub fn non_overlapping(bits: &BitVec) -> TestResult {
    non_overlapping_with(bits, &default_templates())
}

/// Runs the non-overlapping template test for the given templates,
/// producing one P-value per template.
///
/// # Errors
///
/// `TooShort` when blocks would be under 128 bits.
///
/// # Panics
///
/// Panics if `templates` is empty.
pub fn non_overlapping_with(bits: &BitVec, templates: &[u64]) -> TestResult {
    assert!(!templates.is_empty(), "need at least one template");
    // Each of the 8 blocks must be large enough for the per-block
    // match count to have a usable normal approximation (mu >= ~4,
    // i.e. blocks of >= 2048 bits); shorter sequences produce spurious
    // failures.
    require_len(
        NAME_NON_OVERLAPPING,
        bits.len(),
        NON_OVERLAPPING_BLOCKS * 2048,
    )?;
    let n_blocks = NON_OVERLAPPING_BLOCKS;
    let block_len = bits.len() / n_blocks;
    let m = TEMPLATE_LEN;
    let m_f = m as f64;
    let block_f = block_len as f64;
    let mu = (block_f - m_f + 1.0) / 2f64.powi(m as i32);
    let sigma2 = block_f * (2f64.powi(-(m as i32)) - (2.0 * m_f - 1.0) * 2f64.powi(-2 * m as i32));
    let mut p_values = Vec::with_capacity(templates.len());
    for &tpl in templates {
        let mut chi2 = 0.0;
        for b in 0..n_blocks {
            let start = b * block_len;
            let mut count = 0u64;
            let mut i = 0usize;
            while i + m <= block_len {
                if bits.window_value(start + i, m) == tpl {
                    count += 1;
                    i += m; // non-overlapping: restart after the match
                } else {
                    i += 1;
                }
            }
            chi2 += (count as f64 - mu) * (count as f64 - mu) / sigma2;
        }
        p_values.push(igamc(n_blocks as f64 / 2.0, chi2 / 2.0));
    }
    Ok(TestOutcome {
        name: NAME_NON_OVERLAPPING,
        p_values,
    })
}

/// Block length of the overlapping template test.
pub const OVERLAPPING_BLOCK: usize = 1032;

/// Category probabilities for m = 9, M = 1032 (SP 800-22 §3.8,
/// rev 1a values).
const OVERLAPPING_PI: [f64; 6] = [0.364091, 0.185659, 0.139381, 0.100571, 0.070432, 0.139865];

/// Runs the overlapping template test (all-ones template of length 9).
///
/// # Errors
///
/// `TooShort` below 5 blocks of 1032 bits (SP 800-22 recommends
/// n ≥ 10^6; we accept shorter sequences but at least enough blocks
/// for the χ² to be meaningful).
pub fn overlapping(bits: &BitVec) -> TestResult {
    let n_blocks = bits.len() / OVERLAPPING_BLOCK;
    if n_blocks < 5 {
        return Err(TestError::TooShort {
            name: NAME_OVERLAPPING,
            required: 5 * OVERLAPPING_BLOCK,
            actual: bits.len(),
        });
    }
    let m = TEMPLATE_LEN;
    let mut nu = [0u64; 6];
    for b in 0..n_blocks {
        let start = b * OVERLAPPING_BLOCK;
        let mut count = 0usize;
        for i in 0..=(OVERLAPPING_BLOCK - m) {
            // All-ones template: a window of 9 ones.
            if (0..m).all(|j| bits.get(start + i + j)) {
                count += 1;
            }
        }
        nu[count.min(5)] += 1;
    }
    let n_f = n_blocks as f64;
    let chi2: f64 = nu
        .iter()
        .zip(&OVERLAPPING_PI)
        .map(|(&v, &pi)| {
            let e = n_f * pi;
            (v as f64 - e) * (v as f64 - e) / e
        })
        .sum();
    let p = igamc(2.5, chi2 / 2.0);
    Ok(TestOutcome::single(NAME_OVERLAPPING, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aperiodicity_detector() {
        // 000000001 cannot overlap itself: aperiodic.
        assert!(is_aperiodic(0b000000001, 9));
        // 101010101 has period 2: periodic.
        assert!(!is_aperiodic(0b101010101, 9));
        // All ones has period 1.
        assert!(!is_aperiodic(0b111111111, 9));
        // 110110110 has period 3.
        assert!(!is_aperiodic(0b110110110, 9));
        // 011111111 (one leading zero) is aperiodic.
        assert!(is_aperiodic(0b011111111, 9));
    }

    #[test]
    fn there_are_148_aperiodic_templates_of_length_9() {
        // The SP 800-22 table for m = 9 lists 148 templates.
        assert_eq!(all_aperiodic_templates().len(), 148);
    }

    #[test]
    fn default_subset_is_deterministic() {
        let a = default_templates();
        let b = default_templates();
        assert_eq!(a, b);
        assert_eq!(a.len(), 15);
    }

    #[test]
    fn non_overlapping_random_data_passes() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(10);
        let bits: BitVec = (0..100_000).map(|_| rng.gen::<bool>()).collect();
        let out = non_overlapping(&bits).unwrap();
        assert_eq!(out.p_values.len(), 15);
        // With 15 p-values, allow the occasional small one but not
        // catastrophic failure.
        assert!(out.min_p() > 1e-4, "min p = {}", out.min_p());
    }

    #[test]
    fn non_overlapping_detects_template_stuffing() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(11);
        let tpl = default_templates()[3];
        // Random data with the template injected every 100 bits.
        let mut bits = BitVec::new();
        while bits.len() < 100_000 {
            for _ in 0..91 {
                bits.push(rng.gen::<bool>());
            }
            for j in (0..9).rev() {
                bits.push(tpl >> j & 1 == 1);
            }
        }
        let out = non_overlapping_with(&bits, &[tpl]).unwrap();
        assert!(out.min_p() < 1e-6, "p = {}", out.min_p());
    }

    #[test]
    fn overlapping_random_data_passes() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(12);
        let bits: BitVec = (0..200_000).map(|_| rng.gen::<bool>()).collect();
        let p = overlapping(&bits).unwrap().min_p();
        assert!(p > 0.001, "p = {p}");
    }

    #[test]
    fn overlapping_detects_excess_ones_runs() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(13);
        // Random data where every 50th window is forced to 9 ones.
        let mut bits = BitVec::new();
        while bits.len() < 200_000 {
            for _ in 0..41 {
                bits.push(rng.gen::<bool>());
            }
            for _ in 0..9 {
                bits.push(true);
            }
        }
        let p = overlapping(&bits).unwrap().min_p();
        assert!(p < 1e-6, "p = {p}");
    }

    #[test]
    fn overlapping_pi_sums_to_one() {
        let s: f64 = OVERLAPPING_PI.iter().sum();
        assert!((s - 1.0).abs() < 2e-6, "sum {s}");
    }

    #[test]
    fn too_short_errors() {
        let bits: BitVec = (0..1023).map(|_| true).collect();
        assert!(non_overlapping(&bits).is_err());
        assert!(overlapping(&bits).is_err());
    }
}
