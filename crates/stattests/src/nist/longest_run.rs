//! Longest run of ones in a block — SP 800-22 §2.4.
//!
//! Splits the sequence into blocks, finds the longest run of ones in
//! each, bins the counts into `K + 1` categories and compares with the
//! theoretical probabilities via χ². The block size (and the matching
//! category table) depends on the sequence length, per Table 2.4.4:
//!
//! | n | M | K | categories |
//! |---|---|---|-----------|
//! | ≥ 128 | 8 | 3 | ≤1, 2, 3, ≥4 |
//! | ≥ 6 272 | 128 | 5 | ≤4, 5, 6, 7, 8, ≥9 |
//! | ≥ 750 000 | 10⁴ | 6 | ≤10, 11, …, 15, ≥16 |

use crate::bits::BitVec;
use crate::nist::{require_len, TestOutcome, TestResult};
use crate::special::igamc;

/// Test name.
pub const NAME: &str = "longest run of ones";

/// Parameter set for one sequence-length regime.
struct Regime {
    m: usize,
    /// Lowest category (runs ≤ this collapse into category 0).
    v_min: u32,
    /// Highest category (runs ≥ this collapse into the last).
    v_max: u32,
    /// Theoretical category probabilities (length K + 1).
    pi: &'static [f64],
    /// Number of blocks to use (N); SP 800-22 fixes N per regime.
    n_blocks: usize,
}

/// §3.4 of SP 800-22: theoretical probabilities.
const PI_M8: [f64; 4] = [0.2148, 0.3672, 0.2305, 0.1875];
const PI_M128: [f64; 6] = [0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124];
const PI_M10000: [f64; 7] = [0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727];

fn regime_for(n: usize) -> Option<Regime> {
    if n >= 750_000 {
        Some(Regime {
            m: 10_000,
            v_min: 10,
            v_max: 16,
            pi: &PI_M10000,
            n_blocks: 75,
        })
    } else if n >= 6_272 {
        Some(Regime {
            m: 128,
            v_min: 4,
            v_max: 9,
            pi: &PI_M128,
            n_blocks: 49,
        })
    } else if n >= 128 {
        Some(Regime {
            m: 8,
            v_min: 1,
            v_max: 4,
            pi: &PI_M8,
            n_blocks: 16,
        })
    } else {
        None
    }
}

/// Longest run of ones within `[start, start + len)`.
fn longest_ones_run(bits: &BitVec, start: usize, len: usize) -> u32 {
    let mut best = 0u32;
    let mut cur = 0u32;
    for i in start..start + len {
        if bits.get(i) {
            cur += 1;
            best = best.max(cur);
        } else {
            cur = 0;
        }
    }
    best
}

/// Runs the longest-run-of-ones test.
///
/// # Errors
///
/// `TooShort` below 128 bits.
/// # Examples
///
/// ```
/// use trng_testkit::prng::{Rng, SeedableRng};
/// use trng_stattests::bits::BitVec;
/// let mut rng = trng_testkit::prng::StdRng::seed_from_u64(2);
/// let bits: BitVec = (0..10_000).map(|_| rng.gen::<bool>()).collect();
/// let p = trng_stattests::nist::longest_run::test(&bits)?.min_p();
/// assert!(p > 0.0001);
/// # Ok::<(), trng_stattests::nist::TestError>(())
/// ```
pub fn test(bits: &BitVec) -> TestResult {
    require_len(NAME, bits.len(), 128)?;
    let regime = regime_for(bits.len()).expect("length gate passed");
    let available = bits.len() / regime.m;
    let n_blocks = regime.n_blocks.min(available).max(1);
    let k = regime.pi.len();
    let mut nu = vec![0u64; k];
    for b in 0..n_blocks {
        let run = longest_ones_run(bits, b * regime.m, regime.m);
        let cat = if run <= regime.v_min {
            0
        } else if run >= regime.v_max {
            k - 1
        } else {
            (run - regime.v_min) as usize
        };
        nu[cat] += 1;
    }
    let n_f = n_blocks as f64;
    let chi2: f64 = nu
        .iter()
        .zip(regime.pi)
        .map(|(&v, &p)| {
            let e = n_f * p;
            (v as f64 - e) * (v as f64 - e) / e
        })
        .sum();
    let p = igamc((k - 1) as f64 / 2.0, chi2 / 2.0);
    Ok(TestOutcome::single(NAME, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_run_helper() {
        let bits = BitVec::from_binary_str("110111101");
        assert_eq!(longest_ones_run(&bits, 0, 9), 4);
        assert_eq!(longest_ones_run(&bits, 0, 2), 2);
        assert_eq!(longest_ones_run(&bits, 2, 3), 2);
        let zeros = BitVec::from_binary_str("0000");
        assert_eq!(longest_ones_run(&zeros, 0, 4), 0);
    }

    #[test]
    fn regime_selection() {
        assert!(regime_for(100).is_none());
        assert_eq!(regime_for(128).unwrap().m, 8);
        assert_eq!(regime_for(10_000).unwrap().m, 128);
        assert_eq!(regime_for(1_000_000).unwrap().m, 10_000);
    }

    #[test]
    fn probabilities_sum_to_one() {
        for pi in [&PI_M8[..], &PI_M128[..], &PI_M10000[..]] {
            let s: f64 = pi.iter().sum();
            assert!((s - 1.0).abs() < 2e-3, "sum {s}");
        }
    }

    #[test]
    fn random_data_passes() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(4);
        let bits: BitVec = (0..100_000).map(|_| rng.gen::<bool>()).collect();
        assert!(test(&bits).unwrap().min_p() > 0.001);
    }

    #[test]
    fn periodic_short_runs_fail() {
        // 110110110...: longest run in every block is exactly 2.
        let bits: BitVec = (0..100_000).map(|i| i % 3 != 2).collect();
        let p = test(&bits).unwrap().min_p();
        assert!(p < 1e-6, "p = {p}");
    }

    #[test]
    fn long_run_heavy_data_fails() {
        // Runs of 32 ones separated by single zeros: every block has a
        // huge longest run.
        let bits: BitVec = (0..100_000).map(|i| i % 33 != 0).collect();
        let p = test(&bits).unwrap().min_p();
        assert!(p < 1e-6, "p = {p}");
    }

    #[test]
    fn small_regime_smoke() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(5);
        let bits: BitVec = (0..256).map(|_| rng.gen::<bool>()).collect();
        let p = test(&bits).unwrap().min_p();
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn too_short_errors() {
        let bits: BitVec = (0..127).map(|_| true).collect();
        assert!(test(&bits).is_err());
    }
}
