//! Discrete Fourier transform (spectral) test — SP 800-22 §2.6.
//!
//! Detects periodic features: maps bits to ±1, computes the DFT and
//! counts how many of the first `n/2` peak moduli fall below the 95 %
//! threshold `T = sqrt(n·ln(1/0.05))`. Under randomness ~95 % should;
//! the normalized difference is referred to the normal distribution.
//!
//! The transform uses the Bluestein FFT ([`crate::fft`]), so the test
//! runs on sequences of any length without truncation.

use crate::bits::BitVec;
use crate::fft::spectrum_moduli;
use crate::nist::{require_len, TestOutcome, TestResult};
use crate::special::erfc;

/// Test name.
pub const NAME: &str = "dft (spectral)";

/// Minimum recommended sequence length.
pub const MIN_LEN: usize = 1000;

/// Runs the spectral test.
///
/// # Errors
///
/// `TooShort` below 1000 bits.
/// # Examples
///
/// ```
/// use trng_testkit::prng::{Rng, SeedableRng};
/// use trng_stattests::bits::BitVec;
/// let mut rng = trng_testkit::prng::StdRng::seed_from_u64(3);
/// let bits: BitVec = (0..4_096).map(|_| rng.gen::<bool>()).collect();
/// let p = trng_stattests::nist::dft::test(&bits)?.min_p();
/// assert!(p > 0.0001);
/// # Ok::<(), trng_stattests::nist::TestError>(())
/// ```
pub fn test(bits: &BitVec) -> TestResult {
    require_len(NAME, bits.len(), MIN_LEN)?;
    let n = bits.len();
    let pm1: Vec<f64> = (0..n).map(|i| bits.pm1(i)).collect();
    let moduli = spectrum_moduli(&pm1);
    let n_f = n as f64;
    // T = sqrt(ln(1/0.05) * n) = sqrt(2.995732... * n).
    let threshold = ((1.0 / 0.05f64).ln() * n_f).sqrt();
    let n0 = 0.95 * n_f / 2.0;
    let n1 = moduli.iter().filter(|&&m| m < threshold).count() as f64;
    let d = (n1 - n0) / (n_f * 0.95 * 0.05 / 4.0).sqrt();
    let p = erfc(d.abs() / core::f64::consts::SQRT_2);
    Ok(TestOutcome::single(NAME, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_data_passes() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(7);
        let bits: BitVec = (0..65_536).map(|_| rng.gen::<bool>()).collect();
        let p = test(&bits).unwrap().min_p();
        assert!(p > 0.001, "p = {p}");
    }

    #[test]
    fn random_data_passes_non_power_of_two_length() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(8);
        let bits: BitVec = (0..100_000).map(|_| rng.gen::<bool>()).collect();
        let p = test(&bits).unwrap().min_p();
        assert!(p > 0.001, "p = {p}");
    }

    #[test]
    fn strong_periodic_component_fails() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(9);
        // Random bits with a superimposed strong period-16 component:
        // force every 16th bit to 1.
        let bits: BitVec = (0..65_536)
            .map(|i| if i % 16 == 0 { true } else { rng.gen::<bool>() })
            .collect();
        let p = test(&bits).unwrap().min_p();
        assert!(p < 0.01, "p = {p}");
    }

    #[test]
    fn pure_square_wave_fails() {
        let bits: BitVec = (0..4096).map(|i| (i / 8) % 2 == 0).collect();
        let p = test(&bits).unwrap().min_p();
        assert!(p < 1e-6, "p = {p}");
    }

    #[test]
    fn too_short_errors() {
        let bits: BitVec = (0..999).map(|_| true).collect();
        assert!(test(&bits).is_err());
    }
}
