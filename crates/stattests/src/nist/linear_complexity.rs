//! Linear complexity test — SP 800-22 §2.10.
//!
//! Computes the Berlekamp–Massey linear complexity of `M = 500`-bit
//! blocks; for random data the complexity concentrates at `M/2` with a
//! known discrete distribution around it. Deviations (`T_i`) are
//! binned into 7 categories and χ²-tested.

use crate::bits::BitVec;
use crate::nist::{TestError, TestOutcome, TestResult};
use crate::special::igamc;

/// Test name.
pub const NAME: &str = "linear complexity";

/// Block length (SP 800-22 reference choice).
pub const BLOCK: usize = 500;

/// Minimum number of blocks for a meaningful χ².
pub const MIN_BLOCKS: usize = 50;

/// Category probabilities for `T` bins
/// (≤−2.5, −1.5, −0.5, 0.5, 1.5, 2.5, >2.5) — SP 800-22 §3.10.
const PI: [f64; 7] = [0.010417, 0.03125, 0.125, 0.5, 0.25, 0.0625, 0.020833];

/// Berlekamp–Massey linear complexity of a bit block.
///
/// Returns the length of the shortest LFSR generating the sequence.
pub fn berlekamp_massey(bits: &[u8]) -> usize {
    let n = bits.len();
    let mut c = vec![0u8; n + 1];
    let mut b = vec![0u8; n + 1];
    c[0] = 1;
    b[0] = 1;
    let mut l = 0usize;
    let mut m: isize = -1;
    let mut t = vec![0u8; n + 1];
    for nn in 0..n {
        // Discrepancy d = s[nn] + sum_{i=1..L} c[i]*s[nn-i].
        let mut d = bits[nn];
        for i in 1..=l {
            d ^= c[i] & bits[nn - i];
        }
        if d == 1 {
            t.copy_from_slice(&c);
            let shift = (nn as isize - m) as usize;
            for i in 0..=n {
                if i + shift <= n && b[i] == 1 {
                    c[i + shift] ^= 1;
                }
            }
            if l <= nn / 2 {
                l = nn + 1 - l;
                m = nn as isize;
                b.copy_from_slice(&t);
            }
        }
    }
    l
}

/// Runs the linear complexity test.
///
/// # Errors
///
/// `TooShort` with fewer than 50 blocks of 500 bits.
pub fn test(bits: &BitVec) -> TestResult {
    let n_blocks = bits.len() / BLOCK;
    if n_blocks < MIN_BLOCKS {
        return Err(TestError::TooShort {
            name: NAME,
            required: MIN_BLOCKS * BLOCK,
            actual: bits.len(),
        });
    }
    let m_f = BLOCK as f64;
    // Expected complexity mu (SP 800-22 §2.10.4 step 3).
    let sign = if BLOCK.is_multiple_of(2) { 1.0 } else { -1.0 };
    let mu = m_f / 2.0 + (9.0 + sign) / 36.0 - (m_f / 3.0 + 2.0 / 9.0) / 2f64.powi(BLOCK as i32);
    let mut nu = [0u64; 7];
    let mut block = vec![0u8; BLOCK];
    for b in 0..n_blocks {
        for (i, x) in block.iter_mut().enumerate() {
            *x = bits.bit(b * BLOCK + i);
        }
        let l = berlekamp_massey(&block) as f64;
        let t = if BLOCK.is_multiple_of(2) { 1.0 } else { -1.0 } * (l - mu) + 2.0 / 9.0;
        let cat = if t <= -2.5 {
            0
        } else if t <= -1.5 {
            1
        } else if t <= -0.5 {
            2
        } else if t <= 0.5 {
            3
        } else if t <= 1.5 {
            4
        } else if t <= 2.5 {
            5
        } else {
            6
        };
        nu[cat] += 1;
    }
    let n_f = n_blocks as f64;
    let chi2: f64 = nu
        .iter()
        .zip(&PI)
        .map(|(&v, &pi)| {
            let e = n_f * pi;
            (v as f64 - e) * (v as f64 - e) / e
        })
        .sum();
    let p = igamc(3.0, chi2 / 2.0);
    Ok(TestOutcome::single(NAME, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bm_known_small_sequences() {
        // 1101011110001 (SP 800-22 §2.10.8 example) has L = 4... the
        // documented example block "1101011110001" yields complexity 4.
        let bits: Vec<u8> = "1101011110001".bytes().map(|b| b - b'0').collect();
        assert_eq!(berlekamp_massey(&bits), 4);
    }

    #[test]
    fn bm_degenerate_cases() {
        assert_eq!(berlekamp_massey(&[0, 0, 0, 0]), 0);
        // A single 1 at the end of zeros needs L = n.
        assert_eq!(berlekamp_massey(&[0, 0, 0, 1]), 4);
        // Alternating sequence is an LFSR of length 2.
        assert_eq!(berlekamp_massey(&[1, 0, 1, 0, 1, 0, 1, 0]), 2);
        // Constant ones: x_{n} = x_{n-1}: L = 1.
        assert_eq!(berlekamp_massey(&[1, 1, 1, 1, 1, 1]), 1);
    }

    #[test]
    fn bm_reproduces_lfsr_length() {
        // Generate with a known 5-stage LFSR: x^5 + x^2 + 1.
        let mut state = [1u8, 0, 0, 1, 1];
        let mut seq = Vec::with_capacity(200);
        for _ in 0..200 {
            let out = state[4];
            seq.push(out);
            let fb = state[4] ^ state[1];
            state.rotate_right(1);
            state[0] = fb;
        }
        assert_eq!(berlekamp_massey(&seq), 5);
    }

    #[test]
    fn random_complexity_concentrates_at_half() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(16);
        let block: Vec<u8> = (0..500).map(|_| rng.gen::<bool>() as u8).collect();
        let l = berlekamp_massey(&block);
        assert!((248..=252).contains(&l), "L = {l}");
    }

    #[test]
    fn pi_sums_to_one() {
        let s: f64 = PI.iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn random_data_passes() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(17);
        let bits: BitVec = (0..100_000).map(|_| rng.gen::<bool>()).collect();
        let p = test(&bits).unwrap().min_p();
        assert!(p > 0.001, "p = {p}");
    }

    #[test]
    fn lfsr_generated_data_fails() {
        // A short LFSR has tiny linear complexity in every block.
        let mut state = [1u8, 0, 0, 1, 1, 0, 1];
        let bits: BitVec = (0..100_000)
            .map(|_| {
                let out = state[6];
                let fb = state[6] ^ state[2];
                state.rotate_right(1);
                state[0] = fb;
                out == 1
            })
            .collect();
        let p = test(&bits).unwrap().min_p();
        assert!(p < 1e-10, "p = {p}");
    }

    #[test]
    fn too_short_errors() {
        let bits: BitVec = (0..24_999).map(|_| true).collect();
        assert!(test(&bits).is_err());
    }
}
