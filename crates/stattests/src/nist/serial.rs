//! Serial test — SP 800-22 §2.11.
//!
//! Checks the uniformity of overlapping `m`-bit pattern frequencies
//! (cyclically extended). Produces two P-values from the first and
//! second differences of the generalized ψ² statistics.

use crate::bits::BitVec;
use crate::nist::{require_len, TestOutcome, TestResult};
use crate::special::igamc;

/// Test name.
pub const NAME: &str = "serial";

/// Picks the pattern length per the guidance `m < ⌊log2 n⌋ − 2`,
/// capped at the reference value 16.
pub fn choose_m(n: usize) -> usize {
    let log2n = (usize::BITS - 1 - n.leading_zeros()) as usize;
    log2n.saturating_sub(5).clamp(3, 16)
}

/// ψ²_m statistic: frequency χ² of overlapping cyclic m-patterns.
fn psi_squared(bits: &BitVec, m: usize) -> f64 {
    if m == 0 {
        return 0.0;
    }
    let n = bits.len();
    let mut counts = vec![0u64; 1 << m];
    let mut value: usize = 0;
    let mask = (1usize << m) - 1;
    // Prime the first m-1 bits.
    for i in 0..m - 1 {
        value = (value << 1 | bits.bit(i) as usize) & mask;
    }
    for i in m - 1..n + m - 1 {
        let bit = bits.bit(i % n) as usize; // cyclic extension
        value = (value << 1 | bit) & mask;
        counts[value] += 1;
    }
    let n_f = n as f64;
    let sum_sq: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
    (1 << m) as f64 / n_f * sum_sq - n_f
}

/// Runs the serial test with automatic `m`.
///
/// # Errors
///
/// `TooShort` below 100 bits.
/// # Examples
///
/// ```
/// use trng_stattests::bits::BitVec;
/// // SP 800-22 example: two P-values come back.
/// let bits: BitVec = (0..2_000).map(|i| (i * 7 + i / 3) % 5 < 2).collect();
/// let out = trng_stattests::nist::serial::test(&bits)?;
/// assert_eq!(out.p_values.len(), 2);
/// # Ok::<(), trng_stattests::nist::TestError>(())
/// ```
pub fn test(bits: &BitVec) -> TestResult {
    test_with_m(bits, choose_m(bits.len()))
}

/// Runs the serial test with explicit pattern length `m`.
///
/// # Errors
///
/// `TooShort` below 100 bits.
///
/// # Panics
///
/// Panics if `m < 3` or `m > 24`.
pub fn test_with_m(bits: &BitVec, m: usize) -> TestResult {
    assert!((3..=24).contains(&m), "pattern length out of range: {m}");
    require_len(NAME, bits.len(), 100)?;
    let psi_m = psi_squared(bits, m);
    let psi_m1 = psi_squared(bits, m - 1);
    let psi_m2 = psi_squared(bits, m - 2);
    let d1 = psi_m - psi_m1;
    let d2 = psi_m - 2.0 * psi_m1 + psi_m2;
    let p1 = igamc(2f64.powi(m as i32 - 2), d1 / 2.0);
    let p2 = igamc(2f64.powi(m as i32 - 3), d2 / 2.0);
    Ok(TestOutcome {
        name: NAME,
        p_values: vec![p1, p2],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SP 800-22 §2.11.4 worked example: ε = 0011011101, m = 3:
    /// ψ²₃ = 2.8, ψ²₂ = 1.2, ψ²₁ = 0.4, ∇ψ² = 1.6, ∇²ψ² = 0.8,
    /// P1 = 0.808792, P2 = 0.670320.
    #[test]
    fn nist_worked_example() {
        let bits = BitVec::from_binary_str("0011011101");
        let p3 = psi_squared(&bits, 3);
        let p2 = psi_squared(&bits, 2);
        let p1 = psi_squared(&bits, 1);
        assert!((p3 - 2.8).abs() < 1e-12, "psi3 = {p3}");
        assert!((p2 - 1.2).abs() < 1e-12, "psi2 = {p2}");
        assert!((p1 - 0.4).abs() < 1e-12, "psi1 = {p1}");
        let d1 = p3 - p2;
        let d2 = p3 - 2.0 * p2 + p1;
        let pv1 = igamc(2.0, d1 / 2.0);
        let pv2 = igamc(1.0, d2 / 2.0);
        assert!((pv1 - 0.808792).abs() < 1e-6, "P1 = {pv1}");
        assert!((pv2 - 0.670320).abs() < 1e-6, "P2 = {pv2}");
    }

    #[test]
    fn m_choice_scales_with_length() {
        assert_eq!(choose_m(1_000), 4); // log2 = 9
        assert_eq!(choose_m(100_000), 11); // log2 = 16
        assert_eq!(choose_m(1_048_576), 15);
        assert_eq!(choose_m(100), 3);
    }

    #[test]
    fn random_data_passes() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(18);
        let bits: BitVec = (0..100_000).map(|_| rng.gen::<bool>()).collect();
        let out = test(&bits).unwrap();
        assert_eq!(out.p_values.len(), 2);
        assert!(out.min_p() > 0.001, "min p = {}", out.min_p());
    }

    #[test]
    fn periodic_data_fails() {
        let bits: BitVec = (0..100_000).map(|i| i % 4 < 2).collect();
        let out = test(&bits).unwrap();
        assert!(out.min_p() < 1e-10, "min p = {}", out.min_p());
    }

    #[test]
    fn biased_data_fails() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(19);
        let bits: BitVec = (0..100_000).map(|_| rng.gen::<f64>() < 0.45).collect();
        let out = test(&bits).unwrap();
        assert!(out.min_p() < 0.01, "min p = {}", out.min_p());
    }

    #[test]
    fn too_short_errors() {
        let bits = BitVec::from_binary_str("0011011101");
        assert!(test(&bits).is_err());
    }

    #[test]
    #[should_panic(expected = "pattern length out of range")]
    fn rejects_tiny_m() {
        let bits: BitVec = (0..1000).map(|_| true).collect();
        let _ = test_with_m(&bits, 2);
    }
}
