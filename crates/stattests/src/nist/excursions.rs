//! Random excursions tests — SP 800-22 §2.14 and §2.15.
//!
//! Both view the ±1 walk as a sequence of zero-to-zero *cycles*:
//!
//! * §2.14 (**random excursions**): for states `x ∈ {−4..−1, 1..4}`,
//!   the number of visits to `x` per cycle is χ²-tested against the
//!   theoretical distribution — eight P-values;
//! * §2.15 (**variant**): for states `x ∈ {−9..−1, 1..9}`, the total
//!   visit count `ξ(x)` is normally referred — eighteen P-values.
//!
//! Applicability: the number of cycles `J` must be at least
//! `max(500, 0.005·√n)`; otherwise the tests are reported as not
//! applicable (which the battery records without failing the
//! sequence, per the NIST practice).

use crate::bits::BitVec;
use crate::nist::{TestError, TestOutcome, TestResult};
use crate::special::{erfc, igamc};

/// Test names.
pub const NAME_EXCURSIONS: &str = "random excursions";
/// Name of the variant test.
pub const NAME_VARIANT: &str = "random excursions variant";

/// Builds the partial-sum walk and the cycle boundaries (indices in
/// the walk where S = 0, including the appended final zero).
fn walk_and_cycles(bits: &BitVec) -> (Vec<i32>, usize) {
    let n = bits.len();
    let mut walk = Vec::with_capacity(n + 2);
    // NIST prepends S_0 = 0 and appends a final 0.
    walk.push(0);
    let mut s = 0i32;
    for i in 0..n {
        s += if bits.get(i) { 1 } else { -1 };
        walk.push(s);
    }
    walk.push(0);
    let cycles = walk[1..].iter().filter(|&&v| v == 0).count();
    (walk, cycles)
}

/// Theoretical probability π_k(x) of exactly `k` visits to state `x`
/// within one cycle (k = 0..4, with `k = 5` meaning "5 or more").
pub fn pi_k(x: i32, k: usize) -> f64 {
    let ax = f64::from(x.abs());
    let p_return = 1.0 - 1.0 / (2.0 * ax);
    match k {
        0 => p_return,
        1..=4 => (1.0 / (4.0 * ax * ax)) * p_return.powi(k as i32 - 1),
        5 => (1.0 / (2.0 * ax)) * p_return.powi(4),
        _ => panic!("category out of range: {k}"),
    }
}

fn applicability(name: &'static str, n: usize, cycles: usize) -> Result<(), TestError> {
    let required = (0.005 * (n as f64).sqrt()).max(500.0) as usize;
    if cycles < required {
        Err(TestError::NotApplicable {
            name,
            reason: format!("only {cycles} cycles, need {required}"),
        })
    } else {
        Ok(())
    }
}

/// Runs the random excursions test (§2.14): eight P-values for states
/// ±1..±4.
///
/// # Errors
///
/// `NotApplicable` when the walk has too few zero-crossing cycles.
pub fn excursions(bits: &BitVec) -> TestResult {
    let (walk, cycles) = walk_and_cycles(bits);
    applicability(NAME_EXCURSIONS, bits.len(), cycles)?;
    let states: [i32; 8] = [-4, -3, -2, -1, 1, 2, 3, 4];
    // visits[state_idx][k] = number of cycles with exactly k visits
    // (k = 5 means >= 5).
    let mut counts = [[0u64; 6]; 8];
    let mut visits_this_cycle = [0u64; 8];
    for &v in &walk[1..] {
        if v == 0 {
            for (s, &visits) in visits_this_cycle.iter().enumerate() {
                counts[s][(visits as usize).min(5)] += 1;
            }
            visits_this_cycle = [0; 8];
        } else if let Some(idx) = states.iter().position(|&s| s == v) {
            visits_this_cycle[idx] += 1;
        }
    }
    let j = cycles as f64;
    let p_values = states
        .iter()
        .enumerate()
        .map(|(si, &x)| {
            let chi2: f64 = (0..6)
                .map(|k| {
                    let e = j * pi_k(x, k);
                    let o = counts[si][k] as f64;
                    (o - e) * (o - e) / e
                })
                .sum();
            igamc(2.5, chi2 / 2.0)
        })
        .collect();
    Ok(TestOutcome {
        name: NAME_EXCURSIONS,
        p_values,
    })
}

/// Runs the random excursions variant test (§2.15): eighteen P-values
/// for states ±1..±9.
///
/// # Errors
///
/// `NotApplicable` when the walk has too few zero-crossing cycles.
pub fn variant(bits: &BitVec) -> TestResult {
    let (walk, cycles) = walk_and_cycles(bits);
    applicability(NAME_VARIANT, bits.len(), cycles)?;
    let j = cycles as f64;
    let mut p_values = Vec::with_capacity(18);
    for x in (-9..=9).filter(|&x| x != 0) {
        let xi = walk[1..].iter().filter(|&&v| v == x).count() as f64;
        // P = erfc(|xi(x) - J| / sqrt(2J(4|x| - 2))), §2.15.4 step 5.
        let denom = (2.0 * j * (4.0 * f64::from(x.unsigned_abs()) - 2.0)).sqrt();
        p_values.push(erfc((xi - j).abs() / denom));
    }
    Ok(TestOutcome {
        name: NAME_VARIANT,
        p_values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_construction() {
        let bits = BitVec::from_binary_str("0110110101");
        // NIST §2.14.4 example walk: S = -1,0,1,0,1,2,1,2,1,2.
        let (walk, cycles) = walk_and_cycles(&bits);
        assert_eq!(walk[0], 0);
        assert_eq!(&walk[1..11], &[-1, 0, 1, 0, 1, 2, 1, 2, 1, 2]);
        assert_eq!(*walk.last().unwrap(), 0);
        // Zeros after start: positions 2 and 4, plus the appended one: J = 3.
        assert_eq!(cycles, 3);
    }

    #[test]
    fn pi_values_match_nist_table() {
        // SP 800-22 §3.14, state x = 1: π0 = 0.5, π1..4 = 0.25·0.5^{k-1},
        // π5 = 0.03125.
        assert!((pi_k(1, 0) - 0.5).abs() < 1e-12);
        assert!((pi_k(1, 1) - 0.25).abs() < 1e-12);
        assert!((pi_k(1, 2) - 0.125).abs() < 1e-12);
        assert!((pi_k(1, 5) - 0.03125).abs() < 1e-12);
        // State x = 4: π0 = 0.875, π1 = 0.015625.
        assert!((pi_k(4, 0) - 0.875).abs() < 1e-12);
        assert!((pi_k(4, 1) - 0.015625).abs() < 1e-12);
    }

    #[test]
    fn pi_rows_sum_to_one() {
        for x in [-4, -2, -1, 1, 3, 4] {
            let s: f64 = (0..6).map(|k| pi_k(x, k)).sum();
            assert!((s - 1.0).abs() < 1e-12, "x = {x}: {s}");
        }
    }

    #[test]
    fn random_data_passes_both() {
        use trng_testkit::prng::{Rng, SeedableRng};
        // Seed chosen so the ±1 walk completes >= 500 zero-crossing
        // cycles in 10^6 bits (an applicability precondition, not a
        // quality property — roughly half of all seeds fall short).
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(32);
        let bits: BitVec = (0..1_000_000).map(|_| rng.gen::<bool>()).collect();
        let e = excursions(&bits).unwrap();
        assert_eq!(e.p_values.len(), 8);
        assert!(e.min_p() > 1e-4, "excursions min p = {}", e.min_p());
        let v = variant(&bits).unwrap();
        assert_eq!(v.p_values.len(), 18);
        assert!(v.min_p() > 1e-4, "variant min p = {}", v.min_p());
    }

    #[test]
    fn drifting_walk_is_not_applicable() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(25);
        // 55 % ones: the walk drifts away and rarely returns to zero.
        let bits: BitVec = (0..100_000).map(|_| rng.gen::<f64>() < 0.55).collect();
        assert!(matches!(
            excursions(&bits),
            Err(TestError::NotApplicable { .. })
        ));
        assert!(matches!(
            variant(&bits),
            Err(TestError::NotApplicable { .. })
        ));
    }

    #[test]
    fn sticky_walk_fails_excursions() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(26);
        // A walk that oscillates tightly: +1/-1 strictly alternating
        // with occasional random pairs — many cycles, but state visits
        // are wildly non-theoretical.
        let mut bits = BitVec::new();
        for _ in 0..500_000 {
            if rng.gen::<f64>() < 0.95 {
                bits.push(true);
                bits.push(false);
            } else {
                bits.push(rng.gen());
                bits.push(rng.gen());
            }
        }
        let e = excursions(&bits).unwrap();
        assert!(e.min_p() < 1e-6, "min p = {}", e.min_p());
    }
}
