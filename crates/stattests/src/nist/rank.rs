//! Binary matrix rank test — SP 800-22 §2.5.
//!
//! Partitions the sequence into 32x32 bit matrices and checks the
//! distribution of their GF(2) ranks against theory: a random square
//! matrix has full rank with probability ≈ 0.2888, rank M−1 with
//! ≈ 0.5776, and anything lower with ≈ 0.1336. The exact
//! probabilities are computed from the standard product formula rather
//! than hard-coded.

use crate::bits::BitVec;
use crate::nist::{TestError, TestOutcome, TestResult};
use crate::special::igamc;

/// Test name.
pub const NAME: &str = "binary matrix rank";

/// Matrix dimension.
pub const M: usize = 32;

/// Minimum number of matrices (SP 800-22 recommends ≥ 38).
pub const MIN_MATRICES: usize = 38;

/// GF(2) rank of a 32x32 bit matrix given as row words.
pub fn rank32(rows: &mut [u32; 32]) -> u32 {
    let mut rank = 0u32;
    for col in 0..32 {
        let mask = 1u32 << (31 - col);
        // Find a pivot row at or below `rank`.
        let pivot = (rank as usize..32).find(|&r| rows[r] & mask != 0);
        if let Some(p) = pivot {
            rows.swap(rank as usize, p);
            let pivot_row = rows[rank as usize];
            for (r, row) in rows.iter_mut().enumerate() {
                if r != rank as usize && *row & mask != 0 {
                    *row ^= pivot_row;
                }
            }
            rank += 1;
            if rank == 32 {
                break;
            }
        }
    }
    rank
}

/// Probability that a random `M×M` GF(2) matrix has rank `r`
/// (standard product formula).
pub fn rank_probability(m: u32, r: u32) -> f64 {
    assert!(r <= m, "rank cannot exceed dimension");
    let m = f64::from(m);
    let r_i = r;
    let r = f64::from(r);
    let mut log2p = r * (2.0 * m - r) - m * m;
    for i in 0..r_i {
        let i = f64::from(i);
        log2p += ((1.0 - 2f64.powf(i - m)).powi(2) / (1.0 - 2f64.powf(i - r))).log2();
    }
    2f64.powf(log2p)
}

/// Runs the binary matrix rank test.
///
/// # Errors
///
/// `TooShort` if fewer than 38 full matrices fit (38·1024 bits).
pub fn test(bits: &BitVec) -> TestResult {
    let per_matrix = M * M;
    let n_matrices = bits.len() / per_matrix;
    if n_matrices < MIN_MATRICES {
        return Err(TestError::TooShort {
            name: NAME,
            required: MIN_MATRICES * per_matrix,
            actual: bits.len(),
        });
    }
    let p_full = rank_probability(32, 32);
    let p_m1 = rank_probability(32, 31);
    let p_rest = 1.0 - p_full - p_m1;

    let mut counts = [0u64; 3]; // full, M-1, lower
    for k in 0..n_matrices {
        let mut rows = [0u32; 32];
        for (i, row) in rows.iter_mut().enumerate() {
            *row = bits.window_value(k * per_matrix + i * 32, 32) as u32;
        }
        match rank32(&mut rows) {
            32 => counts[0] += 1,
            31 => counts[1] += 1,
            _ => counts[2] += 1,
        }
    }
    let n = n_matrices as f64;
    let expected = [n * p_full, n * p_m1, n * p_rest];
    let chi2: f64 = counts
        .iter()
        .zip(&expected)
        .map(|(&c, &e)| (c as f64 - e) * (c as f64 - e) / e)
        .sum();
    // 2 degrees of freedom: P = igamc(1, chi2/2) = exp(-chi2/2).
    let p = igamc(1.0, chi2 / 2.0);
    Ok(TestOutcome::single(NAME, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_has_full_rank() {
        let mut rows = core::array::from_fn(|i| 1u32 << i);
        assert_eq!(rank32(&mut rows), 32);
    }

    #[test]
    fn zero_matrix_has_rank_zero() {
        let mut rows = [0u32; 32];
        assert_eq!(rank32(&mut rows), 0);
    }

    #[test]
    fn duplicate_rows_reduce_rank() {
        let mut rows: [u32; 32] = core::array::from_fn(|i| 1u32 << i);
        rows[31] = rows[30]; // one dependent row
        assert_eq!(rank32(&mut rows), 31);
        let mut rows: [u32; 32] = core::array::from_fn(|i| 1u32 << (i / 2));
        // Only 16 distinct rows.
        assert_eq!(rank32(&mut rows), 16);
    }

    #[test]
    fn rank_xor_combination_detected() {
        let mut rows: [u32; 32] = core::array::from_fn(|i| 1u32 << i);
        rows[0] = rows[1] ^ rows[2]; // linear combination
        assert_eq!(rank32(&mut rows), 31);
    }

    #[test]
    fn theoretical_probabilities_match_literature() {
        // SP 800-22 §3.5: 0.2888, 0.5776, 0.1336.
        let p32 = rank_probability(32, 32);
        let p31 = rank_probability(32, 31);
        assert!((p32 - 0.2888).abs() < 5e-4, "p32 = {p32}");
        assert!((p31 - 0.5776).abs() < 5e-4, "p31 = {p31}");
        let rest = 1.0 - p32 - p31;
        assert!((rest - 0.1336).abs() < 5e-4, "rest = {rest}");
    }

    #[test]
    fn rank_probabilities_sum_to_one() {
        let total: f64 = (0..=32).map(|r| rank_probability(32, r)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn random_data_passes() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(6);
        let bits: BitVec = (0..100_000).map(|_| rng.gen::<bool>()).collect();
        assert!(test(&bits).unwrap().min_p() > 0.001);
    }

    #[test]
    fn periodic_data_fails() {
        // Period-32 data: every matrix has rank 1.
        let bits: BitVec = (0..100_000).map(|i| (i % 32) < 16).collect();
        let p = test(&bits).unwrap().min_p();
        assert!(p < 1e-10, "p = {p}");
    }

    #[test]
    fn too_short_errors() {
        let bits: BitVec = (0..1024 * 37).map(|_| true).collect();
        assert!(matches!(test(&bits), Err(TestError::TooShort { .. })));
    }
}
