//! Approximate entropy test — SP 800-22 §2.12.
//!
//! Compares the frequencies of overlapping `m`- and `(m+1)`-bit
//! patterns (cyclically extended): for a random sequence
//! `ApEn(m) = φ(m) − φ(m+1)` approaches `ln 2`, and
//! `χ² = 2n(ln 2 − ApEn(m))` is χ²-distributed with `2^m` degrees of
//! freedom.

use crate::bits::BitVec;
use crate::nist::{require_len, TestOutcome, TestResult};
use crate::special::igamc;

/// Test name.
pub const NAME: &str = "approximate entropy";

/// Picks `m` per the guidance `m < ⌊log2 n⌋ − 5`, capped at 10.
pub fn choose_m(n: usize) -> usize {
    let log2n = (usize::BITS - 1 - n.leading_zeros()) as usize;
    log2n.saturating_sub(7).clamp(2, 10)
}

/// φ(m): Σ π_i ln π_i over overlapping cyclic m-patterns.
fn phi(bits: &BitVec, m: usize) -> f64 {
    let n = bits.len();
    let mut counts = vec![0u64; 1 << m];
    let mask = (1usize << m) - 1;
    let mut value = 0usize;
    for i in 0..m - 1 {
        value = (value << 1 | bits.bit(i) as usize) & mask;
    }
    for i in m - 1..n + m - 1 {
        value = (value << 1 | bits.bit(i % n) as usize) & mask;
        counts[value] += 1;
    }
    let n_f = n as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let pi = c as f64 / n_f;
            pi * pi.ln()
        })
        .sum()
}

/// Runs the approximate entropy test with automatic `m`.
///
/// # Errors
///
/// `TooShort` below 100 bits.
/// # Examples
///
/// ```
/// use trng_testkit::prng::{Rng, SeedableRng};
/// use trng_stattests::bits::BitVec;
/// let mut rng = trng_testkit::prng::StdRng::seed_from_u64(5);
/// let bits: BitVec = (0..5_000).map(|_| rng.gen::<bool>()).collect();
/// let p = trng_stattests::nist::approx_entropy::test(&bits)?.min_p();
/// assert!(p > 0.0001);
/// # Ok::<(), trng_stattests::nist::TestError>(())
/// ```
pub fn test(bits: &BitVec) -> TestResult {
    test_with_m(bits, choose_m(bits.len()))
}

/// Runs the test with explicit block length `m`.
///
/// # Errors
///
/// `TooShort` below 100 bits.
///
/// # Panics
///
/// Panics if `m` is 0 or over 16.
pub fn test_with_m(bits: &BitVec, m: usize) -> TestResult {
    assert!((1..=16).contains(&m), "block length out of range: {m}");
    require_len(NAME, bits.len(), 100)?;
    let n = bits.len() as f64;
    let ap_en = phi(bits, m) - phi(bits, m + 1);
    let chi2 = 2.0 * n * (core::f64::consts::LN_2 - ap_en);
    let p = igamc(2f64.powi(m as i32 - 1), chi2 / 2.0);
    Ok(TestOutcome::single(NAME, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SP 800-22 §2.12.4 worked example: ε = 0100110101, m = 3:
    /// ApEn ≈ 0.502193, χ² ≈ 5.238706, P = 0.261961.
    #[test]
    fn nist_worked_example() {
        let bits = BitVec::from_binary_str("0100110101");
        let ap_en = phi(&bits, 3) - phi(&bits, 4);
        let chi2 = 2.0 * 10.0 * (core::f64::consts::LN_2 - ap_en);
        let p = igamc(4.0, chi2 / 2.0);
        assert!((p - 0.261961).abs() < 1e-5, "p = {p} (chi2 = {chi2})");
    }

    #[test]
    fn m_choice() {
        assert_eq!(choose_m(1_000), 2);
        assert_eq!(choose_m(100_000), 9);
        assert_eq!(choose_m(1_048_576), 10);
    }

    #[test]
    fn random_data_passes() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(20);
        let bits: BitVec = (0..100_000).map(|_| rng.gen::<bool>()).collect();
        let p = test(&bits).unwrap().min_p();
        assert!(p > 0.001, "p = {p}");
    }

    #[test]
    fn periodic_data_fails() {
        let bits: BitVec = (0..100_000).map(|i| i % 8 < 4).collect();
        let p = test(&bits).unwrap().min_p();
        assert!(p < 1e-10, "p = {p}");
    }

    #[test]
    fn biased_data_fails() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(21);
        let bits: BitVec = (0..100_000).map(|_| rng.gen::<f64>() < 0.45).collect();
        let p = test(&bits).unwrap().min_p();
        assert!(p < 0.01, "p = {p}");
    }

    #[test]
    fn too_short_errors() {
        let bits = BitVec::from_binary_str("0100110101");
        assert!(test(&bits).is_err());
    }
}
