//! Frequency within a block — SP 800-22 §2.2.
//!
//! Splits the sequence into `N = ⌊n/M⌋` blocks of `M` bits, computes
//! each block's ones-proportion `π_i` and
//! `χ² = 4M·Σ(π_i − ½)²`, `P = igamc(N/2, χ²/2)`.

use crate::bits::BitVec;
use crate::nist::{require_len, TestOutcome, TestResult};
use crate::special::igamc;

/// Test name.
pub const NAME: &str = "block frequency";

/// Default block size (SP 800-22 recommends `M ≥ 20`, `M > 0.01·n`;
/// 128 is the reference choice for n = 10^6).
pub const DEFAULT_BLOCK: usize = 128;

/// Runs the test with the default block size.
///
/// # Errors
///
/// `TooShort` below 100 bits.
/// # Examples
///
/// ```
/// use trng_stattests::bits::BitVec;
/// let bits: BitVec = (0..2_000).map(|i| i % 2 == 0).collect();
/// // Every 128-bit block is exactly half ones: P ~ 1.
/// let p = trng_stattests::nist::block_frequency::test(&bits)?.min_p();
/// assert!(p > 0.999);
/// # Ok::<(), trng_stattests::nist::TestError>(())
/// ```
pub fn test(bits: &BitVec) -> TestResult {
    test_with_block(bits, DEFAULT_BLOCK)
}

/// Runs the test with an explicit block size `m`.
///
/// # Errors
///
/// `TooShort` if fewer than one block fits or the sequence is under
/// 100 bits.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn test_with_block(bits: &BitVec, m: usize) -> TestResult {
    assert!(m > 0, "block size must be positive");
    require_len(NAME, bits.len(), 100.max(m))?;
    let n_blocks = bits.len() / m;
    let mut chi2 = 0.0;
    for b in 0..n_blocks {
        let pi = bits.count_ones_in(b * m, m) as f64 / m as f64;
        chi2 += (pi - 0.5) * (pi - 0.5);
    }
    chi2 *= 4.0 * m as f64;
    let p = igamc(n_blocks as f64 / 2.0, chi2 / 2.0);
    Ok(TestOutcome::single(NAME, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SP 800-22 §2.2.4: ε = 0110011010, M = 3 → χ² = 1,
    /// P = igamc(1.5, 0.5) = 0.801252.
    #[test]
    fn nist_worked_example() {
        let bits = BitVec::from_binary_str("0110011010");
        let n_blocks = bits.len() / 3;
        let mut chi2 = 0.0;
        for b in 0..n_blocks {
            let pi = bits.count_ones_in(b * 3, 3) as f64 / 3.0;
            chi2 += (pi - 0.5) * (pi - 0.5);
        }
        chi2 *= 12.0;
        assert!((chi2 - 1.0).abs() < 1e-12, "chi2 = {chi2}");
        let p = igamc(n_blocks as f64 / 2.0, chi2 / 2.0);
        assert!((p - 0.801252).abs() < 1e-6, "p = {p}");
    }

    #[test]
    fn random_data_passes() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(2);
        let bits: BitVec = (0..100_000).map(|_| rng.gen::<bool>()).collect();
        assert!(test(&bits).unwrap().min_p() > 0.001);
    }

    #[test]
    fn blockwise_biased_data_fails() {
        // Alternating all-ones / all-zeros blocks of 128: globally
        // balanced (frequency passes) but block frequency must fail.
        let bits: BitVec = (0..100_000).map(|i| (i / 128) % 2 == 0).collect();
        let p = test(&bits).unwrap().min_p();
        assert!(p < 1e-10, "p = {p}");
        // Sanity: global frequency is fine.
        assert!(crate::nist::frequency::test(&bits).unwrap().min_p() > 0.01);
    }

    #[test]
    fn per_block_alternation_passes() {
        // 10101010... every block is exactly half ones.
        let bits: BitVec = (0..10_000).map(|i| i % 2 == 0).collect();
        let p = test(&bits).unwrap().min_p();
        assert!((p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn too_short_errors() {
        let bits: BitVec = (0..64).map(|_| true).collect();
        assert!(test(&bits).is_err());
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_panics() {
        let bits: BitVec = (0..128).map(|_| true).collect();
        let _ = test_with_block(&bits, 0);
    }
}
