//! Frequency (monobit) test — SP 800-22 §2.1.
//!
//! Tests whether the proportion of ones is consistent with a fair
//! source: `S_n = Σ(2ε_i − 1)`, `s_obs = |S_n|/√n`,
//! `P = erfc(s_obs/√2)`.

use crate::bits::BitVec;
use crate::nist::{require_len, TestOutcome, TestResult};
use crate::special::erfc;

/// Test name.
pub const NAME: &str = "frequency";

/// Minimum recommended sequence length.
pub const MIN_LEN: usize = 100;

/// Runs the frequency (monobit) test.
///
/// # Errors
///
/// [`TestError::TooShort`](crate::nist::TestError::TooShort) below 100
/// bits.
/// # Examples
///
/// ```
/// use trng_stattests::bits::BitVec;
/// // A perfectly balanced sequence scores P = 1.
/// let bits: BitVec = (0..1000).map(|i| i % 2 == 0).collect();
/// let p = trng_stattests::nist::frequency::test(&bits)?.min_p();
/// assert!((p - 1.0).abs() < 1e-9);
/// # Ok::<(), trng_stattests::nist::TestError>(())
/// ```
pub fn test(bits: &BitVec) -> TestResult {
    require_len(NAME, bits.len(), MIN_LEN)?;
    let n = bits.len() as f64;
    let ones = bits.count_ones() as f64;
    let s = 2.0 * ones - n; // Σ(±1)
    let s_obs = s.abs() / n.sqrt();
    let p = erfc(s_obs / core::f64::consts::SQRT_2);
    Ok(TestOutcome::single(NAME, p))
}

/// The partial sums statistic, exposed for the runs test prerequisite
/// and the cumulative sums test.
pub fn ones_fraction(bits: &BitVec) -> f64 {
    bits.count_ones() as f64 / bits.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example of SP 800-22 §2.1.4 (scaled): for
    /// ε = 1011010101 (n = 10), S = 2, s_obs = 0.632455,
    /// P = 0.527089. We bypass the length gate by calling the math on
    /// a repeated version with identical statistics scaling.
    #[test]
    fn nist_worked_example_statistic() {
        let bits = BitVec::from_binary_str("1011010101");
        let n = bits.len() as f64;
        let s = 2.0 * bits.count_ones() as f64 - n;
        let s_obs = s.abs() / n.sqrt();
        let p = erfc(s_obs / core::f64::consts::SQRT_2);
        assert!((s - 2.0).abs() < 1e-12);
        assert!((p - 0.527089).abs() < 1e-6, "p = {p}");
    }

    #[test]
    fn balanced_sequence_scores_high() {
        let bits: BitVec = (0..1000).map(|i| i % 2 == 0).collect();
        let p = test(&bits).unwrap().min_p();
        assert!((p - 1.0).abs() < 1e-12, "p = {p}");
    }

    #[test]
    fn constant_sequence_fails() {
        let bits: BitVec = (0..1000).map(|_| true).collect();
        let p = test(&bits).unwrap().min_p();
        assert!(p < 1e-10, "p = {p}");
    }

    #[test]
    fn mild_bias_long_sequence_fails() {
        // 52 % ones over 100k bits: z ~ 12.6 -> certain failure.
        let bits: BitVec = (0..100_000).map(|i| (i * 100) % 100 < 52).collect();
        let p = test(&bits).unwrap().min_p();
        assert!(p < 0.01, "p = {p}");
    }

    #[test]
    fn random_data_passes() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(1);
        let bits: BitVec = (0..100_000).map(|_| rng.gen::<bool>()).collect();
        let p = test(&bits).unwrap().min_p();
        assert!(p > 0.001, "p = {p}");
    }

    #[test]
    fn too_short_errors() {
        let bits: BitVec = (0..99).map(|i| i % 2 == 0).collect();
        assert!(test(&bits).is_err());
    }

    #[test]
    fn ones_fraction_helper() {
        let bits = BitVec::from_binary_str("1100");
        assert_eq!(ones_fraction(&bits), 0.5);
    }
}
