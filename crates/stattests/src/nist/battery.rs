//! The full SP 800-22 battery.
//!
//! Runs all fifteen tests on one sequence and aggregates the verdict.
//! Tests that are not applicable to the sequence (too short, too few
//! cycles) are recorded as skipped, matching the NIST tool's
//! behaviour, and do not fail the sequence.

use crate::bits::BitVec;
use crate::nist::{
    approx_entropy, block_frequency, cusum, dft, excursions, frequency, linear_complexity,
    longest_run, rank, runs, serial, templates, universal, TestError, TestOutcome, ALPHA,
};

use core::fmt;

/// Result of one battery run on one sequence.
#[derive(Debug, Clone)]
pub struct BatteryResult {
    /// Each test's outcome or skip reason.
    pub results: Vec<Result<TestOutcome, TestError>>,
    /// Significance level used for the verdict.
    pub alpha: f64,
}

impl BatteryResult {
    /// `true` if every *applicable* test passed at the battery's alpha.
    pub fn all_passed(&self) -> bool {
        self.results
            .iter()
            .all(|r| r.as_ref().map_or(true, |o| o.passes(self.alpha)))
    }

    /// Names of applicable tests that failed.
    pub fn failures(&self) -> Vec<&'static str> {
        self.results
            .iter()
            .filter_map(|r| match r {
                Ok(o) if !o.passes(self.alpha) => Some(o.name),
                _ => None,
            })
            .collect()
    }

    /// Number of tests that actually ran.
    pub fn applicable(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }

    /// All (test name, P-value) pairs of applicable tests.
    pub fn p_values(&self) -> Vec<(&'static str, f64)> {
        self.results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .flat_map(|o| o.p_values.iter().map(move |&p| (o.name, p)))
            .collect()
    }
}

impl fmt::Display for BatteryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.results {
            match r {
                Ok(o) => writeln!(
                    f,
                    "  {:<32} min P = {:.6}  [{}]",
                    o.name,
                    o.min_p(),
                    if o.passes(self.alpha) { "pass" } else { "FAIL" }
                )?,
                Err(e) => writeln!(f, "  {:<32} skipped: {e}", e.name())?,
            }
        }
        write!(
            f,
            "  => {} ({} tests ran)",
            if self.all_passed() {
                "ALL PASS"
            } else {
                "FAILED"
            },
            self.applicable()
        )
    }
}

/// Runs the full battery at the default α = 0.01.
pub fn run_battery(bits: &BitVec) -> BatteryResult {
    run_battery_with_alpha(bits, ALPHA)
}

/// Runs the full battery at an explicit significance level.
///
/// # Panics
///
/// Panics if `alpha` is not in `(0, 1)`.
pub fn run_battery_with_alpha(bits: &BitVec, alpha: f64) -> BatteryResult {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    let results = vec![
        frequency::test(bits),
        block_frequency::test(bits),
        runs::test(bits),
        longest_run::test(bits),
        rank::test(bits),
        dft::test(bits),
        templates::non_overlapping(bits),
        templates::overlapping(bits),
        universal::test(bits),
        linear_complexity::test(bits),
        serial::test(bits),
        approx_entropy::test(bits),
        cusum::test(bits),
        excursions::excursions(bits),
        excursions::variant(bits),
    ];
    BatteryResult { results, alpha }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_bits(n: usize, seed: u64) -> BitVec {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen::<bool>()).collect()
    }

    #[test]
    fn battery_runs_fifteen_tests() {
        let bits = random_bits(200_000, 30);
        let r = run_battery(&bits);
        assert_eq!(r.results.len(), 15);
    }

    #[test]
    fn good_random_data_mostly_passes_battery() {
        // A single battery evaluates ~45 P-values at alpha = 0.01, so
        // even a perfect source fails one occasionally — that is why
        // NIST judges ensembles (assessment module). For one sequence,
        // demand at most one failing test and nothing catastrophic.
        let bits = random_bits(200_000, 31);
        let r = run_battery(&bits);
        assert!(r.failures().len() <= 1, "failures: {:?}\n{r}", r.failures());
        let min_p = r.p_values().iter().map(|&(_, p)| p).fold(1.0, f64::min);
        assert!(min_p > 1e-5, "catastrophic min p = {min_p}");
        // At 200k bits at least a dozen tests are applicable.
        assert!(r.applicable() >= 12, "only {} ran", r.applicable());
    }

    #[test]
    fn biased_data_fails_battery() {
        use trng_testkit::prng::{Rng, SeedableRng};
        let mut rng = trng_testkit::prng::StdRng::seed_from_u64(32);
        let bits: BitVec = (0..200_000).map(|_| rng.gen::<f64>() < 0.53).collect();
        let r = run_battery(&bits);
        assert!(!r.all_passed());
        assert!(r.failures().contains(&"frequency"));
    }

    #[test]
    fn periodic_data_fails_many_tests() {
        let bits: BitVec = (0..200_000).map(|i| i % 6 < 3).collect();
        let r = run_battery(&bits);
        assert!(!r.all_passed());
        assert!(r.failures().len() >= 4, "failures: {:?}", r.failures());
    }

    #[test]
    fn short_sequence_skips_heavy_tests_gracefully() {
        let bits = random_bits(2_000, 33);
        let r = run_battery(&bits);
        // rank/universal/linear complexity/templates etc. skip; the
        // cheap tests still run.
        assert!(r.applicable() >= 5);
        assert!(r.applicable() < 12);
        // Skipped tests never count as failures.
        assert!(r.failures().len() <= 1, "failures: {:?}", r.failures());
    }

    #[test]
    fn p_values_enumeration() {
        let bits = random_bits(200_000, 34);
        let r = run_battery(&bits);
        let ps = r.p_values();
        // serial + cusum contribute 2 each, templates 15, excursions 8 + 18.
        assert!(ps.len() > 20, "{} p-values", ps.len());
        assert!(ps.iter().all(|&(_, p)| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn display_renders_report() {
        let bits = random_bits(4_000, 35);
        let r = run_battery(&bits);
        let s = format!("{r}");
        assert!(s.contains("frequency"));
        assert!(s.contains("=>"));
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1)")]
    fn rejects_bad_alpha() {
        let bits = random_bits(1_000, 36);
        let _ = run_battery_with_alpha(&bits, 0.0);
    }
}
