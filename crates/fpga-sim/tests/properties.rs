//! Property-based tests of the simulator's core invariants.
//!
//! Runs under the hermetic `trng-testkit` harness: each property
//! executes `TRNG_PROP_CASES` (default 64) independently seeded cases
//! and reports the failing seed for replay via `TRNG_PROP_SEED`.

use trng_fpga_sim::delay_line::TappedDelayLine;
use trng_fpga_sim::edge_train::{EdgeTrain, SignalSource};
use trng_fpga_sim::noise::{AttackInjection, GlobalModulation, SupplyTone};
use trng_fpga_sim::ring_oscillator::{RingOscillator, RingOscillatorConfig};
use trng_fpga_sim::rng::SimRng;
use trng_fpga_sim::time::Ps;
use trng_testkit::prng::{Rng, StdRng};
use trng_testkit::prop::pick;
use trng_testkit::props;

/// Generator: a strictly increasing list of edge times in (0, 10000).
fn edge_times(rng: &mut StdRng) -> Vec<f64> {
    let n = rng.gen_range(0usize..40);
    let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..10_000.0f64)).collect();
    v.sort_by(f64::total_cmp);
    v.dedup_by(|a, b| (*a - *b).abs() < 1e-6);
    v
}

props! {
    fn edge_train_level_matches_toggle_count(rng) {
        let edges = edge_times(rng);
        let initial = rng.gen::<bool>();
        let query = rng.gen_range(0.0..11_000.0f64);
        let mut train = EdgeTrain::new(initial, Ps::ZERO);
        for &e in &edges {
            train.push(Ps::from_ps(e));
        }
        let toggles = edges.iter().filter(|&&e| e <= query).count();
        let expected = initial ^ (toggles % 2 == 1);
        assert_eq!(train.level_at(Ps::from_ps(query)), expected);
    }

    fn edge_train_nearest_edge_matches_brute_force(rng) {
        let edges = edge_times(rng);
        let query = rng.gen_range(0.0..11_000.0f64);
        let mut train = EdgeTrain::new(false, Ps::ZERO);
        for &e in &edges {
            train.push(Ps::from_ps(e));
        }
        let brute = edges
            .iter()
            .map(|&e| (e - query).abs())
            .fold(f64::INFINITY, f64::min);
        match train.nearest_edge_distance(Ps::from_ps(query)) {
            Some(d) => assert!((d.as_ps() - brute).abs() < 1e-9),
            None => assert!(edges.is_empty()),
        }
    }

    fn edge_train_prune_preserves_future_levels(rng) {
        let edges = edge_times(rng);
        let initial = rng.gen::<bool>();
        let cut = rng.gen_range(0.0..10_000.0f64);
        let query = rng.gen_range(0.0..1_000.0f64);
        let mut train = EdgeTrain::new(initial, Ps::ZERO);
        for &e in &edges {
            train.push(Ps::from_ps(e));
        }
        let q = Ps::from_ps(cut + query);
        let before = train.level_at(q);
        train.prune_before(Ps::from_ps(cut));
        assert_eq!(train.level_at(q), before);
    }

    fn ps_rem_euclid_is_in_range(rng) {
        let x = rng.gen_range(-1e9..1e9f64);
        let m = rng.gen_range(0.1..1e6f64);
        let r = Ps::from_ps(x).rem_euclid(Ps::from_ps(m));
        assert!(r.as_ps() >= 0.0);
        assert!(r.as_ps() < m);
    }

    fn ring_half_period_is_sum_of_stage_delays(rng) {
        let stages = pick(rng, &[1usize, 3, 5, 7]);
        let d0 = rng.gen_range(100.0..1000.0f64);
        let cfg = RingOscillatorConfig::ideal(stages, Ps::from_ps(d0), Ps::ZERO);
        let ro = RingOscillator::new(cfg, SimRng::seed_from(0)).unwrap();
        let expected = d0 * stages as f64;
        assert!((ro.half_period().as_ps() - expected).abs() < 1e-9);
    }

    fn noiseless_ring_is_deterministic(rng) {
        let seed_a = rng.gen::<u64>();
        let seed_b = rng.gen::<u64>();
        let horizon_ns = rng.gen_range(5.0..50.0f64);
        // Without noise the run-time RNG must not influence anything.
        let run = |seed: u64| {
            let cfg = RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::ZERO);
            let mut ro = RingOscillator::new(cfg, SimRng::seed_from(seed)).unwrap();
            let t = Ps::from_ns(horizon_ns);
            ro.run_until(t);
            ro.node(0)
                .edge_train()
                .edges_in(t - Ps::from_ns(2.0), t)
                .map(|e| e.as_ps())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(seed_a), run(seed_b));
    }

    fn chunked_transition_count_tiles_exactly(rng) {
        let chunk_ns = rng.gen_range(0.3..1.5f64);
        let sigma = rng.gen_range(0.0..5.0f64);
        let seed = rng.gen::<u64>();
        // Counting in half-open chunks must equal one whole-window
        // count (the lut-delay measurement relies on this).
        let horizon = Ps::from_ns(20.0);
        let whole = {
            let cfg = RingOscillatorConfig {
                history_window: Ps::from_ns(25.0),
                ..RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::from_ps(sigma))
            };
            let mut ro = RingOscillator::new(cfg, SimRng::seed_from(seed)).unwrap();
            ro.run_until(horizon);
            ro.count_transitions(0, Ps::ZERO, horizon)
        };
        let chunked = {
            let cfg = RingOscillatorConfig {
                history_window: Ps::from_ns(25.0),
                ..RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::from_ps(sigma))
            };
            let mut ro = RingOscillator::new(cfg, SimRng::seed_from(seed)).unwrap();
            let mut total = 0usize;
            let mut t = Ps::ZERO;
            while t < horizon {
                let next = (t + Ps::from_ns(chunk_ns)).min(horizon);
                ro.run_until(next);
                total += ro.count_transitions(0, t, next);
                t = next;
            }
            total
        };
        assert_eq!(whole, chunked);
    }

    fn ideal_line_always_yields_thermometer_words(rng) {
        let edge_at = rng.gen_range(100.0..500.0f64);
        let m4 = rng.gen_range(2u32..12);
        let tstep = rng.gen_range(5.0..30.0f64);
        // Single-edge signal -> the captured word is a run of equal
        // bits followed by the complementary run (never more).
        let line = TappedDelayLine::ideal(m4 as usize * 4, Ps::from_ps(tstep));
        let mut signal = EdgeTrain::new(false, Ps::ZERO);
        signal.push(Ps::from_ps(edge_at));
        let mut sim_rng = SimRng::seed_from(0);
        // Sample late enough that even the deepest tap's look-back
        // stays within the signal's recorded history.
        let t_sample = Ps::from_ps(1_000.0) + line.total_delay();
        let word = line.sample(&signal, t_sample, &mut sim_rng);
        let transitions = word.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(transitions <= 1, "word {:?}", word);
    }

    fn ideal_line_edge_position_matches_analytics(rng) {
        let edge_offset = rng.gen_range(20.0..590.0f64);
        // Sample at t; edge at t - edge_offset. Tap j (delay 17(j+1))
        // sees the post-edge level iff 17(j+1) <= edge_offset.
        let line = TappedDelayLine::ideal(36, Ps::from_ps(17.0));
        let t = Ps::from_ps(10_000.0);
        let mut signal = EdgeTrain::new(false, Ps::ZERO);
        signal.push(t - Ps::from_ps(edge_offset));
        let mut sim_rng = SimRng::seed_from(0);
        let word = line.sample(&signal, t, &mut sim_rng);
        for (j, &bit) in word.iter().enumerate() {
            let lookback = 17.0 * (j as f64 + 1.0);
            // Skip the ambiguous exact-boundary case.
            if (lookback - edge_offset).abs() > 1e-6 {
                assert_eq!(bit, lookback <= edge_offset, "tap {}", j);
            }
        }
    }

    fn attack_injection_is_deterministic(rng) {
        let t = Ps::from_ps(rng.gen_range(0.0..1e9f64));
        let f = rng.gen_range(1e3..1e9f64);
        let attack = match rng.gen_range(0u8..3) {
            0 => AttackInjection::periodic(Ps::from_ps(rng.gen_range(0.0..50.0f64)), f),
            1 => AttackInjection::pulse_train(
                Ps::from_ps(rng.gen_range(0.0..50.0f64)),
                f,
                rng.gen_range(0.05..0.95f64),
            ),
            _ => AttackInjection::locking(f, rng.gen_range(0.05..1.0f64)),
        };
        assert_eq!(attack.injected_delay(t), attack.injected_delay(t));
    }

    fn periodic_injection_stays_within_amplitude(rng) {
        let amplitude = rng.gen_range(0.0..100.0f64);
        let a = AttackInjection::periodic(Ps::from_ps(amplitude), rng.gen_range(1e3..1e9f64));
        let t = Ps::from_ps(rng.gen_range(0.0..1e9f64));
        assert!(a.injected_delay(t).abs().as_ps() <= amplitude + 1e-9);
    }

    fn pulse_train_is_two_valued_and_honors_duty(rng) {
        let amplitude = rng.gen_range(1.0..100.0f64);
        let f = rng.gen_range(1e3..1e8f64);
        let duty = rng.gen_range(0.05..0.95f64);
        let a = AttackInjection::pulse_train(Ps::from_ps(amplitude), f, duty);
        let t = Ps::from_ps(rng.gen_range(0.0..1e9f64));
        let d = a.injected_delay(t).as_ps();
        let phase = (t.as_s() * f).rem_euclid(1.0);
        // Skip the exact on/off boundary, ambiguous in floating point.
        if (phase - duty).abs() < 1e-9 {
            return;
        }
        let expected = if phase < duty { amplitude } else { 0.0 };
        assert_eq!(d, expected, "phase {phase}, duty {duty}");
    }

    fn locking_correction_is_bounded_by_half_period(rng) {
        let f = rng.gen_range(1e6..1e10f64);
        let strength = rng.gen_range(0.05..1.0f64);
        let a = AttackInjection::locking(f, strength);
        let t = Ps::from_ps(rng.gen_range(0.0..1e9f64));
        // The phase error is at most half the attack period, so the
        // correction is bounded by strength · period / 2.
        let bound = strength * (1e12 / f) / 2.0;
        assert!(a.injected_delay(t).abs().as_ps() <= bound + 1e-9);
    }

    fn zero_amplitude_attacks_are_identity(rng) {
        let f = rng.gen_range(1e3..1e9f64);
        let t = Ps::from_ps(rng.gen_range(0.0..1e9f64));
        let periodic = AttackInjection::periodic(Ps::ZERO, f);
        assert_eq!(periodic.injected_delay(t), Ps::ZERO);
        let pulse = AttackInjection::pulse_train(Ps::ZERO, f, rng.gen_range(0.05..0.95f64));
        assert_eq!(pulse.injected_delay(t), Ps::ZERO);
    }

    fn delay_factor_is_deterministic_and_clamped(rng) {
        let mut m = GlobalModulation::new()
            .with_thermal_drift(rng.gen_range(-100.0..100.0f64));
        for _ in 0..rng.gen_range(0usize..4) {
            m = m.with_tone(
                SupplyTone::new(rng.gen_range(1e3..1e8f64), rng.gen_range(0.0..0.49f64))
                    .with_phase(rng.gen_range(0.0..core::f64::consts::TAU)),
            );
        }
        let t = Ps::from_ps(rng.gen_range(0.0..1e12f64));
        let factor = m.delay_factor(t);
        assert_eq!(factor, m.delay_factor(t));
        assert!((0.5..=1.5).contains(&factor), "factor {factor}");
    }

    fn empty_modulation_is_identity(rng) {
        let t = Ps::from_ps(rng.gen_range(0.0..1e12f64));
        assert_eq!(GlobalModulation::new().delay_factor(t), 1.0);
    }

    fn tone_only_factor_is_bounded_by_summed_amplitudes(rng) {
        let mut m = GlobalModulation::new();
        let mut total = 0.0f64;
        for _ in 0..rng.gen_range(1usize..4) {
            let amplitude = rng.gen_range(0.0..0.15f64);
            total += amplitude;
            m = m.with_tone(
                SupplyTone::new(rng.gen_range(1e3..1e8f64), amplitude)
                    .with_phase(rng.gen_range(0.0..core::f64::consts::TAU)),
            );
        }
        let t = Ps::from_ps(rng.gen_range(0.0..1e12f64));
        let factor = m.delay_factor(t);
        assert!(
            (factor - 1.0).abs() <= total + 1e-9,
            "factor {factor} exceeds 1 ± {total}"
        );
    }

    fn signal_source_trait_is_consistent_for_ring_nodes(rng) {
        let seed = rng.gen::<u64>();
        let q_ns = rng.gen_range(8.0..9.9f64);
        let cfg = RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::from_ps(2.0));
        let mut ro = RingOscillator::new(cfg, SimRng::seed_from(seed)).unwrap();
        ro.run_until(Ps::from_ns(10.0));
        let node = ro.node(0);
        let q = Ps::from_ns(q_ns);
        // Level from the trait equals level from the train.
        assert_eq!(SignalSource::level_at(&node, q), node.edge_train().level_at(q));
    }
}
