//! Fabric geometry: slices, columns, clock regions, resources.
//!
//! Models the Spartan-6 facts the paper depends on (Section 5):
//!
//! * one half of the slices contain carry primitives, located in
//!   *even-numbered columns*;
//! * long carry chains are formed by connecting primitives of
//!   vertically adjacent slices in the *same column*;
//! * a clock region spans *16 rows*; carry chains crossing a region
//!   boundary see a clock-tree skew step, the dominant source of TDC
//!   non-linearity (Menninga et al. \[6\]);
//! * resource usage is reported in occupied slices (Table 2).

use core::fmt;
use core::ops::{Add, AddAssign};

use crate::process::{DeviceSeed, ProcessVariation};
use crate::rng::hash_to_standard_normal;
use crate::time::Ps;

/// Coordinates of one slice on the fabric.
///
/// `x` is the column index, `y` the row index, both zero-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SliceCoord {
    /// Column index.
    pub x: u32,
    /// Row index.
    pub y: u32,
}

impl SliceCoord {
    /// Creates a coordinate.
    pub const fn new(x: u32, y: u32) -> Self {
        SliceCoord { x, y }
    }
}

impl fmt::Display for SliceCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SLICE_X{}Y{}", self.x, self.y)
    }
}

/// Geometry of one FPGA device fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fabric {
    /// Number of slice columns.
    pub columns: u32,
    /// Number of slice rows.
    pub rows: u32,
    /// Rows per clock region (16 on Spartan-6).
    pub clock_region_rows: u32,
    /// Standard deviation of the per-region clock skew step.
    pub region_skew_sigma: Ps,
    /// Nominal clock insertion delay at a leaf (common mode, mostly
    /// irrelevant; kept for completeness).
    pub clock_insertion: Ps,
}

impl Fabric {
    /// A Spartan-6 LX-class fabric: 64 columns x 128 rows, 16-row clock
    /// regions, 8 ps region skew sigma.
    pub fn spartan6() -> Self {
        Fabric {
            columns: 64,
            rows: 128,
            clock_region_rows: 16,
            region_skew_sigma: Ps::from_ps(8.0),
            clock_insertion: Ps::from_ns(1.2),
        }
    }

    /// `true` if the column contains carry primitives (even columns).
    pub fn has_carry(&self, column: u32) -> bool {
        column.is_multiple_of(2)
    }

    /// `true` if the coordinate lies on the fabric.
    pub fn contains(&self, coord: SliceCoord) -> bool {
        coord.x < self.columns && coord.y < self.rows
    }

    /// The clock-region index of a row.
    pub fn clock_region_of(&self, row: u32) -> u32 {
        row / self.clock_region_rows
    }

    /// `true` if all rows in `[first_row, last_row]` share one clock region.
    pub fn same_clock_region(&self, first_row: u32, last_row: u32) -> bool {
        self.clock_region_of(first_row) == self.clock_region_of(last_row)
    }

    /// Capture-clock skew at a slice: a per-clock-region offset (the
    /// unbalanced-clock-tree step) plus a small per-leaf component.
    ///
    /// Both are frozen per device. The region offset is the quantity
    /// that makes TDC chains crossing a region boundary non-linear.
    pub fn clock_skew(
        &self,
        device: DeviceSeed,
        variation: &ProcessVariation,
        coord: SliceCoord,
    ) -> Ps {
        let region = self.clock_region_of(coord.y);
        let h1 = device.site_hash(u64::from(region), 0, crate::process::tag::CLOCK_LEAF);
        let h2 = device.site_hash(u64::from(region), 1, crate::process::tag::CLOCK_LEAF);
        let region_offset =
            self.region_skew_sigma * hash_to_standard_normal(h1, h2).clamp(-4.0, 4.0);
        // Per-leaf variation expressed relative to the region sigma so
        // that `clock_sigma_rel` controls it without a separate knob.
        let leaf =
            variation.clock_leaf_multiplier(device, u64::from(coord.x), u64::from(coord.y)) - 1.0;
        region_offset + self.region_skew_sigma * leaf * 10.0
    }
}

impl Default for Fabric {
    fn default() -> Self {
        Fabric::spartan6()
    }
}

/// Aggregate resource usage of a placed design, Table-2 style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceUsage {
    /// Occupied slices (the unit Table 2 reports).
    pub slices: u32,
    /// LUTs used.
    pub luts: u32,
    /// Flip-flops used.
    pub ffs: u32,
    /// CARRY4 primitives used.
    pub carry4s: u32,
}

impl ResourceUsage {
    /// Creates a usage record.
    pub const fn new(slices: u32, luts: u32, ffs: u32, carry4s: u32) -> Self {
        ResourceUsage {
            slices,
            luts,
            ffs,
            carry4s,
        }
    }
}

impl Add for ResourceUsage {
    type Output = ResourceUsage;
    fn add(self, rhs: ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            slices: self.slices + rhs.slices,
            luts: self.luts + rhs.luts,
            ffs: self.ffs + rhs.ffs,
            carry4s: self.carry4s + rhs.carry4s,
        }
    }
}

impl AddAssign for ResourceUsage {
    fn add_assign(&mut self, rhs: ResourceUsage) {
        *self = *self + rhs;
    }
}

impl fmt::Display for ResourceUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} slices ({} LUTs, {} FFs, {} CARRY4s)",
            self.slices, self.luts, self.ffs, self.carry4s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spartan6_geometry() {
        let f = Fabric::spartan6();
        assert!(f.has_carry(0));
        assert!(!f.has_carry(1));
        assert!(f.has_carry(42));
        assert_eq!(f.clock_region_of(0), 0);
        assert_eq!(f.clock_region_of(15), 0);
        assert_eq!(f.clock_region_of(16), 1);
        assert!(f.same_clock_region(0, 15));
        assert!(!f.same_clock_region(15, 16));
    }

    #[test]
    fn contains_checks_bounds() {
        let f = Fabric::spartan6();
        assert!(f.contains(SliceCoord::new(63, 127)));
        assert!(!f.contains(SliceCoord::new(64, 0)));
        assert!(!f.contains(SliceCoord::new(0, 128)));
    }

    #[test]
    fn skew_is_frozen_and_steps_at_region_boundary() {
        let f = Fabric::spartan6();
        let d = DeviceSeed::new(10);
        let pv = ProcessVariation::NONE;
        let a = f.clock_skew(d, &pv, SliceCoord::new(4, 3));
        let b = f.clock_skew(d, &pv, SliceCoord::new(4, 3));
        assert_eq!(a, b);
        // Same region, no leaf variation -> identical skew.
        let c = f.clock_skew(d, &pv, SliceCoord::new(4, 10));
        assert_eq!(a, c);
        // Different region -> different skew (with prob ~1 for a hash).
        let e = f.clock_skew(d, &pv, SliceCoord::new(4, 20));
        assert_ne!(a, e);
    }

    #[test]
    fn leaf_variation_perturbs_within_region() {
        let f = Fabric::spartan6();
        let d = DeviceSeed::new(10);
        let pv = ProcessVariation::default();
        let a = f.clock_skew(d, &pv, SliceCoord::new(4, 3));
        let b = f.clock_skew(d, &pv, SliceCoord::new(4, 4));
        assert_ne!(a, b);
    }

    #[test]
    fn region_skew_magnitude_tracks_sigma() {
        let f = Fabric::spartan6();
        let pv = ProcessVariation::NONE;
        let n = 2_000u64;
        let mut sum2 = 0.0;
        for seed in 0..n {
            let d = DeviceSeed::new(seed);
            let s = f.clock_skew(d, &pv, SliceCoord::new(0, 0)).as_ps();
            sum2 += s * s;
        }
        let sd = (sum2 / n as f64).sqrt();
        assert!((sd - 8.0).abs() < 1.0, "sd {sd}");
    }

    #[test]
    fn resources_add() {
        let a = ResourceUsage::new(3, 3, 0, 0);
        let b = ResourceUsage::new(27, 0, 108, 27);
        let c = a + b;
        assert_eq!(c, ResourceUsage::new(30, 3, 108, 27));
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SliceCoord::new(4, 10)), "SLICE_X4Y10");
        let u = ResourceUsage::new(67, 40, 120, 27);
        assert_eq!(format!("{u}"), "67 slices (40 LUTs, 120 FFs, 27 CARRY4s)");
    }
}
