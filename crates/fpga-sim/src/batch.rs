//! Batched whole-window synthesis of ring-oscillator edge trains —
//! the [`NoiseBackend::Batched`] hot path.
//!
//! The scalar pipeline ([`RingOscillator`](crate::ring_oscillator::RingOscillator) +
//! [`TappedDelayLine::sample_into`]) advances the ring one transition
//! event at a time, drawing every Gaussian variate individually so that
//! traces, journals and golden vectors replay byte-identically. PR 3
//! measured that contract's cost: ~75 % of the remaining per-bit time is
//! frozen in per-edge noise synthesis that cannot be amortised without
//! changing the draw sequence.
//!
//! [`BatchedRingEngine`] deliberately gives up draw-identity (never the
//! *distribution*) to amortise everything:
//!
//! * Gaussian variates come from the block ziggurat
//!   ([`SimRng::fill_standard_normals`]) in slabs of [`EVENT_BLOCK`],
//!   filled from bulk xoshiro word output;
//! * the Ornstein–Uhlenbeck flicker increments are precomputed per
//!   window of [`FLICKER_WINDOW`] events with the exact recurrence
//!   `x ← x·a + N(0, σ·√(1−a²))`, `a = exp(−Δ/τ_c)` at the window
//!   spacing `Δ` (~60 ns for the paper ring — four orders of magnitude
//!   below `τ_c = 1 µs`, so the piecewise-constant hold is far inside
//!   the flicker correlation time and the marginal distribution and
//!   window-scale autocorrelation are exact);
//! * global modulation and attack injection are evaluated with the
//!   *same formulas* as the scalar path at the actual event times —
//!   they are deterministic functions of time, so no approximation;
//! * whole edge trains are synthesised at once into flat, cache-friendly
//!   `f64` buffers, and the packed-`u64` tap sampler runs over them
//!   with the identical run-length + metastability-aperture algorithm
//!   as [`TappedDelayLine::sample_into`], using monotone forward-scan
//!   cursors instead of per-query binary searches.
//!
//! Metastability coin flips still come from the *caller's* RNG, in the
//! same ascending-tap order as the scalar sampler, so the aperture
//! statistics (and the coin budget per sample) are unchanged.
//!
//! The engine refuses (`Err`) configurations it cannot serve exactly —
//! more than 64 taps per line, tap instants that are not monotone
//! non-increasing, or a line/stage count mismatch — and callers fall
//! back to the scalar oscillator (which still benefits from the
//! block-ziggurat tier when the backend knob is on).

use crate::delay_line::{range_mask, TappedDelayLine};
use crate::noise::{NoiseBackend, NoiseConfig};
use crate::primitives::LutDelay;
use crate::ring_oscillator::RingOscillatorConfig;
use crate::rng::SimRng;
use crate::time::Ps;

/// Number of ring transition events synthesised per block.
///
/// At ~21 events per sampled bit this amortises one bulk normal fill
/// over ~190 samples.
pub const EVENT_BLOCK: usize = 4096;

/// Events per flicker window: the OU state of every stage is advanced
/// once per window (exact decay for the window's wall-clock span) and
/// held constant within it. Must divide [`EVENT_BLOCK`].
pub const FLICKER_WINDOW: usize = 128;

/// Per-stage Ornstein–Uhlenbeck flicker state for the batched engine.
#[derive(Debug, Clone)]
struct FlickerBlock {
    /// Decay per flicker window: `exp(−Δ/τ_c)` at the window span
    /// `Δ = FLICKER_WINDOW · half_period / n`.
    a: f64,
    /// Innovation standard deviation per window: `σ·√(1−a²)`.
    innov_sd: f64,
    /// Current per-stage process value, ps.
    state: Vec<f64>,
}

/// Edge buffer of one ring node: absolute toggle instants in ps,
/// ascending, with a logically-pruned prefix and a monotone query
/// cursor.
///
/// Parities are computed from the *total* edge count since `t = 0`,
/// which is equivalent to the scalar
/// [`EdgeTrain`](crate::edge_train::EdgeTrain) flipping its initial
/// level once per pruned edge.
#[derive(Debug, Clone, Default)]
struct NodeEdges {
    times: Vec<f64>,
    /// Physical index of the first retained (un-pruned) edge.
    start: usize,
    /// Monotone query frontier: physical index of the first edge past
    /// the previous sample's earliest query instant. Sampling times
    /// only move forward, so every per-sample search is a short
    /// forward scan from here instead of a binary search over the
    /// whole synthesis buffer.
    hint: usize,
    /// Edges physically drained from the front of `times`.
    removed: u64,
}

impl NodeEdges {
    /// Advances the query frontier past every edge at or before `x`
    /// and returns it. `x` must be non-decreasing across calls, so
    /// each scan resumes where the previous one stopped and walks only
    /// the handful of edges the sampler period admitted since then.
    fn seek(&mut self, x: f64) -> usize {
        while self.hint < self.times.len() && self.times[self.hint] <= x {
            self.hint += 1;
        }
        self.hint
    }

    /// Total number of edges (since `t = 0`) at or before `x`,
    /// scanning forward from `base` (which must already be past every
    /// edge at or before some instant `<= x`), so only the few edges
    /// between the two instants are visited.
    fn count_from(&self, base: usize, x: f64) -> u64 {
        let mut i = base;
        while i < self.times.len() && self.times[i] <= x {
            i += 1;
        }
        self.removed + i as u64
    }

    /// Edge instant by total index.
    fn edge(&self, index: u64) -> f64 {
        self.times[(index - self.removed) as usize]
    }

    /// Distance from `u` to the nearest buffered edge, scanning
    /// forward from `base` (same contract as [`NodeEdges::count_from`]).
    fn nearest_from(&self, base: usize, u: f64) -> Option<f64> {
        let mut i = base;
        while i < self.times.len() && self.times[i] <= u {
            i += 1;
        }
        let after = self.times.get(i).map(|&e| e - u);
        let before = if i > 0 {
            Some(u - self.times[i - 1])
        } else {
            None
        };
        match (before, after) {
            (Some(b), Some(a)) => Some(b.min(a)),
            (Some(b), None) => Some(b),
            (None, Some(a)) => Some(a),
            (None, None) => None,
        }
    }

    /// Logically discards edges strictly before `horizon` (monotone
    /// across calls), compacting the backing storage once the dead
    /// prefix grows large.
    fn prune_before(&mut self, horizon: f64) {
        while self.start < self.times.len() && self.times[self.start] < horizon {
            self.start += 1;
        }
        if self.start > 8 * 1024 {
            self.times.drain(..self.start);
            self.removed += self.start as u64;
            self.hint -= self.start;
            self.start = 0;
        }
    }
}

/// Block-synthesis engine replacing the event-at-a-time oscillator and
/// per-tap sampler on the [`NoiseBackend::Batched`] hot path.
///
/// Statistically equivalent to the scalar pair (same delay formula,
/// same OU flicker marginals, same run-length/metastability sampler),
/// but the Gaussian draw sequence differs, so streams are not
/// byte-identical to scalar runs. See the module docs for the exact
/// contract.
#[derive(Debug, Clone)]
pub struct BatchedRingEngine {
    n: usize,
    /// Process-adjusted stage delays, ps (identical to the scalar
    /// oscillator's `LutDelay::placed(..).delay()` values).
    nominal: Vec<f64>,
    /// Causality clamp per stage: 5 % of nominal, as the scalar path.
    clamp: Vec<f64>,
    half_period: f64,
    noise: NoiseConfig,
    white_sigma: f64,
    flicker: Option<FlickerBlock>,
    rng: SimRng,
    /// Per-line capture-clock skews, ps.
    skew: Vec<Vec<f64>>,
    /// Per-line cumulative tap delays, ps.
    cum: Vec<Vec<f64>>,
    /// Per-line metastability window, ps.
    meta_w: Vec<f64>,
    /// Stage whose output toggles at the next synthesised event.
    next_stage: usize,
    /// Instant of the newest synthesised event, ps.
    last_time: f64,
    nodes: Vec<NodeEdges>,
    /// How far past the sample instant synthesis must reach.
    forward_ps: f64,
    /// How far back edges must be retained before pruning.
    retain_ps: f64,
    /// Samples since the last prune pass (pruning is amortised —
    /// delaying it only retains a little extra memory, never changes
    /// results, since queries run from the hint cursor).
    prune_tick: u32,
    /// Per-stage effective base delay within the current flicker
    /// window (nominal + flicker state), reused across blocks.
    base: Vec<f64>,
    white_block: Vec<f64>,
    innov_block: Vec<f64>,
    /// Event-time staging buffer, scattered per node after synthesis.
    tbuf: Vec<f64>,
}

impl BatchedRingEngine {
    /// Builds an engine for the given ring configuration and delay
    /// lines (line `i` samples ring node `i`).
    ///
    /// The `rng` fork is switched to batched-normal mode and used for
    /// all noise synthesis; metastability coins are drawn from the
    /// caller's RNG at sample time instead.
    ///
    /// # Errors
    ///
    /// Returns a description when the configuration cannot be served
    /// with the run-length sampler (line/stage count mismatch, more
    /// than 64 taps, or non-monotone tap observation instants). The
    /// caller should fall back to the scalar oscillator.
    pub fn new(
        config: &RingOscillatorConfig,
        lines: &[TappedDelayLine],
        mut rng: SimRng,
    ) -> Result<Self, String> {
        config.validate()?;
        let n = config.stages;
        if lines.len() != n {
            return Err(format!(
                "batched engine needs one line per ring node: {} lines for {} stages",
                lines.len(),
                n
            ));
        }
        rng.enable_batched_normals();
        let (bx, by) = config.base_site;
        let nominal: Vec<f64> = (0..n)
            .map(|i| {
                LutDelay::placed(
                    config.stage_delay,
                    config.device,
                    &config.process,
                    bx + 2 * i as u64,
                    by,
                )
                .delay()
                .as_ps()
            })
            .collect();
        let clamp: Vec<f64> = nominal.iter().map(|d| d * 0.05).collect();
        let half_period: f64 = nominal.iter().sum();

        let mut skew = Vec::with_capacity(n);
        let mut cum = Vec::with_capacity(n);
        let mut meta_w = Vec::with_capacity(n);
        let mut forward_ps = 0.0f64;
        let mut lookback_ps = 0.0f64;
        for (idx, line) in lines.iter().enumerate() {
            let m = line.len();
            if m > 64 {
                return Err(format!(
                    "batched engine supports at most 64 taps, line {idx} has {m}"
                ));
            }
            let s: Vec<f64> = line.capture_skews().iter().map(|p| p.as_ps()).collect();
            let c: Vec<f64> = line.cum_delays().iter().map(|p| p.as_ps()).collect();
            let mut prev = f64::INFINITY;
            for j in 0..m {
                let off = s[j] - c[j];
                if off > prev {
                    return Err(format!(
                        "batched engine needs monotone tap instants, line {idx} tap {j} \
                         observes later than tap {}",
                        j - 1
                    ));
                }
                prev = off;
            }
            let w = line.capture_ff().meta_window().as_ps();
            forward_ps = forward_ps.max(s[0] - c[0] + w);
            lookback_ps = lookback_ps.max(c[m - 1] - s[m - 1] + w);
            skew.push(s);
            cum.push(c);
            meta_w.push(w);
        }

        let white_sigma = config.noise.white.sigma().as_ps();
        // The wall-clock span of one flicker window: FLICKER_WINDOW
        // events of one mean stage delay each.
        let window_span = FLICKER_WINDOW as f64 * half_period / n as f64;
        let flicker = config.noise.flicker.and_then(|p| {
            let sigma = p.sigma.as_ps();
            if sigma <= 0.0 {
                return None;
            }
            let a = (-(window_span / p.tau_c.as_ps())).exp();
            Some(FlickerBlock {
                a,
                innov_sd: sigma * (1.0 - a * a).sqrt(),
                // Stationary initial condition, as the scalar
                // `FlickerNoise::new` draws per stage.
                state: (0..n).map(|_| rng.gaussian(0.0, sigma)).collect(),
            })
        });

        Ok(BatchedRingEngine {
            n,
            base: nominal.clone(),
            nominal,
            clamp,
            half_period,
            white_sigma,
            noise: config.noise.clone(),
            flicker,
            rng,
            skew,
            cum,
            meta_w,
            next_stage: 0,
            last_time: 0.0,
            nodes: vec![NodeEdges::default(); n],
            forward_ps: forward_ps.max(0.0),
            // Slack so pruned edges can never re-enter any aperture or
            // parity window of a later sample.
            retain_ps: lookback_ps + 4.0 * half_period + 64.0,
            prune_tick: 0,
            white_block: Vec::new(),
            innov_block: Vec::new(),
            tbuf: Vec::new(),
        })
    }

    /// The backend this engine implements.
    pub fn backend(&self) -> NoiseBackend {
        NoiseBackend::Batched
    }

    /// Nominal ring half-period (sum of process-adjusted stage delays).
    pub fn half_period(&self) -> Ps {
        Ps::from_ps(self.half_period)
    }

    /// Synthesises one block of [`EVENT_BLOCK`] ring transitions into
    /// the per-node edge buffers.
    fn synthesize_block(&mut self) {
        let k_total = EVENT_BLOCK;
        let windows = k_total / FLICKER_WINDOW;
        self.white_block.resize(k_total, 0.0);
        if self.white_sigma > 0.0 {
            self.rng.fill_standard_normals(&mut self.white_block);
        }
        if self.flicker.is_some() {
            self.innov_block.resize(windows * self.n, 0.0);
            self.rng.fill_standard_normals(&mut self.innov_block);
        }
        let n = self.n;
        let wsig = self.white_sigma;
        let simple = self.noise.global.is_none() && self.noise.attack.is_none();
        if simple && n == 3 {
            // The paper ring: a fully fused loop that pushes each
            // event time straight onto its node, no staging pass.
            self.synthesize_simple3(windows);
            return;
        }
        self.tbuf.resize(k_total, 0.0);

        let mut t = self.last_time;
        let mut s = self.next_stage;
        for w in 0..windows {
            // Advance every stage's OU state once per window (exact
            // decay for the window span), then hold it constant: the
            // effective per-stage base delay for this window.
            if let Some(f) = &mut self.flicker {
                for st in 0..n {
                    f.state[st] = f.state[st] * f.a + f.innov_sd * self.innov_block[w * n + st];
                    self.base[st] = self.nominal[st] + f.state[st];
                }
            }
            let k0 = w * FLICKER_WINDOW;
            if simple {
                // Fast path (no global modulation, no attack): one
                // fused multiply-add + clamp per event.
                for k in k0..k0 + FLICKER_WINDOW {
                    let mut d = self.base[s] + wsig * self.white_block[k];
                    if d < self.clamp[s] {
                        d = self.clamp[s];
                    }
                    t += d;
                    self.tbuf[k] = t;
                    s += 1;
                    if s == n {
                        s = 0;
                    }
                }
            } else {
                // General path: same composition as the scalar
                // `StageNoise::stage_delay`, at the same event times —
                // multiplicative global factor, additive white +
                // flicker, attack at the prospective edge instant.
                for k in k0..k0 + FLICKER_WINDOW {
                    let mut d = self.nominal[s];
                    if let Some(g) = &self.noise.global {
                        d *= g.delay_factor(Ps::from_ps(t));
                    }
                    if wsig > 0.0 {
                        d += wsig * self.white_block[k];
                    }
                    d += self.base[s] - self.nominal[s];
                    if let Some(a) = &self.noise.attack {
                        d += a.injected_delay(Ps::from_ps(t + d)).as_ps();
                    }
                    if d < self.clamp[s] {
                        d = self.clamp[s];
                    }
                    t += d;
                    self.tbuf[k] = t;
                    s += 1;
                    if s == n {
                        s = 0;
                    }
                }
            }
        }

        // Scatter the staged event times to their nodes: event k
        // toggles stage (next_stage + k) mod n.
        let s0 = self.next_stage;
        if n == 3 {
            // Single pass: element j of every 3-chunk lands on stage
            // (s0 + j) % 3, so the three targets are fixed per lane —
            // one sweep over the staging buffer instead of three
            // strided walks.
            let (h0, rest) = self.nodes.split_at_mut(1);
            let (h1, h2) = rest.split_at_mut(1);
            let mut vecs = [&mut h0[0].times, &mut h1[0].times, &mut h2[0].times];
            for v in &mut vecs {
                v.reserve(k_total / 3 + 1);
            }
            let d = [s0 % 3, (s0 + 1) % 3, (s0 + 2) % 3];
            let mut chunks = self.tbuf.chunks_exact(3);
            for ch in &mut chunks {
                vecs[d[0]].push(ch[0]);
                vecs[d[1]].push(ch[1]);
                vecs[d[2]].push(ch[2]);
            }
            for (j, &tv) in chunks.remainder().iter().enumerate() {
                vecs[d[j]].push(tv);
            }
        } else {
            for off in 0..n {
                let stage = (s0 + off) % n;
                self.nodes[stage]
                    .times
                    .extend(self.tbuf[off..].iter().step_by(n));
            }
        }
        self.next_stage = s;
        self.last_time = t;
    }

    /// Fused synthesis for the 3-stage ring without global modulation
    /// or attack injection: one multiply-add + clamp per event, event
    /// times pushed straight onto their node buffers.
    fn synthesize_simple3(&mut self, windows: usize) {
        let wsig = self.white_sigma;
        let mut t = self.last_time;
        let mut s = self.next_stage;
        let (h0, rest) = self.nodes.split_at_mut(1);
        let (h1, h2) = rest.split_at_mut(1);
        let mut vecs = [&mut h0[0].times, &mut h1[0].times, &mut h2[0].times];
        for v in &mut vecs {
            v.reserve(EVENT_BLOCK / 3 + 1);
        }
        for w in 0..windows {
            if let Some(f) = &mut self.flicker {
                for st in 0..3 {
                    f.state[st] = f.state[st] * f.a + f.innov_sd * self.innov_block[w * 3 + st];
                    self.base[st] = self.nominal[st] + f.state[st];
                }
            }
            let base = [self.base[0], self.base[1], self.base[2]];
            let clamp = [self.clamp[0], self.clamp[1], self.clamp[2]];
            let k0 = w * FLICKER_WINDOW;
            for &z in &self.white_block[k0..k0 + FLICKER_WINDOW] {
                let mut d = base[s] + wsig * z;
                if d < clamp[s] {
                    d = clamp[s];
                }
                t += d;
                vecs[s].push(t);
                s += 1;
                if s == 3 {
                    s = 0;
                }
            }
        }
        self.next_stage = s;
        self.last_time = t;
    }

    /// Extends synthesis until the newest event is at or past `t_ps`.
    fn ensure_until(&mut self, t_ps: f64) {
        while self.last_time < t_ps {
            self.synthesize_block();
        }
    }

    /// Samples every line at clock edge `t`, writing the packed word of
    /// line `i` into `words[i]` and returning the XOR of all words —
    /// the batched equivalent of one `advance_to` + per-line
    /// [`TappedDelayLine::sample_into`] pass.
    ///
    /// `coins` supplies the metastability Bernoulli draws, in the same
    /// ascending-tap order per line as the scalar sampler. Sample
    /// times must be monotone non-decreasing, as with the scalar
    /// oscillator.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` differs from the line count.
    pub fn sample_words(&mut self, t: Ps, coins: &mut SimRng, words: &mut [u64]) -> u64 {
        assert_eq!(
            words.len(),
            self.n,
            "need one word slot per line, got {} for {}",
            words.len(),
            self.n
        );
        let t_ps = t.as_ps();
        // Cover every tap instant plus its aperture so edges outside
        // the buffer are provably farther than any metastability
        // window; the extra half-periods guarantee buffered edges past
        // every query the run-length and aperture scans can reach.
        self.ensure_until(t_ps + self.forward_ps + 2.0 * self.half_period + 16.0);
        let mut xor = 0u64;
        for (i, slot) in words.iter_mut().enumerate() {
            // Earliest instant this sample can query on node i:
            // the last tap's observation instant minus the aperture.
            let m = self.cum[i].len();
            let min_q = (t_ps + self.skew[i][m - 1]) - self.cum[i][m - 1] - self.meta_w[i];
            let base = self.nodes[i].seek(min_q);
            let word = self.sample_line(i, t_ps, base, coins);
            *slot = word;
            xor ^= word;
        }
        self.prune_tick += 1;
        if self.prune_tick >= 32 {
            self.prune_tick = 0;
            let horizon = t_ps - self.retain_ps;
            if horizon > 0.0 {
                for node in &mut self.nodes {
                    node.prune_before(horizon);
                }
            }
        }
        xor
    }

    /// Packed capture of one line: a faithful port of the scalar
    /// run-length sampler over the flat edge buffer. `base` is the
    /// node's query frontier, already past every edge at or before
    /// this sample's earliest query instant.
    fn sample_line(&self, line: usize, t_ps: f64, base: usize, coins: &mut SimRng) -> u64 {
        let skew = &self.skew[line][..];
        let cum = &self.cum[line][..];
        let m = skew.len();
        // Same association as the scalar `tap_instant`: (t + skew) −
        // cum, so instants match bit for bit. Evaluated on demand —
        // the searches below only ever probe a handful of the m taps,
        // so materialising the whole array would dominate the sample.
        let u = |j: usize| (t_ps + skew[j]) - cum[j];
        let node = &self.nodes[line];

        // Levels: tap j sees initial XOR parity(#edges <= u_j), with
        // the alternating ring initial level of node `line`.
        let init = line % 2 == 1;
        let u_last = u(m - 1);
        let u_first = u(0);
        let p_min = node.count_from(base, u_last);
        let p_max = node.count_from(base, u_first);
        let mut word = 0u64;
        let mut j_start = 0usize;
        let mut c = p_max;
        while c > p_min {
            let e = node.edge(c - 1);
            let split = partition_taps(j_start, m, |j| u(j) >= e);
            if init ^ (c % 2 == 1) {
                word |= range_mask(j_start, split);
            }
            j_start = split;
            c -= 1;
        }
        if init ^ (p_min % 2 == 1) {
            word |= range_mask(j_start, m);
        }

        // Metastability apertures, walked from the latest candidate
        // edge to the earliest so coins land in ascending-tap order.
        let w = self.meta_w[line];
        if w > 0.0 {
            // `base` was seeked to u[m-1] - w, so it *is* e_lo.
            let e_lo = node.removed + base as u64;
            let e_hi = node.count_from(base, u_first + w);
            let mut next_j = 0usize;
            let mut i = e_hi;
            while i > e_lo {
                i -= 1;
                let e = node.edge(i);
                // First tap past the aperture's early side, then first
                // tap at or past its late side: the candidate range.
                let jlo = partition_taps(next_j, m, |j| u(j) >= e + w);
                let jhi = partition_taps(jlo, m, |j| u(j) > e - w);
                for j in jlo..jhi {
                    if let Some(d) = node.nearest_from(base, u(j)) {
                        if d < w {
                            let p_correct = 0.5 + 0.5 * (d / w);
                            if !coins.bernoulli(p_correct) {
                                word ^= 1u64 << j;
                            }
                        }
                    }
                }
                next_j = jhi.max(next_j);
            }
        }
        word
    }
}

/// First tap index `j` in `[lo, m)` where `above(j)` turns false.
///
/// Tap observation instants are non-increasing in `j` (validated at
/// construction), so any `u(j) >= threshold`-style predicate is
/// monotone and this is the usual binary partition point, with the
/// instants computed on demand.
fn partition_taps(lo: usize, m: usize, mut above: impl FnMut(usize) -> bool) -> usize {
    let (mut lo, mut hi) = (lo, m);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if above(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_train::EdgeCursor;
    use crate::primitives::CaptureFf;
    use crate::ring_oscillator::RingOscillator;

    fn ideal_lines(n: usize, m: usize, tstep: Ps) -> Vec<TappedDelayLine> {
        (0..n).map(|_| TappedDelayLine::ideal(m, tstep)).collect()
    }

    fn scalar_words(
        config: &RingOscillatorConfig,
        lines: &[TappedDelayLine],
        osc_seed: u64,
        coin_seed: u64,
        t_a: Ps,
        count: usize,
    ) -> Vec<Vec<u64>> {
        let mut ro =
            RingOscillator::new(config.clone(), SimRng::seed_from(osc_seed)).expect("valid");
        let mut coins = SimRng::seed_from(coin_seed);
        let mut cursors = vec![EdgeCursor::default(); lines.len()];
        let mut t = Ps::ZERO;
        (0..count)
            .map(|_| {
                t += t_a;
                ro.run_until(t);
                lines
                    .iter()
                    .enumerate()
                    .map(|(i, line)| line.sample_into(&ro.node(i), t, &mut cursors[i], &mut coins))
                    .collect()
            })
            .collect()
    }

    fn batched_words(
        config: &RingOscillatorConfig,
        lines: &[TappedDelayLine],
        osc_seed: u64,
        coin_seed: u64,
        t_a: Ps,
        count: usize,
    ) -> Vec<Vec<u64>> {
        let mut engine =
            BatchedRingEngine::new(config, lines, SimRng::seed_from(osc_seed)).expect("supported");
        let mut coins = SimRng::seed_from(coin_seed);
        let mut words = vec![0u64; lines.len()];
        let mut t = Ps::ZERO;
        (0..count)
            .map(|_| {
                t += t_a;
                engine.sample_words(t, &mut coins, &mut words);
                words.clone()
            })
            .collect()
    }

    #[test]
    fn noiseless_engine_matches_scalar_sampler_exactly() {
        // With zero noise there is no randomness in the edge times, so
        // the engine must reproduce the scalar words bit for bit.
        let config = RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::ZERO);
        let lines = ideal_lines(3, 36, Ps::from_ps(17.0));
        let t_a = Ps::from_ps(9973.0);
        let scalar = scalar_words(&config, &lines, 1, 2, t_a, 400);
        let batched = batched_words(&config, &lines, 1, 2, t_a, 400);
        assert_eq!(scalar, batched);
    }

    #[test]
    fn noiseless_engine_matches_scalar_with_metastability() {
        // Zero jitter but a real aperture: edge times stay
        // deterministic, so aperture hits and the coin sequence must
        // match the scalar path exactly (same coin seed).
        let config = RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::ZERO);
        let ff = CaptureFf::new(Ps::from_ps(8.0));
        let lines: Vec<TappedDelayLine> = (0..3)
            .map(|_| {
                TappedDelayLine::from_bins(vec![Ps::from_ps(17.0); 36], vec![Ps::ZERO; 36], ff)
            })
            .collect();
        let t_a = Ps::from_ps(9973.0);
        let scalar = scalar_words(&config, &lines, 5, 6, t_a, 400);
        let batched = batched_words(&config, &lines, 5, 6, t_a, 400);
        assert_eq!(scalar, batched);
    }

    #[test]
    fn rejects_mismatched_line_count() {
        let config = RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::ZERO);
        let lines = ideal_lines(2, 8, Ps::from_ps(17.0));
        assert!(BatchedRingEngine::new(&config, &lines, SimRng::seed_from(0)).is_err());
    }

    #[test]
    fn rejects_wide_lines() {
        let config = RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::ZERO);
        let lines = ideal_lines(3, 65, Ps::from_ps(17.0));
        assert!(BatchedRingEngine::new(&config, &lines, SimRng::seed_from(0)).is_err());
    }

    #[test]
    fn edge_intervals_match_scalar_statistics() {
        // White sigma 2.6 ps per stage: node-0 toggle intervals are
        // the half-period with variance 3 sigma^2.
        let config = RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::from_ps(2.6));
        let lines = ideal_lines(3, 8, Ps::from_ps(17.0));
        let mut engine =
            BatchedRingEngine::new(&config, &lines, SimRng::seed_from(7)).expect("supported");
        engine.ensure_until(4.0 * EVENT_BLOCK as f64 * 480.0);
        let v = &engine.nodes[0].times;
        let n = v.len() - 1;
        assert!(n > 4000, "expected thousands of edges, got {n}");
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for k in 1..=n {
            let dt = v[k] - v[k - 1];
            sum += dt;
            sum2 += dt * dt;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean - 1440.0).abs() < 1.0, "mean interval {mean}");
        let expect = 3.0 * 2.6 * 2.6;
        assert!(
            (var - expect).abs() < 0.15 * expect,
            "interval variance {var}, expected ~{expect}"
        );
    }

    #[test]
    fn flicker_state_stays_stationary() {
        use crate::noise::FlickerParams;
        let config = RingOscillatorConfig {
            noise: NoiseConfig::white_only(Ps::from_ps(2.6)).with_flicker(FlickerParams::default()),
            ..RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::from_ps(2.6))
        };
        let lines = ideal_lines(3, 8, Ps::from_ps(17.0));
        let mut engine =
            BatchedRingEngine::new(&config, &lines, SimRng::seed_from(11)).expect("supported");
        let mut sum2 = 0.0;
        let rounds = 400;
        for _ in 0..rounds {
            engine.synthesize_block();
            for &s in &engine.flicker.as_ref().expect("flicker on").state {
                sum2 += s * s;
            }
        }
        // Stationary variance sigma^2 = 0.25 ps^2 (sigma = 0.5 ps).
        let var = sum2 / (rounds * 3) as f64;
        assert!(
            (var - 0.25).abs() < 0.05,
            "flicker stationary variance {var}"
        );
    }

    #[test]
    fn flicker_window_autocorrelation_is_exponential() {
        use crate::noise::FlickerParams;
        // The per-window OU update must keep the exact exponential
        // autocorrelation exp(-lag/tau_c) at window granularity.
        let config = RingOscillatorConfig {
            noise: NoiseConfig::white_only(Ps::ZERO).with_flicker(FlickerParams::default()),
            ..RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::ZERO)
        };
        let lines = ideal_lines(3, 8, Ps::from_ps(17.0));
        let mut engine =
            BatchedRingEngine::new(&config, &lines, SimRng::seed_from(3)).expect("supported");
        // Record stage-0 state once per block (EVENT_BLOCK events =
        // 32 windows), long enough for several correlation times.
        let mut series = Vec::new();
        for _ in 0..6000 {
            engine.synthesize_block();
            series.push(engine.flicker.as_ref().expect("flicker on").state[0]);
        }
        let block_span = EVENT_BLOCK as f64 * 480.0; // ps per block
        let lag_blocks = (1e6 / block_span).round() as usize; // ~tau_c
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        let var = series.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / series.len() as f64;
        let mut cov = 0.0;
        let pairs = series.len() - lag_blocks;
        for i in 0..pairs {
            cov += (series[i] - mean) * (series[i + lag_blocks] - mean);
        }
        cov /= pairs as f64;
        let rho = cov / var;
        let expect = (-(lag_blocks as f64 * block_span) / 1e6).exp();
        assert!(
            (rho - expect).abs() < 0.08,
            "autocorrelation at ~tau_c: {rho}, expected ~{expect}"
        );
    }

    #[test]
    fn word_bias_matches_scalar_path() {
        // Same physics, different draw sequences: the per-tap one-bit
        // frequency of batched words must agree with scalar within a
        // few sigma over 1500 samples of 36 taps.
        let config = RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::from_ps(2.6));
        let lines = ideal_lines(3, 36, Ps::from_ps(17.0));
        let t_a = Ps::from_ps(9973.0);
        let count = 1500;
        let ones = |words: &[Vec<u64>]| -> f64 {
            words
                .iter()
                .map(|per_line| per_line.iter().map(|w| w.count_ones()).sum::<u32>())
                .sum::<u32>() as f64
                / (words.len() * 3 * 36) as f64
        };
        let s = ones(&scalar_words(&config, &lines, 21, 22, t_a, count));
        let b = ones(&batched_words(&config, &lines, 21, 22, t_a, count));
        assert!(
            (s - b).abs() < 0.02,
            "one-bit frequency scalar {s} vs batched {b}"
        );
    }
}
