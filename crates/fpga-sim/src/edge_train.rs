//! Transition-history waveforms.
//!
//! Digital signals in the simulator are represented by their toggle
//! instants: an [`EdgeTrain`] records an initial logic level and a
//! monotonically increasing sequence of transition times. This is the
//! natural output of the event-driven ring-oscillator simulation and
//! the natural input to the tapped-delay-line sampler, which asks
//! point-in-time questions ("what was node 2 at `t_sample − D_j`?" and
//! "how far is the nearest edge?" for the metastability model).
//!
//! Histories are pruned from the front so memory stays bounded during
//! arbitrarily long simulations.

use std::collections::VecDeque;

use crate::time::Ps;

/// A resumable position inside an [`EdgeTrain`], enabling amortized
/// O(1) point queries for workloads whose query instants move by small
/// steps — exactly the tapped-delay-line sampler, whose `m` tap
/// instants within one capture walk backwards by ~one bin width each.
///
/// The cursor caches the index of the first edge strictly after the
/// last queried instant. [`EdgeTrain::level_at_with`] re-synchronizes
/// it by walking from the cached index, so the cost per query is
/// proportional to the number of edges crossed since the previous
/// query rather than `log(len)`. A stale cursor (e.g. after
/// [`EdgeTrain::prune_before`] shrank the history) is simply clamped
/// and re-walked, so results are always identical to the cursor-free
/// queries.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgeCursor {
    /// Cached candidate for "index of first edge strictly after t".
    idx: usize,
}

impl EdgeCursor {
    /// A cursor positioned at the start of history.
    pub fn new() -> Self {
        EdgeCursor::default()
    }
}

/// A logic signal described by its transition history.
///
/// # Examples
///
/// ```
/// use trng_fpga_sim::edge_train::EdgeTrain;
/// use trng_fpga_sim::time::Ps;
///
/// let mut train = EdgeTrain::new(false, Ps::ZERO);
/// train.push(Ps::from_ps(100.0));
/// train.push(Ps::from_ps(250.0));
/// assert!(!train.level_at(Ps::from_ps(50.0)));
/// assert!(train.level_at(Ps::from_ps(150.0)));
/// assert!(!train.level_at(Ps::from_ps(300.0)));
/// ```
#[derive(Debug, Clone)]
pub struct EdgeTrain {
    /// Level before the first recorded transition.
    initial_level: bool,
    /// Start of validity: queries before this time are out of range.
    valid_from: Ps,
    /// Transition instants, strictly increasing.
    edges: VecDeque<Ps>,
}

impl EdgeTrain {
    /// Creates an empty train at the given level, valid from `t0`.
    pub fn new(initial_level: bool, t0: Ps) -> Self {
        EdgeTrain {
            initial_level,
            valid_from: t0,
            edges: VecDeque::new(),
        }
    }

    /// Records a transition at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not after the last recorded transition (the
    /// simulator must deliver events in order) or before `valid_from`.
    pub fn push(&mut self, t: Ps) {
        if let Some(&last) = self.edges.back() {
            assert!(t > last, "edge at {t} not after previous edge at {last}");
        } else {
            assert!(
                t >= self.valid_from,
                "edge at {t} before validity start {}",
                self.valid_from
            );
        }
        self.edges.push_back(t);
    }

    /// The logic level at time `t`.
    ///
    /// A query exactly at a transition instant returns the *new* level
    /// (transitions are instantaneous and left-closed).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the start of recorded history; such a
    /// query would silently return wrong data after pruning.
    pub fn level_at(&self, t: Ps) -> bool {
        assert!(
            t >= self.valid_from,
            "query at {t} precedes history start {}",
            self.valid_from
        );
        let toggles = self.count_edges_at_or_before(t);
        self.initial_level ^ (toggles % 2 == 1)
    }

    /// Distance from `t` to the nearest recorded transition, if any.
    pub fn nearest_edge_distance(&self, t: Ps) -> Option<Ps> {
        if self.edges.is_empty() {
            return None;
        }
        let idx = self.partition_point(t);
        let mut best: Option<Ps> = None;
        if idx < self.edges.len() {
            best = Some((self.edges[idx] - t).abs());
        }
        if idx > 0 {
            let d = (t - self.edges[idx - 1]).abs();
            best = Some(match best {
                Some(b) => b.min(d),
                None => d,
            });
        }
        best
    }

    /// Transition instants inside `[from, to]`, in order.
    pub fn edges_in(&self, from: Ps, to: Ps) -> impl Iterator<Item = Ps> + '_ {
        self.edges
            .iter()
            .copied()
            .skip_while(move |&e| e < from)
            .take_while(move |&e| e <= to)
    }

    /// Total number of recorded transitions (after pruning).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` if no transitions are recorded.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The time of the most recent transition, if any.
    pub fn last_edge(&self) -> Option<Ps> {
        self.edges.back().copied()
    }

    /// The start of valid history.
    pub fn valid_from(&self) -> Ps {
        self.valid_from
    }

    /// Discards transitions strictly before `t`, keeping the level
    /// consistent. Afterwards the train is only valid from `t` on.
    pub fn prune_before(&mut self, t: Ps) {
        if t <= self.valid_from {
            return;
        }
        let drop = self.partition_point_strict(t);
        for _ in 0..drop {
            self.edges.pop_front();
            self.initial_level = !self.initial_level;
        }
        self.valid_from = t;
    }

    /// Cursor-accelerated [`EdgeTrain::level_at`]: identical result,
    /// amortized O(1) when successive queries are close together.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the start of recorded history, exactly
    /// like [`EdgeTrain::level_at`].
    pub fn level_at_with(&self, t: Ps, cursor: &mut EdgeCursor) -> bool {
        assert!(
            t >= self.valid_from,
            "query at {t} precedes history start {}",
            self.valid_from
        );
        let toggles = self.seek(t, cursor);
        self.initial_level ^ (toggles % 2 == 1)
    }

    /// Cursor-accelerated [`EdgeTrain::nearest_edge_distance`]:
    /// identical result, amortized O(1) for nearby queries.
    pub fn nearest_edge_distance_with(&self, t: Ps, cursor: &mut EdgeCursor) -> Option<Ps> {
        if self.edges.is_empty() {
            return None;
        }
        let idx = self.seek(t, cursor);
        let mut best: Option<Ps> = None;
        if idx < self.edges.len() {
            best = Some((self.edges[idx] - t).abs());
        }
        if idx > 0 {
            let d = (t - self.edges[idx - 1]).abs();
            best = Some(match best {
                Some(b) => b.min(d),
                None => d,
            });
        }
        best
    }

    /// Moves `cursor` to the index of the first edge strictly after
    /// `t` (the same value [`EdgeTrain::partition_point`] computes) by
    /// walking from its cached position, and returns that index.
    fn seek(&self, t: Ps, cursor: &mut EdgeCursor) -> usize {
        let len = self.edges.len();
        let mut i = cursor.idx.min(len);
        while i < len && self.edges[i] <= t {
            i += 1;
        }
        while i > 0 && self.edges[i - 1] > t {
            i -= 1;
        }
        cursor.idx = i;
        i
    }

    /// Number of edges at or before `t`.
    fn count_edges_at_or_before(&self, t: Ps) -> usize {
        self.partition_point(t)
    }

    /// Number of edges at or before `t` — crate-internal name for the
    /// run-length sampler in [`delay_line`](crate::delay_line).
    pub(crate) fn edges_at_or_before(&self, t: Ps) -> usize {
        self.partition_point(t)
    }

    /// Edge instant by index (crate-internal, for the run-length
    /// sampler; `i` must be in range).
    pub(crate) fn edge(&self, i: usize) -> Ps {
        self.edges[i]
    }

    /// Level before the first recorded transition (crate-internal).
    pub(crate) fn initial(&self) -> bool {
        self.initial_level
    }

    /// Index of the first edge strictly after `t`.
    fn partition_point(&self, t: Ps) -> usize {
        // VecDeque has no partition_point on ranges across both slices
        // in older std; do a manual binary search over indices.
        let mut lo = 0usize;
        let mut hi = self.edges.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.edges[mid] <= t {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Index of the first edge at or after `t`.
    fn partition_point_strict(&self, t: Ps) -> usize {
        let mut lo = 0usize;
        let mut hi = self.edges.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.edges[mid] < t {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// Anything that can answer point-in-time logic-level questions.
///
/// Implemented by [`EdgeTrain`] and by ring-oscillator node views; the
/// tapped delay line samples any `SignalSource`, which keeps the TDC
/// reusable for the measurement procedures (where it captures plain
/// test signals rather than oscillator nodes).
pub trait SignalSource {
    /// Logic level at time `t`.
    fn level_at(&self, t: Ps) -> bool;

    /// Distance to the nearest transition around `t`, if one is known.
    ///
    /// Used by the flip-flop metastability model; returning `None`
    /// disables metastability for this source.
    fn nearest_edge_distance(&self, t: Ps) -> Option<Ps>;

    /// [`SignalSource::level_at`] with a resumable cursor. Sources
    /// without an incremental representation ignore the cursor; the
    /// result must always equal `level_at(t)`.
    fn level_at_with(&self, t: Ps, cursor: &mut EdgeCursor) -> bool {
        let _ = cursor;
        self.level_at(t)
    }

    /// [`SignalSource::nearest_edge_distance`] with a resumable
    /// cursor. The result must always equal `nearest_edge_distance(t)`.
    fn nearest_edge_distance_with(&self, t: Ps, cursor: &mut EdgeCursor) -> Option<Ps> {
        let _ = cursor;
        self.nearest_edge_distance(t)
    }

    /// The underlying [`EdgeTrain`], when this source is backed by
    /// one. Lets batch consumers (the tapped-delay-line sampler) use
    /// run-length algorithms over the edge list instead of per-instant
    /// queries; sources without an edge-list representation return
    /// `None` and are served by the per-instant path.
    fn as_edge_train(&self) -> Option<&EdgeTrain> {
        None
    }
}

impl SignalSource for EdgeTrain {
    fn level_at(&self, t: Ps) -> bool {
        EdgeTrain::level_at(self, t)
    }

    fn nearest_edge_distance(&self, t: Ps) -> Option<Ps> {
        EdgeTrain::nearest_edge_distance(self, t)
    }

    fn level_at_with(&self, t: Ps, cursor: &mut EdgeCursor) -> bool {
        EdgeTrain::level_at_with(self, t, cursor)
    }

    fn nearest_edge_distance_with(&self, t: Ps, cursor: &mut EdgeCursor) -> Option<Ps> {
        EdgeTrain::nearest_edge_distance_with(self, t, cursor)
    }

    fn as_edge_train(&self) -> Option<&EdgeTrain> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_01234() -> EdgeTrain {
        let mut t = EdgeTrain::new(false, Ps::ZERO);
        for e in [10.0, 20.0, 30.0, 40.0] {
            t.push(Ps::from_ps(e));
        }
        t
    }

    #[test]
    fn levels_alternate_between_edges() {
        let t = train_01234();
        assert!(!t.level_at(Ps::from_ps(5.0)));
        assert!(t.level_at(Ps::from_ps(15.0)));
        assert!(!t.level_at(Ps::from_ps(25.0)));
        assert!(t.level_at(Ps::from_ps(35.0)));
        assert!(!t.level_at(Ps::from_ps(45.0)));
    }

    #[test]
    fn query_at_edge_returns_new_level() {
        let t = train_01234();
        assert!(t.level_at(Ps::from_ps(10.0)));
        assert!(!t.level_at(Ps::from_ps(20.0)));
    }

    #[test]
    fn initial_high_level_respected() {
        let mut t = EdgeTrain::new(true, Ps::ZERO);
        t.push(Ps::from_ps(10.0));
        assert!(t.level_at(Ps::from_ps(1.0)));
        assert!(!t.level_at(Ps::from_ps(11.0)));
    }

    #[test]
    fn nearest_edge_distance_works() {
        let t = train_01234();
        assert_eq!(
            t.nearest_edge_distance(Ps::from_ps(12.0)),
            Some(Ps::from_ps(2.0))
        );
        assert_eq!(
            t.nearest_edge_distance(Ps::from_ps(19.0)),
            Some(Ps::from_ps(1.0))
        );
        assert_eq!(
            t.nearest_edge_distance(Ps::from_ps(100.0)),
            Some(Ps::from_ps(60.0))
        );
        assert_eq!(
            t.nearest_edge_distance(Ps::from_ps(0.0)),
            Some(Ps::from_ps(10.0))
        );
        let empty = EdgeTrain::new(false, Ps::ZERO);
        assert_eq!(empty.nearest_edge_distance(Ps::from_ps(5.0)), None);
    }

    #[test]
    fn edges_in_range() {
        let t = train_01234();
        let edges: Vec<f64> = t
            .edges_in(Ps::from_ps(15.0), Ps::from_ps(40.0))
            .map(|e| e.as_ps())
            .collect();
        assert_eq!(edges, vec![20.0, 30.0, 40.0]);
    }

    #[test]
    fn prune_preserves_levels() {
        let mut t = train_01234();
        let before = t.level_at(Ps::from_ps(25.0));
        t.prune_before(Ps::from_ps(22.0));
        assert_eq!(t.level_at(Ps::from_ps(25.0)), before);
        assert_eq!(t.len(), 2);
        assert!(t.level_at(Ps::from_ps(35.0)));
        assert!(!t.level_at(Ps::from_ps(45.0)));
    }

    #[test]
    fn prune_exactly_at_edge_keeps_that_edge() {
        let mut t = train_01234();
        t.prune_before(Ps::from_ps(20.0));
        assert_eq!(t.len(), 3);
        assert_eq!(t.last_edge(), Some(Ps::from_ps(40.0)));
        // level right after the retained edge at 20 must still be 'false'
        assert!(!t.level_at(Ps::from_ps(21.0)));
    }

    #[test]
    #[should_panic(expected = "precedes history start")]
    fn query_before_pruned_history_panics() {
        let mut t = train_01234();
        t.prune_before(Ps::from_ps(22.0));
        let _ = t.level_at(Ps::from_ps(5.0));
    }

    #[test]
    #[should_panic(expected = "not after previous edge")]
    fn out_of_order_push_panics() {
        let mut t = train_01234();
        t.push(Ps::from_ps(35.0));
    }

    #[test]
    fn empty_train_is_constant() {
        let t = EdgeTrain::new(true, Ps::ZERO);
        assert!(t.is_empty());
        assert!(t.level_at(Ps::from_ps(1000.0)));
        assert_eq!(t.last_edge(), None);
    }

    #[test]
    fn cursor_queries_match_cursorless_in_any_order() {
        let t = train_01234();
        let mut cursor = EdgeCursor::new();
        // Forward, backward, repeated and far-jump query patterns.
        for q in [
            5.0, 15.0, 15.0, 45.0, 0.0, 10.0, 9.999, 39.0, 20.0, 41.0, 1.0, 30.0,
        ] {
            let at = Ps::from_ps(q);
            assert_eq!(
                t.level_at_with(at, &mut cursor),
                t.level_at(at),
                "level at {q}"
            );
            assert_eq!(
                t.nearest_edge_distance_with(at, &mut cursor),
                t.nearest_edge_distance(at),
                "distance at {q}"
            );
        }
    }

    #[test]
    fn cursor_survives_pruning_and_growth() {
        let mut t = train_01234();
        let mut cursor = EdgeCursor::new();
        assert!(!t.level_at_with(Ps::from_ps(45.0), &mut cursor)); // cursor at end
        t.prune_before(Ps::from_ps(22.0)); // history shrinks under the cursor
        assert!(!t.level_at_with(Ps::from_ps(25.0), &mut cursor));
        assert_eq!(
            t.nearest_edge_distance_with(Ps::from_ps(25.0), &mut cursor),
            t.nearest_edge_distance(Ps::from_ps(25.0))
        );
        t.push(Ps::from_ps(50.0)); // history grows past the cursor
        assert!(t.level_at_with(Ps::from_ps(55.0), &mut cursor));
        assert_eq!(
            t.nearest_edge_distance_with(Ps::from_ps(55.0), &mut cursor),
            Some(Ps::from_ps(5.0))
        );
    }

    #[test]
    #[should_panic(expected = "precedes history start")]
    fn cursor_query_before_history_panics() {
        let mut t = train_01234();
        t.prune_before(Ps::from_ps(22.0));
        let _ = t.level_at_with(Ps::from_ps(5.0), &mut EdgeCursor::new());
    }

    #[test]
    fn cursor_on_empty_train() {
        let t = EdgeTrain::new(true, Ps::ZERO);
        let mut cursor = EdgeCursor::new();
        assert!(t.level_at_with(Ps::from_ps(7.0), &mut cursor));
        assert_eq!(
            t.nearest_edge_distance_with(Ps::from_ps(7.0), &mut cursor),
            None
        );
    }
}
