//! Randomness plumbing for the simulator.
//!
//! Two independent kinds of randomness exist in the simulation:
//!
//! 1. **Process variation** — frozen at "fabrication" time. Derived
//!    deterministically from a [`DeviceSeed`](crate::process::DeviceSeed)
//!    so that the same device always has the same per-LUT delays and
//!    per-bin TDC widths.
//! 2. **Run-time noise** — thermal jitter, metastability resolution,
//!    flicker-noise innovations. Drawn from a [`SimRng`] owned by the
//!    running simulation.
//!
//! Gaussian variates are produced with the Box–Muller transform
//! implemented here on top of the workspace's hermetic
//! [`trng_testkit::prng`] generator (no external crates). An opt-in
//! *batched* mode replaces Box–Muller with a 256-layer ziggurat
//! served from bulk-filled word blocks — statistically identical,
//! roughly an order of magnitude cheaper per variate, but a different
//! draw sequence (see [`SimRng::enable_batched_normals`]).

use std::sync::OnceLock;

use trng_testkit::prng::StdRng;
use trng_testkit::prng::{Rng, RngCore, SeedableRng, Xoshiro256ppX4};

/// Ziggurat right-most layer boundary for the standard normal
/// (256 layers; Marsaglia–Tsang / Doornik constant).
const ZIG_R: f64 = 3.654_152_885_361_009;
/// Common layer area for the 256-layer normal ziggurat.
const ZIG_V: f64 = 0.00492867323399;

/// Ziggurat lookup tables: layer boundaries `x[i]` (decreasing,
/// `x[0] = V / f(R)` oversized to fold the tail into layer 0) and the
/// density evaluated there, `f[i] = exp(-x[i]^2 / 2)`.
struct ZigTables {
    x: [f64; 257],
    f: [f64; 257],
}

fn zig_tables() -> &'static ZigTables {
    static TABLES: OnceLock<ZigTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let pdf = |t: f64| (-t * t / 2.0).exp();
        // Equal-area recurrence: V = x[i] * (f(x[i+1]) - f(x[i])).
        // It is exponentially sensitive near x -> 0 (the per-step
        // error amplification is 1 + V/(x^3 f)), so the 12-digit
        // published V cannot be plugged in directly; instead bisect V
        // until the walk closes exactly at layer 255. Returns the
        // first layer whose area step crosses the density peak, or
        // 256 if the walk never closes (V too small).
        let walk = |v: f64, x: &mut [f64; 257]| -> usize {
            x[0] = v / pdf(ZIG_R);
            x[1] = ZIG_R;
            for i in 1..256 {
                let y = v / x[i] + pdf(x[i]);
                if y >= 1.0 {
                    for slot in x.iter_mut().skip(i + 1) {
                        *slot = 0.0;
                    }
                    return i;
                }
                x[i + 1] = (-2.0 * y.ln()).sqrt();
            }
            256
        };
        let mut x = [0.0f64; 257];
        let mut lo = ZIG_V * 0.999; // closes too late (too small)
        let mut hi = ZIG_V * 1.001; // closes too early (too big)
        loop {
            let mid = 0.5 * (lo + hi);
            if mid <= lo || mid >= hi {
                break;
            }
            if walk(mid, &mut x) <= 255 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let hit = walk(hi, &mut x);
        assert_eq!(hit, 255, "ziggurat area walk failed to close");
        x[256] = 0.0;
        let mut f = [0.0f64; 257];
        for i in 0..257 {
            f[i] = pdf(x[i]);
        }
        ZigTables { x, f }
    })
}

/// Maps a raw word to a uniform in `[0, 1)` (top 53 bits).
#[inline]
fn word_to_unit(w: u64) -> f64 {
    (w >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps a raw word to a uniform in the *open* interval `(0, 1)`.
#[inline]
fn word_to_open01(w: u64) -> f64 {
    ((w >> 12) as f64 + 0.5) * (1.0 / (1u64 << 52) as f64)
}

/// Exact normal tail beyond `ZIG_R` (Marsaglia's exponential wrap).
fn ziggurat_tail(words: &mut impl FnMut() -> u64, negative: bool) -> f64 {
    loop {
        let x = word_to_open01(words()).ln() / ZIG_R; // <= 0
        let y = word_to_open01(words()).ln(); // <= 0
        if -2.0 * y >= x * x {
            return if negative { x - ZIG_R } else { ZIG_R - x };
        }
    }
}

/// Bulk ziggurat: fills `out` with standard normals straight from the
/// word stream, with the layer tables hoisted out of the per-draw path
/// and no intermediate variate buffer.
///
/// `words`/`wpos` form the resumable bulk word stream ([`WORD_BLOCK`]
/// words refilled at a time from the four interleaved xoshiro lanes,
/// which beat a single stream's serial state-update latency).
fn ziggurat_fill(lanes: &mut Xoshiro256ppX4, words: &mut [u64], wpos: &mut usize, out: &mut [f64]) {
    let t = zig_tables();
    let mut wp = *wpos;
    // Phase 1: one word per slot, branch-predictable accept test.
    // ~97.5 % of draws land strictly inside their layer and are done;
    // the rest carry their word to phase 2, so the hot loop has no
    // data-dependent control flow beyond a rarely taken push.
    let mut rejects: Vec<(u32, u64)> = Vec::new();
    let mut k = 0usize;
    while k < out.len() {
        if wp == words.len() {
            lanes.fill_u64s(words);
            wp = 0;
        }
        let take = (words.len() - wp).min(out.len() - k);
        let chunk = &words[wp..wp + take];
        for (j, (slot, &bits)) in out[k..k + take].iter_mut().zip(chunk).enumerate() {
            let i = (bits & 0xff) as usize;
            let u = (bits >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0;
            let x = u * t.x[i];
            *slot = x;
            if x.abs() >= t.x[i + 1] {
                rejects.push(((k + j) as u32, bits));
            }
        }
        wp += take;
        k += take;
    }
    // Phase 2: wedge / tail resolution, *resuming* each rejected draw
    // from its saved word (the wedge acceptance must see the same
    // rejected candidate — a fresh redraw would lose the wedge mass
    // and skew the distribution). Follow-up words come from the
    // resumable stream where phase 1 stopped; reordering word
    // consumption across i.i.d. words leaves every draw exact.
    macro_rules! next_word {
        () => {{
            if wp == words.len() {
                lanes.fill_u64s(words);
                wp = 0;
            }
            let w = words[wp];
            wp += 1;
            w
        }};
    }
    for &(slot, first_bits) in &rejects {
        let mut bits = first_bits;
        out[slot as usize] = loop {
            let i = (bits & 0xff) as usize;
            let u = (bits >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0;
            let x = u * t.x[i];
            // False on the first pass by construction; the recompute
            // costs nothing measurable at a ~2.5 % reject rate.
            if x.abs() < t.x[i + 1] {
                break x;
            }
            if i == 0 {
                break ziggurat_tail(&mut || next_word!(), u < 0.0);
            }
            let w = word_to_unit(next_word!());
            if t.f[i + 1] + (t.f[i] - t.f[i + 1]) * w < (-x * x / 2.0).exp() {
                break x;
            }
            bits = next_word!();
        };
    }
    *wpos = wp;
}

/// Number of standard normals synthesised per batched refill.
const NORMAL_BLOCK: usize = 1024;
/// Number of raw words bulk-filled per [`RngCore::fill_u64s`] call.
const WORD_BLOCK: usize = 1024;

/// Block state for batched-normal mode: a buffer of ready variates
/// plus the bulk word stream that feeds the ziggurat.
#[derive(Debug, Clone)]
struct BatchNormals {
    normals: Vec<f64>,
    pos: usize,
    words: Vec<u64>,
    wpos: usize,
    /// Four interleaved xoshiro lanes feeding the word stream, seeded
    /// from the owning generator when batched mode is enabled.
    lanes: Xoshiro256ppX4,
}

impl BatchNormals {
    fn new(seeder: &mut StdRng) -> Self {
        BatchNormals {
            normals: Vec::with_capacity(NORMAL_BLOCK),
            pos: 0,
            words: vec![0u64; WORD_BLOCK],
            wpos: WORD_BLOCK,
            lanes: Xoshiro256ppX4::seed_from_u64(seeder.next_u64()),
        }
    }

    /// Refills the normal buffer from bulk lane output.
    fn refill(&mut self) {
        self.normals.resize(NORMAL_BLOCK, 0.0);
        self.pos = 0;
        ziggurat_fill(
            &mut self.lanes,
            &mut self.words,
            &mut self.wpos,
            &mut self.normals,
        );
    }
}

/// The pseudo-random generator used for all run-time simulation noise.
///
/// Wraps a seeded [`StdRng`] and adds Gaussian sampling. Every
/// stochastic experiment in this repository takes a seed, making runs
/// exactly reproducible.
///
/// # Examples
///
/// ```
/// use trng_fpga_sim::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.gaussian(0.0, 1.0), b.gaussian(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    /// Cached second Box–Muller variate (standard normal).
    spare: Option<f64>,
    /// Block ziggurat state; `Some` switches normal draws to the
    /// batched backend (different draw sequence, same distribution).
    batched: Option<Box<BatchNormals>>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            spare: None,
            batched: None,
        }
    }

    /// Creates a generator seeded from operating-system entropy.
    ///
    /// Use only for exploratory runs; experiments should use
    /// [`SimRng::seed_from`] for reproducibility.
    pub fn from_os_entropy() -> Self {
        SimRng {
            inner: StdRng::from_entropy(),
            spare: None,
            batched: None,
        }
    }

    /// Switches normal draws to the batched block-ziggurat backend.
    ///
    /// Batched normals are *statistically* identical to the scalar
    /// Box–Muller stream but are not draw-identical: the ziggurat
    /// consumes bulk words from four interleaved xoshiro lanes
    /// ([`Xoshiro256ppX4`], seeded once from this generator) with a
    /// different word count per variate, so replay contracts pinned to
    /// the scalar sequence do not hold. `uniform`/`bernoulli`/
    /// `next_u64` are unaffected and keep drawing directly from the
    /// underlying generator.
    pub fn enable_batched_normals(&mut self) {
        if self.batched.is_none() {
            self.spare = None;
            self.batched = Some(Box::new(BatchNormals::new(&mut self.inner)));
        }
    }

    /// Whether normal draws use the batched ziggurat backend.
    pub fn batched_normals(&self) -> bool {
        self.batched.is_some()
    }

    /// Fills `out` with standard-normal variates.
    ///
    /// In batched mode this drains the block buffer (refilling it
    /// wholesale from bulk word output); otherwise it falls back to
    /// repeated scalar draws.
    pub fn fill_standard_normals(&mut self, out: &mut [f64]) {
        if let Some(b) = &mut self.batched {
            // Always drain whole [`NORMAL_BLOCK`] refills: the stream
            // is defined by fixed-size blocks, so any mix of bulk and
            // scalar draws sees the identical variate sequence.
            let mut k = 0;
            while k < out.len() {
                if b.pos == b.normals.len() {
                    b.refill();
                }
                let take = (b.normals.len() - b.pos).min(out.len() - k);
                out[k..k + take].copy_from_slice(&b.normals[b.pos..b.pos + take]);
                b.pos += take;
                k += take;
            }
        } else {
            for slot in out {
                *slot = self.standard_normal();
            }
        }
    }

    /// Draws a standard-normal variate.
    ///
    /// Scalar mode uses the Box–Muller transform; batched mode (see
    /// [`SimRng::enable_batched_normals`]) serves from the block
    /// ziggurat buffer.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(b) = &mut self.batched {
            if b.pos == b.normals.len() {
                b.refill();
            }
            let z = b.normals[b.pos];
            b.pos += 1;
            return z;
        }
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller: two uniforms -> two independent normals.
        // Guard against log(0) by drawing u1 from the half-open (0, 1].
        let u1: f64 = 1.0 - self.inner.gen::<f64>();
        let u2: f64 = self.inner.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * core::f64::consts::PI * u2;
        let (sin, cos) = theta.sin_cos();
        self.spare = Some(r * sin);
        r * cos
    }

    /// Draws a normal variate with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn gaussian(&mut self, mean: f64, sigma: f64) -> f64 {
        assert!(
            sigma >= 0.0 && sigma.is_finite(),
            "sigma must be finite and non-negative, got {sigma}"
        );
        mean + sigma * self.standard_normal()
    }

    /// Draws a uniform variate in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Draws `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.inner.gen::<f64>() < p.clamp(0.0, 1.0)
    }

    /// Forks an independent generator, advancing this one.
    ///
    /// Useful to give each subsystem (e.g. each ring oscillator in a
    /// differential measurement) its own stream without correlated
    /// draws. The child inherits the batched-normal mode (with a
    /// fresh, empty block buffer).
    pub fn fork(&mut self) -> SimRng {
        let mut child = SimRng::seed_from(self.inner.next_u64());
        if self.batched.is_some() {
            child.enable_batched_normals();
        }
        child
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }
}

/// A tiny, fast, deterministic 64-bit mixer (SplitMix64 finalizer).
///
/// Used to derive per-site process-variation streams from a device
/// seed plus site coordinates without constructing a full RNG per
/// site. The output is a high-quality 64-bit hash of the input.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a 64-bit hash to a uniform `f64` in `[0, 1)`.
#[inline]
pub fn hash_to_unit(h: u64) -> f64 {
    // Take the top 53 bits for a full-precision mantissa.
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps two 64-bit hashes to a standard-normal variate (Box–Muller).
#[inline]
pub fn hash_to_standard_normal(h1: u64, h2: u64) -> f64 {
    let u1 = 1.0 - hash_to_unit(h1); // (0, 1]
    let u2 = hash_to_unit(h2);
    (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.standard_normal(), b.standard_normal());
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = SimRng::seed_from(123);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        // 5-sigma tolerances: se(mean) = 2/sqrt(n) ~ 0.0045.
        assert!((mean - 3.0).abs() < 0.025, "mean {mean}");
        assert!((var - 4.0).abs() < 0.12, "var {var}");
    }

    #[test]
    fn gaussian_tail_fractions() {
        let mut rng = SimRng::seed_from(99);
        let n = 100_000;
        let beyond_2sigma =
            (0..n).filter(|_| rng.standard_normal().abs() > 2.0).count() as f64 / n as f64;
        // Expected 4.55%; binomial se ~ 0.066% -> 5 sigma ~ 0.33%.
        assert!((beyond_2sigma - 0.0455).abs() < 0.0040, "{beyond_2sigma}");
    }

    #[test]
    #[should_panic(expected = "sigma must be finite")]
    fn gaussian_rejects_negative_sigma() {
        let mut rng = SimRng::seed_from(0);
        let _ = rng.gaussian(0.0, -1.0);
    }

    #[test]
    fn bernoulli_respects_probability() {
        let mut rng = SimRng::seed_from(5);
        let n = 100_000;
        let ones = (0..n).filter(|_| rng.bernoulli(0.25)).count() as f64 / n as f64;
        assert!((ones - 0.25).abs() < 0.01, "{ones}");
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
    }

    #[test]
    fn forked_streams_are_decorrelated() {
        let mut parent = SimRng::seed_from(11);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        // Unit mapping stays in range.
        for i in 0..1000u64 {
            let u = hash_to_unit(splitmix64(i));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ziggurat_tables_close_at_zero() {
        // The equal-area recurrence must close at the last layer: the
        // top strip spans [0, x[255]] with area V = x * (1 - f(x)),
        // whose root is (2V)^(1/3) ~ 0.2152 plus higher-order terms.
        let t = zig_tables();
        assert!((t.x[255] - 0.2152).abs() < 5e-4, "x[255] = {}", t.x[255]);
        assert_eq!(t.x[256], 0.0);
        for i in 0..256 {
            assert!(t.x[i] > t.x[i + 1], "x not strictly decreasing at {i}");
        }
        assert!((t.f[256] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batched_mode_is_reproducible_and_differs_from_scalar() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        a.enable_batched_normals();
        b.enable_batched_normals();
        assert!(a.batched_normals());
        let scalar: Vec<f64> = {
            let mut s = SimRng::seed_from(7);
            (0..64).map(|_| s.standard_normal()).collect()
        };
        let batched: Vec<f64> = (0..64).map(|_| a.standard_normal()).collect();
        let batched2: Vec<f64> = (0..64).map(|_| b.standard_normal()).collect();
        assert_eq!(batched, batched2, "batched stream not reproducible");
        assert_ne!(
            batched, scalar,
            "batched should be a different draw sequence"
        );
    }

    #[test]
    fn batched_moments_match_the_normal_distribution() {
        let mut rng = SimRng::seed_from(123);
        rng.enable_batched_normals();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        assert!((mean - 3.0).abs() < 0.025, "mean {mean}");
        assert!((var - 4.0).abs() < 0.12, "var {var}");
    }

    #[test]
    fn batched_tail_fractions() {
        let mut rng = SimRng::seed_from(99);
        rng.enable_batched_normals();
        let n = 200_000;
        let beyond_2sigma =
            (0..n).filter(|_| rng.standard_normal().abs() > 2.0).count() as f64 / n as f64;
        assert!((beyond_2sigma - 0.0455).abs() < 0.0040, "{beyond_2sigma}");
        // Deep tail: P(|Z| > 3.6541) ~ 2.58e-4 exercises the layer-0
        // exponential-wrap path.
        let mut rng = SimRng::seed_from(2024);
        rng.enable_batched_normals();
        let n = 2_000_000;
        let beyond_r = (0..n)
            .filter(|_| rng.standard_normal().abs() > ZIG_R)
            .count() as f64
            / n as f64;
        assert!(
            (beyond_r - 2.58e-4).abs() < 1.2e-4,
            "tail fraction {beyond_r}"
        );
    }

    #[test]
    fn fill_standard_normals_matches_scalar_draw_loop() {
        // Bulk fill and repeated draws must be the same stream within
        // a mode (the bulk API is just a drain).
        for enable in [false, true] {
            let mut a = SimRng::seed_from(31);
            let mut b = SimRng::seed_from(31);
            if enable {
                a.enable_batched_normals();
                b.enable_batched_normals();
            }
            let mut buf = vec![0.0f64; 300];
            a.fill_standard_normals(&mut buf);
            let scalar: Vec<f64> = (0..300).map(|_| b.standard_normal()).collect();
            assert_eq!(buf, scalar, "mode batched={enable}");
        }
    }

    #[test]
    fn fork_propagates_batched_mode() {
        let mut parent = SimRng::seed_from(11);
        parent.enable_batched_normals();
        let child = parent.fork();
        assert!(child.batched_normals());
        let scalar_child = SimRng::seed_from(11).fork();
        assert!(!scalar_child.batched_normals());
    }

    #[test]
    fn hashed_normals_have_unit_variance() {
        let n = 100_000u64;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for i in 0..n {
            let z = hash_to_standard_normal(splitmix64(2 * i), splitmix64(2 * i + 1));
            sum += z;
            sum2 += z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
