//! Randomness plumbing for the simulator.
//!
//! Two independent kinds of randomness exist in the simulation:
//!
//! 1. **Process variation** — frozen at "fabrication" time. Derived
//!    deterministically from a [`DeviceSeed`](crate::process::DeviceSeed)
//!    so that the same device always has the same per-LUT delays and
//!    per-bin TDC widths.
//! 2. **Run-time noise** — thermal jitter, metastability resolution,
//!    flicker-noise innovations. Drawn from a [`SimRng`] owned by the
//!    running simulation.
//!
//! Gaussian variates are produced with the Box–Muller transform
//! implemented here on top of the workspace's hermetic
//! [`trng_testkit::prng`] generator (no external crates).

use trng_testkit::prng::StdRng;
use trng_testkit::prng::{Rng, RngCore, SeedableRng};

/// The pseudo-random generator used for all run-time simulation noise.
///
/// Wraps a seeded [`StdRng`] and adds Gaussian sampling. Every
/// stochastic experiment in this repository takes a seed, making runs
/// exactly reproducible.
///
/// # Examples
///
/// ```
/// use trng_fpga_sim::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.gaussian(0.0, 1.0), b.gaussian(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    /// Cached second Box–Muller variate (standard normal).
    spare: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Creates a generator seeded from operating-system entropy.
    ///
    /// Use only for exploratory runs; experiments should use
    /// [`SimRng::seed_from`] for reproducibility.
    pub fn from_os_entropy() -> Self {
        SimRng {
            inner: StdRng::from_entropy(),
            spare: None,
        }
    }

    /// Draws a standard-normal variate via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller: two uniforms -> two independent normals.
        // Guard against log(0) by drawing u1 from the half-open (0, 1].
        let u1: f64 = 1.0 - self.inner.gen::<f64>();
        let u2: f64 = self.inner.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * core::f64::consts::PI * u2;
        let (sin, cos) = theta.sin_cos();
        self.spare = Some(r * sin);
        r * cos
    }

    /// Draws a normal variate with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn gaussian(&mut self, mean: f64, sigma: f64) -> f64 {
        assert!(
            sigma >= 0.0 && sigma.is_finite(),
            "sigma must be finite and non-negative, got {sigma}"
        );
        mean + sigma * self.standard_normal()
    }

    /// Draws a uniform variate in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Draws `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.inner.gen::<f64>() < p.clamp(0.0, 1.0)
    }

    /// Forks an independent generator, advancing this one.
    ///
    /// Useful to give each subsystem (e.g. each ring oscillator in a
    /// differential measurement) its own stream without correlated
    /// draws.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.inner.next_u64())
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }
}

/// A tiny, fast, deterministic 64-bit mixer (SplitMix64 finalizer).
///
/// Used to derive per-site process-variation streams from a device
/// seed plus site coordinates without constructing a full RNG per
/// site. The output is a high-quality 64-bit hash of the input.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a 64-bit hash to a uniform `f64` in `[0, 1)`.
#[inline]
pub fn hash_to_unit(h: u64) -> f64 {
    // Take the top 53 bits for a full-precision mantissa.
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps two 64-bit hashes to a standard-normal variate (Box–Muller).
#[inline]
pub fn hash_to_standard_normal(h1: u64, h2: u64) -> f64 {
    let u1 = 1.0 - hash_to_unit(h1); // (0, 1]
    let u2 = hash_to_unit(h2);
    (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.standard_normal(), b.standard_normal());
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = SimRng::seed_from(123);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        // 5-sigma tolerances: se(mean) = 2/sqrt(n) ~ 0.0045.
        assert!((mean - 3.0).abs() < 0.025, "mean {mean}");
        assert!((var - 4.0).abs() < 0.12, "var {var}");
    }

    #[test]
    fn gaussian_tail_fractions() {
        let mut rng = SimRng::seed_from(99);
        let n = 100_000;
        let beyond_2sigma =
            (0..n).filter(|_| rng.standard_normal().abs() > 2.0).count() as f64 / n as f64;
        // Expected 4.55%; binomial se ~ 0.066% -> 5 sigma ~ 0.33%.
        assert!((beyond_2sigma - 0.0455).abs() < 0.0040, "{beyond_2sigma}");
    }

    #[test]
    #[should_panic(expected = "sigma must be finite")]
    fn gaussian_rejects_negative_sigma() {
        let mut rng = SimRng::seed_from(0);
        let _ = rng.gaussian(0.0, -1.0);
    }

    #[test]
    fn bernoulli_respects_probability() {
        let mut rng = SimRng::seed_from(5);
        let n = 100_000;
        let ones = (0..n).filter(|_| rng.bernoulli(0.25)).count() as f64 / n as f64;
        assert!((ones - 0.25).abs() < 0.01, "{ones}");
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
    }

    #[test]
    fn forked_streams_are_decorrelated() {
        let mut parent = SimRng::seed_from(11);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        // Unit mapping stays in range.
        for i in 0..1000u64 {
            let u = hash_to_unit(splitmix64(i));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn hashed_normals_have_unit_variance() {
        let n = 100_000u64;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for i in 0..n {
            let z = hash_to_standard_normal(splitmix64(2 * i), splitmix64(2 * i + 1));
            sum += z;
            sum2 += z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
