//! Simulation time as picoseconds.
//!
//! All timing in the simulator is expressed in picoseconds through the
//! [`Ps`] newtype. Sub-picosecond resolution matters (thermal jitter is
//! ~2 ps, TDC bins are ~17 ps), while accumulation times reach
//! milliseconds for the elementary-TRNG comparison, so `f64` is used as
//! the backing representation: at 1 ms (10^9 ps) the representable
//! resolution is still ~10^-7 ps, far below any physical effect we
//! model.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub, SubAssign};

/// A signed duration or absolute simulation time in picoseconds.
///
/// `Ps` is a thin wrapper over `f64` providing unit safety: delays,
/// jitter magnitudes and sampling instants cannot be accidentally mixed
/// with unit-less quantities.
///
/// # Examples
///
/// ```
/// use trng_fpga_sim::time::Ps;
///
/// let lut_delay = Ps::from_ps(480.0);
/// let accumulation = Ps::from_ns(10.0);
/// assert_eq!(accumulation / lut_delay, 10_000.0 / 480.0);
/// assert_eq!((lut_delay * 2.0).as_ps(), 960.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Ps(f64);

impl Ps {
    /// Zero duration.
    pub const ZERO: Ps = Ps(0.0);

    /// Creates a time value from picoseconds.
    #[inline]
    pub const fn from_ps(ps: f64) -> Self {
        Ps(ps)
    }

    /// Creates a time value from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: f64) -> Self {
        Ps(ns * 1e3)
    }

    /// Creates a time value from microseconds.
    #[inline]
    pub const fn from_us(us: f64) -> Self {
        Ps(us * 1e6)
    }

    /// Creates a time value from milliseconds.
    #[inline]
    pub const fn from_ms(ms: f64) -> Self {
        Ps(ms * 1e9)
    }

    /// Creates a time value from seconds.
    #[inline]
    pub const fn from_s(s: f64) -> Self {
        Ps(s * 1e12)
    }

    /// Returns the raw picosecond value.
    #[inline]
    pub const fn as_ps(self) -> f64 {
        self.0
    }

    /// Returns the value in nanoseconds.
    #[inline]
    pub const fn as_ns(self) -> f64 {
        self.0 / 1e3
    }

    /// Returns the value in microseconds.
    #[inline]
    pub const fn as_us(self) -> f64 {
        self.0 / 1e6
    }

    /// Returns the value in seconds.
    #[inline]
    pub const fn as_s(self) -> f64 {
        self.0 / 1e12
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Ps {
        Ps(self.0.abs())
    }

    /// Returns the smaller of two times.
    #[inline]
    pub fn min(self, other: Ps) -> Ps {
        Ps(self.0.min(other.0))
    }

    /// Returns the larger of two times.
    #[inline]
    pub fn max(self, other: Ps) -> Ps {
        Ps(self.0.max(other.0))
    }

    /// `true` if the value is finite (not NaN or infinite).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Euclidean remainder: the result is always in `[0, modulus)`.
    ///
    /// Used to reduce a phase offset into a single TDC bin or ring
    /// period, e.g. equation (2) of the paper reduces the sampling
    /// offset modulo `tstep`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is not strictly positive.
    #[inline]
    pub fn rem_euclid(self, modulus: Ps) -> Ps {
        assert!(modulus.0 > 0.0, "modulus must be positive");
        Ps(self.0.rem_euclid(modulus.0))
    }
}

impl fmt::Display for Ps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let abs = self.0.abs();
        if abs >= 1e12 {
            write!(f, "{:.4} s", self.0 / 1e12)
        } else if abs >= 1e9 {
            write!(f, "{:.4} ms", self.0 / 1e9)
        } else if abs >= 1e6 {
            write!(f, "{:.4} us", self.0 / 1e6)
        } else if abs >= 1e3 {
            write!(f, "{:.4} ns", self.0 / 1e3)
        } else {
            write!(f, "{:.4} ps", self.0)
        }
    }
}

impl Add for Ps {
    type Output = Ps;
    #[inline]
    fn add(self, rhs: Ps) -> Ps {
        Ps(self.0 + rhs.0)
    }
}

impl AddAssign for Ps {
    #[inline]
    fn add_assign(&mut self, rhs: Ps) {
        self.0 += rhs.0;
    }
}

impl Sub for Ps {
    type Output = Ps;
    #[inline]
    fn sub(self, rhs: Ps) -> Ps {
        Ps(self.0 - rhs.0)
    }
}

impl SubAssign for Ps {
    #[inline]
    fn sub_assign(&mut self, rhs: Ps) {
        self.0 -= rhs.0;
    }
}

impl Neg for Ps {
    type Output = Ps;
    #[inline]
    fn neg(self) -> Ps {
        Ps(-self.0)
    }
}

impl Mul<f64> for Ps {
    type Output = Ps;
    #[inline]
    fn mul(self, rhs: f64) -> Ps {
        Ps(self.0 * rhs)
    }
}

impl Mul<Ps> for f64 {
    type Output = Ps;
    #[inline]
    fn mul(self, rhs: Ps) -> Ps {
        Ps(self * rhs.0)
    }
}

impl Div<f64> for Ps {
    type Output = Ps;
    #[inline]
    fn div(self, rhs: f64) -> Ps {
        Ps(self.0 / rhs)
    }
}

/// Dividing two times yields a dimensionless ratio.
impl Div<Ps> for Ps {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Ps) -> f64 {
        self.0 / rhs.0
    }
}

impl Rem<Ps> for Ps {
    type Output = Ps;
    #[inline]
    fn rem(self, rhs: Ps) -> Ps {
        Ps(self.0 % rhs.0)
    }
}

impl Sum for Ps {
    fn sum<I: Iterator<Item = Ps>>(iter: I) -> Ps {
        Ps(iter.map(|p| p.0).sum())
    }
}

impl From<Ps> for f64 {
    #[inline]
    fn from(value: Ps) -> f64 {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_are_consistent() {
        assert_eq!(Ps::from_ns(1.0).as_ps(), 1e3);
        assert_eq!(Ps::from_us(1.0).as_ps(), 1e6);
        assert_eq!(Ps::from_ms(1.0).as_ps(), 1e9);
        assert_eq!(Ps::from_s(1.0).as_ps(), 1e12);
        assert_eq!(Ps::from_ps(250.0).as_ns(), 0.25);
        assert_eq!(Ps::from_ms(2.0).as_us(), 2e3);
        assert_eq!(Ps::from_s(3.0).as_s(), 3.0);
    }

    #[test]
    fn arithmetic_behaves_like_f64() {
        let a = Ps::from_ps(100.0);
        let b = Ps::from_ps(30.0);
        assert_eq!((a + b).as_ps(), 130.0);
        assert_eq!((a - b).as_ps(), 70.0);
        assert_eq!((a * 2.0).as_ps(), 200.0);
        assert_eq!((2.0 * a).as_ps(), 200.0);
        assert_eq!((a / 4.0).as_ps(), 25.0);
        assert_eq!(a / b, 100.0 / 30.0);
        assert_eq!((-a).as_ps(), -100.0);
        assert_eq!((a % b).as_ps(), 10.0);
    }

    #[test]
    fn assign_ops() {
        let mut t = Ps::from_ps(5.0);
        t += Ps::from_ps(2.0);
        assert_eq!(t.as_ps(), 7.0);
        t -= Ps::from_ps(10.0);
        assert_eq!(t.as_ps(), -3.0);
        assert_eq!(t.abs().as_ps(), 3.0);
    }

    #[test]
    fn min_max_sum() {
        let a = Ps::from_ps(1.0);
        let b = Ps::from_ps(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let total: Ps = [a, b, Ps::from_ps(3.0)].into_iter().sum();
        assert_eq!(total.as_ps(), 6.0);
    }

    #[test]
    fn rem_euclid_is_always_non_negative() {
        let m = Ps::from_ps(17.0);
        assert!((Ps::from_ps(-5.0).rem_euclid(m).as_ps() - 12.0).abs() < 1e-12);
        assert!((Ps::from_ps(40.0).rem_euclid(m).as_ps() - 6.0).abs() < 1e-12);
        assert_eq!(Ps::from_ps(0.0).rem_euclid(m), Ps::ZERO);
    }

    #[test]
    #[should_panic(expected = "modulus must be positive")]
    fn rem_euclid_rejects_non_positive_modulus() {
        let _ = Ps::from_ps(1.0).rem_euclid(Ps::ZERO);
    }

    #[test]
    fn display_picks_a_readable_unit() {
        assert_eq!(format!("{}", Ps::from_ps(17.0)), "17.0000 ps");
        assert_eq!(format!("{}", Ps::from_ns(2.88)), "2.8800 ns");
        assert_eq!(format!("{}", Ps::from_us(1.5)), "1.5000 us");
        assert_eq!(format!("{}", Ps::from_ms(1.0)), "1.0000 ms");
        assert_eq!(format!("{}", Ps::from_s(2.0)), "2.0000 s");
    }

    #[test]
    fn ordering() {
        assert!(Ps::from_ps(1.0) < Ps::from_ps(2.0));
        assert!(Ps::from_ns(1.0) > Ps::from_ps(999.0));
    }
}
