//! Fast tapped delay line — the time-to-digital converter.
//!
//! Figure 3 of the paper: a chain of fast buffers (carry-chain stages)
//! with a flip-flop on every tap. On the sampling clock edge, tap `j`
//! has seen the input signal as it was `D_j` earlier, where `D_j` is
//! the accumulated chain delay to that tap, so the captured word is a
//! time-reversed snapshot of the input waveform with ~`tstep`
//! resolution.
//!
//! Non-idealities modelled (all frozen per device):
//!
//! * bin widths vary — CARRY4 structural DNL + process variation
//!   ([`Carry4`]);
//! * capture flip-flops in different slices see slightly different
//!   clock arrival times; crossing a 16-row clock-region boundary adds
//!   a step of several ps ([`Fabric::clock_skew`]) — the dominant
//!   non-linearity per Menninga et al. \[6\];
//! * flip-flops go metastable near edges, producing bubbles
//!   ([`CaptureFf`]).

use crate::edge_train::{EdgeCursor, EdgeTrain, SignalSource};
use crate::fabric::{Fabric, SliceCoord};
use crate::primitives::{CaptureFf, Carry4, CARRY4_BINS};
use crate::process::{DeviceSeed, ProcessVariation};
use crate::rng::SimRng;
use crate::time::Ps;

/// A placed tapped delay line with `m` capture taps.
///
/// # Examples
///
/// ```
/// use trng_fpga_sim::delay_line::TappedDelayLine;
/// use trng_fpga_sim::edge_train::EdgeTrain;
/// use trng_fpga_sim::rng::SimRng;
/// use trng_fpga_sim::time::Ps;
///
/// let line = TappedDelayLine::ideal(36, Ps::from_ps(17.0));
/// let mut signal = EdgeTrain::new(false, Ps::ZERO);
/// signal.push(Ps::from_ps(700.0)); // rising edge
/// let mut rng = SimRng::seed_from(0);
/// // Sample at t=1000: taps looking back more than 300 ps see 'false'.
/// let word = line.sample(&signal, Ps::from_ps(1000.0), &mut rng);
/// assert_eq!(word.len(), 36);
/// assert!(word[0]);          // looks back 17 ps -> after the edge
/// assert!(!word[35]);        // looks back 612 ps -> before the edge
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TappedDelayLine {
    bin_widths: Vec<Ps>,
    /// `cum_delay[j] = w_0 + ... + w_j`: look-back of tap `j`.
    cum_delay: Vec<Ps>,
    /// Per-tap capture-clock arrival offset.
    capture_skew: Vec<Ps>,
    /// Mean bin width, cached at construction (`total_delay / m`).
    mean_width: Ps,
    ff: CaptureFf,
}

impl TappedDelayLine {
    /// An ideal line: `m` equal bins of `tstep`, zero skew, ideal FFs.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `tstep` is not strictly positive.
    pub fn ideal(m: usize, tstep: Ps) -> Self {
        assert!(m > 0, "delay line needs at least one tap");
        assert!(tstep.as_ps() > 0.0, "tstep must be positive, got {tstep}");
        Self::from_bins(vec![tstep; m], vec![Ps::ZERO; m], CaptureFf::ideal())
    }

    /// Builds a line from explicit bin widths, skews and FF model.
    ///
    /// # Panics
    ///
    /// Panics if the vectors are empty, have mismatched lengths, or any
    /// width is non-positive.
    pub fn from_bins(bin_widths: Vec<Ps>, capture_skew: Vec<Ps>, ff: CaptureFf) -> Self {
        assert!(!bin_widths.is_empty(), "delay line needs at least one tap");
        assert_eq!(
            bin_widths.len(),
            capture_skew.len(),
            "bin widths and skews must have equal length"
        );
        let mut cum = Vec::with_capacity(bin_widths.len());
        let mut acc = Ps::ZERO;
        for &w in &bin_widths {
            assert!(w.as_ps() > 0.0, "bin width must be positive, got {w}");
            acc += w;
            cum.push(acc);
        }
        let mean_width = acc / bin_widths.len() as f64;
        TappedDelayLine {
            bin_widths,
            cum_delay: cum,
            capture_skew,
            mean_width,
            ff,
        }
    }

    /// Builds a chain of `num_carry4` CARRY4 primitives in `column`
    /// starting at `first_row`, with per-slice clock skew from the
    /// fabric model and the given flip-flop model.
    ///
    /// # Panics
    ///
    /// Panics if `num_carry4 == 0` or `tstep` is not positive.
    #[allow(clippy::too_many_arguments)] // mirrors the physical parameter list
    pub fn placed(
        tstep: Ps,
        device: DeviceSeed,
        variation: &ProcessVariation,
        fabric: &Fabric,
        column: u32,
        first_row: u32,
        num_carry4: u32,
        ff: CaptureFf,
    ) -> Self {
        assert!(num_carry4 > 0, "delay line needs at least one CARRY4");
        let m = num_carry4 as usize * CARRY4_BINS;
        let mut widths = Vec::with_capacity(m);
        let mut skews = Vec::with_capacity(m);
        for c in 0..num_carry4 {
            let row = first_row + c;
            let c4 = Carry4::placed(tstep, device, variation, u64::from(column), u64::from(row));
            let slice_skew = fabric.clock_skew(device, variation, SliceCoord::new(column, row));
            for w in c4.bin_widths() {
                widths.push(w);
                skews.push(slice_skew);
            }
        }
        Self::from_bins(widths, skews, ff)
    }

    /// Number of taps `m`.
    pub fn len(&self) -> usize {
        self.bin_widths.len()
    }

    /// `true` if the line has no taps (never: constructors forbid it).
    pub fn is_empty(&self) -> bool {
        self.bin_widths.is_empty()
    }

    /// Width of bin `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn bin_width(&self, j: usize) -> Ps {
        self.bin_widths[j]
    }

    /// All bin widths.
    pub fn bin_widths(&self) -> &[Ps] {
        &self.bin_widths
    }

    /// Mean bin width (the effective `tstep`), cached at construction.
    pub fn mean_bin_width(&self) -> Ps {
        self.mean_width
    }

    /// Total propagation delay of the chain (`D_m`): the observation
    /// window. The paper requires `m · tstep > d0` so an edge is always
    /// captured.
    pub fn total_delay(&self) -> Ps {
        self.cum_delay[self.len() - 1]
    }

    /// Differential non-linearity of bin `j` in LSB units:
    /// `w_j / mean(w) − 1`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn dnl(&self, j: usize) -> f64 {
        self.bin_widths[j] / self.mean_bin_width() - 1.0
    }

    /// Cumulative tap delays `D_j` (crate-internal, for the batched
    /// engine's offset precomputation).
    pub(crate) fn cum_delays(&self) -> &[Ps] {
        &self.cum_delay
    }

    /// Per-tap capture-clock skews (crate-internal, for the batched
    /// engine).
    pub(crate) fn capture_skews(&self) -> &[Ps] {
        &self.capture_skew
    }

    /// The capture flip-flop model (crate-internal, for the batched
    /// engine's metastability port).
    pub(crate) fn capture_ff(&self) -> &CaptureFf {
        &self.ff
    }

    /// The effective observation instant of tap `j` for a sample taken
    /// at `t_sample`: `t_sample + skew_j − D_j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn tap_instant(&self, t_sample: Ps, j: usize) -> Ps {
        t_sample + self.capture_skew[j] - self.cum_delay[j]
    }

    /// Captures the signal into all `m` flip-flops at clock edge
    /// `t_sample`, returning the raw word (tap 0 first — the tap
    /// closest in time to the clock edge).
    ///
    /// The signal must have history covering
    /// `[t_sample − total_delay − max skew, t_sample]`.
    pub fn sample<S: SignalSource + ?Sized>(
        &self,
        signal: &S,
        t_sample: Ps,
        rng: &mut SimRng,
    ) -> Vec<bool> {
        (0..self.len())
            .map(|j| self.ff.capture(signal, self.tap_instant(t_sample, j), rng))
            .collect()
    }

    /// Allocation-free capture of all `m ≤ 64` taps at clock edge
    /// `t_sample`, packed into a `u64` with tap 0 in the LSB.
    ///
    /// Bit- and RNG-draw-identical to [`TappedDelayLine::sample`]: the
    /// taps produce the same levels and the metastability coin is
    /// flipped for the same taps, in the same (ascending `j`) order,
    /// from the same RNG position; only the storage (packed word vs
    /// `Vec<bool>`) and the lookup strategy differ.
    ///
    /// When the signal exposes its [`EdgeTrain`]
    /// and the tap instants are monotone, the word is built by
    /// run-length over the few edges inside the observation window —
    /// O(edges · log m) instead of O(m) point queries — with exact
    /// per-tap handling only inside the metastability apertures.
    /// Otherwise each tap is captured through the resumable
    /// [`EdgeCursor`], an amortized O(1) walk since successive tap
    /// instants step backwards by about one bin width.
    ///
    /// # Panics
    ///
    /// Panics if the line has more than 64 taps.
    pub fn sample_into<S: SignalSource + ?Sized>(
        &self,
        signal: &S,
        t_sample: Ps,
        cursor: &mut EdgeCursor,
        rng: &mut SimRng,
    ) -> u64 {
        assert!(
            self.len() <= 64,
            "packed sampling supports at most 64 taps, line has {}",
            self.len()
        );
        if let Some(train) = signal.as_edge_train() {
            if let Some(word) = self.sample_runs(train, t_sample, rng) {
                return word;
            }
        }
        self.sample_walk(signal, t_sample, cursor, rng)
    }

    /// Per-tap fallback: capture every tap through the cursor.
    fn sample_walk<S: SignalSource + ?Sized>(
        &self,
        signal: &S,
        t_sample: Ps,
        cursor: &mut EdgeCursor,
        rng: &mut SimRng,
    ) -> u64 {
        let mut word = 0u64;
        for j in 0..self.len() {
            let bit = self
                .ff
                .capture_with(signal, self.tap_instant(t_sample, j), cursor, rng);
            word |= u64::from(bit) << j;
        }
        word
    }

    /// Run-length sampler over the edge list. Returns `None` when the
    /// tap instants are not monotone non-increasing (a clock-skew step
    /// larger than a bin width), in which case the caller must use the
    /// per-tap path.
    fn sample_runs(&self, train: &EdgeTrain, t_sample: Ps, rng: &mut SimRng) -> Option<u64> {
        let m = self.len();
        // Tap observation instants, with exactly the arithmetic of
        // `tap_instant` so every float matches the per-tap path bit
        // for bit.
        let mut u = [Ps::ZERO; 64];
        let mut prev = Ps::from_ps(f64::INFINITY);
        for ((slot, &skew), &cum) in u.iter_mut().zip(&self.capture_skew).zip(&self.cum_delay) {
            let inst = t_sample + skew - cum;
            if inst > prev {
                return None;
            }
            *slot = inst;
            prev = inst;
        }
        let u = &u[..m];
        // The per-tap path asserts per query; the earliest instant is
        // the strictest, so one check covers all of them.
        assert!(
            u[m - 1] >= train.valid_from(),
            "query at {} precedes history start {}",
            u[m - 1],
            train.valid_from()
        );

        // Levels: tap j sees initial_level XOR parity(#edges <= u_j).
        // Taps sharing an edge count form a contiguous run (u is
        // non-increasing), so walk the in-window edges from latest to
        // earliest and emit one bit-range per run.
        let p_min = train.edges_at_or_before(u[m - 1]);
        let p_max = train.edges_at_or_before(u[0]);
        let init = train.initial();
        let mut word = 0u64;
        let mut j_start = 0usize;
        for c in (p_min + 1..=p_max).rev() {
            // Taps with count c: u_j >= edge(c - 1), i.e. up to the
            // first j whose instant falls before that edge.
            let split = Self::first_below(u, j_start, train.edge(c - 1));
            if init ^ (c % 2 == 1) {
                word |= range_mask(j_start, split);
            }
            j_start = split;
        }
        if init ^ (p_min % 2 == 1) {
            word |= range_mask(j_start, m);
        }

        // Metastability: only taps within the aperture of some edge
        // can flip, and those apertures cover a contiguous tap range
        // per edge. Walk candidate edges from latest to earliest so
        // the coin flips happen in ascending-j order, exactly as the
        // per-tap path draws them.
        let w = self.ff.meta_window();
        if w > Ps::ZERO {
            let e_lo = train.edges_at_or_before(u[m - 1] - w);
            let e_hi = train.edges_at_or_before(u[0] + w);
            let mut next_j = 0usize;
            for i in (e_lo..e_hi).rev() {
                let e = train.edge(i);
                let jlo = Self::first_below(u, next_j, e + w);
                let jhi = Self::first_at_or_below(u, jlo, e - w);
                for (j, &uj) in u.iter().enumerate().take(jhi).skip(jlo) {
                    // Exact aperture test against the *nearest* edge,
                    // which may differ from the one that nominated j.
                    if let Some(d) = train.nearest_edge_distance(uj) {
                        if d < w {
                            let p_correct = 0.5 + 0.5 * (d / w);
                            if !rng.bernoulli(p_correct) {
                                word ^= 1u64 << j;
                            }
                        }
                    }
                }
                next_j = jhi.max(next_j);
            }
        }
        Some(word)
    }

    /// First index `j >= lo` with `u[j] < t` (`u` non-increasing).
    fn first_below(u: &[Ps], lo: usize, t: Ps) -> usize {
        let (mut lo, mut hi) = (lo, u.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if u[mid] >= t {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// First index `j >= lo` with `u[j] <= t` (`u` non-increasing).
    fn first_at_or_below(u: &[Ps], lo: usize, t: Ps) -> usize {
        let (mut lo, mut hi) = (lo, u.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if u[mid] > t {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// Mask with bits `lo..hi` set (`lo <= hi <= 64`).
pub(crate) fn range_mask(lo: usize, hi: usize) -> u64 {
    if hi == lo {
        return 0;
    }
    let hi_mask = if hi >= 64 { u64::MAX } else { (1u64 << hi) - 1 };
    hi_mask ^ ((1u64 << lo) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    fn rising_edge_at(t: f64) -> EdgeTrain {
        let mut s = EdgeTrain::new(false, Ps::ZERO);
        s.push(Ps::from_ps(t));
        s
    }

    #[test]
    fn ideal_line_produces_thermometer_code() {
        let line = TappedDelayLine::ideal(36, Ps::from_ps(17.0));
        let signal = rising_edge_at(700.0);
        let mut rng = SimRng::seed_from(0);
        let word = line.sample(&signal, Ps::from_ps(1000.0), &mut rng);
        // Tap j sees the signal at 1000 - 17*(j+1); edge at 700 ->
        // taps 0..=16 (look-back <= 289 < 300) see true, rest false.
        let ones: usize = word.iter().filter(|&&b| b).count();
        assert_eq!(ones, 17);
        assert!(word[..17].iter().all(|&b| b));
        assert!(word[17..].iter().all(|&b| !b));
    }

    #[test]
    fn edge_position_moves_with_signal() {
        let line = TappedDelayLine::ideal(36, Ps::from_ps(17.0));
        let mut rng = SimRng::seed_from(0);
        let w1 = line.sample(&rising_edge_at(700.0), Ps::from_ps(1000.0), &mut rng);
        let w2 = line.sample(&rising_edge_at(750.0), Ps::from_ps(1000.0), &mut rng);
        let p1 = w1.iter().position(|&b| !b).unwrap();
        let p2 = w2.iter().position(|&b| !b).unwrap();
        // Later edge -> smaller look-back reach -> fewer leading ones:
        // edge at 750: tap j sees true iff 1000 - 17(j+1) >= 750, i.e.
        // j <= 13, so the first false tap is index 14.
        assert_eq!(p1, 17);
        assert_eq!(p2, 14);
    }

    #[test]
    fn total_delay_and_mean_width() {
        let line = TappedDelayLine::ideal(36, Ps::from_ps(17.0));
        assert!((line.total_delay().as_ps() - 612.0).abs() < 1e-9);
        assert!((line.mean_bin_width().as_ps() - 17.0).abs() < 1e-12);
        assert_eq!(line.len(), 36);
        assert!(!line.is_empty());
        assert_eq!(line.dnl(0), 0.0);
    }

    #[test]
    fn placed_line_reflects_carry4_structure() {
        let fabric = Fabric::spartan6();
        let line = TappedDelayLine::placed(
            Ps::from_ps(17.0),
            DeviceSeed::new(1),
            &ProcessVariation::NONE,
            &fabric,
            4,
            1,
            9,
            CaptureFf::ideal(),
        );
        assert_eq!(line.len(), 36);
        // Structural pattern repeats every 4 bins; DNL of bin 0 = +0.35.
        assert!((line.dnl(0) - 0.35).abs() < 1e-9);
        assert!((line.dnl(1) + 0.20).abs() < 1e-9);
        assert!((line.dnl(4) - 0.35).abs() < 1e-9);
        // Zero-mean pattern preserves the total delay.
        assert!((line.total_delay().as_ps() - 612.0).abs() < 1e-9);
    }

    #[test]
    fn clock_region_crossing_adds_skew_step() {
        let fabric = Fabric::spartan6();
        // Chain from row 12 to 20 crosses the boundary at row 16.
        let line = TappedDelayLine::placed(
            Ps::from_ps(17.0),
            DeviceSeed::new(2),
            &ProcessVariation::NONE,
            &fabric,
            4,
            12,
            9,
            CaptureFf::ideal(),
        );
        // Taps 0..16 (rows 12..15) share one skew; taps 16.. have another.
        let skew_a = line.capture_skew[0];
        let skew_b = line.capture_skew[16];
        assert_eq!(line.capture_skew[15], skew_a);
        assert_ne!(skew_a, skew_b);
    }

    #[test]
    fn metastable_ff_produces_bubbles_near_edge() {
        let widths = vec![Ps::from_ps(17.0); 36];
        let skews = vec![Ps::ZERO; 36];
        let line = TappedDelayLine::from_bins(widths, skews, CaptureFf::new(Ps::from_ps(8.0)));
        let mut rng = SimRng::seed_from(3);
        // Put the edge exactly on tap 17's observation instant.
        // Tap 17 looks back 18*17 = 306 ps; sample at 1000 -> edge at 694.
        let signal = rising_edge_at(694.0);
        let mut flips = 0;
        for _ in 0..200 {
            let w = line.sample(&signal, Ps::from_ps(1000.0), &mut rng);
            if w[17] {
                flips += 1;
            }
        }
        // Metastable tap resolves randomly: neither always 0 nor always 1.
        assert!(flips > 40 && flips < 160, "flips {flips}");
    }

    #[test]
    fn falling_edges_are_captured_too() {
        let line = TappedDelayLine::ideal(36, Ps::from_ps(17.0));
        let mut s = EdgeTrain::new(true, Ps::ZERO);
        s.push(Ps::from_ps(700.0)); // falling edge
        let mut rng = SimRng::seed_from(0);
        let word = line.sample(&s, Ps::from_ps(1000.0), &mut rng);
        assert!(word[..17].iter().all(|&b| !b));
        assert!(word[17..].iter().all(|&b| b));
    }

    #[test]
    fn packed_sample_matches_unpacked_bit_and_draw_exact() {
        use crate::edge_train::EdgeCursor;
        // Ragged bins, clock skew and a metastable FF: the worst case
        // for a lookup-strategy change. The packed path must produce
        // the same bits AND leave the RNG at the same stream position.
        let widths: Vec<Ps> = (0..36)
            .map(|j| Ps::from_ps(17.0 + 4.0 * ((j % 4) as f64 - 1.5)))
            .collect();
        let skews: Vec<Ps> = (0..36)
            .map(|j| Ps::from_ps(if j < 16 { 0.0 } else { 3.0 }))
            .collect();
        let line = TappedDelayLine::from_bins(widths, skews, CaptureFf::new(Ps::from_ps(9.0)));
        for seed in 0..20u64 {
            // A signal with many edges sweeping across the window so
            // several taps land inside the metastability aperture.
            let mut signal = EdgeTrain::new(false, Ps::ZERO);
            let mut t = 300.0 + seed as f64 * 7.3;
            while t < 1000.0 {
                signal.push(Ps::from_ps(t));
                t += 90.0 + (seed % 5) as f64 * 13.0;
            }
            let mut rng_a = SimRng::seed_from(seed);
            let mut rng_b = SimRng::seed_from(seed);
            let mut cursor = EdgeCursor::new();
            for s in 0..4 {
                let t_sample = Ps::from_ps(1000.0 + s as f64 * 0.5);
                let unpacked = line.sample(&signal, t_sample, &mut rng_a);
                let packed = line.sample_into(&signal, t_sample, &mut cursor, &mut rng_b);
                for (j, &bit) in unpacked.iter().enumerate() {
                    assert_eq!(packed >> j & 1 == 1, bit, "seed {seed} sample {s} tap {j}");
                }
            }
            // Same number of Bernoulli draws consumed ⇒ streams align.
            for _ in 0..8 {
                assert_eq!(rng_a.bernoulli(0.5), rng_b.bernoulli(0.5), "seed {seed}");
            }
        }
    }

    #[test]
    fn run_length_matches_walk_across_random_lines() {
        // The run-length sampler and the per-tap cursor walk must be
        // bit- and draw-identical over ragged bins, skew steps, dense
        // and sparse edge trains, and edges landing exactly on tap
        // instants and aperture boundaries.
        for seed in 0..40u64 {
            let m = 1 + (seed as usize * 7) % 64;
            let widths: Vec<Ps> = (0..m)
                .map(|j| Ps::from_ps(11.0 + ((seed as usize + j * 5) % 13) as f64))
                .collect();
            let skews: Vec<Ps> = (0..m)
                .map(|j| Ps::from_ps(if j % 16 < 8 { 0.0 } else { 3.0 }))
                .collect();
            let w_meta = Ps::from_ps((seed % 3) as f64 * 4.5); // 0, 4.5, 9
            let line = TappedDelayLine::from_bins(widths, skews, CaptureFf::new(w_meta));
            let mut signal = EdgeTrain::new(seed % 2 == 0, Ps::ZERO);
            let mut t = 100.0 + (seed % 7) as f64 * 11.0;
            while t < 2600.0 {
                signal.push(Ps::from_ps(t));
                t += 40.0 + (seed % 11) as f64 * 60.0;
            }
            let mut rng_a = SimRng::seed_from(seed);
            let mut rng_b = SimRng::seed_from(seed);
            for s in 0..6 {
                let t_sample = Ps::from_ps(2500.0 + s as f64 * 0.7);
                let runs = line
                    .sample_runs(&signal, t_sample, &mut rng_a)
                    .expect("monotone instants");
                let walk = line.sample_walk(&signal, t_sample, &mut EdgeCursor::new(), &mut rng_b);
                assert_eq!(runs, walk, "seed {seed} sample {s}");
            }
            for _ in 0..8 {
                assert_eq!(rng_a.bernoulli(0.5), rng_b.bernoulli(0.5), "seed {seed}");
            }
        }
    }

    #[test]
    fn non_monotone_instants_fall_back_to_walk() {
        // A skew step larger than a bin width makes tap instants
        // non-monotone; `sample_into` must detect it and still match
        // the scalar per-tap reference exactly.
        let widths = vec![Ps::from_ps(17.0); 8];
        let skews: Vec<Ps> = (0..8)
            .map(|j| Ps::from_ps(if j >= 4 { 40.0 } else { 0.0 }))
            .collect();
        let line = TappedDelayLine::from_bins(widths, skews, CaptureFf::new(Ps::from_ps(9.0)));
        let mut signal = EdgeTrain::new(false, Ps::ZERO);
        for i in 0..12 {
            signal.push(Ps::from_ps(120.0 + i as f64 * 73.0));
        }
        let t_sample = Ps::from_ps(1000.0);
        assert!(line
            .sample_runs(&signal, t_sample, &mut SimRng::seed_from(0))
            .is_none());
        let mut rng_a = SimRng::seed_from(9);
        let mut rng_b = SimRng::seed_from(9);
        let reference = line.sample(&signal, t_sample, &mut rng_a);
        let packed = line.sample_into(&signal, t_sample, &mut EdgeCursor::new(), &mut rng_b);
        for (j, &bit) in reference.iter().enumerate() {
            assert_eq!(packed >> j & 1 == 1, bit, "tap {j}");
        }
    }

    #[test]
    fn run_length_handles_edgeless_and_boundary_windows() {
        let line = TappedDelayLine::ideal(36, Ps::from_ps(17.0));
        let mut rng = SimRng::seed_from(0);
        // No edges at all: the word is the initial level everywhere.
        let quiet = EdgeTrain::new(true, Ps::ZERO);
        let word = line.sample_into(
            &quiet,
            Ps::from_ps(1000.0),
            &mut EdgeCursor::new(),
            &mut rng,
        );
        assert_eq!(word, (1u64 << 36) - 1);
        // An edge exactly on a tap instant: left-closed transitions,
        // same as `level_at`.
        let signal = rising_edge_at(1000.0 - 17.0 * 18.0); // tap 17's instant
        let word = line.sample_into(
            &signal,
            Ps::from_ps(1000.0),
            &mut EdgeCursor::new(),
            &mut rng,
        );
        let reference = line.sample(&signal, Ps::from_ps(1000.0), &mut rng);
        for (j, &bit) in reference.iter().enumerate() {
            assert_eq!(word >> j & 1 == 1, bit, "tap {j}");
        }
    }

    #[test]
    #[should_panic(expected = "precedes history start")]
    fn run_length_rejects_queries_before_history() {
        let line = TappedDelayLine::ideal(36, Ps::from_ps(17.0));
        let signal = EdgeTrain::new(false, Ps::from_ps(900.0));
        // Sample at 1000: tap 35 looks back to 388 < 900.
        let _ = line.sample_into(
            &signal,
            Ps::from_ps(1000.0),
            &mut EdgeCursor::new(),
            &mut SimRng::seed_from(0),
        );
    }

    #[test]
    #[should_panic(expected = "at most 64 taps")]
    fn packed_sample_rejects_wide_lines() {
        use crate::edge_train::EdgeCursor;
        let line = TappedDelayLine::ideal(68, Ps::from_ps(17.0));
        let signal = rising_edge_at(700.0);
        let mut rng = SimRng::seed_from(0);
        let _ = line.sample_into(
            &signal,
            Ps::from_ps(2000.0),
            &mut EdgeCursor::new(),
            &mut rng,
        );
    }

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn rejects_non_positive_bin() {
        let _ = TappedDelayLine::from_bins(
            vec![Ps::from_ps(17.0), Ps::ZERO],
            vec![Ps::ZERO; 2],
            CaptureFf::ideal(),
        );
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_mismatched_lengths() {
        let _ = TappedDelayLine::from_bins(
            vec![Ps::from_ps(17.0); 3],
            vec![Ps::ZERO; 2],
            CaptureFf::ideal(),
        );
    }
}
