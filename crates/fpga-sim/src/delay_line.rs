//! Fast tapped delay line — the time-to-digital converter.
//!
//! Figure 3 of the paper: a chain of fast buffers (carry-chain stages)
//! with a flip-flop on every tap. On the sampling clock edge, tap `j`
//! has seen the input signal as it was `D_j` earlier, where `D_j` is
//! the accumulated chain delay to that tap, so the captured word is a
//! time-reversed snapshot of the input waveform with ~`tstep`
//! resolution.
//!
//! Non-idealities modelled (all frozen per device):
//!
//! * bin widths vary — CARRY4 structural DNL + process variation
//!   ([`Carry4`]);
//! * capture flip-flops in different slices see slightly different
//!   clock arrival times; crossing a 16-row clock-region boundary adds
//!   a step of several ps ([`Fabric::clock_skew`]) — the dominant
//!   non-linearity per Menninga et al. \[6\];
//! * flip-flops go metastable near edges, producing bubbles
//!   ([`CaptureFf`]).

use crate::edge_train::SignalSource;
use crate::fabric::{Fabric, SliceCoord};
use crate::primitives::{CaptureFf, Carry4, CARRY4_BINS};
use crate::process::{DeviceSeed, ProcessVariation};
use crate::rng::SimRng;
use crate::time::Ps;

/// A placed tapped delay line with `m` capture taps.
///
/// # Examples
///
/// ```
/// use trng_fpga_sim::delay_line::TappedDelayLine;
/// use trng_fpga_sim::edge_train::EdgeTrain;
/// use trng_fpga_sim::rng::SimRng;
/// use trng_fpga_sim::time::Ps;
///
/// let line = TappedDelayLine::ideal(36, Ps::from_ps(17.0));
/// let mut signal = EdgeTrain::new(false, Ps::ZERO);
/// signal.push(Ps::from_ps(700.0)); // rising edge
/// let mut rng = SimRng::seed_from(0);
/// // Sample at t=1000: taps looking back more than 300 ps see 'false'.
/// let word = line.sample(&signal, Ps::from_ps(1000.0), &mut rng);
/// assert_eq!(word.len(), 36);
/// assert!(word[0]);          // looks back 17 ps -> after the edge
/// assert!(!word[35]);        // looks back 612 ps -> before the edge
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TappedDelayLine {
    bin_widths: Vec<Ps>,
    /// `cum_delay[j] = w_0 + ... + w_j`: look-back of tap `j`.
    cum_delay: Vec<Ps>,
    /// Per-tap capture-clock arrival offset.
    capture_skew: Vec<Ps>,
    ff: CaptureFf,
}

impl TappedDelayLine {
    /// An ideal line: `m` equal bins of `tstep`, zero skew, ideal FFs.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `tstep` is not strictly positive.
    pub fn ideal(m: usize, tstep: Ps) -> Self {
        assert!(m > 0, "delay line needs at least one tap");
        assert!(tstep.as_ps() > 0.0, "tstep must be positive, got {tstep}");
        Self::from_bins(vec![tstep; m], vec![Ps::ZERO; m], CaptureFf::ideal())
    }

    /// Builds a line from explicit bin widths, skews and FF model.
    ///
    /// # Panics
    ///
    /// Panics if the vectors are empty, have mismatched lengths, or any
    /// width is non-positive.
    pub fn from_bins(bin_widths: Vec<Ps>, capture_skew: Vec<Ps>, ff: CaptureFf) -> Self {
        assert!(!bin_widths.is_empty(), "delay line needs at least one tap");
        assert_eq!(
            bin_widths.len(),
            capture_skew.len(),
            "bin widths and skews must have equal length"
        );
        let mut cum = Vec::with_capacity(bin_widths.len());
        let mut acc = Ps::ZERO;
        for &w in &bin_widths {
            assert!(w.as_ps() > 0.0, "bin width must be positive, got {w}");
            acc += w;
            cum.push(acc);
        }
        TappedDelayLine {
            bin_widths,
            cum_delay: cum,
            capture_skew,
            ff,
        }
    }

    /// Builds a chain of `num_carry4` CARRY4 primitives in `column`
    /// starting at `first_row`, with per-slice clock skew from the
    /// fabric model and the given flip-flop model.
    ///
    /// # Panics
    ///
    /// Panics if `num_carry4 == 0` or `tstep` is not positive.
    #[allow(clippy::too_many_arguments)] // mirrors the physical parameter list
    pub fn placed(
        tstep: Ps,
        device: DeviceSeed,
        variation: &ProcessVariation,
        fabric: &Fabric,
        column: u32,
        first_row: u32,
        num_carry4: u32,
        ff: CaptureFf,
    ) -> Self {
        assert!(num_carry4 > 0, "delay line needs at least one CARRY4");
        let m = num_carry4 as usize * CARRY4_BINS;
        let mut widths = Vec::with_capacity(m);
        let mut skews = Vec::with_capacity(m);
        for c in 0..num_carry4 {
            let row = first_row + c;
            let c4 = Carry4::placed(tstep, device, variation, u64::from(column), u64::from(row));
            let slice_skew = fabric.clock_skew(device, variation, SliceCoord::new(column, row));
            for w in c4.bin_widths() {
                widths.push(w);
                skews.push(slice_skew);
            }
        }
        Self::from_bins(widths, skews, ff)
    }

    /// Number of taps `m`.
    pub fn len(&self) -> usize {
        self.bin_widths.len()
    }

    /// `true` if the line has no taps (never: constructors forbid it).
    pub fn is_empty(&self) -> bool {
        self.bin_widths.is_empty()
    }

    /// Width of bin `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn bin_width(&self, j: usize) -> Ps {
        self.bin_widths[j]
    }

    /// All bin widths.
    pub fn bin_widths(&self) -> &[Ps] {
        &self.bin_widths
    }

    /// Mean bin width (the effective `tstep`).
    pub fn mean_bin_width(&self) -> Ps {
        self.cum_delay[self.len() - 1] / self.len() as f64
    }

    /// Total propagation delay of the chain (`D_m`): the observation
    /// window. The paper requires `m · tstep > d0` so an edge is always
    /// captured.
    pub fn total_delay(&self) -> Ps {
        self.cum_delay[self.len() - 1]
    }

    /// Differential non-linearity of bin `j` in LSB units:
    /// `w_j / mean(w) − 1`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn dnl(&self, j: usize) -> f64 {
        self.bin_widths[j] / self.mean_bin_width() - 1.0
    }

    /// The effective observation instant of tap `j` for a sample taken
    /// at `t_sample`: `t_sample + skew_j − D_j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn tap_instant(&self, t_sample: Ps, j: usize) -> Ps {
        t_sample + self.capture_skew[j] - self.cum_delay[j]
    }

    /// Captures the signal into all `m` flip-flops at clock edge
    /// `t_sample`, returning the raw word (tap 0 first — the tap
    /// closest in time to the clock edge).
    ///
    /// The signal must have history covering
    /// `[t_sample − total_delay − max skew, t_sample]`.
    pub fn sample<S: SignalSource + ?Sized>(
        &self,
        signal: &S,
        t_sample: Ps,
        rng: &mut SimRng,
    ) -> Vec<bool> {
        (0..self.len())
            .map(|j| self.ff.capture(signal, self.tap_instant(t_sample, j), rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_train::EdgeTrain;

    fn rising_edge_at(t: f64) -> EdgeTrain {
        let mut s = EdgeTrain::new(false, Ps::ZERO);
        s.push(Ps::from_ps(t));
        s
    }

    #[test]
    fn ideal_line_produces_thermometer_code() {
        let line = TappedDelayLine::ideal(36, Ps::from_ps(17.0));
        let signal = rising_edge_at(700.0);
        let mut rng = SimRng::seed_from(0);
        let word = line.sample(&signal, Ps::from_ps(1000.0), &mut rng);
        // Tap j sees the signal at 1000 - 17*(j+1); edge at 700 ->
        // taps 0..=16 (look-back <= 289 < 300) see true, rest false.
        let ones: usize = word.iter().filter(|&&b| b).count();
        assert_eq!(ones, 17);
        assert!(word[..17].iter().all(|&b| b));
        assert!(word[17..].iter().all(|&b| !b));
    }

    #[test]
    fn edge_position_moves_with_signal() {
        let line = TappedDelayLine::ideal(36, Ps::from_ps(17.0));
        let mut rng = SimRng::seed_from(0);
        let w1 = line.sample(&rising_edge_at(700.0), Ps::from_ps(1000.0), &mut rng);
        let w2 = line.sample(&rising_edge_at(750.0), Ps::from_ps(1000.0), &mut rng);
        let p1 = w1.iter().position(|&b| !b).unwrap();
        let p2 = w2.iter().position(|&b| !b).unwrap();
        // Later edge -> smaller look-back reach -> fewer leading ones:
        // edge at 750: tap j sees true iff 1000 - 17(j+1) >= 750, i.e.
        // j <= 13, so the first false tap is index 14.
        assert_eq!(p1, 17);
        assert_eq!(p2, 14);
    }

    #[test]
    fn total_delay_and_mean_width() {
        let line = TappedDelayLine::ideal(36, Ps::from_ps(17.0));
        assert!((line.total_delay().as_ps() - 612.0).abs() < 1e-9);
        assert!((line.mean_bin_width().as_ps() - 17.0).abs() < 1e-12);
        assert_eq!(line.len(), 36);
        assert!(!line.is_empty());
        assert_eq!(line.dnl(0), 0.0);
    }

    #[test]
    fn placed_line_reflects_carry4_structure() {
        let fabric = Fabric::spartan6();
        let line = TappedDelayLine::placed(
            Ps::from_ps(17.0),
            DeviceSeed::new(1),
            &ProcessVariation::NONE,
            &fabric,
            4,
            1,
            9,
            CaptureFf::ideal(),
        );
        assert_eq!(line.len(), 36);
        // Structural pattern repeats every 4 bins; DNL of bin 0 = +0.35.
        assert!((line.dnl(0) - 0.35).abs() < 1e-9);
        assert!((line.dnl(1) + 0.20).abs() < 1e-9);
        assert!((line.dnl(4) - 0.35).abs() < 1e-9);
        // Zero-mean pattern preserves the total delay.
        assert!((line.total_delay().as_ps() - 612.0).abs() < 1e-9);
    }

    #[test]
    fn clock_region_crossing_adds_skew_step() {
        let fabric = Fabric::spartan6();
        // Chain from row 12 to 20 crosses the boundary at row 16.
        let line = TappedDelayLine::placed(
            Ps::from_ps(17.0),
            DeviceSeed::new(2),
            &ProcessVariation::NONE,
            &fabric,
            4,
            12,
            9,
            CaptureFf::ideal(),
        );
        // Taps 0..16 (rows 12..15) share one skew; taps 16.. have another.
        let skew_a = line.capture_skew[0];
        let skew_b = line.capture_skew[16];
        assert_eq!(line.capture_skew[15], skew_a);
        assert_ne!(skew_a, skew_b);
    }

    #[test]
    fn metastable_ff_produces_bubbles_near_edge() {
        let widths = vec![Ps::from_ps(17.0); 36];
        let skews = vec![Ps::ZERO; 36];
        let line = TappedDelayLine::from_bins(widths, skews, CaptureFf::new(Ps::from_ps(8.0)));
        let mut rng = SimRng::seed_from(3);
        // Put the edge exactly on tap 17's observation instant.
        // Tap 17 looks back 18*17 = 306 ps; sample at 1000 -> edge at 694.
        let signal = rising_edge_at(694.0);
        let mut flips = 0;
        for _ in 0..200 {
            let w = line.sample(&signal, Ps::from_ps(1000.0), &mut rng);
            if w[17] {
                flips += 1;
            }
        }
        // Metastable tap resolves randomly: neither always 0 nor always 1.
        assert!(flips > 40 && flips < 160, "flips {flips}");
    }

    #[test]
    fn falling_edges_are_captured_too() {
        let line = TappedDelayLine::ideal(36, Ps::from_ps(17.0));
        let mut s = EdgeTrain::new(true, Ps::ZERO);
        s.push(Ps::from_ps(700.0)); // falling edge
        let mut rng = SimRng::seed_from(0);
        let word = line.sample(&s, Ps::from_ps(1000.0), &mut rng);
        assert!(word[..17].iter().all(|&b| !b));
        assert!(word[17..].iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn rejects_non_positive_bin() {
        let _ = TappedDelayLine::from_bins(
            vec![Ps::from_ps(17.0), Ps::ZERO],
            vec![Ps::ZERO; 2],
            CaptureFf::ideal(),
        );
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_mismatched_lengths() {
        let _ = TappedDelayLine::from_bins(
            vec![Ps::from_ps(17.0); 3],
            vec![Ps::ZERO; 2],
            CaptureFf::ideal(),
        );
    }
}
